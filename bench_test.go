package trajcomp

// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus micro-benchmarks and the ablations called out in DESIGN.md §5.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTable*/BenchmarkFigure* benchmark prints the reproduced
// artifact once (on the first iteration) and then measures the cost of
// regenerating it.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"repro/internal/experiments"
)

var printOnce sync.Once

// benchArtifact measures fn and prints its rendered artifact once per
// process so `go test -bench .` doubles as the reproduction run.
func benchArtifact(b *testing.B, render func(w io.Writer)) {
	b.Helper()
	printOnce.Do(func() {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "=== paper reproduction artifacts (printed once; see cmd/experiments for the full run) ===")
	})
	var buf bytes.Buffer
	render(&buf)
	b.Logf("\n%s", buf.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(io.Discard)
	}
}

// BenchmarkTable2Stats regenerates Table 2: statistics of the ten
// evaluation trajectories.
func BenchmarkTable2Stats(b *testing.B) {
	benchArtifact(b, func(w io.Writer) {
		if err := experiments.RenderTable2(w, experiments.Table2()); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFigure7 regenerates Fig. 7: NDP vs TD-TR.
func BenchmarkFigure7(b *testing.B) {
	benchArtifact(b, func(w io.Writer) {
		if err := experiments.RenderFigure(w, experiments.Figure7()); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFigure8 regenerates Fig. 8: BOPW vs NOPW.
func BenchmarkFigure8(b *testing.B) {
	benchArtifact(b, func(w io.Writer) {
		if err := experiments.RenderFigure(w, experiments.Figure8()); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFigure9 regenerates Fig. 9: NOPW vs OPW-TR.
func BenchmarkFigure9(b *testing.B) {
	benchArtifact(b, func(w io.Writer) {
		if err := experiments.RenderFigure(w, experiments.Figure9()); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFigure10 regenerates Fig. 10: OPW-TR vs TD-SP vs OPW-SP.
func BenchmarkFigure10(b *testing.B) {
	benchArtifact(b, func(w io.Writer) {
		if err := experiments.RenderFigure(w, experiments.Figure10()); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFigure11 regenerates Fig. 11: the error/compression frontier.
func BenchmarkFigure11(b *testing.B) {
	benchArtifact(b, func(w io.Writer) {
		if err := experiments.RenderFrontier(w, experiments.Figure11()); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkAlgorithms measures each compression algorithm on one ~200-point
// trajectory of the evaluation dataset.
func BenchmarkAlgorithms(b *testing.B) {
	p := PaperDataset()[0]
	algs := []Algorithm{
		NewUniform(3),
		NewRadial(50),
		NewDeadReckoning(50),
		NewDouglasPeucker(50),
		NewDouglasPeuckerHull(50),
		NewNOPW(50),
		NewBOPW(50),
		NewTDTR(50),
		NewOPWTR(50),
		NewOPWSP(50, 5),
		NewTDSP(50, 5),
		NewBottomUp(50),
		NewBottomUpTR(50),
		NewSlidingWindow(50, 20),
		NewSlidingWindowTR(50, 20),
	}
	for _, alg := range algs {
		b.Run(alg.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				alg.Compress(p)
			}
		})
	}
}

// BenchmarkDPHullAblation compares the naive O(N²) Douglas-Peucker against
// the convex-hull-accelerated variant on a long trajectory (DESIGN.md §5).
func BenchmarkDPHullAblation(b *testing.B) {
	long := GenerateTrip(99, Mixed, 4*3600) // ≈1440 points
	for _, alg := range []Algorithm{NewDouglasPeucker(40), NewDouglasPeuckerHull(40)} {
		b.Run(alg.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				alg.Compress(long)
			}
		})
	}
}

// BenchmarkBreakStrategyAblation compares the opening-window break-point
// strategies (DESIGN.md §5) under the synchronized distance.
func BenchmarkBreakStrategyAblation(b *testing.B) {
	p := PaperDataset()[0]
	b.Run("at-violation", func(b *testing.B) {
		alg := NewOPWTR(50)
		for i := 0; i < b.N; i++ {
			alg.Compress(p)
		}
	})
	b.Run("before", func(b *testing.B) {
		alg := NewBOPW(50)
		for i := 0; i < b.N; i++ {
			alg.Compress(p)
		}
	})
}

// BenchmarkAvgError measures the closed-form synchronized error metric.
func BenchmarkAvgError(b *testing.B) {
	p := PaperDataset()[0]
	a := NewTDTR(50).Compress(p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AvgError(p, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlinePush measures the per-sample cost of online OPW-TR.
func BenchmarkOnlinePush(b *testing.B) {
	p := PaperDataset()[0]
	b.ReportAllocs()
	b.ResetTimer()
	c := NewOnlineOPWTR(50, 0)
	for i := 0; i < b.N; i++ {
		s := p[i%p.Len()]
		if i > 0 && i%p.Len() == 0 {
			c.Flush()
		}
		if _, err := c.Push(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodec measures binary encode/decode of the full dataset.
func BenchmarkCodec(b *testing.B) {
	named := make([]Named, 0, 10)
	for i, p := range PaperDataset() {
		named = append(named, Named{ID: fmt.Sprintf("car-%d", i), Traj: p})
	}
	var buf bytes.Buffer
	if err := EncodeFile(&buf, named); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()

	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := EncodeFile(io.Discard, named); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeFile(bytes.NewReader(encoded)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreIndex compares the grid and R-tree indexes on ingest and
// range queries over a populated fleet store (DESIGN.md §5).
func BenchmarkStoreIndex(b *testing.B) {
	fleet := make([]Trajectory, 20)
	for i := range fleet {
		fleet[i] = GenerateTrip(int64(300+i), Mixed, 1800).
			Shift(0, float64(i%5)*5000, float64(i/5)*5000)
	}
	for _, kind := range []struct {
		name string
		k    IndexKind
	}{{"grid", IndexGrid}, {"rtree", IndexRTree}} {
		b.Run("ingest/"+kind.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := NewStore(StoreOptions{Index: kind.k})
				for v, p := range fleet {
					id := fmt.Sprintf("v%d", v)
					for _, s := range p {
						if err := st.Append(id, s); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
		st := NewStore(StoreOptions{Index: kind.k})
		for v, p := range fleet {
			id := fmt.Sprintf("v%d", v)
			for _, s := range p {
				if err := st.Append(id, s); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run("query/"+kind.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cx := float64(i%5) * 5000
				cy := float64(i%4) * 5000
				rect := Rect{
					Min: Point{X: cx - 1000, Y: cy - 1000},
					Max: Point{X: cx + 1000, Y: cy + 1000},
				}
				st.Query(rect, 0, 1800)
			}
		})
	}
}

// BenchmarkStoreIngest measures moving-object store ingestion with
// compression off and with on-ingest OPW-TR / OPW-SP (DESIGN.md §5).
func BenchmarkStoreIngest(b *testing.B) {
	p := PaperDataset()[0]
	cases := []struct {
		name string
		opts StoreOptions
	}{
		{"raw", StoreOptions{}},
		{"opwtr", StoreOptions{NewCompressor: func() Compressor { return NewOnlineOPWTR(50, 0) }}},
		{"opwsp", StoreOptions{NewCompressor: func() Compressor { return NewOnlineOPWSP(50, 5, 0) }}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := NewStore(tc.opts)
				for _, s := range p {
					if err := st.Append("car", s); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
