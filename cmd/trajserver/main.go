// Command trajserver runs the moving-object tracking server: a TCP store
// with optional on-ingest trajectory compression.
//
// Usage:
//
//	trajserver [-addr host:port] [-compress spec] [-cell metres]
//
//	-addr string      listen address (default "127.0.0.1:7007")
//	-compress string  online compression: none, nopw:D[:W], opwtr:D[:W],
//	                  opwsp:D:V[:W], dr:D, operb:D, ciseds:D, cisedw:D
//	                  (default "opwtr:30"; the one-pass operb/ciseds/cisedw
//	                  decide each point in O(1) — see internal/stream)
//	-cell float       spatial index cell size in metres (default 1000)
//	-index string     spatiotemporal index: grid or rtree (default "grid")
//	-shards int       store shards (object-ID hash partitions, each with its
//	                  own lock and index segment), rounded up to a power of
//	                  two; 0 selects max(8, 2×GOMAXPROCS)
//	-wal string       write-ahead log path for durability ("" = in-memory)
//	-wal-sync int     records between WAL fsyncs; 0 syncs every append, so
//	                  an OK reply implies the sample is on stable storage
//	                  (default 64)
//	-max-conns int    connection cap; excess connections get one "ERR busy"
//	                  line and are closed (0 = unlimited)
//	-sub-buf int      per-subscriber ring capacity for SUBSCRIBE feeds; a
//	                  saturated ring applies the feed's slow-consumer
//	                  policy (0 = default 256)
//	-http string      observability listen address serving /metrics
//	                  (Prometheus text format) and /debug/pprof/*
//	                  ("" = disabled)
//	-seal-eps float   cold-tier error bound in metres: EVICT seals aged
//	                  samples into quantized blocks instead of dropping
//	                  them, and SEAL moves them explicitly (0 = no cold
//	                  tier, eviction drops)
//	-seal-block int   target points per sealed block (0 = default 256)
//	-replicate-from string
//	                  primary address to replicate from; the node starts as
//	                  a read-only follower (requires -wal; PROMOTE flips it
//	                  to primary)
//	-repl-ack string  replication acknowledgement mode when this node is a
//	                  primary: "primary" (async; lagging followers are shed)
//	                  or "follower" (an append is acknowledged only after a
//	                  follower has fsynced it) (default "primary")
//	-repl-max-lag int in -repl-ack=primary mode, disconnect a follower more
//	                  than this many records behind (0 = never shed)
//	                  (default 4096)
//
// On SIGINT/SIGTERM the server drains: in-flight commands finish, then
// the WAL seals and closes. SIGKILL is survivable by design — recovery
// replays the log; see cmd/trajtorture.
//
// Protocol (newline-delimited, see internal/server):
//
//	APPEND <id> <t> <x> <y>
//	MAPPEND <id> <n>        (followed by n "<t> <x> <y>" lines: one batched
//	                        append, one "OK appended=<n>" reply — the bulk
//	                        ingest fast path; commands may be pipelined)
//	POSITION <id> <t>
//	SNAPSHOT <id>
//	QUERY <minx> <miny> <maxx> <maxy> <t0> <t1>
//	QUERYRANGE <minx> <miny> <maxx> <maxy> <t0> <t1>
//	NEAREST <x> <y> <t> <k>
//	SEAL <t>
//	SUBSCRIBE <id|*> [spec] [policy]
//	SUBSCRIBE BOX <minx> <miny> <maxx> <maxy> [spec] [policy]
//	                        (live feed; policy is drop-newest, drop-oldest,
//	                        or disconnect — what a saturated feed does)
//	IDS | STATS | PING | QUIT
//
// Try it:
//
//	go run ./cmd/trajserver &
//	printf 'APPEND car 0 0 0\nAPPEND car 10 100 0\nPOSITION car 5\nQUIT\n' | nc 127.0.0.1 7007
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/wal"
)

// serveHTTP starts the observability endpoint: Prometheus exposition at
// /metrics and the stdlib pprof handlers at /debug/pprof/*. A private mux
// keeps the handlers off http.DefaultServeMux.
func serveHTTP(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(metrics.Default()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(l, mux); err != nil {
			log.Printf("http: %v", err)
		}
	}()
	return l, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("trajserver: ")

	var (
		addr      = flag.String("addr", "127.0.0.1:7007", "listen address")
		compSpec  = flag.String("compress", "opwtr:30", "online compression spec (none, nopw:D, opwtr:D, opwsp:D:V, dr:D, operb:D, ciseds:D, cisedw:D)")
		cell      = flag.Float64("cell", 1000, "spatial index cell size in metres")
		indexName = flag.String("index", "grid", "spatiotemporal index: grid or rtree")
		shards    = flag.Int("shards", 0, "store shards, rounded up to a power of two (0 = max(8, 2×GOMAXPROCS))")
		walPath   = flag.String("wal", "", "write-ahead log path for durability (empty = in-memory only)")
		walSync   = flag.Int("wal-sync", 64, "records between WAL fsyncs (0 = fsync every append)")
		maxConns  = flag.Int("max-conns", 0, "connection cap; excess connections are shed with ERR busy (0 = unlimited)")
		subBuf    = flag.Int("sub-buf", 0, "per-subscriber ring capacity for SUBSCRIBE feeds (0 = default 256)")
		httpAddr  = flag.String("http", "", "observability listen address for /metrics and /debug/pprof (empty = disabled)")
		sealEps   = flag.Float64("seal-eps", 0, "cold-tier error bound in metres; eviction seals instead of drops (0 = no cold tier)")
		sealBlock = flag.Int("seal-block", 0, "target points per sealed block (0 = default)")
		replFrom  = flag.String("replicate-from", "", "primary address to replicate from; start as a read-only follower (requires -wal)")
		replAck   = flag.String("repl-ack", "primary", `replication ack mode: "primary" (async) or "follower" (ack after a follower fsync)`)
		replLag   = flag.Uint64("repl-max-lag", 4096, "in -repl-ack=primary mode, shed a follower more than this many records behind (0 = never)")
	)
	flag.Parse()

	factory, err := stream.ParseFactory(*compSpec)
	if err != nil {
		log.Fatal(err)
	}
	var index store.IndexKind
	switch *indexName {
	case "grid":
		index = store.IndexGrid
	case "rtree":
		index = store.IndexRTree
	default:
		log.Fatalf("unknown index %q (want grid or rtree)", *indexName)
	}
	opts := store.Options{
		NewCompressor: factory, CellSize: *cell, Index: index, Shards: *shards,
		SealEps: *sealEps, SealBlockPoints: *sealBlock,
	}

	var backend server.Backend
	var durable *wal.DurableStore
	var st *store.Store
	if *walPath != "" {
		durable, err = wal.OpenDurable(*walPath, opts)
		if err != nil {
			log.Fatal(err)
		}
		backend = durable
		//lint:allow mutexguard single-threaded setup: no goroutine shares the store until Serve starts
		st = durable.Store
		durable.SetSyncEvery(*walSync)
		log.Printf("durable: write-ahead log at %s (sync every %d records)", *walPath, *walSync)
	} else {
		st = store.New(opts)
		backend = st
	}
	srv := server.New(backend)
	//lint:allow mutexguard single-threaded setup: Serve has not started, no connection can race this write
	srv.MaxConns = *maxConns
	srv.SubBuf = *subBuf
	srv.WriteTimeout = 30 * time.Second

	mode, ok := repl.ParseMode(*replAck)
	if !ok {
		log.Fatalf("unknown -repl-ack %q (want primary or follower)", *replAck)
	}
	var follower *repl.Follower
	if durable != nil {
		// Any WAL-backed node can serve REPLICATE: replication streams the
		// durable log, so it exists exactly when the log does.
		srv.Repl = repl.NewPrimary(durable, repl.Options{Mode: mode, MaxLag: *replLag})
		if *replFrom != "" {
			follower = repl.StartFollower(durable, *replFrom, repl.FollowerOptions{})
			srv.Follower = follower
			log.Printf("replicating from %s (read-only until PROMOTE)", *replFrom)
		} else if mode == repl.AckFollower {
			log.Printf("repl-ack=follower: appends acknowledged only after a follower fsync")
		}
	} else if *replFrom != "" {
		log.Fatal("-replicate-from requires -wal: a follower applies the stream through its own log")
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (compression %s, %d store shards)", l.Addr(), *compSpec, st.NumShards())
	if *sealEps > 0 {
		log.Printf("cold tier: sealing evicted history into quantized blocks (eps %g m)", *sealEps)
	}

	if *httpAddr != "" {
		hl, err := serveHTTP(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			_ = hl.Close() // best effort: the process is exiting
		}()
		log.Printf("metrics on http://%s/metrics (pprof at /debug/pprof/)", hl.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("draining")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	if err := srv.Serve(l); err != server.ErrServerClosed {
		log.Fatal(err)
	}
	if follower != nil {
		follower.Stop()
	}
	if durable != nil {
		if err := durable.Close(); err != nil {
			log.Printf("closing WAL: %v", err)
		}
	}
	stats := st.Stats()
	log.Printf("final: %d objects, %d raw points, %d retained (%.1f%% compression)",
		stats.Objects, stats.RawPoints, stats.RetainedPoints, stats.CompressionPct)
}
