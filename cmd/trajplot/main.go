// Command trajplot renders trajectory files as standalone SVG track maps,
// optionally overlaying a compressed version of each track to visualize
// what a compression setting discards.
//
// Usage:
//
//	trajplot [flags] [file]
//
//	-from string    input format: csv or bin (default "csv")
//	-o string       output SVG path (default "tracks.svg")
//	-alg string     also draw each track compressed with this spec
//	                (e.g. tdtr:30); empty = original tracks only
//	-heatmap float  render an object-seconds density heatmap with the given
//	                cell size in metres instead of track lines (0 = off)
//	-title string   chart title (default "trajectories")
//
// Reads from stdin when no file is given.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	trajcomp "repro"
	"repro/internal/plot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trajplot: ")

	var (
		from     = flag.String("from", "csv", "input format: csv or bin")
		out      = flag.String("o", "tracks.svg", "output SVG path")
		algSpec  = flag.String("alg", "", "overlay compression spec (e.g. tdtr:30)")
		heatCell = flag.Float64("heatmap", 0, "density heatmap cell size in metres (0 = track lines)")
		title    = flag.String("title", "trajectories", "chart title")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	var named []trajcomp.Named
	var err error
	switch *from {
	case "csv":
		named, err = trajcomp.DecodeCSV(r)
	case "bin":
		named, err = trajcomp.DecodeFile(r)
	default:
		log.Fatalf("unknown input format %q", *from)
	}
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if *heatCell > 0 {
		err = renderHeatmap(f, named, *heatCell, *title)
	} else {
		err = renderTracks(f, named, *algSpec, *title)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

func renderTracks(f *os.File, named []trajcomp.Named, algSpec, title string) error {
	m := plot.TrackMap{Title: title}
	for _, n := range named {
		m.Tracks = append(m.Tracks, plot.Track{Name: n.ID, Traj: n.Traj})
	}
	if algSpec != "" {
		alg, err := trajcomp.ParseAlgorithm(algSpec)
		if err != nil {
			return err
		}
		for _, n := range named {
			kept := alg.Compress(n.Traj)
			m.Tracks = append(m.Tracks, plot.Track{
				Name: fmt.Sprintf("%s [%s: %d→%d]", n.ID, alg.Name(), n.Traj.Len(), kept.Len()),
				Traj: kept,
			})
		}
	}
	return m.RenderSVG(f)
}

func renderHeatmap(f *os.File, named []trajcomp.Named, cell float64, title string) error {
	trajs := make([]trajcomp.Trajectory, 0, len(named))
	t0, t1 := 0.0, 0.0
	for _, n := range named {
		if n.Traj.Len() < 2 {
			continue
		}
		trajs = append(trajs, n.Traj)
		if n.Traj.StartTime() < t0 {
			t0 = n.Traj.StartTime()
		}
		if n.Traj.EndTime() > t1 {
			t1 = n.Traj.EndTime()
		}
	}
	dm, err := trajcomp.Density(trajs, cell, t0, t1, 10)
	if err != nil {
		return err
	}
	h := plot.Heatmap{Title: title, Cell: cell}
	for key, w := range dm.Weights {
		h.Cells = append(h.Cells, plot.HeatCell{CX: key[0], CY: key[1], Weight: w})
	}
	return h.RenderSVG(f)
}
