// Command trajreplay feeds a recorded trajectory file into a running
// tracking server (cmd/trajserver) as a live position stream, interleaving
// the objects' fixes in timestamp order and optionally pacing them against
// the wall clock.
//
// Usage:
//
//	trajreplay [flags] [file]
//
//	-addr string   server address (default "127.0.0.1:7007")
//	-from string   input format: csv or bin (default "csv")
//	-speed float   replay speed factor: 1 = real time, 60 = minute/second,
//	               0 = as fast as possible (default 0)
//
// Reads from stdin when no file is given.
package main

import (
	"flag"
	"io"
	"log"
	"os"
	"sort"
	"time"

	trajcomp "repro"
	"repro/internal/server"
	"repro/internal/trajectory"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trajreplay: ")

	var (
		addr  = flag.String("addr", "127.0.0.1:7007", "server address")
		from  = flag.String("from", "csv", "input format: csv or bin")
		speed = flag.Float64("speed", 0, "replay speed factor (0 = no pacing)")
	)
	flag.Parse()
	if *speed < 0 {
		log.Fatal("-speed must be ≥ 0")
	}

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	var named []trajcomp.Named
	var err error
	switch *from {
	case "csv":
		named, err = trajcomp.DecodeCSV(r)
	case "bin":
		named, err = trajcomp.DecodeFile(r)
	default:
		log.Fatalf("unknown input format %q", *from)
	}
	if err != nil {
		log.Fatal(err)
	}

	// Merge all fixes into one timestamp-ordered feed.
	type fix struct {
		id string
		s  trajectory.Sample
	}
	var feed []fix
	for _, n := range named {
		for _, s := range n.Traj {
			feed = append(feed, fix{id: n.ID, s: s})
		}
	}
	sort.SliceStable(feed, func(i, j int) bool { return feed[i].s.T < feed[j].s.T })
	if len(feed) == 0 {
		log.Fatal("no fixes in input")
	}

	c, err := server.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	t0 := feed[0].s.T
	sent := 0
	for _, f := range feed {
		if *speed > 0 {
			due := start.Add(time.Duration((f.s.T - t0) / *speed * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		if err := c.Append(f.id, f.s); err != nil {
			log.Fatalf("after %d fixes: %v", sent, err)
		}
		sent++
	}
	log.Printf("replayed %d fixes from %d objects in %s", sent, len(named), time.Since(start).Round(time.Millisecond))
}
