package main

import (
	"fmt"
	"log"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trajectory"
)

// parseShardCounts parses the -shards spec ("1,2,4,8") into shard counts.
func parseShardCounts(spec string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("trajload: bad -shards entry %q (want positive integers)", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("trajload: -shards %q selects no shard counts", spec)
	}
	return counts, nil
}

// sweepBuckets is the latency scale for in-process appends: 100 ns to
// 10 ms. Direct store appends are microsecond-scale, well below the TCP
// round-trip scale of metrics.DefBuckets.
func sweepBuckets() []float64 {
	return []float64{
		1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
	}
}

// runShardSweep replays the same seeded fleet directly into a fresh
// in-process store per shard count and measures the append path under
// concurrency: workers goroutines append their partition of the fleet as
// fast as possible (no on-ingest compression, so the shard lock + index
// insert dominate). The 1-shard run, when present, is the global-lock
// baseline the speedups are reported against.
func runShardSweep(counts []int, workers, objects, points int, seed int64, spread, duration float64, batch int) shardSweep {
	if workers <= 0 {
		workers = 16
	}
	feeds := buildFeeds(seed, objects, workers, points, spread, duration)
	total := 0
	for _, f := range feeds {
		total += len(f)
	}
	sweep := shardSweep{Workers: len(feeds), Points: total, CPUs: runtime.NumCPU()}
	log.Printf("shard sweep: %d points, %d workers, shard counts %v", total, len(feeds), counts)

	for _, n := range counts {
		run := sweepOnce(n, feeds, total)
		if batch > 1 {
			sweepBatchOnce(n, feeds, total, batch, &run)
		}
		sweep.Runs = append(sweep.Runs, run)
		log.Printf("shard sweep: %2d shards: %.0f appends/s, p50=%s p99=%s",
			run.Shards, run.ThroughputPerSec,
			time.Duration(run.AppendLatency.P50*float64(time.Second)).Round(100*time.Nanosecond),
			time.Duration(run.AppendLatency.P99*float64(time.Second)).Round(100*time.Nanosecond))
		if run.BatchAppendLatency != nil {
			log.Printf("shard sweep: %2d shards: batched %.0f appends/s, batch p50=%s",
				run.Shards, run.BatchThroughputPerSec,
				time.Duration(run.BatchAppendLatency.P50*float64(time.Second)).Round(100*time.Nanosecond))
		}
	}

	// Speedups versus the 1-shard (single global lock) run, when swept.
	for _, r := range sweep.Runs {
		if r.Shards == 1 && r.ThroughputPerSec > 0 {
			base := r.ThroughputPerSec
			for i := range sweep.Runs {
				sweep.Runs[i].SpeedupVs1Shard = sweep.Runs[i].ThroughputPerSec / base
			}
			break
		}
	}
	return sweep
}

// sweepOnce measures one shard count: a fresh store, a start barrier, and
// one goroutine per feed appending its objects' fixes in timestamp order.
func sweepOnce(shards int, feeds [][]fix, total int) shardRun {
	reg := metrics.NewRegistry()
	lat := reg.Histogram("sweep_append_seconds", sweepBuckets())
	st := store.New(store.Options{Shards: shards, Metrics: reg})

	startGate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, len(feeds))
	for _, feed := range feeds {
		wg.Add(1)
		go func(feed []fix) {
			defer wg.Done()
			<-startGate
			for i, f := range feed {
				t0 := time.Now()
				if err := st.Append(f.id, f.s); err != nil {
					errs <- fmt.Errorf("shard sweep: after %d appends: %w", i, err)
					return
				}
				lat.ObserveSince(t0)
			}
			errs <- nil
		}(feed)
	}
	start := time.Now()
	close(startGate)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	run := shardRun{Shards: st.NumShards(), ElapsedSeconds: elapsed.Seconds()}
	if elapsed > 0 {
		run.ThroughputPerSec = float64(total) / elapsed.Seconds()
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "sweep_append_seconds" && m.Count > 0 {
			run.AppendLatency = latencySummary{
				Mean: m.Sum / float64(m.Count),
				P50:  m.Quantile(0.50),
				P90:  m.Quantile(0.90),
				P99:  m.Quantile(0.99),
				Max:  m.Max,
			}
		}
	}
	return run
}

// sweepBatchOnce repeats the measurement with store.AppendBatch: each worker
// splits its feed into per-object queues and appends them in chunks of
// batch, round-robin across its objects, into a fresh store. Results land
// in run's batch fields.
func sweepBatchOnce(shards int, feeds [][]fix, total, batch int, run *shardRun) {
	reg := metrics.NewRegistry()
	lat := reg.Histogram("sweep_batch_seconds", sweepBuckets())
	st := store.New(store.Options{Shards: shards, Metrics: reg})

	startGate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, len(feeds))
	for _, feed := range feeds {
		wg.Add(1)
		go func(feed []fix) {
			defer wg.Done()
			var order []string
			queues := make(map[string][]trajectory.Sample)
			for _, f := range feed {
				if _, ok := queues[f.id]; !ok {
					order = append(order, f.id)
				}
				queues[f.id] = append(queues[f.id], f.s)
			}
			<-startGate
			for remaining := len(feed); remaining > 0; {
				for _, id := range order {
					q := queues[id]
					if len(q) == 0 {
						continue
					}
					n := batch
					if n > len(q) {
						n = len(q)
					}
					t0 := time.Now()
					applied, err := st.AppendBatch(id, q[:n])
					if err != nil {
						errs <- fmt.Errorf("shard sweep: batched append (applied %d of %d): %w", applied, n, err)
						return
					}
					lat.ObserveSince(t0)
					queues[id] = q[n:]
					remaining -= n
				}
			}
			errs <- nil
		}(feed)
	}
	start := time.Now()
	close(startGate)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	if elapsed > 0 {
		run.BatchThroughputPerSec = float64(total) / elapsed.Seconds()
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "sweep_batch_seconds" && m.Count > 0 {
			run.BatchAppendLatency = &latencySummary{
				Mean: m.Sum / float64(m.Count),
				P50:  m.Quantile(0.50),
				P90:  m.Quantile(0.90),
				P99:  m.Quantile(0.99),
				Max:  m.Max,
			}
		}
	}
}
