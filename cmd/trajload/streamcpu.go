package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/compress"
	"repro/internal/gpsgen"
	"repro/internal/stream"
)

// The stream-CPU phase measures the per-point CPU budget of every online
// compression algorithm at one fixed error tolerance, in-process (no TCP,
// no store): the cost of Push itself, which is what bounds ingest when the
// server runs with -compress. The one-pass algorithms (operb, ciseds,
// cisedw) exist to win this benchmark — they decide each point in O(1)
// where the opening-window engines re-scan their window — so the report
// records ns/point per algorithm and the compare gate fails CI when any
// algorithm regresses beyond the noise threshold.

// streamAlgoCPU is one algorithm's measurement.
type streamAlgoCPU struct {
	Spec           string  `json:"spec"`
	NsPerPoint     float64 `json:"ns_per_point"`
	CompressionPct float64 `json:"compression_pct"`
}

// streamCPURun is the report's "stream_cpu" section.
type streamCPURun struct {
	EpsMetres float64         `json:"eps_metres"`
	Points    int             `json:"points"`
	Algos     []streamAlgoCPU `json:"algorithms"`
}

// streamCPUSpecs enumerates the measured algorithms at tolerance eps. The
// OPW-SP speed threshold is the bench.sh default (15 m/s), matching the
// paper's spatiotemporal configuration.
func streamCPUSpecs(eps float64) []string {
	e := fmt.Sprintf("%g", eps)
	return []string{
		"nopw:" + e,
		"opwtr:" + e,
		"opwsp:" + e + ":15",
		"dr:" + e,
		"operb:" + e,
		"ciseds:" + e,
		"cisedw:" + e,
	}
}

// runStreamCPU replays the seeded fleet through each algorithm
// (best-of-three, min ns/point: the least-noise estimator on shared
// runners) and reports per-point cost plus the achieved compression.
func runStreamCPU(seed int64, objects, points int, spread, duration, eps float64) streamCPURun {
	g := gpsgen.New(seed, gpsgen.DefaultConfig())
	trips := g.Fleet(objects, spread, duration)
	perObj := points / objects
	if perObj < 2 {
		perObj = 2
	}
	total := 0
	for i, trip := range trips {
		if len(trip) > perObj {
			trips[i] = trip[:perObj]
		}
		total += len(trips[i])
	}

	run := streamCPURun{EpsMetres: eps, Points: total}
	for _, spec := range streamCPUSpecs(eps) {
		factory, err := stream.ParseFactory(spec)
		if err != nil {
			log.Fatalf("stream-cpu: %v", err)
		}
		best := 0.0
		kept := 0
		for rep := 0; rep < 3; rep++ {
			kept = 0
			start := time.Now()
			for _, trip := range trips {
				c := factory()
				for _, s := range trip {
					out, err := c.Push(s)
					if err != nil {
						log.Fatalf("stream-cpu: %s: %v", spec, err)
					}
					kept += len(out)
				}
				kept += len(c.Flush())
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(total)
			if rep == 0 || ns < best {
				best = ns
			}
		}
		run.Algos = append(run.Algos, streamAlgoCPU{
			Spec:           spec,
			NsPerPoint:     best,
			CompressionPct: compress.Rate(total, kept),
		})
	}

	logStreamCPU(run)
	return run
}

// logStreamCPU prints the per-algorithm table and the head-to-head verdict
// the benchmark exists for: does a one-pass algorithm beat OPW-SP?
func logStreamCPU(run streamCPURun) {
	var opwsp, bestOnePass float64
	bestName := ""
	for _, a := range run.Algos {
		log.Printf("stream-cpu: %-14s %8.1f ns/point  %5.1f%% compression", a.Spec, a.NsPerPoint, a.CompressionPct)
		switch {
		case strings.HasPrefix(a.Spec, "opwsp:"):
			opwsp = a.NsPerPoint
		case strings.HasPrefix(a.Spec, "operb:"), strings.HasPrefix(a.Spec, "ciseds:"), strings.HasPrefix(a.Spec, "cisedw:"):
			if bestName == "" || a.NsPerPoint < bestOnePass {
				bestOnePass, bestName = a.NsPerPoint, a.Spec
			}
		}
	}
	if opwsp > 0 && bestName != "" {
		if bestOnePass < opwsp {
			log.Printf("stream-cpu: one-pass %s beats opwsp: %.1f vs %.1f ns/point (%.1fx)",
				bestName, bestOnePass, opwsp, opwsp/bestOnePass)
		} else {
			log.Printf("stream-cpu: WARNING: no one-pass algorithm beat opwsp (%.1f vs %.1f ns/point)",
				bestOnePass, opwsp)
		}
	}
}

// streamCPUByName indexes a report's stream-CPU section by spec, empty when
// the report carries none — the compare gate joins old and new on spec.
func streamCPUByName(rep report) map[string]streamAlgoCPU {
	out := make(map[string]streamAlgoCPU)
	if rep.StreamCPU == nil {
		return out
	}
	for _, a := range rep.StreamCPU.Algos {
		out[a.Spec] = a
	}
	return out
}
