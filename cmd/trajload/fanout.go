package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trajectory"
)

// fanoutRun is the SUBSCRIBE fan-out phase of the report: N wildcard
// subscribers counting delivered lines while one publisher streams fresh
// appends, measuring how the server's broadcast bus scales and what the
// slow-consumer policy drops.
type fanoutRun struct {
	Subscribers     int            `json:"subscribers"`
	Policy          string         `json:"policy"`
	PointsPublished int            `json:"points_published"`
	LinesDelivered  int64          `json:"lines_delivered"`
	LinesDropped    int64          `json:"lines_dropped"`
	ElapsedSeconds  float64        `json:"elapsed_seconds"`
	PublishPerSec   float64        `json:"publish_points_per_sec"`
	DeliveryLatency latencySummary `json:"delivery_latency_seconds"`
}

// fanoutObjects is the number of distinct publishing objects: enough to
// spread across the bus shards while keeping per-object feeds long.
const fanoutObjects = 16

// runFanout subscribes subs wildcard feeds with the given slow-consumer
// policy, publishes points fresh appends through one client, and measures
// delivery counts and latency. Sample timestamps encode wall-clock seconds
// since a local epoch, so delivery latency is (receive instant − publish
// instant) with no clock skew: publisher and subscribers share one process.
func runFanout(addr string, subs, points int, policy string) fanoutRun {
	log.Printf("fan-out: %d subscribers (%s), %d published points", subs, policy, points)
	reg := metrics.NewRegistry()
	lat := reg.Histogram("fanout_delivery_seconds", nil)
	epoch := time.Now()

	var delivered atomic.Int64
	var wg sync.WaitGroup
	conns := make([]net.Conn, 0, subs)
	for i := 0; i < subs; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			log.Fatalf("fan-out subscriber %d: %v", i, err)
		}
		conns = append(conns, conn)
		fmt.Fprintf(conn, "SUBSCRIBE * %s\n", policy)
		r := bufio.NewReader(conn)
		resp, err := r.ReadString('\n')
		if err != nil || !strings.HasPrefix(resp, "OK subscribed") {
			log.Fatalf("fan-out subscriber %d: %q (%v)", i, strings.TrimSpace(resp), err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				line, err := r.ReadString('\n')
				if err != nil {
					return
				}
				// POS <id> <t> <x> <y>: t carries the publish instant.
				f := strings.Fields(line)
				if len(f) != 5 || f[0] != "POS" {
					continue
				}
				t, err := strconv.ParseFloat(f[2], 64)
				if err != nil {
					continue
				}
				lat.Observe(time.Since(epoch).Seconds() - t)
				delivered.Add(1)
			}
		}()
	}

	pub, err := server.DialOptions(addr, server.ClientOptions{
		IOTimeout: 30 * time.Second,
		Metrics:   metrics.NewRegistry(),
	})
	if err != nil {
		log.Fatalf("fan-out publisher: %v", err)
	}
	defer pub.Close()

	start := time.Now()
	prev := make([]float64, fanoutObjects)
	for i := 0; i < points; i++ {
		obj := i % fanoutObjects
		// Wall-clock timestamp, nudged to stay strictly increasing per
		// object (the store and any feed compressors require it).
		t := time.Since(epoch).Seconds()
		if t <= prev[obj] {
			t = prev[obj] + 1e-6
		}
		prev[obj] = t
		id := fmt.Sprintf("fan-%02d", obj)
		if err := pub.Append(id, trajectory.S(t, float64(i%1000), float64(obj))); err != nil {
			log.Fatalf("fan-out publish %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)

	// Let in-flight ring backlogs drain before tearing the feeds down.
	time.Sleep(300 * time.Millisecond)
	for _, conn := range conns {
		_ = conn.Close() // teardown: the feed is already measured
	}
	wg.Wait()

	run := fanoutRun{
		Subscribers:     subs,
		Policy:          policy,
		PointsPublished: points,
		LinesDelivered:  delivered.Load(),
		ElapsedSeconds:  elapsed.Seconds(),
	}
	run.LinesDropped = int64(subs)*int64(points) - run.LinesDelivered
	if run.LinesDropped < 0 {
		run.LinesDropped = 0
	}
	if elapsed > 0 {
		run.PublishPerSec = float64(points) / elapsed.Seconds()
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "fanout_delivery_seconds" && m.Count > 0 {
			run.DeliveryLatency = latencySummary{
				Mean: m.Sum / float64(m.Count),
				P50:  m.Quantile(0.50),
				P90:  m.Quantile(0.90),
				P99:  m.Quantile(0.99),
				Max:  m.Max,
			}
		}
	}
	log.Printf("fan-out: %d/%d lines delivered (%d dropped), publish %.0f pts/s, delivery p50=%s",
		run.LinesDelivered, int64(subs)*int64(points), run.LinesDropped, run.PublishPerSec,
		time.Duration(run.DeliveryLatency.P50*float64(time.Second)).Round(time.Microsecond))
	return run
}
