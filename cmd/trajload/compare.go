package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// loadReport reads a report written by this command.
func loadReport(path string) (report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareRow is one metric's old-versus-new comparison. higherBetter
// selects the regression direction: throughput regresses downward, latency
// upward.
type compareRow struct {
	name         string
	old, new     float64
	higherBetter bool
}

// regressed reports whether new is worse than old by more than tolPct
// percent. Rows with a zero/absent old value never regress (no baseline).
func (r compareRow) regressed(tolPct float64) bool {
	if r.old <= 0 {
		return false
	}
	if r.higherBetter {
		return r.new < r.old*(1-tolPct/100)
	}
	return r.new > r.old*(1+tolPct/100)
}

// deltaPct is the signed relative change from old to new in percent.
func (r compareRow) deltaPct() float64 {
	if r.old <= 0 {
		return 0
	}
	return 100 * (r.new - r.old) / r.old
}

// batchThroughput extracts the batched ingest throughput, or 0 when the
// report carries no batch phase.
func batchThroughput(rep report) float64 {
	if rep.Batch == nil {
		return 0
	}
	return rep.Batch.ThroughputPerSec
}

// sweepThroughput extracts the sweep throughput at the given shard count,
// or 0 when the report carries no such run.
func sweepThroughput(rep report, shards int) float64 {
	if rep.ShardSweep == nil {
		return 0
	}
	for _, r := range rep.ShardSweep.Runs {
		if r.Shards == shards {
			return r.ThroughputPerSec
		}
	}
	return 0
}

// runCompare loads two reports and fails (exit code 1, table on stdout)
// when the new one regresses by more than tolPct percent on append
// throughput or p50 append latency; the 8-shard sweep throughput, the
// hot/cold query p50 latencies, the cold-tier footprint ratio, the
// per-point stream-CPU cost of each online compression algorithm, and the
// SUBSCRIBE fan-out publish throughput and delivery p50 latency are
// compared too when both reports carry the relevant sections. This is the
// CI bench-regression gate (scripts/bench_compare.sh).
func runCompare(oldPath, newPath string, tolPct float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajload:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajload:", err)
		return 2
	}

	rows := []compareRow{
		{"append_throughput_pts_per_sec", oldRep.ThroughputPerSec, newRep.ThroughputPerSec, true},
		{"append_p50_latency_seconds", oldRep.AppendLatency.P50, newRep.AppendLatency.P50, false},
	}
	if o, n := batchThroughput(oldRep), batchThroughput(newRep); o > 0 && n > 0 {
		rows = append(rows, compareRow{"batch_throughput_pts_per_sec", o, n, true})
		rows = append(rows, compareRow{"batch_p50_latency_seconds", oldRep.Batch.BatchLatency.P50, newRep.Batch.BatchLatency.P50, false})
	}
	if o, n := sweepThroughput(oldRep, 8), sweepThroughput(newRep, 8); o > 0 && n > 0 {
		rows = append(rows, compareRow{"sweep_8_shards_pts_per_sec", o, n, true})
	}
	if oldRep.Query != nil && newRep.Query != nil {
		rows = append(rows,
			compareRow{"query_hot_range_p50_seconds", oldRep.Query.Hot.RangeLatency.P50, newRep.Query.Hot.RangeLatency.P50, false},
			compareRow{"query_cold_range_p50_seconds", oldRep.Query.Cold.RangeLatency.P50, newRep.Query.Cold.RangeLatency.P50, false},
			compareRow{"query_cold_nearest_p50_seconds", oldRep.Query.Cold.NearestLatency.P50, newRep.Query.Cold.NearestLatency.P50, false},
			compareRow{"cold_footprint_ratio", oldRep.Query.FootprintRatio, newRep.Query.FootprintRatio, true},
		)
	}
	if oldRep.Fanout != nil && newRep.Fanout != nil {
		rows = append(rows,
			compareRow{"fanout_publish_pts_per_sec", oldRep.Fanout.PublishPerSec, newRep.Fanout.PublishPerSec, true},
			compareRow{"fanout_delivery_p50_seconds", oldRep.Fanout.DeliveryLatency.P50, newRep.Fanout.DeliveryLatency.P50, false},
		)
	}
	if oldRep.StreamCPU != nil && newRep.StreamCPU != nil {
		oldCPU, newCPU := streamCPUByName(oldRep), streamCPUByName(newRep)
		for _, spec := range streamCPUSpecs(oldRep.StreamCPU.EpsMetres) {
			o, okOld := oldCPU[spec]
			n, okNew := newCPU[spec]
			if okOld && okNew {
				rows = append(rows, compareRow{"stream_cpu_ns[" + spec + "]", o.NsPerPoint, n.NsPerPoint, false})
			}
		}
	}

	fmt.Printf("bench compare: %s (old) vs %s (new), tolerance %.0f%%\n", oldPath, newPath, tolPct)
	fmt.Printf("%-32s %14s %14s %9s  %s\n", "metric", "old", "new", "delta", "verdict")
	failed := 0
	for _, r := range rows {
		verdict := "ok"
		switch {
		case r.old <= 0:
			verdict = "no baseline"
		case r.regressed(tolPct):
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("%-32s %14.6g %14.6g %+8.1f%%  %s\n", r.name, r.old, r.new, r.deltaPct(), verdict)
	}
	if failed > 0 {
		fmt.Printf("%d metric(s) regressed more than %.0f%% — bless a new baseline by re-running scripts/bench.sh and committing BENCH_load.json if this is expected\n", failed, tolPct)
		return 1
	}
	fmt.Println("no regressions beyond tolerance")
	return 0
}
