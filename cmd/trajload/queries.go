package main

import (
	"log"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/server"
)

// rawSampleBytes is the in-memory footprint of one retained hot sample
// (t, x, y as float64), the baseline the cold tier's compression is
// measured against. Mirrors the seal package's accounting.
const rawSampleBytes = 24

// tierQueryStats is one tier's query-side measurement: latency quantiles
// for QUERYRANGE and NEAREST plus the total points the range queries
// returned (a sanity check that hot and cold answer the same workload).
type tierQueryStats struct {
	RangeLatency        latencySummary `json:"range_latency_seconds"`
	NearestLatency      latencySummary `json:"nearest_latency_seconds"`
	RangePointsReturned int            `json:"range_points_returned"`
}

// queryRun is the report's "query" section: the same seeded query workload
// measured against the hot tier, then again after SEAL moved every sample
// into the cold quantized tier, plus the cold tier's footprint versus the
// retained-point equivalent.
type queryRun struct {
	Queries int            `json:"queries"`
	Hot     tierQueryStats `json:"hot"`
	Cold    tierQueryStats `json:"cold"`

	SealedPoints            int     `json:"sealed_points"`
	SealedBlocks            int     `json:"sealed_blocks"`
	SealedBytes             int64   `json:"sealed_bytes"`
	RetainedEquivalentBytes int64   `json:"retained_equivalent_bytes"`
	FootprintRatio          float64 `json:"footprint_ratio"` // retained-equivalent / sealed, higher is better

	BlocksDecoded float64 `json:"blocks_decoded_total"`
	BlocksPruned  float64 `json:"blocks_pruned_total"`
}

// queryCase is one spatiotemporal probe: a range window anchored on a real
// workload fix (so queries hit data, not empty space) and a kNN instant at
// its centre.
type queryCase struct {
	rect   geo.Rect
	t0, t1 float64
	center geo.Point
	at     float64
}

// runQueryLoad measures the query workload: n range + kNN probes against
// the hot tier, one SEAL moving the whole history cold, and the same n
// probes against the sealed tier. The probes are derived from the same
// seeded fleet as the load phase, so the workload is reproducible.
func runQueryLoad(addr string, seed int64, objects, clients, points, n int, spread, duration float64) queryRun {
	feeds := buildFeeds(seed, objects, clients, points, spread, duration)
	var all []fix
	tmax := 0.0
	for _, feed := range feeds {
		all = append(all, feed...)
		if last := feed[len(feed)-1].s.T; last > tmax {
			tmax = last
		}
	}
	if len(all) == 0 {
		log.Fatal("query phase: empty workload")
	}

	rng := rand.New(rand.NewSource(seed + 7))
	edge := spread / 8
	if edge <= 0 {
		edge = 500
	}
	halfWin := duration / 8
	if halfWin <= 0 {
		halfWin = 60
	}
	cases := make([]queryCase, n)
	for i := range cases {
		f := all[rng.Intn(len(all))]
		c := f.s.Pos()
		cases[i] = queryCase{
			rect:   geo.Rect{Min: geo.Pt(c.X-edge/2, c.Y-edge/2), Max: geo.Pt(c.X+edge/2, c.Y+edge/2)},
			t0:     f.s.T - halfWin,
			t1:     f.s.T + halfWin,
			center: c,
			at:     f.s.T,
		}
	}

	c, err := server.DialOptions(addr, server.ClientOptions{
		IOTimeout: 30 * time.Second,
		Metrics:   metrics.NewRegistry(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	run := queryRun{Queries: n}
	run.Hot = measureTier(c, cases)
	log.Printf("query hot: range p50=%s, nearest p50=%s, %d points returned",
		time.Duration(run.Hot.RangeLatency.P50*float64(time.Second)).Round(time.Microsecond),
		time.Duration(run.Hot.NearestLatency.P50*float64(time.Second)).Round(time.Microsecond),
		run.Hot.RangePointsReturned)

	// Move the entire history cold: every probe now answers from sealed
	// quantized blocks via the R-tree.
	if _, err := c.Seal(tmax + 1); err != nil {
		log.Fatalf("SEAL: %v (run trajserver with -seal-eps to bench the cold tier)", err)
	}
	run.Cold = measureTier(c, cases)

	stats, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	run.SealedPoints = stats.SealedPoints
	run.SealedBlocks = stats.SealedBlocks
	run.SealedBytes = stats.SealedBytes
	run.RetainedEquivalentBytes = int64(stats.SealedPoints) * rawSampleBytes
	if run.SealedBytes > 0 {
		run.FootprintRatio = float64(run.RetainedEquivalentBytes) / float64(run.SealedBytes)
	}
	text, err := c.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	parsed := parsePrometheus(text)
	run.BlocksDecoded = parsed["seal_blocks_decoded_total"]
	run.BlocksPruned = parsed["seal_blocks_pruned_total"]

	log.Printf("query cold: range p50=%s, nearest p50=%s, %d points returned; footprint %d → %d bytes (%.1fx)",
		time.Duration(run.Cold.RangeLatency.P50*float64(time.Second)).Round(time.Microsecond),
		time.Duration(run.Cold.NearestLatency.P50*float64(time.Second)).Round(time.Microsecond),
		run.Cold.RangePointsReturned,
		run.RetainedEquivalentBytes, run.SealedBytes, run.FootprintRatio)
	return run
}

// measureTier runs every probe once — QUERYRANGE then NEAREST — collecting
// per-command latency histograms in a private registry.
func measureTier(c *server.Client, cases []queryCase) tierQueryStats {
	reg := metrics.NewRegistry()
	rangeLat := reg.Histogram("q_range_seconds", nil)
	nearLat := reg.Histogram("q_nearest_seconds", nil)
	out := tierQueryStats{}
	for _, q := range cases {
		t0 := time.Now()
		pts, err := c.QueryRange(q.rect, q.t0, q.t1)
		if err != nil {
			log.Fatalf("QUERYRANGE: %v", err)
		}
		rangeLat.ObserveSince(t0)
		out.RangePointsReturned += len(pts)

		t0 = time.Now()
		if _, err := c.Nearest(q.center, q.at, 4); err != nil {
			log.Fatalf("NEAREST: %v", err)
		}
		nearLat.ObserveSince(t0)
	}
	for _, m := range reg.Snapshot() {
		if m.Count == 0 {
			continue
		}
		s := latencySummary{
			Mean: m.Sum / float64(m.Count),
			P50:  m.Quantile(0.50),
			P90:  m.Quantile(0.90),
			P99:  m.Quantile(0.99),
			Max:  m.Max,
		}
		switch m.Name {
		case "q_range_seconds":
			out.RangeLatency = s
		case "q_nearest_seconds":
			out.NearestLatency = s
		}
	}
	return out
}
