// Command trajload drives a running tracking server (cmd/trajserver) with a
// deterministic synthetic GPS workload and measures what the paper's
// transmission scenario cares about: ingest throughput, append round-trip
// latency, and the live compression ratio the server achieves on the stream.
//
// It replays a seeded gpsgen fleet over N concurrent client connections
// (objects are partitioned across clients so each object's fixes stay in
// timestamp order), then reads the server's own METRICS/STATS view back and
// writes a JSON report. When the server also exposes the HTTP /metrics
// endpoint (trajserver -http), pass -http to cross-check that both
// expositions agree.
//
// Usage:
//
//	trajload [flags]
//	trajload -compare old.json new.json
//
//	-addr string     server address (default "127.0.0.1:7007"; "" skips the
//	                 TCP load phase, e.g. for a sweep-only run)
//	-http string     server observability address for the /metrics
//	                 cross-check ("" = skip)
//	-clients int     concurrent client connections (default 4)
//	-objects int     simulated vehicles (default 16)
//	-points int      total point budget across all objects (default 20000)
//	-rate float      per-client appends/second, 0 = as fast as possible
//	-seed int        workload seed (default 1)
//	-spread float    fleet depot area edge in metres (default 20000)
//	-duration float  per-vehicle trip duration in seconds (default 1800)
//	-batch int       after the single-append phase, replay the same workload
//	                 again as MAPPEND batches of this size against fresh
//	                 object IDs and report batched throughput and per-batch
//	                 latency plus the speedup over single appends (0 = skip)
//	-queries int     after the ingest phases, run this many seeded
//	                 QUERYRANGE + NEAREST probes against the hot tier, SEAL
//	                 the whole history into the cold quantized tier, and run
//	                 the same probes again; the report's "query" section
//	                 carries both tiers' latency quantiles plus the cold
//	                 tier's footprint ratio versus retained points. Requires
//	                 the server to run with -seal-eps (0 = skip)
//	-subs int        SUBSCRIBE fan-out phase: this many wildcard subscriber
//	                 connections count delivered lines and delivery latency
//	                 while a publisher streams -subs-points fresh appends;
//	                 the report's "fanout" section carries delivered/dropped
//	                 counts and delivery-latency quantiles. Gated by
//	                 -compare like the other sections (0 = skip)
//	-subs-points int points published during the fan-out phase
//	                 (default 2000)
//	-subs-policy string
//	                 slow-consumer policy the fan-out subscribers request:
//	                 drop-newest, drop-oldest, or disconnect
//	                 (default "drop-oldest")
//	-stream-cpu float  per-point CPU budget benchmark: replay the seeded
//	                 fleet in-process through every online compression
//	                 algorithm at this error tolerance (metres) and record
//	                 ns/point + compression per algorithm in the report's
//	                 "stream_cpu" section (best of three runs; no TCP, no
//	                 store — this isolates the compressor Push cost that
//	                 bounds ingest under trajserver -compress). Gated by
//	                 -compare like the other sections (0 = skip)
//	-out string      JSON report path (default "BENCH_load.json")
//
// # Shard sweep
//
//	-shards string        comma-separated store shard counts, e.g. "1,2,4,8";
//	                      non-empty runs the in-process shard sweep and adds
//	                      a "shard_sweep" section to the report
//	-sweep-workers int    concurrent appenders per sweep run (default 16)
//	-sweep-points int     point budget per sweep run (default: -points)
//
// The sweep bypasses TCP entirely: it replays the same seeded fleet
// directly into a fresh in-process store per shard count (no on-ingest
// compression, so the store's lock + index hot path dominates), measuring
// append throughput and latency quantiles per shard count plus the speedup
// versus the 1-shard (global lock) configuration. This isolates the store's
// concurrency behaviour from protocol and syscall overhead; the win scales
// with real core count, so expect ~1× on a single-CPU container and the
// full effect on multicore hardware.
//
// # Regression compare
//
//	-compare             compare two reports: trajload -compare old.json new.json
//	-regress-pct float   tolerated regression percentage (default 20)
//
// Compare mode reads two reports written by this command and fails (exit 1,
// table on stderr) when the new report's append throughput or p50 append
// latency regresses by more than -regress-pct versus the old one; the shard
// sweep's 8-shard throughput is compared too when both reports carry one.
// Used by scripts/bench_compare.sh to gate perf regressions in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/gpsgen"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trajectory"
)

type fix struct {
	id string
	s  trajectory.Sample
}

// latencySummary is the append round-trip distribution, in seconds.
type latencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// report is the BENCH_load.json document.
type report struct {
	Config struct {
		Clients  int     `json:"clients"`
		Objects  int     `json:"objects"`
		Points   int     `json:"points"`
		Rate     float64 `json:"rate"`
		Seed     int64   `json:"seed"`
		Spread   float64 `json:"spread"`
		Duration float64 `json:"duration"`
	} `json:"config"`
	ElapsedSeconds     float64            `json:"elapsed_seconds"`
	PointsSent         int                `json:"points_sent"`
	ThroughputPerSec   float64            `json:"throughput_points_per_sec"`
	AppendLatency      latencySummary     `json:"append_latency_seconds"`
	Batch              *batchRun          `json:"batch,omitempty"`
	Query              *queryRun          `json:"query,omitempty"`
	Server             server.Stats       `json:"server_stats"`
	ServerMetrics      map[string]float64 `json:"server_metrics"`
	HTTPMetricsChecked bool               `json:"http_metrics_checked"`
	ShardSweep         *shardSweep        `json:"shard_sweep,omitempty"`
	StreamCPU          *streamCPURun      `json:"stream_cpu,omitempty"`
	Fanout             *fanoutRun         `json:"fanout,omitempty"`
}

// batchRun is the MAPPEND bulk-ingest phase of the report: the same seeded
// workload replayed as batches, against fresh object IDs.
type batchRun struct {
	BatchSize        int            `json:"batch_size"`
	PointsSent       int            `json:"points_sent"`
	ElapsedSeconds   float64        `json:"elapsed_seconds"`
	ThroughputPerSec float64        `json:"throughput_points_per_sec"`
	BatchLatency     latencySummary `json:"batch_latency_seconds"`
	SpeedupVsSingle  float64        `json:"speedup_vs_single,omitempty"`
}

// shardRun is one shard count's measurement in the sweep.
type shardRun struct {
	Shards           int            `json:"shards"`
	ElapsedSeconds   float64        `json:"elapsed_seconds"`
	ThroughputPerSec float64        `json:"throughput_points_per_sec"`
	AppendLatency    latencySummary `json:"append_latency_seconds"`
	SpeedupVs1Shard  float64        `json:"speedup_vs_1_shard,omitempty"`

	// Batched counterpart (store.AppendBatch), present when -batch > 1.
	BatchThroughputPerSec float64         `json:"batch_throughput_points_per_sec,omitempty"`
	BatchAppendLatency    *latencySummary `json:"batch_latency_seconds,omitempty"`
}

// shardSweep is the in-process store scaling section of the report.
type shardSweep struct {
	Workers int        `json:"workers"`
	Points  int        `json:"points"`
	CPUs    int        `json:"cpus"`
	Runs    []shardRun `json:"runs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("trajload: ")

	var (
		addr         = flag.String("addr", "127.0.0.1:7007", "server address (empty = skip the TCP load phase)")
		httpAddr     = flag.String("http", "", "server observability address for the /metrics cross-check (empty = skip)")
		clients      = flag.Int("clients", 4, "concurrent client connections")
		objects      = flag.Int("objects", 16, "simulated vehicles")
		points       = flag.Int("points", 20000, "total point budget across all objects")
		rate         = flag.Float64("rate", 0, "per-client appends/second (0 = as fast as possible)")
		seed         = flag.Int64("seed", 1, "workload seed")
		spread       = flag.Float64("spread", 20000, "fleet depot area edge in metres")
		duration     = flag.Float64("duration", 1800, "per-vehicle trip duration in seconds")
		batch        = flag.Int("batch", 0, "MAPPEND batch size for the batched ingest phase (0 = skip)")
		queries      = flag.Int("queries", 0, "QUERYRANGE+NEAREST probes per tier for the hot/cold query phase; needs trajserver -seal-eps (0 = skip)")
		out          = flag.String("out", "BENCH_load.json", "JSON report path")
		shardsFlag   = flag.String("shards", "", "comma-separated store shard counts for the in-process sweep (empty = skip)")
		sweepWorkers = flag.Int("sweep-workers", 16, "concurrent appenders per shard-sweep run")
		sweepPoints  = flag.Int("sweep-points", 0, "point budget per shard-sweep run (0 = -points)")
		subs         = flag.Int("subs", 0, "SUBSCRIBE fan-out phase: wildcard subscriber connections counting delivered lines and delivery latency (0 = skip)")
		subsPoints   = flag.Int("subs-points", 2000, "points published during the fan-out phase")
		subsPolicy   = flag.String("subs-policy", "drop-oldest", "slow-consumer policy the fan-out subscribers request: drop-newest, drop-oldest, or disconnect")
		streamCPU    = flag.Float64("stream-cpu", 0, "error tolerance in metres for the in-process per-point CPU benchmark over all online compression algorithms (0 = skip)")
		compare      = flag.Bool("compare", false, "compare two reports: trajload -compare old.json new.json")
		regressPct   = flag.Float64("regress-pct", 20, "tolerated regression percentage in compare mode")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("compare mode needs exactly two arguments: trajload -compare old.json new.json")
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *regressPct))
	}
	if *clients <= 0 || *objects <= 0 || *points <= 0 {
		log.Fatal("-clients, -objects and -points must be positive")
	}
	if *addr == "" && *shardsFlag == "" && *streamCPU <= 0 {
		log.Fatal("nothing to do: -addr is empty, no -shards sweep and no -stream-cpu benchmark requested")
	}

	if *batch < 0 || *batch == 1 {
		log.Fatal("-batch must be 0 (skip) or at least 2")
	}
	var rep report
	if *addr != "" {
		rep = runLoad(*addr, *httpAddr, *seed, *objects, *clients, *points, *spread, *duration, *rate)
		if *batch > 1 {
			b := runBatchLoad(*addr, *seed, *objects, *clients, *points, *spread, *duration, *batch)
			if rep.ThroughputPerSec > 0 {
				b.SpeedupVsSingle = b.ThroughputPerSec / rep.ThroughputPerSec
			}
			rep.Batch = &b
		}
		if *queries > 0 {
			q := runQueryLoad(*addr, *seed, *objects, *clients, *points, *queries, *spread, *duration)
			rep.Query = &q
		}
		if *subs > 0 {
			if *subsPoints <= 0 {
				log.Fatal("-subs-points must be positive when -subs is set")
			}
			f := runFanout(*addr, *subs, *subsPoints, *subsPolicy)
			rep.Fanout = &f
		}
	}
	rep.Config.Clients = *clients
	rep.Config.Objects = *objects
	rep.Config.Points = *points
	rep.Config.Rate = *rate
	rep.Config.Seed = *seed
	rep.Config.Spread = *spread
	rep.Config.Duration = *duration

	if *shardsFlag != "" {
		counts, err := parseShardCounts(*shardsFlag)
		if err != nil {
			log.Fatal(err)
		}
		budget := *sweepPoints
		if budget <= 0 {
			budget = *points
		}
		sweep := runShardSweep(counts, *sweepWorkers, *objects, budget, *seed, *spread, *duration, *batch)
		rep.ShardSweep = &sweep
	}

	if *streamCPU > 0 {
		cpu := runStreamCPU(*seed, *objects, *points, *spread, *duration, *streamCPU)
		rep.StreamCPU = &cpu
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("report in %s", *out)
}

// runLoad replays the seeded fleet against the live server over TCP and
// collects the report's load section.
func runLoad(addr, httpAddr string, seed int64, objects, clients, points int, spread, duration, rate float64) report {
	feeds := buildFeeds(seed, objects, clients, points, spread, duration)
	total := 0
	for _, f := range feeds {
		total += len(f)
	}
	log.Printf("replaying %d points from %d objects over %d clients", total, objects, len(feeds))

	// One shared histogram collects append round-trip latency across all
	// clients; a private registry keeps the load generator's own metrics out
	// of any server-side exposition.
	reg := metrics.NewRegistry()
	lat := reg.Histogram("load_append_seconds", nil)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, len(feeds))
	for _, feed := range feeds {
		wg.Add(1)
		go func(feed []fix) {
			defer wg.Done()
			errs <- runClient(addr, feed, rate, lat)
		}(feed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	rep := collect(addr, httpAddr, reg, total, elapsed)
	log.Printf("%d points in %s (%.0f pts/s), append p50=%s p99=%s",
		total, elapsed.Round(time.Millisecond), rep.ThroughputPerSec,
		time.Duration(rep.AppendLatency.P50*float64(time.Second)).Round(time.Microsecond),
		time.Duration(rep.AppendLatency.P99*float64(time.Second)).Round(time.Microsecond))
	return rep
}

// runBatchLoad replays the same seeded workload as MAPPEND batches against
// fresh object IDs (suffix "-mb": the single-append phase already owns the
// plain IDs and per-object timestamps must keep increasing). Each client
// drains its objects round-robin, one batch at a time, so the interleaving
// matches a fleet of vehicles uploading buffered fixes.
func runBatchLoad(addr string, seed int64, objects, clients, points int, spread, duration float64, batch int) batchRun {
	feeds := buildFeeds(seed, objects, clients, points, spread, duration)
	total := 0
	for _, f := range feeds {
		total += len(f)
	}
	log.Printf("batched replay: %d points in MAPPEND batches of %d over %d clients", total, batch, len(feeds))

	reg := metrics.NewRegistry()
	lat := reg.Histogram("load_batch_seconds", nil)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, len(feeds))
	for _, feed := range feeds {
		wg.Add(1)
		go func(feed []fix) {
			defer wg.Done()
			errs <- runBatchClient(addr, feed, batch, lat)
		}(feed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	run := batchRun{BatchSize: batch, PointsSent: total, ElapsedSeconds: elapsed.Seconds()}
	if elapsed > 0 {
		run.ThroughputPerSec = float64(total) / elapsed.Seconds()
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "load_batch_seconds" && m.Count > 0 {
			run.BatchLatency = latencySummary{
				Mean: m.Sum / float64(m.Count),
				P50:  m.Quantile(0.50),
				P90:  m.Quantile(0.90),
				P99:  m.Quantile(0.99),
				Max:  m.Max,
			}
		}
	}
	log.Printf("batched: %d points in %s (%.0f pts/s), batch p50=%s",
		total, elapsed.Round(time.Millisecond), run.ThroughputPerSec,
		time.Duration(run.BatchLatency.P50*float64(time.Second)).Round(time.Microsecond))
	return run
}

// runBatchClient splits its feed back into per-object queues and sends them
// as MAPPEND batches, round-robin across objects.
func runBatchClient(addr string, feed []fix, batch int, lat *metrics.Histogram) error {
	c, err := server.DialOptions(addr, server.ClientOptions{
		IOTimeout: 30 * time.Second,
		Metrics:   metrics.NewRegistry(),
	})
	if err != nil {
		return err
	}
	defer c.Close()

	var order []string
	queues := make(map[string][]trajectory.Sample)
	for _, f := range feed {
		if _, ok := queues[f.id]; !ok {
			order = append(order, f.id)
		}
		queues[f.id] = append(queues[f.id], f.s)
	}
	sent := 0
	for remaining := len(feed); remaining > 0; {
		for _, id := range order {
			q := queues[id]
			if len(q) == 0 {
				continue
			}
			n := batch
			if n > len(q) {
				n = len(q)
			}
			t0 := time.Now()
			if err := c.AppendBatch(id+"-mb", q[:n]); err != nil {
				return fmt.Errorf("after %d batched points: %w", sent, err)
			}
			lat.ObserveSince(t0)
			queues[id] = q[n:]
			remaining -= n
			sent += n
		}
	}
	return nil
}

// buildFeeds generates the seeded fleet, truncates it to the point budget,
// and partitions the objects round-robin across clients. Each feed is sorted
// by timestamp, so every object's fixes arrive in order (an object never
// spans two clients).
func buildFeeds(seed int64, objects, clients, points int, spread, duration float64) [][]fix {
	g := gpsgen.New(seed, gpsgen.DefaultConfig())
	trips := g.Fleet(objects, spread, duration)

	// Budget points per object so the cut is even rather than silencing the
	// later vehicles entirely.
	perObj := points / objects
	if perObj < 2 {
		perObj = 2
	}
	feeds := make([][]fix, clients)
	budget := points
	for i, trip := range trips {
		if len(trip) > perObj {
			trip = trip[:perObj]
		}
		if len(trip) > budget {
			trip = trip[:budget]
		}
		budget -= len(trip)
		id := fmt.Sprintf("veh-%03d", i)
		c := i % clients
		for _, s := range trip {
			feeds[c] = append(feeds[c], fix{id: id, s: s})
		}
	}
	for _, feed := range feeds {
		sort.SliceStable(feed, func(i, j int) bool { return feed[i].s.T < feed[j].s.T })
	}
	// Drop empty feeds (more clients than objects).
	out := feeds[:0]
	for _, feed := range feeds {
		if len(feed) > 0 {
			out = append(out, feed)
		}
	}
	return out
}

// runClient replays one feed over its own connection, observing each append
// round trip in lat and pacing to rate when positive.
func runClient(addr string, feed []fix, rate float64, lat *metrics.Histogram) error {
	// Resilient options with an isolated registry: a load generator should
	// ride out transient server hiccups (idempotent commands retry), but
	// its retry counters must not leak into the report's registry.
	c, err := server.DialOptions(addr, server.ClientOptions{
		IOTimeout: 30 * time.Second,
		Metrics:   metrics.NewRegistry(),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	start := time.Now()
	for i, f := range feed {
		if rate > 0 {
			due := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		t0 := time.Now()
		if err := c.Append(f.id, f.s); err != nil {
			return fmt.Errorf("after %d appends: %w", i, err)
		}
		lat.ObserveSince(t0)
	}
	return nil
}

// collect reads the results back: the local latency histogram, the server's
// STATS snapshot, selected families from the METRICS exposition, and (when
// requested) the HTTP /metrics cross-check.
func collect(addr, httpAddr string, reg *metrics.Registry, total int, elapsed time.Duration) report {
	var rep report
	rep.ElapsedSeconds = elapsed.Seconds()
	rep.PointsSent = total
	if elapsed > 0 {
		rep.ThroughputPerSec = float64(total) / elapsed.Seconds()
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "load_append_seconds" && m.Count > 0 {
			rep.AppendLatency = latencySummary{
				Mean: m.Sum / float64(m.Count),
				P50:  m.Quantile(0.50),
				P90:  m.Quantile(0.90),
				P99:  m.Quantile(0.99),
				Max:  m.Max,
			}
		}
	}

	c, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	rep.Server, err = c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	// The per-object breakdown is large and reproducible from the summary;
	// keep the report focused.
	rep.Server.PointsPerObject = nil

	text, err := c.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	parsed := parsePrometheus(text)
	rep.ServerMetrics = make(map[string]float64)
	for _, key := range []string{
		"store_appends_total", "store_objects", "store_retained_samples",
		"stream_points_in_total", "stream_points_out_total",
		"stream_compression_ratio_pct",
		`server_commands_total{cmd="APPEND"}`,
		`server_commands_total{cmd="MAPPEND"}`, "server_batch_appends_total",
		"server_connections_total", "server_sheds_total", "wal_records_total",
	} {
		if v, ok := parsed[key]; ok {
			rep.ServerMetrics[key] = v
		}
	}

	if httpAddr != "" {
		checkHTTP(httpAddr, parsed)
		rep.HTTPMetricsChecked = true
	}
	return rep
}

// checkHTTP fetches the HTTP /metrics exposition and verifies it agrees with
// the TCP METRICS view on the load-independent counters (the ingest totals
// stopped moving when the clients finished).
func checkHTTP(httpAddr string, tcp map[string]float64) {
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		log.Fatalf("http metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("http metrics: %v", err)
	}
	web := parsePrometheus(string(body))
	for _, key := range []string{"store_appends_total", "stream_points_in_total", "store_retained_samples", "server_sheds_total"} {
		tv, tok := tcp[key]
		wv, wok := web[key]
		if !tok || !wok {
			log.Fatalf("http metrics: %s missing (tcp %v, http %v)", key, tok, wok)
		}
		if math.Abs(tv-wv) > 1e-9 {
			log.Fatalf("http metrics: %s disagrees: tcp %v, http %v", key, tv, wv)
		}
	}
	log.Printf("http /metrics agrees with METRICS on %s", httpAddr)
}

// parsePrometheus extracts "name[{labels}] value" samples from a text
// exposition, keyed by the full series name including labels.
func parsePrometheus(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}
