// Command experiments regenerates the paper's evaluation: Table 2 and
// Figures 7–11 of Meratnia & de By (EDBT 2004), on the calibrated synthetic
// dataset.
//
// Usage:
//
//	experiments [-run all|table2|fig7|fig8|fig9|fig10|fig11|onepass|ablations]
//	            [-svg dir] [-parallel n]
//
// With -svg, every regenerated figure is also written as SVG line charts
// (one error chart and one compression chart per figure) into dir. The
// sweep grid (algorithm × threshold cells over the 10-trajectory dataset)
// runs on a bounded worker pool; -parallel overrides its width (0 =
// GOMAXPROCS, 1 = serial).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/plot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	run := flag.String("run", "all", "which artifact to regenerate: all, table2, fig7, fig8, fig9, fig10, fig11, onepass, ablations, verify")
	svgDir := flag.String("svg", "", "directory to also write figures as SVG charts (empty = off)")
	parallel := flag.Int("parallel", 0, "worker-pool width for the sweep grid (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()
	experiments.SetDefaultGridParallelism(*parallel)
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	out := os.Stdout
	table2 := func() {
		if err := experiments.RenderTable2(out, experiments.Table2()); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	figure := func(f experiments.Figure) {
		if err := experiments.RenderFigure(out, f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
		if *svgDir != "" {
			writeSVGs(*svgDir, f)
		}
	}

	switch *run {
	case "all":
		table2()
		figure(experiments.Figure7())
		figure(experiments.Figure8())
		figure(experiments.Figure9())
		figure(experiments.Figure10())
		if err := experiments.RenderFrontier(out, experiments.Figure11()); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
		figure(experiments.OnePassFigure())
		figure(experiments.AblationTailDrop())
		figure(experiments.AblationBreakStrategy())
		figure(experiments.TaxonomyFigure())
		figure(experiments.BudgetFigure())
		figure(experiments.MapMatchFigure())
	case "table2":
		table2()
	case "fig7":
		figure(experiments.Figure7())
	case "fig8":
		figure(experiments.Figure8())
	case "fig9":
		figure(experiments.Figure9())
	case "fig10":
		figure(experiments.Figure10())
	case "fig11":
		if err := experiments.RenderFrontier(out, experiments.Figure11()); err != nil {
			log.Fatal(err)
		}
	case "onepass":
		figure(experiments.OnePassFigure())
	case "ablations":
		figure(experiments.OnePassFigure())
		figure(experiments.AblationTailDrop())
		figure(experiments.AblationBreakStrategy())
		figure(experiments.TaxonomyFigure())
		figure(experiments.BudgetFigure())
		figure(experiments.MapMatchFigure())
	case "verify":
		allPass, err := experiments.RenderClaims(out, experiments.VerifyClaims())
		if err != nil {
			log.Fatal(err)
		}
		if !allPass {
			log.Fatal("reproduction certificate: FAILURES above")
		}
		fmt.Fprintln(out, "\nall paper claims reproduced")
	default:
		log.Fatalf("unknown -run value %q", *run)
	}
}

// writeSVGs renders a figure's error and compression sweeps as SVG charts.
func writeSVGs(dir string, f experiments.Figure) {
	xlabel := f.XLabel
	if xlabel == "" {
		xlabel = "threshold (m)"
	}
	slug := strings.ToLower(strings.NewReplacer(" ", "", ".", "").Replace(f.ID))
	for _, part := range []struct {
		suffix, ylabel string
		y              func(s experiments.Series) []float64
	}{
		{"error", "synchronized error (m)", func(s experiments.Series) []float64 { return s.Error }},
		{"compression", "compression (%)", func(s experiments.Series) []float64 { return s.Compression }},
	} {
		c := plot.Chart{
			Title:  fmt.Sprintf("%s — %s", f.ID, part.suffix),
			XLabel: xlabel,
			YLabel: part.ylabel,
		}
		for _, s := range f.Series {
			c.Series = append(c.Series, plot.Series{Name: s.Name, X: s.Thresholds, Y: part.y(s)})
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.svg", slug, part.suffix))
		out, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.RenderSVG(out); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
}
