// Command trajcompress compresses trajectory files with any algorithm of
// the library and reports the quality trade-off.
//
// Usage:
//
//	trajcompress -alg tdtr:30 [-in file] [-out file] [flags]
//
//	-alg string     algorithm spec, e.g. ndp:30, tdtr:30, opwtr:50,
//	                opwsp:30:5, tdsp:30:5, nopw:30, bopw:30, uniform:3,
//	                radial:25, dr:40, operb:30, ciseds:30, cisedw:30
//	                (required)
//	-in string      input file (default: stdin)
//	-out string     output file (default: stdout)
//	-from string    input format: csv, bin or gpx (default "csv")
//	-to string      output format: csv, bin, geojson or gpx (default: same
//	                as -from)
//	-origin string  "lat,lon" projection origin for gpx/geojson output of
//	                planar input (default "52.22,6.89"); gpx input supplies
//	                its own origin
//	-quiet          suppress the per-trajectory quality report on stderr
//	-parallel int   worker-pool width for batch compression over the file's
//	                trajectories (default 0 = GOMAXPROCS)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	trajcomp "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trajcompress: ")

	var (
		algSpec  = flag.String("alg", "", "algorithm spec (required), e.g. tdtr:30 or opwsp:30:5")
		in       = flag.String("in", "", "input file (default stdin)")
		out      = flag.String("out", "", "output file (default stdout)")
		from     = flag.String("from", "csv", "input format: csv, bin or gpx")
		to       = flag.String("to", "", "output format: csv, bin, geojson or gpx (default: same as input)")
		origin   = flag.String("origin", "52.22,6.89", "lat,lon projection origin for gpx/geojson output")
		quiet    = flag.Bool("quiet", false, "suppress the quality report")
		parallel = flag.Int("parallel", 0, "worker-pool width for batch compression (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *algSpec == "" {
		flag.Usage()
		os.Exit(2)
	}
	alg, err := trajcomp.ParseAlgorithm(*algSpec)
	if err != nil {
		log.Fatal(err)
	}
	if *to == "" {
		*to = *from
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	var named []trajcomp.Named
	var proj *trajcomp.Projector
	switch *from {
	case "csv":
		named, err = trajcomp.DecodeCSV(r)
	case "bin":
		named, err = trajcomp.DecodeFile(r)
	case "gpx":
		named, proj, err = trajcomp.DecodeGPX(r, nil)
	default:
		log.Fatalf("unknown input format %q", *from)
	}
	if err != nil {
		log.Fatal(err)
	}
	if proj == nil {
		var lat, lon float64
		if _, err := fmt.Sscanf(*origin, "%g,%g", &lat, &lon); err != nil {
			log.Fatalf("bad -origin %q: %v", *origin, err)
		}
		if proj, err = trajcomp.NewProjector(trajcomp.LatLon{Lat: lat, Lon: lon}); err != nil {
			log.Fatal(err)
		}
	}

	// Compress the whole file on a bounded worker pool (one trajectory per
	// worker — the algorithms are embarrassingly parallel across objects),
	// then report per-trajectory quality in input order.
	trajs := make([]trajcomp.Trajectory, len(named))
	for i, n := range named {
		trajs[i] = n.Traj
	}
	results, err := trajcomp.CompressAll(context.Background(), alg,
		trajcomp.BatchOptions{Parallelism: *parallel}, trajs)
	if err != nil {
		log.Fatal(err)
	}
	compressed := make([]trajcomp.Named, len(named))
	for i, n := range named {
		kept := results[i]
		compressed[i] = trajcomp.Named{ID: n.ID, Traj: kept}
		if !*quiet {
			if rep, err := trajcomp.Evaluate(alg.Name(), n.Traj, kept); err == nil {
				fmt.Fprintf(os.Stderr, "%-12s %s\n", n.ID, rep)
			} else {
				fmt.Fprintf(os.Stderr, "%-12s %d → %d points (no error metric: %v)\n",
					n.ID, n.Traj.Len(), kept.Len(), err)
			}
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	switch *to {
	case "csv":
		err = trajcomp.EncodeCSV(w, compressed)
	case "bin":
		err = trajcomp.EncodeFile(w, compressed)
	case "geojson":
		err = trajcomp.EncodeGeoJSON(w, compressed, proj)
	case "gpx":
		err = trajcomp.EncodeGPX(w, compressed, proj)
	default:
		log.Fatalf("unknown output format %q", *to)
	}
	if err != nil {
		log.Fatal(err)
	}
}
