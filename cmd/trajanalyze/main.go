// Command trajanalyze inspects trajectory files: per-trajectory statistics,
// stop detection, pairwise similarity, and clustering.
//
// Usage:
//
//	trajanalyze [flags] [file]
//
//	-from string    input format: csv or bin (default "csv")
//	-stops          detect stops (speed < 1.5 m/s for ≥ 20 s)
//	-similarity     print the pairwise Fréchet distance matrix
//	-cluster int    cluster trajectories into K groups (0 = off)
//	-metric string  similarity metric for -similarity/-cluster: frechet or
//	                dtw (default "frechet")
//
// Reads from stdin when no file is given.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	trajcomp "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trajanalyze: ")

	var (
		from       = flag.String("from", "csv", "input format: csv or bin")
		stops      = flag.Bool("stops", false, "detect stops (speed < 1.5 m/s for ≥ 20 s)")
		similarity = flag.Bool("similarity", false, "print the pairwise similarity matrix")
		clusterK   = flag.Int("cluster", 0, "cluster trajectories into K groups (0 = off)")
		metricName = flag.String("metric", "frechet", "similarity metric: frechet or dtw")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	var named []trajcomp.Named
	var err error
	switch *from {
	case "csv":
		named, err = trajcomp.DecodeCSV(r)
	case "bin":
		named, err = trajcomp.DecodeFile(r)
	default:
		log.Fatalf("unknown input format %q", *from)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(named) == 0 {
		log.Fatal("no trajectories in input")
	}

	// Statistics table.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "id\tpoints\tduration\tspeed km/h\tlength km\tdisplacement km")
	for _, n := range named {
		s := trajcomp.Summarize(n.Traj)
		fmt.Fprintf(tw, "%s\t%d\t%.0f s\t%.1f\t%.2f\t%.2f\n",
			n.ID, s.NumPoints, s.Duration, s.AvgSpeed*3.6, s.Length/1000, s.Displacement/1000)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	if *stops {
		fmt.Println("\nstops (speed < 1.5 m/s for ≥ 20 s):")
		for _, n := range named {
			st, err := trajcomp.Stops(n.Traj, 1.5, 20)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s: %d stops, %.0f s stopped in total\n",
				n.ID, len(st), totalStopTime(st))
		}
	}

	metric := trajcomp.Frechet
	if *metricName == "dtw" {
		metric = trajcomp.DTW
	} else if *metricName != "frechet" {
		log.Fatalf("unknown metric %q", *metricName)
	}

	if *similarity || *clusterK > 0 {
		trajs := make([]trajcomp.Trajectory, len(named))
		for i, n := range named {
			trajs[i] = n.Traj
		}
		dist, err := trajcomp.DistanceMatrix(trajs, metric)
		if err != nil {
			log.Fatal(err)
		}
		if *similarity {
			fmt.Printf("\npairwise %s distance (m):\n", *metricName)
			stw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
			fmt.Fprint(stw, "\t")
			for _, n := range named {
				fmt.Fprintf(stw, "%s\t", n.ID)
			}
			fmt.Fprintln(stw)
			for i, n := range named {
				fmt.Fprintf(stw, "%s\t", n.ID)
				for j := range named {
					fmt.Fprintf(stw, "%.0f\t", dist[i][j])
				}
				fmt.Fprintln(stw)
			}
			if err := stw.Flush(); err != nil {
				log.Fatal(err)
			}
		}
		if *clusterK > 0 {
			res, err := trajcomp.KMedoids(dist, *clusterK, 1, 100)
			if err != nil {
				log.Fatal(err)
			}
			sil, err := trajcomp.Silhouette(dist, res.Assignments)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nk-medoids clustering (k=%d, silhouette %.2f):\n", *clusterK, sil)
			for c := 0; c < res.K; c++ {
				fmt.Printf("  cluster %d (medoid %s):", c, named[res.Medoids[c]].ID)
				for i, a := range res.Assignments {
					if a == c {
						fmt.Printf(" %s", named[i].ID)
					}
				}
				fmt.Println()
			}
		}
	}
}

func totalStopTime(stops []trajcomp.StopEvent) float64 {
	var total float64
	for _, s := range stops {
		total += s.Duration()
	}
	return total
}
