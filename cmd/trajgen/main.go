// Command trajgen generates synthetic GPS trajectories in the library's
// interchange formats.
//
// Usage:
//
//	trajgen [flags]
//
//	-n int          number of trajectories (default 10)
//	-kind string    trip kind: urban, rural, mixed, cycle (default "cycle")
//	-duration int   trip duration in seconds (default 1936)
//	-seed int       random seed (default 2004)
//	-format string  output format: csv or bin (default "csv")
//	-o string       output file (default: stdout)
//	-paper          ignore other generation flags and emit the fixed
//	                Table 2 reproduction dataset
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	trajcomp "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trajgen: ")

	var (
		n        = flag.Int("n", 10, "number of trajectories")
		kind     = flag.String("kind", "cycle", "trip kind: urban, rural, mixed, cycle")
		duration = flag.Int("duration", 1936, "trip duration in seconds")
		seed     = flag.Int64("seed", 2004, "random seed")
		format   = flag.String("format", "csv", "output format: csv or bin")
		out      = flag.String("o", "", "output file (default stdout)")
		paper    = flag.Bool("paper", false, "emit the fixed Table 2 reproduction dataset")
	)
	flag.Parse()

	var trips []trajcomp.Trajectory
	switch {
	case *paper:
		trips = trajcomp.PaperDataset()
	default:
		if *n <= 0 || *duration <= 0 {
			log.Fatal("-n and -duration must be positive")
		}
		gen := trajcomp.NewGenerator(*seed, trajcomp.GenConfig{})
		kinds, err := kindCycle(*kind)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *n; i++ {
			trips = append(trips, gen.Trip(kinds[i%len(kinds)], float64(*duration)))
		}
	}

	named := make([]trajcomp.Named, len(trips))
	for i, p := range trips {
		named[i] = trajcomp.Named{ID: fmt.Sprintf("traj-%02d", i), Traj: p}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	var err error
	switch *format {
	case "csv":
		err = trajcomp.EncodeCSV(w, named)
	case "bin":
		err = trajcomp.EncodeFile(w, named)
	default:
		log.Fatalf("unknown format %q (want csv or bin)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, nm := range named {
		fmt.Fprintf(os.Stderr, "%s: %s\n", nm.ID, trajcomp.Summarize(nm.Traj))
	}
}

func kindCycle(kind string) ([]trajcomp.TripKind, error) {
	switch kind {
	case "urban":
		return []trajcomp.TripKind{trajcomp.Urban}, nil
	case "rural":
		return []trajcomp.TripKind{trajcomp.Rural}, nil
	case "mixed":
		return []trajcomp.TripKind{trajcomp.Mixed}, nil
	case "cycle":
		return []trajcomp.TripKind{trajcomp.Urban, trajcomp.Mixed, trajcomp.Rural}, nil
	default:
		return nil, fmt.Errorf("unknown kind %q (want urban, rural, mixed or cycle)", kind)
	}
}
