package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run() in-process and returns the exit code plus captured
// stdout/stderr.
func runCLI(t *testing.T, workdir string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr, workdir)
	return code, stdout.String(), stderr.String()
}

func cleanModule(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func fixtureModule(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestExitCodeClean: a module with no findings exits 0 and prints nothing.
func TestExitCodeClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, cleanModule(t))
	if code != 0 {
		t.Fatalf("clean module exited %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run wrote to stdout: %q", stdout)
	}
}

// TestExitCodeFindings: the seeded-violation fixture module exits 1 and
// reports findings on stdout.
func TestExitCodeFindings(t *testing.T) {
	code, stdout, _ := runCLI(t, fixtureModule(t))
	if code != 1 {
		t.Fatalf("fixture module exited %d, want 1", code)
	}
	if !strings.Contains(stdout, "[floatcmp]") {
		t.Errorf("findings output missing the seeded floatcmp positive:\n%s", stdout)
	}
}

// TestExitCodeUsageError: load and usage failures exit 2, distinct from
// "findings reported".
func TestExitCodeUsageError(t *testing.T) {
	if code, _, _ := runCLI(t, t.TempDir()); code != 2 {
		t.Errorf("no go.mod above workdir: exited %d, want 2", code)
	}
	if code, _, _ := runCLI(t, cleanModule(t), "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exited %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.allow")
	if err := os.WriteFile(bad, []byte("malformed entry without location\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, cleanModule(t), "-allowlist", bad); code != 2 {
		t.Errorf("malformed allowlist: exited %d, want 2", code)
	}
	if code, _, _ := runCLI(t, cleanModule(t), "-allowlist", filepath.Join(t.TempDir(), "missing")); code != 2 {
		t.Errorf("explicitly named missing allowlist: exited %d, want 2", code)
	}
}

// TestJSONOutputShape: -json over a clean module emits an empty JSON array,
// so artifact consumers never parse "null".
func TestJSONOutputShape(t *testing.T) {
	code, stdout, _ := runCLI(t, cleanModule(t), "-json")
	if code != 0 {
		t.Fatalf("clean -json run exited %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

// TestPruneAllowlistCLI covers the staleness workflow: a stale entry exits
// 1 and is listed, -fix-allowlist rewrites the file keeping live entries,
// and a module without an allowlist prunes as a no-op.
func TestPruneAllowlistCLI(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "trajlint.allow")
	content := "# pinned\nfloatcmp internal/geo/geo.go:8 long gone\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, _ := runCLI(t, cleanModule(t), "-prune-allowlist", "-allowlist", allow)
	if code != 1 {
		t.Fatalf("stale allowlist exited %d, want 1", code)
	}
	if !strings.Contains(stdout, "stale: floatcmp internal/geo/geo.go:8") {
		t.Errorf("stale entry not reported:\n%s", stdout)
	}

	code, _, _ = runCLI(t, cleanModule(t), "-prune-allowlist", "-fix-allowlist", "-allowlist", allow)
	if code != 0 {
		t.Fatalf("prune -fix-allowlist exited %d, want 0", code)
	}
	rewritten, err := os.ReadFile(allow)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(rewritten), "floatcmp") {
		t.Errorf("stale entry survived -fix-allowlist:\n%s", rewritten)
	}
	if !strings.Contains(string(rewritten), "# pinned") {
		t.Errorf("comment dropped by -fix-allowlist:\n%s", rewritten)
	}

	code, _, stderr := runCLI(t, cleanModule(t), "-prune-allowlist", "-fix-allowlist", "-allowlist", allow)
	if code != 0 {
		t.Fatalf("pruning a clean allowlist exited %d, want 0\nstderr: %s", code, stderr)
	}
}
