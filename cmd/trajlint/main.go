// Command trajlint runs the repository's custom static-analysis suite
// (internal/lint) over every package in the module: layering, floatcmp,
// floatstep, nanguard, errcheck, lockcopy, goroleak, mutexguard, lockorder
// and atomicmix.
//
// Usage:
//
//	trajlint [flags] [./... | dir ...]
//
//	-json             emit findings as a JSON array instead of text
//	-tests            also load _test.go files and run the concurrency
//	                  analyzers (lockcopy, goroleak, mutexguard, lockorder,
//	                  atomicmix) over them; the float/layering/errcheck
//	                  rules still exempt tests
//	-allowlist file   suppression file of "analyzer file:line" entries
//	                  (default .trajlint.allow at the module root, if present)
//	-fix-allowlist    write every current finding into the allowlist file so
//	                  the gate passes, then exit 0; prefer in-source
//	                  //lint:allow annotations for anything long-lived.
//	                  Combined with -prune-allowlist it instead rewrites the
//	                  file with the stale entries removed.
//	-prune-allowlist  report allowlist entries that no longer match any
//	                  finding (exit 1 if any are stale); with -fix-allowlist
//	                  the file is rewritten without them
//
// With no arguments (or "./...") the whole module is linted; directory
// arguments restrict which findings are reported (the whole module is
// still loaded, since the analyzers need cross-package types).
//
// Exit status: 0 when clean, 1 when findings (or stale allowlist entries)
// are reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajlint:", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, wd))
}

// run is main with its environment injected, so the CLI (flag parsing,
// exit codes, output shapes) is testable in-process.
func run(args []string, stdout, stderr io.Writer, workdir string) int {
	fs := flag.NewFlagSet("trajlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut    = fs.Bool("json", false, "emit findings as JSON")
		withTests  = fs.Bool("tests", false, "run the concurrency analyzers over _test.go files too")
		allowPath  = fs.String("allowlist", "", "allowlist file (default: .trajlint.allow at the module root, if present)")
		fixAllow   = fs.Bool("fix-allowlist", false, "write current findings to the allowlist file and exit 0 (with -prune-allowlist: rewrite it without stale entries)")
		pruneAllow = fs.Bool("prune-allowlist", false, "report (and with -fix-allowlist remove) allowlist entries matching no finding")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, err := findModuleRoot(workdir)
	if err != nil {
		fmt.Fprintln(stderr, "trajlint:", err)
		return 2
	}
	load := lint.Load
	if *withTests {
		load = lint.LoadWithTests
	}
	m, err := load(root)
	if err != nil {
		fmt.Fprintln(stderr, "trajlint:", err)
		return 2
	}

	cfg := lint.DefaultConfig()
	path := *allowPath
	if path == "" {
		path = filepath.Join(root, ".trajlint.allow")
	}
	allowData, allowErr := os.ReadFile(path)
	if allowErr == nil {
		cfg.Allowlist, err = lint.ParseAllowlist(string(allowData))
		if err != nil {
			fmt.Fprintln(stderr, "trajlint:", err)
			return 2
		}
	} else if *allowPath != "" {
		fmt.Fprintln(stderr, "trajlint:", allowErr)
		return 2
	}

	if *pruneAllow {
		if allowErr != nil {
			fmt.Fprintln(stderr, "trajlint: no allowlist at", path)
			return 0
		}
		// Stale detection needs the unsuppressed finding set: an entry is
		// live only if some finding would match it.
		bare := *cfg
		bare.Allowlist = nil
		kept, stale, err := lint.PruneAllowlist(string(allowData), lint.Keys(lint.Run(m, &bare)))
		if err != nil {
			fmt.Fprintln(stderr, "trajlint:", err)
			return 2
		}
		if len(stale) == 0 {
			fmt.Fprintln(stderr, "trajlint: allowlist is clean")
			return 0
		}
		for _, s := range stale {
			fmt.Fprintln(stdout, "stale:", s)
		}
		if *fixAllow {
			if err := os.WriteFile(path, []byte(kept), 0o644); err != nil {
				fmt.Fprintln(stderr, "trajlint:", err)
				return 2
			}
			fmt.Fprintf(stderr, "trajlint: removed %d stale entrie(s) from %s\n", len(stale), path)
			return 0
		}
		fmt.Fprintf(stderr, "trajlint: %d stale allowlist entrie(s); rerun with -fix-allowlist to remove\n", len(stale))
		return 1
	}

	diags, err := filterByArgs(lint.Run(m, cfg), root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "trajlint:", err)
		return 2
	}

	if *fixAllow {
		if len(diags) == 0 {
			fmt.Fprintln(stderr, "trajlint: no findings; allowlist not written")
			return 0
		}
		if err := os.WriteFile(path, []byte(lint.FormatAllowlist(diags)), 0o644); err != nil {
			fmt.Fprintln(stderr, "trajlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "trajlint: wrote %d suppressions to %s\n", len(diags), path)
		return 0
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "trajlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "trajlint: %d finding(s) in %d package(s)\n", len(diags), len(m.Packages))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from workdir to the first go.mod.
func findModuleRoot(workdir string) (string, error) {
	dir, err := filepath.Abs(workdir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// filterByArgs restricts findings to the given directories. "./...", "...",
// or no arguments mean the whole module. An argument that does not exist or
// lies outside the module is an error — a typo'd path must not read as a
// clean run.
func filterByArgs(diags []lint.Diagnostic, root string, args []string) ([]lint.Diagnostic, error) {
	var prefixes []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "." {
			return diags, nil
		}
		dir := strings.TrimSuffix(a, "/...")
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, fmt.Errorf("argument %q: %v", a, err)
		}
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("argument %q: %v", a, err)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("argument %q is outside the module rooted at %s", a, root)
		}
		if rel == "." {
			return diags, nil
		}
		prefixes = append(prefixes, filepath.ToSlash(rel))
	}
	if len(prefixes) == 0 {
		return diags, nil
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		for _, p := range prefixes {
			if d.File == p || strings.HasPrefix(d.File, p+"/") {
				out = append(out, d)
				break
			}
		}
	}
	return out, nil
}
