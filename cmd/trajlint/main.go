// Command trajlint runs the repository's custom static-analysis suite
// (internal/lint) over every non-test package in the module: layering,
// floatcmp, nanguard, errcheck, lockcopy and goroleak.
//
// Usage:
//
//	trajlint [flags] [./... | dir ...]
//
//	-json            emit findings as a JSON array instead of text
//	-allowlist file  suppression file of "analyzer file:line" entries
//	                 (default .trajlint.allow at the module root, if present)
//	-fix-allowlist   write every current finding into the allowlist file so
//	                 the gate passes, then exit 0; prefer in-source
//	                 //lint:allow annotations for anything long-lived
//
// With no arguments (or "./...") the whole module is linted; directory
// arguments restrict which findings are reported (the whole module is
// still loaded, since the analyzers need cross-package types).
//
// Exit status: 0 when clean, 1 when findings are reported, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as JSON")
		allowPath = flag.String("allowlist", "", "allowlist file (default: .trajlint.allow at the module root, if present)")
		fixAllow  = flag.Bool("fix-allowlist", false, "write current findings to the allowlist file and exit 0")
	)
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajlint:", err)
		return 2
	}
	m, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajlint:", err)
		return 2
	}

	cfg := lint.DefaultConfig()
	path := *allowPath
	if path == "" {
		path = filepath.Join(root, ".trajlint.allow")
	}
	if data, err := os.ReadFile(path); err == nil {
		cfg.Allowlist, err = lint.ParseAllowlist(string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, "trajlint:", err)
			return 2
		}
	} else if *allowPath != "" {
		fmt.Fprintln(os.Stderr, "trajlint:", err)
		return 2
	}

	diags, err := filterByArgs(lint.Run(m, cfg), root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajlint:", err)
		return 2
	}

	if *fixAllow {
		if len(diags) == 0 {
			fmt.Fprintln(os.Stderr, "trajlint: no findings; allowlist not written")
			return 0
		}
		if err := os.WriteFile(path, []byte(lint.FormatAllowlist(diags)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "trajlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "trajlint: wrote %d suppressions to %s\n", len(diags), path)
		return 0
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "trajlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "trajlint: %d finding(s) in %d package(s)\n", len(diags), len(m.Packages))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the first go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// filterByArgs restricts findings to the given directories. "./...", "...",
// or no arguments mean the whole module. An argument that does not exist or
// lies outside the module is an error — a typo'd path must not read as a
// clean run.
func filterByArgs(diags []lint.Diagnostic, root string, args []string) ([]lint.Diagnostic, error) {
	var prefixes []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "." {
			return diags, nil
		}
		dir := strings.TrimSuffix(a, "/...")
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, fmt.Errorf("argument %q: %v", a, err)
		}
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("argument %q: %v", a, err)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("argument %q is outside the module rooted at %s", a, root)
		}
		if rel == "." {
			return diags, nil
		}
		prefixes = append(prefixes, filepath.ToSlash(rel))
	}
	if len(prefixes) == 0 {
		return diags, nil
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		for _, p := range prefixes {
			if d.File == p || strings.HasPrefix(d.File, p+"/") {
				out = append(out, d)
				break
			}
		}
	}
	return out, nil
}
