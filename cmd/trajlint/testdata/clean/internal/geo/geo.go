// Package geo is a minimal clean module for the trajlint CLI tests: it
// satisfies every default-on analyzer, so a run over this module must exit
// zero.
package geo

// Dims is the number of spatial dimensions handled here.
func Dims() int {
	return 2
}
