// Two-node replication torture (-repl): a primary and a follower trajserver,
// crashed and promoted in cycles, verified against the acknowledgement log.
//
// In -repl-ack=follower mode the invariant is the replicated durability
// contract: an OK reply promises the record is fsynced on the follower, so
// SIGKILLing the primary and PROMOTEing the follower must never lose an
// acknowledged append. Each cycle kills the primary at a seeded random
// point, promotes the survivor, verifies, then rejoins the old primary as a
// fresh follower (its log wiped — it may hold an unacknowledged divergent
// tail) and waits for catch-up before resuming the feed.
//
// In -repl-ack=primary mode replication is asynchronous: cycles SIGKILL the
// follower mid-feed (primary ingest must never stall), restart it, and wait
// for it to resume from its durable offset. The run ends with the shedding
// check: a fake follower that drains the stream but never acknowledges must
// be disconnected (repl_sheds_total > 0) while ingest keeps succeeding.
package main

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// replConfig carries the main flags into the two-node run.
type replConfig struct {
	bin     string
	ack     string // "follower" or "primary"
	cycles  int
	appends int
	batch   int
	workdir string // keep node dirs (WAL + server.log) here ("" = temp)
	verbose bool
}

// shedMaxLag is the -repl-max-lag handed to children in ack=primary runs:
// small enough that the shedding check trips within a few hundred appends.
const shedMaxLag = 64

// replNode is one trajserver child in the two-node deployment.
type replNode struct {
	name string
	addr string
	dir  string // holds the node's WAL; wiped when the node rejoins demoted
	cmd  *exec.Cmd
}

func (n *replNode) walPath() string { return filepath.Join(n.dir, "trips.wal") }
func (n *replNode) logPath() string { return filepath.Join(n.dir, "server.log") }

// replTorture owns both children.
type replTorture struct {
	cfg   replConfig
	nodes [2]*replNode
}

// startNode launches nodes[i]; replicateFrom makes it a follower.
func (h *replTorture) startNode(i int, replicateFrom string) error {
	n := h.nodes[i]
	args := []string{
		"-addr", n.addr,
		"-compress", "none",
		"-wal", n.walPath(),
		"-wal-sync", "0",
		"-repl-ack", h.cfg.ack,
		"-repl-max-lag", strconv.Itoa(shedMaxLag),
	}
	if replicateFrom != "" {
		args = append(args, "-replicate-from", replicateFrom)
	}
	cmd := exec.Command(h.cfg.bin, args...)
	if err := childOutput(cmd, n.logPath(), h.cfg.verbose); err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	n.cmd = cmd
	return nil
}

func (h *replTorture) kill(i int) error {
	err := killProcess(h.nodes[i].cmd)
	h.nodes[i].cmd = nil
	return err
}

func (h *replTorture) terminate(i int) error {
	err := terminateProcess(h.nodes[i].cmd)
	h.nodes[i].cmd = nil
	return err
}

func (h *replTorture) stopAll() {
	for i := range h.nodes {
		_ = h.kill(i)
	}
}

// wipe removes a node's WAL (but keeps its server.log, so the failure
// artifacts hold the node's whole history). A demoted primary may hold a
// durable tail the new primary never acknowledged; rejoining with that log
// would be refused as diverged, so the node re-replicates from scratch.
func (h *replTorture) wipe(i int) error {
	matches, err := filepath.Glob(h.nodes[i].walPath() + "*")
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return err
		}
	}
	return nil
}

// freeAddr reserves an ephemeral loopback address and releases it for the
// child to bind. The tiny reuse race is acceptable in a test harness.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	return addr, l.Close()
}

// feedRepl sends up to budget samples to the current primary, mixing MAPPEND
// batches when batch > 1. An append error has an unknown outcome — the
// sample counts as sent, never as acknowledged, and the feed stops so no
// later append can paper over a lost one.
func feedRepl(c *server.Client, objs []*object, rng *rand.Rand, budget, batch int) (sent, acked int, err error) {
	for round := 0; sent < budget; round++ {
		o := objs[round%len(objs)]
		if o.next >= o.traj.Len() {
			break // this vehicle's trip is over; others keep the load up
		}
		n := 1
		if batch > 1 && rng.Intn(2) == 0 {
			n = 2 + rng.Intn(batch-1)
			if rest := o.traj.Len() - o.next; n > rest {
				n = rest
			}
		}
		var aerr error
		if n == 1 {
			aerr = c.Append(o.id, o.traj[o.next])
		} else {
			aerr = c.AppendBatch(o.id, o.traj[o.next:o.next+n])
		}
		if aerr != nil {
			o.next += n
			return sent + n, acked, aerr
		}
		o.next += n
		o.acked = o.next
		sent += n
		acked += n
	}
	return sent, acked, nil
}

// waitCaughtUp polls STATS on both nodes until the follower's durable WAL
// offset equals the primary's. The logs are byte-identical by construction,
// so offset equality is state equality.
func waitCaughtUp(pc, fc *server.Client) error {
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		ps, perr := pc.Stats()
		fs, ferr := fc.Stats()
		if perr == nil && ferr == nil {
			if fs.WALAckedOffset == ps.WALAckedOffset {
				return nil
			}
			last = fmt.Sprintf("follower at %d, primary at %d", fs.WALAckedOffset, ps.WALAckedOffset)
		} else {
			last = fmt.Sprintf("stats: %v / %v", perr, ferr)
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("follower never caught up: %s", last)
}

// runRepl is the -repl entry point.
func runRepl(cfg replConfig, rng *rand.Rand, objs []*object) error {
	root := cfg.workdir
	if root == "" {
		tmp, err := os.MkdirTemp("", "trajtorture-repl-*")
		if err != nil {
			return err
		}
		root = tmp
		defer func() {
			_ = os.RemoveAll(tmp) // best effort: temp dir cleanup
		}()
	}
	h := &replTorture{cfg: cfg}
	for i := range h.nodes {
		addr, err := freeAddr()
		if err != nil {
			return err
		}
		h.nodes[i] = &replNode{name: fmt.Sprintf("node%d", i), addr: addr, dir: filepath.Join(root, fmt.Sprintf("node%d", i))}
		if err := os.MkdirAll(h.nodes[i].dir, 0o755); err != nil {
			return err
		}
	}
	defer h.stopAll()

	switch cfg.ack {
	case "follower":
		return h.runKillPrimary(rng, objs)
	case "primary":
		return h.runKillFollower(rng, objs)
	default:
		return fmt.Errorf("unknown -repl-ack %q (want follower or primary)", cfg.ack)
	}
}

// runKillPrimary is the ack=follower scenario: every cycle SIGKILLs the
// primary and promotes the follower, which must hold every acknowledged
// append.
func (h *replTorture) runKillPrimary(rng *rand.Rand, objs []*object) error {
	prim, fol := 0, 1
	if err := h.startNode(prim, ""); err != nil {
		return err
	}
	if err := h.startNode(fol, h.nodes[prim].addr); err != nil {
		return err
	}
	pc, err := readyClient(h.nodes[prim].addr)
	if err != nil {
		return err
	}
	fc, err := readyClient(h.nodes[fol].addr)
	if err != nil {
		return err
	}

	totalAcked, promotions := 0, 0
	for cycle := 1; cycle <= h.cfg.cycles; cycle++ {
		killAfter := 1 + rng.Intn(h.cfg.appends)
		sent, acked, ferr := feedRepl(pc, objs, rng, killAfter, h.cfg.batch)
		totalAcked += acked
		if ferr != nil {
			// Unknown outcome mid-feed: tolerated, the kill + verify below
			// resolves it. It is rare with both nodes healthy, so log it.
			log.Printf("cycle %d: append with unknown outcome (%v) — verifying", cycle, ferr)
		}

		if cycle < h.cfg.cycles {
			if err := h.kill(prim); err != nil {
				return fmt.Errorf("cycle %d: kill primary: %v", cycle, err)
			}
			if err := fc.Promote(); err != nil {
				return fmt.Errorf("cycle %d: PROMOTE: %v", cycle, err)
			}
			promotions++
			if err := verify(fc, objs); err != nil {
				return fmt.Errorf("cycle %d: after promoting %s: %v", cycle, h.nodes[fol].name, err)
			}
			log.Printf("cycle %d: SIGKILL %s after %d appends, promoted %s, all %d acked appends held",
				cycle, h.nodes[prim].name, sent, h.nodes[fol].name, totalAcked)

			// The demoted node rejoins as a follower of the new primary,
			// log wiped: its unacknowledged tail may diverge.
			if err := h.wipe(prim); err != nil {
				return err
			}
			if err := h.startNode(prim, h.nodes[fol].addr); err != nil {
				return err
			}
			prim, fol = fol, prim
			_ = pc.Close()
			pc = fc
			if fc, err = readyClient(h.nodes[fol].addr); err != nil {
				return err
			}
			if err := waitCaughtUp(pc, fc); err != nil {
				return fmt.Errorf("cycle %d: %v", cycle, err)
			}
		} else {
			// Last cycle: both nodes drain gracefully.
			_ = fc.Close()
			if err := h.terminate(fol); err != nil {
				return fmt.Errorf("follower shutdown: %v", err)
			}
			_ = pc.Close()
			if err := h.terminate(prim); err != nil {
				return fmt.Errorf("primary shutdown: %v", err)
			}
			log.Printf("cycle %d: SIGTERM both after %d appends (%d acked total)", cycle, sent, totalAcked)
		}
	}

	// Post-mortem: the final primary restarts alone and must hold the full
	// acknowledged history.
	if err := h.startNode(prim, ""); err != nil {
		return err
	}
	pc, err = readyClient(h.nodes[prim].addr)
	if err != nil {
		return err
	}
	if err := verify(pc, objs); err != nil {
		return fmt.Errorf("final verification: %v", err)
	}
	_ = pc.Close()
	if err := h.terminate(prim); err != nil {
		return fmt.Errorf("final shutdown: %v", err)
	}
	log.Printf("PASS: %d cycles, %d promotions, %d acknowledged appends, zero acknowledged records lost",
		h.cfg.cycles, promotions, totalAcked)
	return nil
}

// runKillFollower is the ack=primary scenario: replication is asynchronous,
// so follower crashes must never stall primary ingest, a restarted follower
// resumes from its durable offset, and a follower that never acknowledges
// is shed.
func (h *replTorture) runKillFollower(rng *rand.Rand, objs []*object) error {
	prim, fol := 0, 1
	if err := h.startNode(prim, ""); err != nil {
		return err
	}
	if err := h.startNode(fol, h.nodes[prim].addr); err != nil {
		return err
	}
	pc, err := readyClient(h.nodes[prim].addr)
	if err != nil {
		return err
	}
	fc, err := readyClient(h.nodes[fol].addr)
	if err != nil {
		return err
	}

	totalAcked := 0
	for cycle := 1; cycle <= h.cfg.cycles; cycle++ {
		budget := 1 + rng.Intn(h.cfg.appends)
		mid := 1 + rng.Intn(budget)

		// First part of the feed with the follower alive, then SIGKILL it
		// mid-cycle. Async mode: every append must keep succeeding.
		_, acked, ferr := feedRepl(pc, objs, rng, mid, h.cfg.batch)
		totalAcked += acked
		if ferr != nil {
			return fmt.Errorf("cycle %d: primary refused an append with follower alive: %v", cycle, ferr)
		}
		_ = fc.Close()
		if err := h.kill(fol); err != nil {
			return fmt.Errorf("cycle %d: kill follower: %v", cycle, err)
		}
		_, acked, ferr = feedRepl(pc, objs, rng, budget-mid, h.cfg.batch)
		totalAcked += acked
		if ferr != nil {
			return fmt.Errorf("cycle %d: dead follower stalled primary ingest: %v", cycle, ferr)
		}

		// The follower restarts with its log intact and resumes from its
		// durable offset.
		if err := h.startNode(fol, h.nodes[prim].addr); err != nil {
			return err
		}
		if fc, err = readyClient(h.nodes[fol].addr); err != nil {
			return err
		}
		if err := waitCaughtUp(pc, fc); err != nil {
			return fmt.Errorf("cycle %d: %v", cycle, err)
		}
		if err := verify(fc, objs); err != nil {
			return fmt.Errorf("cycle %d: caught-up follower: %v", cycle, err)
		}
		log.Printf("cycle %d: SIGKILL follower mid-feed (%d/%d appends), resumed and caught up (%d acked total)",
			cycle, mid, budget, totalAcked)
	}

	if err := h.shedCheck(pc, h.nodes[prim].addr, objs, rng); err != nil {
		return err
	}

	_ = fc.Close()
	if err := h.terminate(fol); err != nil {
		return fmt.Errorf("follower shutdown: %v", err)
	}
	_ = pc.Close()
	if err := h.terminate(prim); err != nil {
		return fmt.Errorf("primary shutdown: %v", err)
	}
	log.Printf("PASS: %d cycles, %d acknowledged appends, follower crashes never stalled ingest", h.cfg.cycles, totalAcked)
	return nil
}

// shedCheck attaches a follower that drains the stream but never sends an
// ACK. Once it trails by more than the primary's -repl-max-lag it must be
// disconnected with a lagging error while ingest keeps succeeding.
func (h *replTorture) shedCheck(pc *server.Client, primaryAddr string, objs []*object, rng *rand.Rand) error {
	conn, err := net.Dial("tcp", primaryAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "REPLICATE %d 0\n", wal.HeaderLen); err != nil {
		return err
	}
	shed := make(chan string, 1)
	go func() {
		br := bufio.NewReader(conn)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "ERR") {
				shed <- strings.TrimSpace(line)
				return
			}
			if strings.HasPrefix(line, "DATA ") {
				var n int
				if _, err := fmt.Sscanf(line, "DATA %d", &n); err != nil {
					return
				}
				if _, err := br.Discard(n); err != nil {
					return
				}
			}
		}
	}()

	// Push well past the lag bound; the primary must neither block nor
	// refuse a single append.
	_, _, ferr := feedRepl(pc, objs, rng, 3*shedMaxLag, h.cfg.batch)
	if ferr != nil {
		return fmt.Errorf("stalled follower blocked primary ingest: %v", ferr)
	}
	select {
	case line := <-shed:
		if !strings.Contains(line, "lagging") {
			return fmt.Errorf("stalled follower disconnected with %q, want a lagging error", line)
		}
	case <-time.After(15 * time.Second):
		return errors.New("stalled follower was never shed")
	}
	text, err := pc.Metrics()
	if err != nil {
		return err
	}
	if v := metricValue(text, "repl_sheds_total"); v < 1 {
		return fmt.Errorf("repl_sheds_total = %g after shedding, want >= 1", v)
	}
	log.Printf("shed check: stalled follower disconnected, repl_sheds_total >= 1, ingest never blocked")
	return nil
}

// metricValue extracts an unlabelled series' value from an exposition.
func metricValue(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, _ := strconv.ParseFloat(fields[1], 64)
			return v
		}
	}
	return 0
}
