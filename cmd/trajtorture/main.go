// Command trajtorture is the crash-recovery torture harness: it runs a
// trajserver child under seeded GPS load, SIGKILLs it at a random point in
// each cycle, restarts it, and verifies the recovered state against the
// acknowledgement log the harness kept.
//
// The invariant under test is the WAL's durability contract. The child runs
// with -compress none (the store retains every sample, so a snapshot is the
// exact append sequence) and -wal-sync 0 (an OK reply means the record was
// fsynced before the reply was written). Therefore, after any SIGKILL:
//
//   - every acknowledged append must be present in the recovered snapshot
//     (acknowledged-but-lost records are the fatal failure), and
//   - the recovered snapshot must be an exact prefix of the sent sequence
//     (sent-but-unacknowledged samples may or may not have landed; whatever
//     landed must match what was sent, in order, with nothing invented).
//
// After verification the harness resumes the feed from the recovered
// prefix, so every cycle exercises recovery-then-continue, not just
// recovery. The final cycle ends with SIGTERM instead, asserting the
// graceful drain path also exits cleanly.
//
// Usage:
//
//	trajtorture -bin ./trajserver [-cycles 5] [-objects 4] [-appends 400]
//	            [-seed 1] [-addr host:port] [-wal path] [-batch N]
//	            [-seal-eps E] [-v]
//
// With -batch N > 1, the feed randomly mixes MAPPEND batches (2..N samples,
// sized by the seeded RNG) in with single appends, so the group-commit batch
// path faces the same SIGKILL schedule as the single-append path: an
// "OK appended=n" reply promises all n samples are durable.
//
// With -seal-eps E > 0, the child runs with a cold sealed tier and the
// harness issues a SEAL halfway through each cycle, moving the older half of
// the history into quantized blocks before the SIGKILL lands. After each
// restart the harness verifies the cold tier's regenerability contract: the
// tier comes back empty (the WAL is its only source — sealing must never be
// a durability dependency), the full history is recovered hot, and
// re-issuing the SEAL rebuilds a cold tier that answers range queries for
// sealed-era samples within E metres.
//
// With -repl, the harness runs TWO trajserver children instead — a primary
// and a streaming follower (see internal/repl) — and tortures the
// replicated deployment. -repl-ack selects the scenario:
//
//   - follower: each cycle SIGKILLs the primary and PROMOTEs the follower,
//     which must hold every acknowledged append (an OK reply promised a
//     follower fsync). The demoted node rejoins with a wiped log.
//   - primary: each cycle SIGKILLs the follower mid-feed; the primary's
//     async ingest must never stall, and the restarted follower resumes from
//     its durable offset. The run ends with the shedding check: a follower
//     that never acknowledges must be disconnected (repl_sheds_total > 0).
//
// Exit status 0 means every cycle held the invariant.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trajectory"
)

// object is one simulated vehicle: its full pre-generated trajectory and
// how far into it the feed has durably progressed.
type object struct {
	id   string
	traj trajectory.Trajectory
	// next indexes the next sample to send; everything before next has been
	// sent at least once.
	next int
	// acked counts samples the server acknowledged with OK — the durability
	// floor recovery is held to.
	acked int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("trajtorture: ")

	var (
		bin     = flag.String("bin", "", "path to a built trajserver binary (required)")
		addr    = flag.String("addr", "127.0.0.1:7117", "address the child server listens on")
		walPath = flag.String("wal", "", "WAL path (default: a fresh temp file)")
		cycles  = flag.Int("cycles", 5, "SIGKILL/restart cycles")
		objects = flag.Int("objects", 4, "simulated vehicles")
		appends = flag.Int("appends", 400, "append budget per cycle (the kill lands at a random point inside it)")
		seed    = flag.Int64("seed", 1, "RNG seed for load and kill points (a failing run replays exactly)")
		batch   = flag.Int("batch", 0, "mix MAPPEND batches of up to this many samples into the feed (0 = singles only)")
		sealEps = flag.Float64("seal-eps", 0, "run the child with a cold sealed tier at this error bound and SEAL mid-cycle (0 = off)")
		repl    = flag.Bool("repl", false, "two-node replication torture: primary + follower instead of a single server")
		replAck = flag.String("repl-ack", "follower", `ack mode under -repl: "follower" (kill-primary/PROMOTE cycles) or "primary" (kill-follower cycles + lag shedding)`)
		workdir = flag.String("workdir", "", "directory for WALs and per-node server logs, kept after the run (default: a fresh temp dir, removed on exit)")
		verbose = flag.Bool("v", false, "pass the child's output through")
	)
	flag.Parse()
	if *bin == "" {
		log.Fatal("-bin is required (a built trajserver binary)")
	}
	serverLog := ""
	if *workdir != "" {
		if err := os.MkdirAll(*workdir, 0o755); err != nil {
			log.Fatal(err)
		}
		serverLog = filepath.Join(*workdir, "server.log")
		if *walPath == "" {
			*walPath = filepath.Join(*workdir, "torture.wal")
		}
	} else if *walPath == "" {
		dir, err := os.MkdirTemp("", "trajtorture-*")
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			_ = os.RemoveAll(dir) // best effort: temp dir cleanup
		}()
		*walPath = filepath.Join(dir, "torture.wal")
	}

	rng := rand.New(rand.NewSource(*seed))
	// Pre-generate more samples than the whole run can consume, so the feed
	// never runs dry mid-cycle.
	perObject := (*cycles)*(*appends)/(*objects) + *appends
	duration := float64(perObject+2) * gpsgen.DefaultConfig().SampleInterval
	fleet := gpsgen.New(*seed, gpsgen.Config{}).Fleet(*objects, 5000, duration)
	objs := make([]*object, *objects)
	for i, traj := range fleet {
		objs[i] = &object{id: fmt.Sprintf("veh-%d", i), traj: traj}
	}

	if *repl {
		// Two-node mode manages its own addresses and WAL directories; the
		// -addr, -wal and -seal-eps flags apply to single-node runs only.
		if err := runRepl(replConfig{
			bin:     *bin,
			ack:     *replAck,
			cycles:  *cycles,
			appends: *appends,
			batch:   *batch,
			workdir: *workdir,
			verbose: *verbose,
		}, rng, objs); err != nil {
			log.Fatalf("REPLICATION VIOLATION: %v", err)
		}
		return
	}

	h := &harness{bin: *bin, addr: *addr, wal: *walPath, sealEps: *sealEps, logPath: serverLog, verbose: *verbose}
	defer h.stop()

	totalAcked := 0
	maxAckedT := 0.0 // newest acknowledged timestamp, the SEAL cut's anchor
	sealedCut := 0.0 // last cut SEALed mid-cycle; restarts must rebuild it
	for cycle := 1; cycle <= *cycles; cycle++ {
		c, err := h.start()
		if err != nil {
			log.Fatalf("cycle %d: starting server: %v", cycle, err)
		}
		if err := verify(c, objs); err != nil {
			log.Fatalf("cycle %d: RECOVERY VIOLATION: %v", cycle, err)
		}
		if *sealEps > 0 && sealedCut > 0 {
			if err := sealCheck(c, objs, sealedCut, *sealEps); err != nil {
				log.Fatalf("cycle %d: COLD TIER VIOLATION: %v", cycle, err)
			}
		}

		killAfter := 1 + rng.Intn(*appends)
		sent := 0
		sealDone := *sealEps <= 0
		for round := 0; sent < killAfter; round++ {
			o := objs[round%len(objs)]
			if o.next >= o.traj.Len() {
				break // this vehicle's trip is over; others keep the load up
			}
			// Mix batched and single appends: roughly half the rounds send
			// an MAPPEND batch of 2..batch samples when -batch is set.
			n := 1
			if *batch > 1 && rng.Intn(2) == 0 {
				n = 2 + rng.Intn(*batch-1)
				if rest := o.traj.Len() - o.next; n > rest {
					n = rest
				}
			}
			var err error
			if n == 1 {
				err = c.Append(o.id, o.traj[o.next])
			} else {
				err = c.AppendBatch(o.id, o.traj[o.next:o.next+n])
			}
			if err != nil {
				// A refused append is harness trouble (the server is healthy
				// until we kill it) — unless it raced an earlier kill's
				// half-open socket, which the reconnect path absorbs.
				log.Fatalf("cycle %d: append %d refused: %v", cycle, sent, err)
			}
			// An OK (or "OK appended=n") reply acknowledges all n samples:
			// every one of them is held to the durability invariant.
			o.next += n
			o.acked = o.next
			totalAcked += n
			sent += n
			if t := o.traj[o.next-1].T; t > maxAckedT {
				maxAckedT = t
			}
			// Halfway through the cycle, seal the older half of the history
			// cold, so the SIGKILL lands on a server with a populated sealed
			// tier. The cut only moves forward, so each re-seal continues the
			// existing block chains.
			if !sealDone && sent >= killAfter/2 {
				if cut := maxAckedT / 2; cut > sealedCut {
					if _, err := c.Seal(cut); err != nil {
						log.Fatalf("cycle %d: SEAL: %v", cycle, err)
					}
					sealedCut = cut
				}
				sealDone = true
			}
		}

		if cycle < *cycles {
			if err := h.kill(); err != nil {
				log.Fatalf("cycle %d: kill: %v", cycle, err)
			}
			log.Printf("cycle %d: SIGKILL after %d appends (%d acked total)", cycle, sent, totalAcked)
		} else {
			// Last cycle: drain gracefully and make sure that path works too.
			if err := h.terminate(); err != nil {
				log.Fatalf("cycle %d: graceful shutdown: %v", cycle, err)
			}
			log.Printf("cycle %d: SIGTERM after %d appends (%d acked total)", cycle, sent, totalAcked)
		}
	}

	// Post-mortem: one more restart proves the final state (including the
	// gracefully sealed tail) recovers intact.
	c, err := h.start()
	if err != nil {
		log.Fatalf("final verification: starting server: %v", err)
	}
	if err := verify(c, objs); err != nil {
		log.Fatalf("final verification: RECOVERY VIOLATION: %v", err)
	}
	if *sealEps > 0 && sealedCut > 0 {
		if err := sealCheck(c, objs, sealedCut, *sealEps); err != nil {
			log.Fatalf("final verification: COLD TIER VIOLATION: %v", err)
		}
	}
	recovered := 0
	for _, o := range objs {
		recovered += o.acked
	}
	if err := h.terminate(); err != nil {
		log.Fatalf("final shutdown: %v", err)
	}
	log.Printf("PASS: %d cycles, %d acknowledged appends, %d samples recovered, zero acknowledged records lost",
		*cycles, totalAcked, recovered)
}

// verify holds the recovered server state against the invariant and
// advances each object's cursors to the recovered prefix.
func verify(c *server.Client, objs []*object) error {
	for _, o := range objs {
		snap, err := c.Snapshot(o.id)
		if err != nil {
			var remote *server.RemoteError
			if errors.As(err, &remote) && o.acked == 0 {
				// Never durably seen: legitimately unknown after recovery.
				o.next = 0
				continue
			}
			return fmt.Errorf("%s: snapshot: %w", o.id, err)
		}
		if snap.Len() < o.acked {
			return fmt.Errorf("%s: %d acknowledged samples, only %d recovered — acknowledged data LOST",
				o.id, o.acked, snap.Len())
		}
		if snap.Len() > o.next {
			return fmt.Errorf("%s: recovered %d samples but only %d were ever sent",
				o.id, snap.Len(), o.next)
		}
		for i, s := range snap {
			if s != o.traj[i] {
				return fmt.Errorf("%s: sample %d diverged: recovered %v, sent %v",
					o.id, i, s, o.traj[i])
			}
		}
		// Whatever landed is durable now; resume the feed right after it.
		o.acked = snap.Len()
		o.next = snap.Len()
	}
	return nil
}

// sealCheck verifies the cold tier's regenerability after a restart: the
// tier must come back empty (replay restores everything hot — the WAL, not
// the sealed blocks, is the durable copy), and re-issuing the SEAL at the
// pre-crash cut must rebuild blocks that answer range queries for
// sealed-era samples within eps metres.
func sealCheck(c *server.Client, objs []*object, cut, eps float64) error {
	stats, err := c.Stats()
	if err != nil {
		return err
	}
	if stats.SealedPoints != 0 {
		return fmt.Errorf("cold tier holds %d points straight after recovery — it must regenerate from the WAL, not persist",
			stats.SealedPoints)
	}
	if _, err := c.Seal(cut); err != nil {
		return fmt.Errorf("re-seal at %g: %w", cut, err)
	}
	stats, err = c.Stats()
	if err != nil {
		return err
	}
	if stats.SealedPoints == 0 {
		return fmt.Errorf("re-seal at %g rebuilt nothing", cut)
	}
	// Every object's oldest acknowledged sample older than the cut must be
	// answerable from the rebuilt blocks, within the configured bound.
	checked := 0
	for _, o := range objs {
		if o.acked == 0 || !(o.traj[0].T < cut) {
			continue
		}
		s := o.traj[0]
		rect := geo.Rect{Min: s.Pos(), Max: s.Pos()}.Expand(eps + 1)
		pts, err := c.QueryRange(rect, s.T-1, s.T+1)
		if err != nil {
			return fmt.Errorf("%s: sealed-era QUERYRANGE: %w", o.id, err)
		}
		found := false
		for _, p := range pts {
			if p.ID == o.id && math.Abs(p.S.T-s.T) < 1e-3 && p.S.Pos().Dist(s.Pos()) <= eps+1e-9 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: sealed sample t=%g missing from rebuilt cold tier (got %d points)",
				o.id, s.T, len(pts))
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("no sealed-era samples to check at cut %g — harness bug", cut)
	}
	return nil
}

// harness owns the trajserver child process across kill/restart cycles.
type harness struct {
	bin     string
	addr    string
	wal     string
	sealEps float64
	logPath string // append the child's output here ("" = discard)
	verbose bool
	cmd     *exec.Cmd
}

// start launches the child and waits until it answers PING.
func (h *harness) start() (*server.Client, error) {
	args := []string{
		"-addr", h.addr,
		"-compress", "none", // snapshot == append sequence, exactly
		"-wal", h.wal,
		"-wal-sync", "0", // OK reply ⇒ record fsynced
	}
	if h.sealEps > 0 {
		args = append(args, "-seal-eps", fmt.Sprintf("%g", h.sealEps))
	}
	cmd := exec.Command(h.bin, args...)
	if err := childOutput(cmd, h.logPath, h.verbose); err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	h.cmd = cmd

	c, err := readyClient(h.addr)
	if err != nil {
		_ = h.kill() // the unready child is useless; report the readiness error
		return nil, err
	}
	return c, nil
}

// childOutput wires a child's stdout/stderr to the per-node log file
// (append mode, so restarts accumulate one history) and, with -v, the
// harness stderr. Log handles are left to process exit — the harness is
// short-lived and starts a bounded number of children.
func childOutput(cmd *exec.Cmd, logPath string, verbose bool) error {
	var ws []io.Writer
	if logPath != "" {
		f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		ws = append(ws, f)
	}
	if verbose {
		ws = append(ws, os.Stderr)
	}
	if len(ws) > 0 {
		w := io.MultiWriter(ws...)
		cmd.Stdout = w
		cmd.Stderr = w
	}
	return nil
}

// readyClient dials addr until the server answers PING.
func readyClient(addr string) (*server.Client, error) {
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		c, err := server.DialOptions(addr, server.ClientOptions{
			DialTimeout: 500 * time.Millisecond,
			IOTimeout:   5 * time.Second,
			Metrics:     metrics.NewRegistry(),
		})
		if err == nil {
			if err := c.Ping(); err == nil {
				return c, nil
			}
			_ = c.Close() // not ready yet; retry with a fresh connection
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return nil, fmt.Errorf("server at %s never became ready: %v", addr, lastErr)
}

// kill SIGKILLs the child — no warning, no flush, the crash under test.
func (h *harness) kill() error {
	err := killProcess(h.cmd)
	h.cmd = nil
	return err
}

func killProcess(cmd *exec.Cmd) error {
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	if err := cmd.Process.Kill(); err != nil && !errors.Is(err, os.ErrProcessDone) {
		return err
	}
	_ = cmd.Wait() // reap; a killed child's exit error is expected
	return nil
}

// terminate asks the child to drain via SIGTERM and requires a clean exit.
func (h *harness) terminate() error {
	err := terminateProcess(h.cmd)
	h.cmd = nil
	return err
}

func terminateProcess(cmd *exec.Cmd) error {
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "signal") {
			return fmt.Errorf("child exited uncleanly: %v", err)
		}
		return nil
	case <-time.After(15 * time.Second):
		_ = killProcess(cmd)
		return errors.New("child ignored SIGTERM for 15s")
	}
}

// stop is the deferred cleanup: make sure no child outlives the harness.
func (h *harness) stop() { _ = h.kill() }
