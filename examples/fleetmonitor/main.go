// Fleet monitor: the paper's motivating scenario — many vehicles streaming
// time-stamped positions into a moving-object store. Positions are
// compressed on ingest with the online OPW-SP algorithm, keeping storage
// bounded while rush-hour analysis queries keep working.
//
//	go run ./examples/fleetmonitor
package main

import (
	"fmt"
	"log"

	trajcomp "repro"
)

const (
	fleetSize    = 25
	tripDuration = 45 * 60 // seconds
	tolerance    = 40      // metres of synchronized error allowed
	speedJump    = 5       // m/s speed-difference threshold
)

func main() {
	// The store compresses every vehicle's stream on ingest. A bounded
	// window (64 fixes ≈ 10 minutes) caps per-vehicle memory.
	st := trajcomp.NewStore(trajcomp.StoreOptions{
		NewCompressor: func() trajcomp.Compressor {
			return trajcomp.NewOnlineOPWSP(tolerance, speedJump, 64)
		},
		CellSize: 500,
	})

	// Simulate the fleet: interleave the vehicles' GPS fixes as they would
	// arrive at a tracking server.
	fleet := make([]trajcomp.Trajectory, fleetSize)
	for i := range fleet {
		kind := []trajcomp.TripKind{trajcomp.Urban, trajcomp.Mixed, trajcomp.Rural}[i%3]
		trip := trajcomp.GenerateTrip(int64(1000+i), kind, tripDuration)
		// Scatter the depots across the metro area so trips start all over
		// town rather than at a common origin.
		dx := float64((i%5)-2) * 4000
		dy := float64((i/5)-2) * 4000
		fleet[i] = trip.Shift(0, dx, dy)
	}
	for tick := 0; ; tick++ {
		any := false
		for v, p := range fleet {
			if tick < p.Len() {
				any = true
				if err := st.Append(fmt.Sprintf("vehicle-%02d", v), p[tick]); err != nil {
					log.Fatalf("ingest: %v", err)
				}
			}
		}
		if !any {
			break
		}
	}

	stats := st.Stats()
	fmt.Printf("fleet of %d vehicles, %d GPS fixes ingested\n", stats.Objects, stats.RawPoints)
	fmt.Printf("retained after on-ingest OPW-SP(%dm, %dm/s): %d points (%.1f%% compression)\n\n",
		tolerance, speedJump, stats.RetainedPoints, stats.CompressionPct)

	// Rush-hour analysis: which vehicles passed through the city-centre
	// district during the first quarter hour?
	centre := trajcomp.Rect{
		Min: trajcomp.Point{X: -2000, Y: -2000},
		Max: trajcomp.Point{X: 2000, Y: 2000},
	}
	hits := st.Query(centre, 0, 15*60)
	fmt.Printf("vehicles inside the 4×4 km centre during the first 15 min: %d\n", len(hits))
	for _, id := range hits {
		if pos, ok := st.PositionAt(id, 10*60); ok {
			fmt.Printf("  %s was at (%.0f, %.0f) m at t=10 min\n", id, pos.X, pos.Y)
		}
	}

	// Reconstructed positions stay within the configured tolerance of the
	// true (raw) movement — spot-check one vehicle.
	raw := fleet[0]
	snap, _ := st.Snapshot("vehicle-00")
	maxErr, err := trajcomp.MaxError(raw, snap)
	if err != nil {
		log.Fatalf("error metric: %v", err)
	}
	fmt.Printf("\nvehicle-00: stored %d of %d fixes, max synchronized error %.1f m (tolerance %d m)\n",
		snap.Len(), raw.Len(), maxErr, tolerance)
}
