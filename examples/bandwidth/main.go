// Bandwidth: quantify the storage/transmission argument of the paper's
// introduction ("100 Mb of storage ... for just over 400 objects for a
// single day") by measuring the actual bytes for one day of fleet data
// under each representation.
//
//	go run ./examples/bandwidth
package main

import (
	"bytes"
	"fmt"
	"log"

	trajcomp "repro"
)

func main() {
	// One day of commuting for a small fleet: two 40-minute trips per
	// vehicle, fixes every 10 s.
	const vehicles = 20
	var fleet []trajcomp.Named
	for v := 0; v < vehicles; v++ {
		gen := trajcomp.NewGenerator(int64(v), trajcomp.GenConfig{})
		morning := gen.Trip(trajcomp.Mixed, 40*60)
		evening := gen.Trip(trajcomp.Mixed, 40*60).Shift(10*3600, 0, 0)
		day := append(morning.Clone(), evening...)
		fleet = append(fleet, trajcomp.Named{ID: fmt.Sprintf("car-%02d", v), Traj: day})
	}

	size := func(ts []trajcomp.Named, enc func(*bytes.Buffer, []trajcomp.Named) error) int {
		var buf bytes.Buffer
		if err := enc(&buf, ts); err != nil {
			log.Fatal(err)
		}
		return buf.Len()
	}
	csvEnc := func(b *bytes.Buffer, ts []trajcomp.Named) error { return trajcomp.EncodeCSV(b, ts) }
	binEnc := func(b *bytes.Buffer, ts []trajcomp.Named) error { return trajcomp.EncodeFile(b, ts) }
	zipEnc := func(b *bytes.Buffer, ts []trajcomp.Named) error { return trajcomp.EncodeFileCompressed(b, ts) }

	var points int
	for _, n := range fleet {
		points += n.Traj.Len()
	}
	rawCSV := size(fleet, csvEnc)
	rawBin := size(fleet, binEnc)

	// Lossy compression with the paper's OPW-TR at a 30 m tolerance.
	compressed := make([]trajcomp.Named, len(fleet))
	var keptPoints int
	var worst float64
	for i, n := range fleet {
		kept := trajcomp.NewOPWTR(30).Compress(n.Traj)
		compressed[i] = trajcomp.Named{ID: n.ID, Traj: kept}
		keptPoints += kept.Len()
		if e, err := trajcomp.MaxError(n.Traj, kept); err == nil && e > worst {
			worst = e
		}
	}
	lossyBin := size(compressed, binEnc)
	lossyZip := size(compressed, zipEnc)

	fmt.Printf("fleet: %d vehicles, %d fixes (one day)\n\n", vehicles, points)
	fmt.Printf("%-34s %10s %14s\n", "representation", "bytes", "bytes/fix")
	row := func(name string, n int, fixes int) {
		fmt.Printf("%-34s %10d %14.1f\n", name, n, float64(n)/float64(fixes))
	}
	row("CSV (raw)", rawCSV, points)
	row("binary delta+varint (raw)", rawBin, points)
	row("binary + OPW-TR(30 m) lossy", lossyBin, points)
	row("  + DEFLATE container", lossyZip, points)
	fmt.Printf("\nlossy pipeline keeps %d of %d fixes; total reduction vs CSV: %.1f×\n",
		keptPoints, points, float64(rawCSV)/float64(lossyZip))
	fmt.Printf("worst-case synchronized position error introduced: %.1f m (bound: 30 m)\n", worst)
}
