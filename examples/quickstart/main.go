// Quickstart: compress one car trajectory with every algorithm family and
// compare compression rate against the paper's time-synchronized error.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	trajcomp "repro"
)

func main() {
	// A 30-minute synthetic urban car trip, sampled every 10 s with GPS
	// noise (the paper's data regime).
	p := trajcomp.GenerateTrip(42, trajcomp.Urban, 30*60)
	fmt.Printf("original trajectory: %s\n\n", trajcomp.Summarize(p))

	algorithms := []trajcomp.Algorithm{
		trajcomp.NewUniform(3),
		trajcomp.NewDouglasPeucker(30), // spatial only: ignores time
		trajcomp.NewNOPW(30),
		trajcomp.NewTDTR(30), // the paper's time-ratio algorithms
		trajcomp.NewOPWTR(30),
		trajcomp.NewOPWSP(30, 5), // + speed-difference criterion
	}

	fmt.Println("algorithm        kept     compression   sync avg err   sync max err")
	for _, alg := range algorithms {
		a := alg.Compress(p)
		rep, err := trajcomp.Evaluate(alg.Name(), p, a)
		if err != nil {
			log.Fatalf("evaluate %s: %v", alg.Name(), err)
		}
		fmt.Printf("%-16s %4d/%-4d   %8.1f %%   %9.1f m   %9.1f m\n",
			rep.Algorithm, rep.CompressedLen, rep.OriginalLen,
			rep.CompressionPct, rep.SyncAvgError, rep.SyncMaxError)
	}

	fmt.Println("\nNote how the time-ratio algorithms (TD-TR, OPW-TR, OPW-SP) keep the")
	fmt.Println("synchronized error within the 30 m tolerance while the spatial-only")
	fmt.Println("algorithms, blind to the time axis, commit an order of magnitude more.")
}
