// Wildlife tracking: batch-compress long, sparsely sampled animal tracks
// and export the result as GeoJSON for display on a map — the archival
// use case of the paper's introduction (migratory animals).
//
//	go run ./examples/wildlife > tracks.geojson
package main

import (
	"fmt"
	"log"
	"os"

	trajcomp "repro"
)

func main() {
	// Sparse fixes (every 2 minutes, coarse error) over long journeys: a
	// collar trades accuracy for battery. The generator's "rural" regime —
	// long straight legs at sustained speed with occasional direction
	// changes — is a reasonable stand-in for migratory movement.
	gen := trajcomp.NewGenerator(7, trajcomp.GenConfig{
		SampleInterval: 120,
		NoiseSigma:     25,
		RuralBlock:     5000,
		RuralSpeed:     15,
	})

	names := []string{"stork-f03", "stork-m11", "crane-a27"}
	var archive []trajcomp.Named
	var rawPts, keptPts int
	for i, name := range names {
		track := gen.Trip(trajcomp.Rural, float64(6+i)*3600) // 6–8 h legs

		// Archive at a 250 m synchronized tolerance: generous for
		// continental-scale analysis, tight enough to preserve staging
		// stops (where the animal's clock diverges from straight-line
		// interpolation).
		kept := trajcomp.NewTDTR(250).Compress(track)
		avg, err := trajcomp.AvgError(track, kept)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "%s: %d → %d fixes (%.1f%% compression), α = %.0f m\n",
			name, track.Len(), kept.Len(),
			trajcomp.CompressionRate(track.Len(), kept.Len()), avg)
		rawPts += track.Len()
		keptPts += kept.Len()
		archive = append(archive, trajcomp.Named{ID: name, Traj: kept})
	}
	fmt.Fprintf(os.Stderr, "archive total: %d → %d fixes\n", rawPts, keptPts)

	// Export for mapping, georeferenced near the Wadden Sea staging area.
	proj, err := trajcomp.NewProjector(trajcomp.LatLon{Lat: 53.37, Lon: 5.22})
	if err != nil {
		log.Fatal(err)
	}
	if err := trajcomp.EncodeGeoJSON(os.Stdout, archive, proj); err != nil {
		log.Fatal(err)
	}
}
