// Map matching: snap a noisy GPS drive onto the road network, then compress
// — removing lateral noise first lets the time-ratio algorithms discard far
// more points within the same synchronized error budget. Writes an SVG
// comparing raw, matched, and compressed tracks.
//
//	go run ./examples/mapmatching
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	trajcomp "repro"
	"repro/internal/plot"
)

func main() {
	// A 7 km × 7 km downtown grid with 100 m blocks.
	roads := trajcomp.NewRoadGrid(71, 71, 100)

	// Simulate a drive along a staircase route with 8 m GPS noise.
	rng := rand.New(rand.NewSource(7))
	var truth, noisy trajcomp.Trajectory
	x, y := 0.0, 0.0
	heading := 0 // 0 = east, 1 = north
	for i := 0; i < 120; i++ {
		t := float64(i * 10)
		truth = append(truth, trajcomp.S(t, x, y))
		noisy = append(noisy, trajcomp.S(t, x+rng.NormFloat64()*8, y+rng.NormFloat64()*8))
		if i%12 == 11 { // turn at a junction every ~1200 m
			heading = 1 - heading
		}
		if heading == 0 {
			x += 100
		} else {
			y += 100
		}
	}

	_, matched, err := trajcomp.MapMatch(roads, noisy, trajcomp.MatchOptions{NoiseSigma: 8})
	if err != nil {
		log.Fatal(err)
	}

	const budget = 20.0 // metres of synchronized error allowed
	alg := trajcomp.NewTDTR(budget)
	rawKept := alg.Compress(noisy)
	matchedKept := alg.Compress(matched)

	report := func(name string, original, kept trajcomp.Trajectory) {
		e, err := trajcomp.AvgError(original, kept)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %4d → %3d points (%.1f%% compression), α = %.1f m\n",
			name, original.Len(), kept.Len(),
			trajcomp.CompressionRate(original.Len(), kept.Len()), e)
	}
	fmt.Printf("TD-TR at a %.0f m budget:\n", budget)
	report("raw noisy track", noisy, rawKept)
	report("map-matched track", matched, matchedKept)

	// How close does each pipeline stay to the TRUE movement?
	eRaw, _ := trajcomp.AvgError(truth, rawKept)
	eMatched, _ := trajcomp.AvgError(truth, matchedKept)
	fmt.Printf("\nerror against ground truth: raw pipeline %.1f m, matched pipeline %.1f m\n", eRaw, eMatched)

	m := plot.TrackMap{
		Title: "map matching before compression",
		Tracks: []plot.Track{
			{Name: fmt.Sprintf("noisy GPS (%d pts)", noisy.Len()), Traj: noisy},
			{Name: fmt.Sprintf("matched+compressed (%d pts)", matchedKept.Len()), Traj: matchedKept},
		},
	}
	f, err := os.Create("mapmatching.svg")
	if err != nil {
		log.Fatal(err)
	}
	if err := m.RenderSVG(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote mapmatching.svg")
}
