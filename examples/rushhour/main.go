// Rush-hour analysis: the paper's principal example application ("urban
// traffic, specifically commuter traffic, and rush hour analysis"). A
// morning's commuter trips are ingested into a durable, compressed store;
// the analysis tools then extract congestion indicators — stops, speed
// percentiles, close encounters — from the compressed data and compare them
// against the raw feed to show compression preserves the analysis.
//
//	go run ./examples/rushhour
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	trajcomp "repro"
)

func main() {
	const (
		commuters = 12
		tolerance = 30 // m synchronized error budget
	)

	// Durable store: the retained stream is write-ahead logged, so the
	// morning's data survives restarts at the compressed footprint.
	dir, err := os.MkdirTemp("", "rushhour")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := trajcomp.OpenDurableStore(filepath.Join(dir, "morning.wal"), trajcomp.StoreOptions{
		NewCompressor: func() trajcomp.Compressor { return trajcomp.NewOnlineOPWSP(tolerance, 5, 64) },
		Index:         trajcomp.IndexRTree,
	})
	if err != nil {
		log.Fatal(err)
	}

	raw := make(map[string]trajcomp.Trajectory, commuters)
	for i := 0; i < commuters; i++ {
		id := fmt.Sprintf("commuter-%02d", i)
		trip := trajcomp.GenerateTrip(int64(7000+i), trajcomp.Urban, 35*60)
		// Commuters start from scattered homes but within one district, so
		// encounters actually happen.
		trip = trip.Shift(float64(i)*30, float64(i%3)*800, float64(i/3%3)*800)
		raw[id] = trip
		for _, s := range trip {
			if err := st.Append(id, s); err != nil {
				log.Fatal(err)
			}
		}
	}
	stats := st.Stats()
	logSize, _ := st.LogSize()
	fmt.Printf("ingested %d commuters, %d fixes; retained %d (%.1f%% compression); WAL %d bytes\n\n",
		stats.Objects, stats.RawPoints, stats.RetainedPoints, stats.CompressionPct, logSize)

	// Congestion indicators from the COMPRESSED data.
	fmt.Println("congestion indicators (from compressed trajectories):")
	var totalStopsC, totalStopsR int
	for _, id := range st.IDs() {
		snap, _ := st.Snapshot(id)
		stopsC, err := trajcomp.Stops(snap, 1.5, 20)
		if err != nil {
			log.Fatal(err)
		}
		stopsR, err := trajcomp.Stops(raw[id], 1.5, 20)
		if err != nil {
			log.Fatal(err)
		}
		totalStopsC += len(stopsC)
		totalStopsR += len(stopsR)
	}
	fmt.Printf("  stops ≥20 s: %d detected on compressed vs %d on raw data\n", totalStopsC, totalStopsR)

	first, _ := st.Snapshot("commuter-00")
	pcs, err := trajcomp.SpeedPercentiles(first, []float64{10, 50, 90})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  commuter-00 speed percentiles p10/p50/p90: %.1f / %.1f / %.1f m/s\n\n", pcs[0], pcs[1], pcs[2])

	// Encounter analysis: which commuter pairs came within 50 m while
	// driving?
	fmt.Println("close encounters (within 50 m, synchronized movement):")
	ids := st.IDs()
	encounters := 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, _ := st.Snapshot(ids[i])
			b, _ := st.Snapshot(ids[j])
			met, at, err := trajcomp.Meets(a, b, 50)
			if err != nil || !met {
				continue
			}
			encounters++
			if encounters <= 5 {
				dist, _ := trajcomp.DistanceBetweenAt(a, b, at)
				fmt.Printf("  %s ↔ %s first within 50 m at t=%.0f s (%.1f m apart)\n",
					ids[i], ids[j], at, dist)
			}
		}
	}
	fmt.Printf("  %d encountering pairs in total\n", encounters)

	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
}
