// Package trajcomp is the public API of the spatiotemporal trajectory
// compression library — a reproduction of Meratnia & de By,
// "Spatiotemporal Compression Techniques for Moving Point Objects"
// (EDBT 2004).
//
// The library compresses moving-object trajectories (finite series of
// time-stamped positions) with the paper's algorithm families:
//
//   - classic line generalization: Douglas-Peucker (NDP) and the
//     opening-window algorithms NOPW/BOPW, which use perpendicular distance
//     and ignore time;
//   - the paper's time-ratio algorithms TD-TR and OPW-TR, which replace the
//     perpendicular distance with the time-synchronized distance;
//   - the paper's spatiotemporal algorithms OPW-SP and TD-SP, which add a
//     speed-difference criterion;
//   - the follow-on one-pass error-bounded family OPERB and
//     CISED-S/CISED-W, which decide each point in O(1) time and memory
//     (NewOPERB, NewCISEDS, NewCISEDW and their online counterparts).
//
// Compression quality is measured with the paper's time-synchronized average
// error α(p, a) (AvgError) alongside classic perpendicular measures
// (Evaluate returns all of them).
//
// Quick start:
//
//	p := trajcomp.GenerateTrip(42, trajcomp.Urban, 30*60) // or build your own
//	a := trajcomp.NewTDTR(30).Compress(p)                 // 30 m tolerance
//	e, _ := trajcomp.AvgError(p, a)
//	fmt.Printf("kept %d of %d points, α = %.1f m\n", a.Len(), p.Len(), e)
//
// Subsystems exposed here:
//
//   - online compression of live position streams (NewOnlineOPWTR and
//     friends, Collect, Pipeline — see the stream types);
//   - a moving-object store with on-ingest compression and spatiotemporal
//     range queries (NewStore);
//   - serialization: compact binary (EncodeFile/DecodeFile), CSV and
//     GeoJSON;
//   - the synthetic GPS workload generator used by the paper reproduction
//     (GenerateTrip, PaperDataset);
//   - the experiment harness regenerating the paper's Table 2 and
//     Figures 7–11 (see cmd/experiments and the benchmarks).
package trajcomp

import (
	"context"
	"io"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/compress"
	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/interp"
	"repro/internal/mapmatch"
	"repro/internal/metrics"
	"repro/internal/quality"
	"repro/internal/roadnet"
	"repro/internal/sed"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/trajectory"
	"repro/internal/tune"
	"repro/internal/wal"
)

// Core data types.
type (
	// Sample is one time-stamped position ⟨t, x, y⟩ (seconds, metres).
	Sample = trajectory.Sample
	// Trajectory is a series of samples with strictly increasing
	// timestamps, interpreted as a piecewise-linear path.
	Trajectory = trajectory.Trajectory
	// Builder accumulates samples incrementally with validation.
	Builder = trajectory.Builder
	// Stats summarizes a trajectory (duration, speed, length, displacement,
	// point count).
	Stats = trajectory.Stats
	// DatasetStats aggregates Stats over a set of trajectories.
	DatasetStats = trajectory.DatasetStats

	// Point is a planar position in metres.
	Point = geo.Point
	// Rect is an axis-aligned rectangle used in spatial queries.
	Rect = geo.Rect
	// LatLon is a WGS-84 coordinate.
	LatLon = geo.LatLon
	// Projector converts between WGS-84 and the local planar frame.
	Projector = geo.Projector

	// Algorithm is a batch trajectory compressor.
	Algorithm = compress.Algorithm
	// BatchOptions configures CompressAll's bounded worker pool.
	BatchOptions = compress.BatchOptions
	// Report bundles the quality evaluation of one compression run.
	Report = quality.Report

	// Compressor is an online (push-based) trajectory compressor.
	Compressor = stream.Compressor

	// Store is an in-memory moving-object database with optional on-ingest
	// compression and spatiotemporal queries.
	Store = store.Store
	// StoreOptions configures NewStore.
	StoreOptions = store.Options
	// StoreStats summarizes storage effectiveness.
	StoreStats = store.Stats
	// Neighbor is one nearest-neighbour query result.
	Neighbor = store.Neighbor
	// IndexKind selects the store's spatiotemporal index (grid or R-tree).
	IndexKind = store.IndexKind
	// DurableStore is a Store backed by a write-ahead log on disk.
	DurableStore = wal.DurableStore

	// TimeInterval is a closed time interval used by the analysis tools.
	TimeInterval = analysis.Interval
	// StopEvent is a detected stay of a moving object.
	StopEvent = analysis.Stop
	// ProfilePoint is one segment of a speed/heading profile.
	ProfilePoint = analysis.ProfilePoint

	// Named pairs a trajectory with its object identifier for serialization.
	Named = codec.Named

	// TripKind selects the road environment of a generated trip.
	TripKind = gpsgen.TripKind
	// GenConfig configures the synthetic GPS generator.
	GenConfig = gpsgen.Config
	// Generator produces synthetic car trips.
	Generator = gpsgen.Generator
)

// Trip kinds for the synthetic generator.
const (
	Urban      = gpsgen.Urban
	Rural      = gpsgen.Rural
	Mixed      = gpsgen.Mixed
	Pedestrian = gpsgen.Pedestrian
)

// Store index kinds.
const (
	// IndexGrid is the uniform-grid spatiotemporal index (default).
	IndexGrid = store.IndexGrid
	// IndexRTree is the 3D R-tree index.
	IndexRTree = store.IndexRTree
)

// S is shorthand for Sample{T: t, X: x, Y: y}.
func S(t, x, y float64) Sample { return trajectory.S(t, x, y) }

// NewTrajectory validates samples and returns them as a Trajectory.
func NewTrajectory(samples []Sample) (Trajectory, error) { return trajectory.New(samples) }

// NewBuilder returns a trajectory builder with capacity for n samples.
func NewBuilder(n int) *Builder { return trajectory.NewBuilder(n) }

// Summarize computes per-trajectory statistics.
func Summarize(p Trajectory) Stats { return trajectory.Summarize(p) }

// SummarizeDataset computes mean/stddev statistics over trajectories.
func SummarizeDataset(ps []Trajectory) DatasetStats { return trajectory.SummarizeDataset(ps) }

// Batch compression algorithms (the paper's §2–3). Distance thresholds are
// in metres; speed thresholds in m/s.

// NewDouglasPeucker returns the classic top-down Douglas-Peucker algorithm
// (the paper's NDP baseline) with a perpendicular-distance tolerance.
func NewDouglasPeucker(threshold float64) Algorithm {
	return compress.DouglasPeucker{Threshold: threshold}
}

// NewDouglasPeuckerHull returns the convex-hull-accelerated Douglas-Peucker.
func NewDouglasPeuckerHull(threshold float64) Algorithm {
	return compress.DouglasPeuckerHull{Threshold: threshold}
}

// NewNOPW returns the normal opening-window algorithm.
func NewNOPW(threshold float64) Algorithm { return compress.NOPW{Threshold: threshold} }

// NewBOPW returns the before-opening-window algorithm.
func NewBOPW(threshold float64) Algorithm { return compress.BOPW{Threshold: threshold} }

// NewTDTR returns the paper's top-down time-ratio algorithm.
func NewTDTR(threshold float64) Algorithm { return compress.TDTR{Threshold: threshold} }

// NewOPWTR returns the paper's opening-window time-ratio algorithm.
func NewOPWTR(threshold float64) Algorithm { return compress.OPWTR{Threshold: threshold} }

// NewOPWSP returns the paper's spatiotemporal opening-window algorithm
// (pseudocode SPT), combining the synchronized distance and speed-difference
// criteria.
func NewOPWSP(distThreshold, speedThreshold float64) Algorithm {
	return compress.OPWSP{DistThreshold: distThreshold, SpeedThreshold: speedThreshold}
}

// NewTDSP returns the top-down spatiotemporal algorithm.
func NewTDSP(distThreshold, speedThreshold float64) Algorithm {
	return compress.TDSP{DistThreshold: distThreshold, SpeedThreshold: speedThreshold}
}

// NewBottomUp returns the bottom-up merge algorithm under the perpendicular
// distance (§2's bottom-up category).
func NewBottomUp(threshold float64) Algorithm { return compress.BottomUp{Threshold: threshold} }

// NewBottomUpTR returns the bottom-up merge algorithm under the
// synchronized distance.
func NewBottomUpTR(threshold float64) Algorithm { return compress.BottomUpTR{Threshold: threshold} }

// NewSlidingWindow returns the fixed-window algorithm with Douglas-Peucker
// inside each window of the given size (§2's sliding-window category).
func NewSlidingWindow(threshold float64, window int) Algorithm {
	return compress.SlidingWindow{Threshold: threshold, Window: window}
}

// NewSlidingWindowTR returns the fixed-window algorithm with TD-TR inside
// each window.
func NewSlidingWindowTR(threshold float64, window int) Algorithm {
	return compress.SlidingWindowTR{Threshold: threshold, Window: window}
}

// NewDouglasPeuckerN returns the point-budget Douglas-Peucker: retain the N
// most shape-relevant points.
func NewDouglasPeuckerN(n int) Algorithm { return compress.DouglasPeuckerN{N: n} }

// NewTDTRN returns the point-budget top-down time-ratio algorithm.
func NewTDTRN(n int) Algorithm { return compress.TDTRN{N: n} }

// NewSQUISH returns the SQUISH bounded-buffer online sketch of n points.
func NewSQUISH(n int) Algorithm { return compress.SQUISH{Capacity: n} }

// NewVisvalingam returns the Visvalingam–Whyatt effective-area baseline.
func NewVisvalingam(areaThreshold float64) Algorithm {
	return compress.Visvalingam{AreaThreshold: areaThreshold}
}

// NewUniform returns the every-K-th-point baseline.
func NewUniform(k int) Algorithm { return compress.Uniform{K: k} }

// NewRadial returns the neighbour-elimination baseline.
func NewRadial(threshold float64) Algorithm { return compress.Radial{Threshold: threshold} }

// NewDeadReckoning returns the dead-reckoning baseline.
func NewDeadReckoning(threshold float64) Algorithm {
	return compress.DeadReckoning{Threshold: threshold}
}

// NewOPERB returns the one-pass error-bounded algorithm (perpendicular
// distance ≤ threshold, O(1) memory, one pass — arXiv:1702.05597).
func NewOPERB(threshold float64) Algorithm { return compress.OPERB{Threshold: threshold} }

// NewCISEDS returns the one-pass strong SED simplification (SED ≤
// threshold, subsequence output — arXiv:1801.05360).
func NewCISEDS(threshold float64) Algorithm { return compress.CISEDS{Threshold: threshold} }

// NewCISEDW returns the one-pass weak SED simplification: like CISED-S but
// windows close with synthesized joint points (at input timestamps),
// trading the subsequence property for a higher compression rate. Detect
// weak algorithms with IsWeakAlgorithm.
func NewCISEDW(threshold float64) Algorithm { return compress.CISEDW{Threshold: threshold} }

// IsWeakAlgorithm reports whether alg may synthesize output points rather
// than returning a vertex subsequence (currently only CISED-W).
func IsWeakAlgorithm(alg Algorithm) bool { return compress.IsWeak(alg) }

// ParseAlgorithm builds an algorithm from a textual spec such as "tdtr:30"
// or "opwsp:30:5"; see the compress package documentation for the grammar.
func ParseAlgorithm(spec string) (Algorithm, error) { return compress.Parse(spec) }

// CompressAll compresses every trajectory with alg on a bounded worker pool
// (opts.Parallelism workers; 0 = GOMAXPROCS), preserving input order — the
// batch path for archival jobs over large fleets. Cancelling ctx abandons
// trajectories not yet started and returns ctx.Err().
func CompressAll(ctx context.Context, alg Algorithm, opts BatchOptions, ps []Trajectory) ([]Trajectory, error) {
	return compress.CompressAll(ctx, alg, opts, ps)
}

// CompressionRate returns the percentage of points removed when reducing
// origLen points to compLen.
func CompressionRate(origLen, compLen int) float64 { return compress.Rate(origLen, compLen) }

// Error metrics (the paper's §4).

// AvgError computes the paper's time-synchronized average error α(p, a).
func AvgError(p, a Trajectory) (float64, error) { return sed.AvgError(p, a) }

// MaxError computes the maximum synchronized distance between p and a.
func MaxError(p, a Trajectory) (float64, error) { return sed.MaxError(p, a) }

// SyncDistance returns the synchronized (time-ratio) distance between data
// point p and the segment from a to b — the paper's Eq. 1–2 discard
// criterion.
func SyncDistance(p, a, b Sample) float64 { return sed.Distance(p, a, b) }

// Evaluate measures approximation a of original p under all error metrics.
func Evaluate(name string, p, a Trajectory) (Report, error) { return quality.Evaluate(name, p, a) }

// Online compression.

// NewOnlineOPWTR returns an online OPW-TR compressor. maxWindow bounds the
// buffered window (0 = unbounded, exactly matching the batch algorithm).
func NewOnlineOPWTR(threshold float64, maxWindow int) Compressor {
	return stream.NewOPWTR(threshold, maxWindow)
}

// NewOnlineOPWSP returns an online OPW-SP compressor.
func NewOnlineOPWSP(distThreshold, speedThreshold float64, maxWindow int) Compressor {
	return stream.NewOPWSP(distThreshold, speedThreshold, maxWindow)
}

// NewOnlineNOPW returns an online NOPW compressor.
func NewOnlineNOPW(threshold float64, maxWindow int) Compressor {
	return stream.NewNOPW(threshold, maxWindow)
}

// NewOnlineDeadReckoning returns an online dead-reckoning compressor.
func NewOnlineDeadReckoning(threshold float64) Compressor {
	return stream.NewDeadReckoning(threshold)
}

// NewOnlineOPERB returns the online OPERB compressor: one pass, O(1)
// memory (no window), every point decided on arrival.
func NewOnlineOPERB(eps float64) Compressor { return stream.NewOPERB(eps) }

// NewOnlineCISEDS returns the online CISED-S compressor (one-pass strong
// SED simplification).
func NewOnlineCISEDS(eps float64) Compressor { return stream.NewCISEDS(eps) }

// NewOnlineCISEDW returns the online CISED-W compressor (one-pass weak SED
// simplification with synthesized window-closing joints).
func NewOnlineCISEDW(eps float64) Compressor { return stream.NewCISEDW(eps) }

// Collect runs an online compressor over a whole trajectory.
func Collect(c Compressor, p Trajectory) (Trajectory, error) { return stream.Collect(c, p) }

// Pipeline connects an online compressor between two sample channels.
func Pipeline(ctx context.Context, c Compressor, in <-chan Sample, out chan<- Sample) error {
	return stream.Pipeline(ctx, c, in, out)
}

// Moving-object store.

// NewStore returns an empty moving-object store.
func NewStore(opts StoreOptions) *Store { return store.New(opts) }

// OpenDurableStore opens (or creates) a store backed by the write-ahead log
// at path, replaying any existing records.
func OpenDurableStore(path string, opts StoreOptions) (*DurableStore, error) {
	return wal.OpenDurable(path, opts)
}

// (Nearest, Query, QueryWithTolerance and EvictBefore are methods on Store;
// see the store package for their semantics.)

// Observability.

type (
	// MetricsRegistry is a named set of counters, gauges and latency
	// histograms; stores, servers and the WAL register their instruments in
	// one. Pass a registry via StoreOptions.Metrics to observe an embedded
	// store.
	MetricsRegistry = metrics.Registry
	// MetricsLabel is one name/value dimension of a metric.
	MetricsLabel = metrics.Label
	// MetricSnapshot is the point-in-time state of one instrument from
	// MetricsRegistry.Snapshot.
	MetricSnapshot = metrics.MetricSnapshot
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// DefaultMetrics returns the process-wide metrics registry — where stores,
// servers and WALs register unless given an explicit registry.
func DefaultMetrics() *MetricsRegistry { return metrics.Default() }

// WriteMetricsText renders a registry snapshot as an aligned human-readable
// table (histograms summarized as count/mean/p50/p99/max).
func WriteMetricsText(w io.Writer, snaps []MetricSnapshot) { metrics.WriteText(w, snaps) }

// WriteMetricsPrometheus renders a registry snapshot in the Prometheus text
// exposition format — what trajserver serves at /metrics.
func WriteMetricsPrometheus(w io.Writer, snaps []MetricSnapshot) { metrics.WritePrometheus(w, snaps) }

// Movement analysis (the paper's motivating "study, analyse and understand
// these patterns").

// DistanceBetweenAt returns the separation of two moving objects at time t.
func DistanceBetweenAt(p, q Trajectory, t float64) (float64, bool) {
	return analysis.DistanceAt(p, q, t)
}

// ClosestApproach returns the time and distance of two objects' minimal
// separation over their overlapping time span.
func ClosestApproach(p, q Trajectory) (at, dist float64, err error) {
	return analysis.ClosestApproach(p, q)
}

// Within returns the time intervals during which two objects travel within
// d metres of each other.
func Within(p, q Trajectory, d float64) ([]TimeInterval, error) {
	return analysis.Within(p, q, d)
}

// Meets reports whether two objects ever come within d metres, and when
// first.
func Meets(p, q Trajectory, d float64) (bool, float64, error) {
	return analysis.Meets(p, q, d)
}

// Stops detects stays: maximal periods with derived speed below maxSpeed
// lasting at least minDuration seconds.
func Stops(p Trajectory, maxSpeed, minDuration float64) ([]StopEvent, error) {
	return analysis.Stops(p, maxSpeed, minDuration)
}

// Profile derives the per-segment speed and heading series.
func Profile(p Trajectory) []ProfilePoint { return analysis.Profile(p) }

// SpeedPercentiles returns the requested percentiles of the time-weighted
// derived-speed distribution.
func SpeedPercentiles(p Trajectory, percentiles []float64) ([]float64, error) {
	return analysis.SpeedPercentiles(p, percentiles)
}

// FlockEvent is a detected group of objects travelling together.
type FlockEvent = analysis.Flock

// Flocks detects groups of at least minSize objects moving within radius of
// each other for at least minDuration seconds, examined every dt seconds.
func Flocks(ps []Trajectory, radius float64, minSize int, minDuration, dt float64) ([]FlockEvent, error) {
	return analysis.Flocks(ps, radius, minSize, minDuration, dt)
}

// ODMatrix aggregates trips between origin and destination zones.
type ODMatrix = analysis.ODMatrix

// ODFlow is one aggregated origin→destination movement.
type ODFlow = analysis.Flow

// OriginDestination bins trajectories' endpoints into zones of the given
// size and counts the commuter flows.
func OriginDestination(ps []Trajectory, zone float64) (*ODMatrix, error) {
	return analysis.OriginDestination(ps, zone)
}

// DensityMap is a spatial density grid of object-seconds per cell.
type DensityMap = analysis.Heatmap

// Hotspot is one high-density cell of a DensityMap.
type Hotspot = analysis.Hotspot

// Density builds an object-seconds heatmap over the trajectories for the
// window [t0, t1], sampled every dt seconds into square cells.
func Density(ps []Trajectory, cell, t0, t1, dt float64) (*DensityMap, error) {
	return analysis.Density(ps, cell, t0, t1, dt)
}

// ErrorPoint is the synchronized error at one instant.
type ErrorPoint = quality.ErrorPoint

// ErrorProfile samples the synchronized error between original and
// approximation every dt seconds.
func ErrorProfile(p, a Trajectory, dt float64) ([]ErrorPoint, error) {
	return quality.ErrorProfile(p, a, dt)
}

// ErrorPercentiles returns percentiles of the synchronized error
// distribution over time.
func ErrorPercentiles(p, a Trajectory, dt float64, percentiles []float64) ([]float64, error) {
	return quality.ErrorPercentiles(p, a, dt, percentiles)
}

// DTW returns the dynamic time warping distance between two trajectories'
// positional sequences.
func DTW(p, q Trajectory) (float64, error) { return analysis.DTW(p, q) }

// Frechet returns the discrete Fréchet distance between two trajectories'
// positional sequences.
func Frechet(p, q Trajectory) (float64, error) { return analysis.Frechet(p, q) }

// LCSS returns the longest-common-subsequence similarity in [0, 1] of two
// trajectories, matching points within eps metres.
func LCSS(p, q Trajectory, eps float64) (float64, error) { return analysis.LCSS(p, q, eps) }

// Trajectory clustering.

// ClusterResult is a clustering of trajectories into K groups.
type ClusterResult = cluster.Result

// Linkage selects the inter-cluster distance for AgglomerativeCluster.
type Linkage = cluster.Linkage

// Linkage strategies.
const (
	LinkageSingle   = cluster.Single
	LinkageComplete = cluster.Complete
	LinkageAverage  = cluster.Average
)

// DistanceMatrix computes the pairwise trajectory distance matrix under the
// given metric (e.g. DTW or Frechet).
func DistanceMatrix(ps []Trajectory, metric func(a, b Trajectory) (float64, error)) ([][]float64, error) {
	return cluster.DistanceMatrix(ps, metric)
}

// KMedoids clusters a distance matrix into k groups around medoid items.
func KMedoids(dist [][]float64, k int, seed int64, maxIter int) (ClusterResult, error) {
	return cluster.KMedoids(dist, k, seed, maxIter)
}

// AgglomerativeCluster performs hierarchical clustering down to k groups.
func AgglomerativeCluster(dist [][]float64, k int, linkage Linkage) (ClusterResult, error) {
	return cluster.Agglomerative(dist, k, linkage)
}

// Silhouette scores a clustering in [-1, 1]; higher is better.
func Silhouette(dist [][]float64, assignments []int) (float64, error) {
	return cluster.Silhouette(dist, assignments)
}

// Serialization.

// EncodeFile writes named trajectories in the compact binary format.
func EncodeFile(w io.Writer, ts []Named) error { return codec.EncodeFile(w, ts) }

// DecodeFile reads named trajectories written by EncodeFile.
func DecodeFile(r io.Reader) ([]Named, error) { return codec.DecodeFile(r) }

// EncodeFileCompressed writes named trajectories as a DEFLATE-compressed
// binary container.
func EncodeFileCompressed(w io.Writer, ts []Named) error {
	return codec.EncodeFileCompressed(w, ts)
}

// DecodeFileCompressed reads a container written by EncodeFileCompressed.
func DecodeFileCompressed(r io.Reader) ([]Named, error) {
	return codec.DecodeFileCompressed(r)
}

// EncodeGPX writes named trajectories as GPX 1.1 tracks (proj required).
func EncodeGPX(w io.Writer, ts []Named, proj *Projector) error {
	return codec.EncodeGPX(w, ts, proj)
}

// DecodeGPX reads GPX tracks into planar trajectories; a nil proj selects a
// projector centred on the first track point, which is returned.
func DecodeGPX(r io.Reader, proj *Projector) ([]Named, *Projector, error) {
	return codec.DecodeGPX(r, proj)
}

// DBSCANResult labels each trajectory with a cluster or cluster.Noise.
type DBSCANResult = cluster.DBSCANResult

// DBSCAN performs density-based clustering over a distance matrix.
func DBSCAN(dist [][]float64, eps float64, minPts int) (DBSCANResult, error) {
	return cluster.DBSCAN(dist, eps, minPts)
}

// EncodeCSV writes named trajectories as CSV (columns id,t,x,y).
func EncodeCSV(w io.Writer, ts []Named) error { return codec.EncodeCSV(w, ts) }

// DecodeCSV reads the CSV interchange format.
func DecodeCSV(r io.Reader) ([]Named, error) { return codec.DecodeCSV(r) }

// EncodeGeoJSON writes named trajectories as a GeoJSON FeatureCollection;
// proj may be nil to emit raw planar coordinates.
func EncodeGeoJSON(w io.Writer, ts []Named, proj *Projector) error {
	return codec.EncodeGeoJSON(w, ts, proj)
}

// NewProjector returns a WGS-84 ↔ planar projector centred at origin.
func NewProjector(origin LatLon) (*Projector, error) { return geo.NewProjector(origin) }

// Threshold tuning (the paper's §5: "choosing a proper threshold is not
// easy and is application-dependent").

// TuneResult reports a tuned threshold and what it achieves.
type TuneResult = tune.Result

// TuneForCompression returns the smallest threshold in [lo, hi] whose mean
// compression over the sample trajectories reaches targetPct.
func TuneForCompression(factory func(threshold float64) Algorithm, sample []Trajectory, targetPct, lo, hi float64) (TuneResult, error) {
	return tune.ForCompression(factory, sample, targetPct, lo, hi)
}

// TuneForError returns the largest threshold in [lo, hi] whose mean
// synchronized error stays within maxErr metres.
func TuneForError(factory func(threshold float64) Algorithm, sample []Trajectory, maxErr, lo, hi float64) (TuneResult, error) {
	return tune.ForError(factory, sample, maxErr, lo, hi)
}

// Advanced interpolation (the paper's §5 future work).

// Spline is a C¹ Catmull-Rom interpolation of a trajectory.
type Spline = interp.Spline

// NewSpline builds a cubic Hermite spline through the trajectory samples.
func NewSpline(p Trajectory) (*Spline, error) { return interp.NewSpline(p) }

// SplineAvgError computes the synchronized average error with both
// trajectories reconstructed by spline interpolation instead of
// piecewise-linear; tol is the quadrature tolerance in metres.
func SplineAvgError(p, a Trajectory, tol float64) (float64, error) {
	return interp.AvgError(p, a, tol)
}

// Road networks and map matching (the paper's "underlying transportation
// infrastructure").

// RoadGraph is an undirected road network with spatial and shortest-path
// queries.
type RoadGraph = roadnet.Graph

// RoadProjection is a position on a road edge.
type RoadProjection = roadnet.Projection

// MatchOptions tunes the map-matching HMM.
type MatchOptions = mapmatch.Options

// RoadMatch is the matched road position of one sample.
type RoadMatch = mapmatch.Match

// NewRoadGraph returns an empty road network.
func NewRoadGraph() *RoadGraph { return roadnet.NewGraph() }

// NewRoadGrid builds an nx × ny junction grid with the given block length.
func NewRoadGrid(nx, ny int, block float64) *RoadGraph { return roadnet.Grid(nx, ny, block) }

// MapMatch snaps a noisy trajectory onto the road network, returning the
// per-sample matches and the snapped trajectory.
func MapMatch(g *RoadGraph, p Trajectory, opts MatchOptions) ([]RoadMatch, Trajectory, error) {
	return mapmatch.Snap(g, p, opts)
}

// OnlineMatcher is a fixed-lag online map matcher.
type OnlineMatcher = mapmatch.Matcher

// NewOnlineMatcher returns an online matcher emitting matches lag samples
// behind the newest input.
func NewOnlineMatcher(g *RoadGraph, lag int, opts MatchOptions) (*OnlineMatcher, error) {
	return mapmatch.NewMatcher(g, lag, opts)
}

// Synthetic workload generation.

// NewGenerator returns a deterministic synthetic GPS trip generator.
func NewGenerator(seed int64, cfg GenConfig) *Generator { return gpsgen.New(seed, cfg) }

// GenerateTrip produces one synthetic car trip of roughly the given duration
// in seconds — a convenience wrapper around NewGenerator.
func GenerateTrip(seed int64, kind TripKind, duration float64) Trajectory {
	return gpsgen.New(seed, gpsgen.Config{}).Trip(kind, duration)
}

// GenerateFleet simulates n simultaneous vehicles with scattered depots and
// staggered departures over a spread × spread metre area.
func GenerateFleet(seed int64, n int, spread, duration float64) []Trajectory {
	return gpsgen.New(seed, gpsgen.Config{}).Fleet(n, spread, duration)
}

// GenerateCommute simulates days of home–work–home travel as one trajectory
// with workday gaps (split with SplitGaps for per-leg analysis).
func GenerateCommute(seed int64, days int, kind TripKind, tripDuration float64) Trajectory {
	return gpsgen.New(seed, gpsgen.Config{}).Commute(days, kind, tripDuration)
}

// PaperDataset returns the fixed ten-trajectory dataset used to reproduce
// the paper's evaluation (calibrated against Table 2).
func PaperDataset() []Trajectory { return gpsgen.PaperDataset() }
