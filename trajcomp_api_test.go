package trajcomp

// Exercises every public facade wrapper at least once, so the public API
// surface cannot silently rot.

import (
	"bytes"
	"testing"
)

func TestFacadeAlgorithmsRun(t *testing.T) {
	p := GenerateTrip(21, Urban, 900)
	algs := []Algorithm{
		NewDouglasPeucker(30), NewDouglasPeuckerHull(30),
		NewNOPW(30), NewBOPW(30),
		NewTDTR(30), NewOPWTR(30),
		NewOPWSP(30, 5), NewTDSP(30, 5),
		NewBottomUp(30), NewBottomUpTR(30),
		NewSlidingWindow(30, 10), NewSlidingWindowTR(30, 10),
		NewDouglasPeuckerN(20), NewTDTRN(20), NewSQUISH(20),
		NewVisvalingam(500),
		NewUniform(3), NewRadial(25), NewDeadReckoning(30),
	}
	for _, alg := range algs {
		a := alg.Compress(p)
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
		if _, err := Evaluate(alg.Name(), p, a); err != nil {
			t.Errorf("%s: evaluate: %v", alg.Name(), err)
		}
	}
	if CompressionRate(100, 25) != 75 {
		t.Error("CompressionRate wrong")
	}
}

func TestFacadeAnalysisSweep(t *testing.T) {
	fleet := GenerateFleet(22, 6, 4000, 600)
	if len(fleet) != 6 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	a, b := fleet[0], fleet[1]

	if _, _, err := ClosestApproach(a, b); err != nil {
		t.Errorf("ClosestApproach: %v", err)
	}
	if _, err := Within(a, b, 500); err != nil {
		t.Errorf("Within: %v", err)
	}
	if _, _, err := Meets(a, b, 500); err != nil {
		t.Errorf("Meets: %v", err)
	}
	if _, ok := DistanceBetweenAt(a, b, a.StartTime()+300); !ok {
		t.Error("DistanceBetweenAt failed mid-span")
	}
	if _, err := Stops(a, 1.5, 15); err != nil {
		t.Errorf("Stops: %v", err)
	}
	if prof := Profile(a); len(prof) != a.Len()-1 {
		t.Errorf("Profile length %d", len(prof))
	}
	if _, err := SpeedPercentiles(a, []float64{50}); err != nil {
		t.Errorf("SpeedPercentiles: %v", err)
	}
	if _, err := Flocks(fleet, 300, 2, 30, 10); err != nil {
		t.Errorf("Flocks: %v", err)
	}
	dm, err := Density(fleet, 500, 0, 900, 10)
	if err != nil {
		t.Fatalf("Density: %v", err)
	}
	if dm.Total() <= 0 || len(dm.Hotspots(3)) == 0 {
		t.Error("density map empty")
	}

	c := NewTDTR(30).Compress(a)
	if _, err := ErrorProfile(a, c, 5); err != nil {
		t.Errorf("ErrorProfile: %v", err)
	}
	if _, err := ErrorPercentiles(a, c, 5, []float64{95}); err != nil {
		t.Errorf("ErrorPercentiles: %v", err)
	}
	if _, err := MaxError(a, c); err != nil {
		t.Errorf("MaxError: %v", err)
	}
}

func TestFacadeClustering(t *testing.T) {
	fleet := GenerateFleet(23, 6, 3000, 400)
	dist, err := DistanceMatrix(fleet, Frechet)
	if err != nil {
		t.Fatal(err)
	}
	km, err := KMedoids(dist, 2, 1, 20)
	if err != nil || km.K != 2 {
		t.Errorf("KMedoids: %+v, %v", km, err)
	}
	ag, err := AgglomerativeCluster(dist, 2, LinkageAverage)
	if err != nil || ag.K != 2 {
		t.Errorf("Agglomerative: %+v, %v", ag, err)
	}
	if _, err := Silhouette(dist, km.Assignments); err != nil {
		t.Errorf("Silhouette: %v", err)
	}
	db, err := DBSCAN(dist, 1e6, 2)
	if err != nil || db.K < 1 {
		t.Errorf("DBSCAN: %+v, %v", db, err)
	}
	if _, err := DTW(fleet[0], fleet[1]); err != nil {
		t.Errorf("DTW: %v", err)
	}
}

func TestFacadeCodecs(t *testing.T) {
	named := []Named{{ID: "x", Traj: GenerateTrip(24, Mixed, 300)}}

	var zip bytes.Buffer
	if err := EncodeFileCompressed(&zip, named); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFileCompressed(&zip)
	if err != nil || len(back) != 1 {
		t.Fatalf("compressed round trip: %v", err)
	}

	proj, err := NewProjector(LatLon{Lat: 52.2, Lon: 6.9})
	if err != nil {
		t.Fatal(err)
	}
	var gpx bytes.Buffer
	if err := EncodeGPX(&gpx, named, proj); err != nil {
		t.Fatal(err)
	}
	tracks, _, err := DecodeGPX(&gpx, proj)
	if err != nil || len(tracks) != 1 {
		t.Fatalf("GPX round trip: %v", err)
	}
	if tracks[0].Traj.Len() != named[0].Traj.Len() {
		t.Errorf("GPX lost samples: %d vs %d", tracks[0].Traj.Len(), named[0].Traj.Len())
	}
}

func TestFacadeStoreExtras(t *testing.T) {
	st := NewStore(StoreOptions{Index: IndexRTree})
	p := GenerateTrip(25, Urban, 600)
	for _, s := range p {
		if err := st.Append("car", s); err != nil {
			t.Fatal(err)
		}
	}
	mid := p.StartTime() + p.Duration()/2
	nn := st.Nearest(Point{}, mid, 1)
	if len(nn) != 1 || nn[0].ID != "car" {
		t.Errorf("Nearest = %v", nn)
	}
	if got := st.QueryWithTolerance(p.Bounds(), p.StartTime(), p.EndTime(), 50); len(got) != 1 {
		t.Errorf("QueryWithTolerance = %v", got)
	}
	if removed := st.EvictBefore(mid); removed == 0 {
		t.Error("EvictBefore removed nothing")
	}
}

func TestFacadeTuneAndSpline(t *testing.T) {
	sample := []Trajectory{GenerateTrip(26, Urban, 600)}
	if _, err := TuneForCompression(NewOPWTR, sample, 40, 0, 500); err != nil {
		t.Errorf("TuneForCompression: %v", err)
	}
	sp, err := NewSpline(sample[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.At(sample[0].StartTime() + 10); !ok {
		t.Error("spline At failed")
	}
	c := NewTDTR(30).Compress(sample[0])
	if _, err := SplineAvgError(sample[0], c, 1e-2); err != nil {
		t.Errorf("SplineAvgError: %v", err)
	}
}

func TestFacadeMapMatch(t *testing.T) {
	g := NewRoadGrid(8, 8, 200)
	// A noisy eastbound drive along the bottom road.
	var p Trajectory
	for i := 0; i <= 8; i++ {
		p = append(p, S(float64(i*10), float64(i*150), float64(i%3-1)*6))
	}
	matches, snapped, err := MapMatch(g, p, MatchOptions{NoiseSigma: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != p.Len() || snapped.Len() != p.Len() {
		t.Fatalf("sizes %d/%d", len(matches), snapped.Len())
	}
	for i, s := range snapped {
		// Fixes at junctions may legitimately snap onto the crossing road,
		// so allow the noise amplitude rather than demanding y=0 exactly.
		if s.Y < -10 || s.Y > 10 {
			t.Errorf("sample %d snapped away from the route: %v", i, s.Pos())
		}
	}
}

func TestFacadeTrajectoryHelpers(t *testing.T) {
	p := GenerateTrip(27, Pedestrian, 300)
	if s := Summarize(p); s.NumPoints != p.Len() {
		t.Error("Summarize inconsistent")
	}
	if ds := SummarizeDataset([]Trajectory{p}); ds.N != 1 {
		t.Error("SummarizeDataset inconsistent")
	}
}

func TestFacadeCommuteAndOD(t *testing.T) {
	week := GenerateCommute(28, 5, Urban, 1200)
	legs := week.SplitGaps(3600)
	if len(legs) != 10 {
		t.Fatalf("week split into %d legs, want 10", len(legs))
	}
	od, err := OriginDestination(legs, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if od.Trips() != 10 {
		t.Errorf("OD counted %d trips", od.Trips())
	}
	flows := od.TopFlows(2)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	// The same home→work route repeats every day, so the top flow carries
	// (about) half the trips.
	if flows[0].Count < 4 {
		t.Errorf("top flow count %d, want ≥ 4 (repeated commute)", flows[0].Count)
	}
	if _, err := LCSS(legs[0], legs[2], 100); err != nil {
		t.Errorf("LCSS between commute legs: %v", err)
	}
}
