#!/usr/bin/env sh
# check.sh — the repo-wide verify gate.
#
# Runs, in order:
#   1. go build ./...          compile everything
#   2. gofmt -l               formatting (fails on any unformatted file)
#   3. go vet ./...            the stock vet suite
#   4. trajlint ./...          the repo-specific analyzers (internal/lint):
#                              layering, floatcmp, nanguard, errcheck,
#                              lockcopy, goroleak
#   5. go test ./...           tier-1 tests
#   6. go test -race ./...     tier-2: same tests under the race detector
#   7. bench.sh --smoke        end-to-end: trajload against a live trajserver
#                              with a tiny point budget (report to a temp
#                              file; the committed BENCH_load.json comes from
#                              a full scripts/bench.sh run)
#   8. torture.sh --smoke      crash-recovery: SIGKILL a WAL-backed
#                              trajserver mid-load five times and verify no
#                              acknowledged append is ever lost
#
# Any stage failing fails the script. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> trajlint ./..."
go run ./cmd/trajlint ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (trajload against live trajserver)"
sh scripts/bench.sh --smoke

echo "==> torture smoke (SIGKILL crash-recovery cycles)"
sh scripts/torture.sh --smoke

echo "==> all checks passed"
