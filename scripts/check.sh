#!/usr/bin/env bash
# check.sh — the repo-wide verify gate.
#
# Runs, in order:
#   1. go build ./...          compile everything
#   2. gofmt -l               formatting (fails on any unformatted file)
#   3. go vet ./...            the stock vet suite
#   4. trajlint -tests ./...   the repo-specific analyzers (internal/lint):
#                              layering, floatcmp, floatstep, nanguard,
#                              errcheck, lockcopy, goroleak, mutexguard,
#                              lockorder, atomicmix — with the concurrency
#                              analyzers also covering _test.go files, plus
#                              a staleness check over .trajlint.allow
#   5. go test ./...           tier-1 tests
#   6. go test -race ./...     tier-2: same tests under the race detector
#   7. bench.sh --smoke        end-to-end: trajload against a live trajserver
#                              with a tiny point budget (report to a temp
#                              file — or $BENCH_SMOKE_OUT when set, so CI can
#                              upload it; the committed BENCH_load.json comes
#                              from a full scripts/bench.sh run)
#   8. torture.sh --smoke      crash-recovery: SIGKILL a WAL-backed
#                              trajserver mid-load five times and verify no
#                              acknowledged append is ever lost
#   9. torture.sh --repl-smoke replication: a primary + streaming follower
#                              pair through kill-primary/PROMOTE cycles
#                              (ack=follower) and kill-follower + lag-shed
#                              cycles (ack=primary)
#
# Failure propagation: bash with -e -u and -o pipefail, so a failure in any
# pipeline stage — not just the last command — fails the script, and the
# smoke scripts themselves verify their background server PIDs (bench.sh
# checks the server survived the load and drains cleanly; torture.sh
# supervises every server generation it kills). Nothing here can green-wash
# a failed stage. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> gofmt"
# gofmt -l always exits 0; the grep only filters paths, and its no-match
# exit 1 is expected, so it is the one deliberately forgiven pipeline step.
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> trajlint -tests ./..."
go run ./cmd/trajlint -tests ./...

echo "==> trajlint -prune-allowlist"
go run ./cmd/trajlint -tests -prune-allowlist

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (trajload against live trajserver)"
bash scripts/bench.sh --smoke "${BENCH_SMOKE_OUT:-}"

echo "==> torture smoke (SIGKILL crash-recovery cycles)"
bash scripts/torture.sh --smoke

echo "==> repl torture smoke (two-node kill/promote + shedding cycles)"
bash scripts/torture.sh --repl-smoke

echo "==> all checks passed"
