#!/usr/bin/env bash
# torture.sh — crash-recovery torture: run trajtorture against a built
# trajserver, SIGKILLing it mid-load and verifying the WAL recovers every
# acknowledged append, and that the cold sealed tier regenerates from the
# WAL after every crash (see cmd/trajtorture for the invariants).
#
# Usage:
#   scripts/torture.sh               full run (8 kill cycles, bigger budget)
#   scripts/torture.sh --smoke       5 kill cycles, small budget
#   scripts/torture.sh --repl        two-node replication torture: 20
#                                    kill-primary/PROMOTE cycles under
#                                    -repl-ack=follower, then kill-follower
#                                    cycles + the lag-shedding check under
#                                    -repl-ack=primary
#   scripts/torture.sh --repl-smoke  the same two scenarios, 5 cycles each
#                                    (wired into scripts/check.sh)
#
# Fixed seed: a failing run replays exactly. Every server generation writes
# its WAL and server.log under $workdir (per-node subdirectories in -repl
# mode, so a multi-process failure keeps each node's log and WAL apart). On
# failure the whole workdir is preserved into $TRAJ_ARTIFACT_DIR when that
# variable is set — CI uploads it as a build artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=single
CYCLES=8
APPENDS=1200
OBJECTS=6
case "${1:-}" in
--smoke)
    CYCLES=5
    APPENDS=300
    OBJECTS=4
    ;;
--repl)
    MODE=repl
    CYCLES=20
    APPENDS=400
    ;;
--repl-smoke)
    MODE=repl
    CYCLES=5
    APPENDS=150
    OBJECTS=4
    ;;
esac

workdir=$(mktemp -d -t trajtorture.XXXXXX)
cleanup() {
    status=$?
    if [ "$status" -ne 0 ] && [ -n "${TRAJ_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$TRAJ_ARTIFACT_DIR"
        cp -r "$workdir" "$TRAJ_ARTIFACT_DIR/torture-workdir" 2>/dev/null || true
        echo "torture.sh: preserved failing workdir in $TRAJ_ARTIFACT_DIR/torture-workdir" >&2
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/trajserver" ./cmd/trajserver
go build -o "$workdir/trajtorture" ./cmd/trajtorture

if [ "$MODE" = repl ]; then
    echo "==> repl torture: ack=follower (SIGKILL primary, PROMOTE follower, $CYCLES cycles)"
    "$workdir/trajtorture" \
        -bin "$workdir/trajserver" \
        -repl -repl-ack follower \
        -workdir "$workdir/repl-follower-ack" \
        -cycles "$CYCLES" -appends "$APPENDS" -objects "$OBJECTS" -seed 1 \
        -batch 16

    echo "==> repl torture: ack=primary (SIGKILL follower mid-feed + lag shedding)"
    "$workdir/trajtorture" \
        -bin "$workdir/trajserver" \
        -repl -repl-ack primary \
        -workdir "$workdir/repl-primary-ack" \
        -cycles "$CYCLES" -appends "$APPENDS" -objects "$OBJECTS" -seed 1 \
        -batch 16
else
    "$workdir/trajtorture" \
        -bin "$workdir/trajserver" \
        -addr 127.0.0.1:7117 \
        -workdir "$workdir/single" \
        -cycles "$CYCLES" -appends "$APPENDS" -objects "$OBJECTS" -seed 1 \
        -batch 16 -seal-eps 10
fi
