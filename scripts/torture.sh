#!/usr/bin/env bash
# torture.sh — crash-recovery torture: run trajtorture against a built
# trajserver, SIGKILLing it mid-load and verifying the WAL recovers every
# acknowledged append, and that the cold sealed tier regenerates from the
# WAL after every crash (see cmd/trajtorture for the invariants).
#
# Usage:
#   scripts/torture.sh             full run (8 kill cycles, bigger budget)
#   scripts/torture.sh --smoke     5 kill cycles, small budget
#                                  (wired into scripts/check.sh)
#
# Fixed seed: a failing run replays exactly. On failure, the working
# directory (WAL, server logs) is preserved into $TRAJ_ARTIFACT_DIR when
# that variable is set — CI uploads it as a build artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

CYCLES=8
APPENDS=1200
OBJECTS=6
if [ "${1:-}" = "--smoke" ]; then
    CYCLES=5
    APPENDS=300
    OBJECTS=4
fi

workdir=$(mktemp -d -t trajtorture.XXXXXX)
cleanup() {
    status=$?
    if [ "$status" -ne 0 ] && [ -n "${TRAJ_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$TRAJ_ARTIFACT_DIR"
        cp -r "$workdir" "$TRAJ_ARTIFACT_DIR/torture-workdir" 2>/dev/null || true
        echo "torture.sh: preserved failing workdir in $TRAJ_ARTIFACT_DIR/torture-workdir" >&2
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/trajserver" ./cmd/trajserver
go build -o "$workdir/trajtorture" ./cmd/trajtorture

"$workdir/trajtorture" \
    -bin "$workdir/trajserver" \
    -addr 127.0.0.1:7117 \
    -wal "$workdir/torture.wal" \
    -cycles "$CYCLES" -appends "$APPENDS" -objects "$OBJECTS" -seed 1 \
    -batch 16 -seal-eps 10
