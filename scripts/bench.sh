#!/usr/bin/env bash
# bench.sh — load-test a local trajserver with the deterministic trajload
# workload and write BENCH_load.json (throughput, append latency quantiles,
# live compression ratio, server-side metrics, store shard sweep, and the
# hot/cold query phase: range+kNN latency quantiles before and after the
# history is sealed into the cold quantized tier, plus the cold tier's
# footprint ratio, the per-point stream-CPU cost of every online
# compression algorithm at a fixed tolerance, and the SUBSCRIBE fan-out
# phase: wildcard subscribers counting delivered/dropped lines and
# delivery-latency quantiles).
#
# Usage:
#   scripts/bench.sh [out]           full run (seeds the perf trajectory;
#                                    out defaults to BENCH_load.json)
#   scripts/bench.sh --smoke [out]   tiny point budget, report to a temp file
#                                    (wired into scripts/check.sh)
#
# The server listens on random loopback ports; the script parses the actual
# addresses from its log, runs trajload against both the TCP and HTTP
# endpoints (so the /metrics cross-check executes), runs the in-process
# store shard sweep, and shuts the server down gracefully, failing if the
# server crashed during the load or refuses a clean SIGTERM drain. Fixed
# seed: the workload is reproducible run to run.
set -euo pipefail

cd "$(dirname "$0")/.."

POINTS=50000
CLIENTS=8
OBJECTS=32
DURATION=16000 # seconds per trip; at ~10 s sampling this fills the budget
SHARDS="1,2,4,8"
SWEEP_WORKERS=16
BATCH=64    # MAPPEND batch size for the batched ingest phase
QUERIES=40    # QUERYRANGE+NEAREST probes per tier for the hot/cold query phase
SEAL_EPS=10   # cold-tier error bound in metres for the query phase
SEAL_BLOCK=512 # samples per sealed block: amortizes the per-block overhead
               # and codebooks over long chains (the bench workload's trips
               # are ~1500 samples per object)
STREAM_CPU=30 # tolerance in metres for the per-point stream-CPU benchmark
SUBS=128      # wildcard subscriber connections for the SUBSCRIBE fan-out phase
SUBS_POINTS=2000 # points published during the fan-out phase
OUT=BENCH_load.json
if [ "${1:-}" = "--smoke" ]; then
    POINTS=800
    CLIENTS=2
    OBJECTS=4
    DURATION=1800
    SHARDS="1,8"
    BATCH=16
    QUERIES=10
    SUBS=8
    SUBS_POINTS=200
    OUT="${2:-}"
    if [ -z "$OUT" ]; then
        OUT=$(mktemp -t bench_load.XXXXXX.json)
    fi
elif [ -n "${1:-}" ]; then
    OUT="$1"
fi

workdir=$(mktemp -d -t trajbench.XXXXXX)
bin="$workdir/bin"
log="$workdir/server.log"
mkdir -p "$bin"

go build -o "$bin/trajserver" ./cmd/trajserver
go build -o "$bin/trajload" ./cmd/trajload

"$bin/trajserver" -addr 127.0.0.1:0 -http 127.0.0.1:0 \
    -seal-eps "$SEAL_EPS" -seal-block "$SEAL_BLOCK" >"$log" 2>&1 &
srv=$!
cleanup() {
    kill "$srv" 2>/dev/null || true
    wait "$srv" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# Wait for both listen lines to appear in the log; fail fast if the server
# process died instead of reaching them.
i=0
while [ "$(grep -c 'listening on\|metrics on' "$log" || true)" -lt 2 ]; do
    if ! kill -0 "$srv" 2>/dev/null; then
        echo "bench.sh: server exited during startup; log:" >&2
        cat "$log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "bench.sh: server did not start; log:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log")
http=$(sed -n 's|.*metrics on http://\([0-9.:]*\)/metrics.*|\1|p' "$log")

"$bin/trajload" -addr "$addr" -http "$http" \
    -clients "$CLIENTS" -objects "$OBJECTS" -points "$POINTS" \
    -duration "$DURATION" -seed 1 -batch "$BATCH" -queries "$QUERIES" \
    -shards "$SHARDS" -sweep-workers "$SWEEP_WORKERS" \
    -stream-cpu "$STREAM_CPU" \
    -subs "$SUBS" -subs-points "$SUBS_POINTS" \
    -out "$OUT"

# The server must still be the same live process after the load: a crash
# mid-bench would have been papered over by the resilient client's
# reconnect, so a dead PID here means the numbers are not trustworthy.
if ! kill -0 "$srv" 2>/dev/null; then
    echo "bench.sh: server died during the load; log:" >&2
    cat "$log" >&2
    exit 1
fi

# Graceful drain must work and exit 0.
kill -TERM "$srv"
status=0
wait "$srv" || status=$?
if [ "$status" -ne 0 ]; then
    echo "bench.sh: server exited with status $status on SIGTERM drain; log:" >&2
    cat "$log" >&2
    exit 1
fi

echo "==> report in $OUT"
