#!/usr/bin/env sh
# bench.sh — load-test a local trajserver with the deterministic trajload
# workload and write BENCH_load.json (throughput, append latency quantiles,
# live compression ratio, server-side metrics).
#
# Usage:
#   scripts/bench.sh                 full run (seeds the perf trajectory)
#   scripts/bench.sh --smoke [out]   tiny point budget, report to a temp file
#                                    (wired into scripts/check.sh)
#
# The server listens on random loopback ports; the script parses the actual
# addresses from its log, runs trajload against both the TCP and HTTP
# endpoints (so the /metrics cross-check executes), and shuts the server
# down. Fixed seed: the workload is reproducible run to run.
set -eu

cd "$(dirname "$0")/.."

POINTS=50000
CLIENTS=8
OBJECTS=32
DURATION=16000 # seconds per trip; at ~10 s sampling this fills the budget
OUT=BENCH_load.json
if [ "${1:-}" = "--smoke" ]; then
    POINTS=800
    CLIENTS=2
    OBJECTS=4
    DURATION=1800
    OUT="${2:-$(mktemp -t bench_load.XXXXXX.json)}"
fi

workdir=$(mktemp -d -t trajbench.XXXXXX)
bin="$workdir/bin"
log="$workdir/server.log"
mkdir -p "$bin"

go build -o "$bin/trajserver" ./cmd/trajserver
go build -o "$bin/trajload" ./cmd/trajload

"$bin/trajserver" -addr 127.0.0.1:0 -http 127.0.0.1:0 >"$log" 2>&1 &
srv=$!
cleanup() {
    kill "$srv" 2>/dev/null || true
    wait "$srv" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# Wait for both listen lines to appear in the log.
i=0
while [ "$(grep -c 'listening on\|metrics on' "$log" || true)" -lt 2 ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "bench.sh: server did not start; log:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log")
http=$(sed -n 's|.*metrics on http://\([0-9.:]*\)/metrics.*|\1|p' "$log")

"$bin/trajload" -addr "$addr" -http "$http" \
    -clients "$CLIENTS" -objects "$OBJECTS" -points "$POINTS" \
    -duration "$DURATION" -seed 1 -out "$OUT"

echo "==> report in $OUT"
