#!/usr/bin/env bash
# bench_compare.sh — the bench-regression gate: re-run the full seeded
# trajload workload and compare the fresh report against the committed
# baseline BENCH_load.json.
#
# Usage:
#   scripts/bench_compare.sh [baseline.json]
#
# Exit status: 0 when within tolerance, 1 when append throughput or p50
# append latency (or, when both reports carry the sections: the 8-shard
# sweep throughput, the hot/cold query p50 latencies, the cold-tier
# footprint ratio, or any online algorithm's per-point stream-CPU cost)
# regresses by more than 20% (trajload -compare prints the table), 2 on
# usage errors.
#
# Wired into .github/workflows/ci.yml as a NON-BLOCKING job: shared CI
# runners have noisy neighbours, so a red bench-compare is a prompt to look,
# not a merge blocker.
#
# Blessing a new baseline: when a change legitimately shifts performance
# (better or worse), regenerate and commit the baseline:
#
#   scripts/bench.sh            # writes BENCH_load.json (fixed seed)
#   git add BENCH_load.json && git commit
set -euo pipefail

cd "$(dirname "$0")/.."

baseline="${1:-BENCH_load.json}"
if [ ! -f "$baseline" ]; then
    echo "bench_compare.sh: baseline $baseline not found" >&2
    exit 2
fi

fresh=$(mktemp -t bench_fresh.XXXXXX.json)
trap 'rm -f "$fresh"' EXIT INT TERM

# Full-budget run with the same fixed seed as the committed baseline, into a
# separate file so the baseline itself is never clobbered.
bash scripts/bench.sh "$fresh"

go run ./cmd/trajload -compare "$baseline" "$fresh"
