package trajcomp

// Integration tests exercising the public API end to end, the way a
// downstream user would: generate → compress → evaluate → serialize → store
// → query, plus tuning and spline reconstruction.

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestEndToEndBatchPipeline(t *testing.T) {
	p := GenerateTrip(1, Mixed, 1800)
	if err := p.Validate(); err != nil {
		t.Fatalf("generated trip invalid: %v", err)
	}

	alg := NewTDTR(30)
	a := alg.Compress(p)
	rep, err := Evaluate(alg.Name(), p, a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SyncMaxError > 30+1e-9 {
		t.Errorf("TD-TR exceeded its bound: %v", rep.SyncMaxError)
	}
	if rep.CompressionPct <= 0 {
		t.Errorf("no compression achieved: %+v", rep)
	}

	// Serialize the compressed result and read it back.
	var buf bytes.Buffer
	if err := EncodeFile(&buf, []Named{{ID: "trip", Traj: a}}); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Traj.Len() != a.Len() {
		t.Errorf("round trip changed length: %d vs %d", back[0].Traj.Len(), a.Len())
	}
}

func TestEndToEndOnlineStoreQuery(t *testing.T) {
	st := NewStore(StoreOptions{
		NewCompressor: func() Compressor { return NewOnlineOPWSP(40, 5, 64) },
		CellSize:      500,
	})
	p := GenerateTrip(2, Urban, 1200)
	for _, s := range p {
		if err := st.Append("car", s); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.CompressionPct <= 0 {
		t.Errorf("on-ingest compression ineffective: %+v", stats)
	}
	// The whole journey must be discoverable via the spatial index.
	hits := st.Query(p.Bounds(), p.StartTime(), p.EndTime())
	if len(hits) != 1 || hits[0] != "car" {
		t.Errorf("Query = %v", hits)
	}
	snap, ok := st.Snapshot("car")
	if !ok {
		t.Fatal("snapshot missing")
	}
	maxErr, err := MaxError(p, snap)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 40+1e-9 {
		t.Errorf("stored error %v exceeds tolerance", maxErr)
	}
}

func TestEndToEndParseAndSpecs(t *testing.T) {
	p := GenerateTrip(3, Rural, 900)
	for _, spec := range []string{"ndp:30", "tdtr:30", "opwsp:30:5", "butr:30", "swtr:30:16"} {
		alg, err := ParseAlgorithm(spec)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", spec, err)
		}
		a := alg.Compress(p)
		if a.Len() >= p.Len() {
			t.Errorf("%q achieved no compression", spec)
		}
	}
	if _, err := ParseAlgorithm("bogus:1"); err == nil {
		t.Error("bogus spec accepted")
	}
}

func TestEndToEndTuneThenCompress(t *testing.T) {
	sample := PaperDataset()[:3]
	res, err := TuneForError(NewTDTR, sample, 15, 0.5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgError > 15 {
		t.Errorf("tuned error %v above budget", res.AvgError)
	}
	// Apply the tuned threshold to unseen data; mean error should be of the
	// same order (it is a statistical, not worst-case, bound).
	fresh := GenerateTrip(77, Mixed, 1800)
	a := NewTDTR(res.Threshold).Compress(fresh)
	e, err := AvgError(fresh, a)
	if err != nil {
		t.Fatal(err)
	}
	if e > 3*15 {
		t.Errorf("tuned threshold generalizes badly: error %v on fresh data", e)
	}
}

func TestEndToEndSplineReconstruction(t *testing.T) {
	p := GenerateTrip(4, Urban, 900)
	a := NewTDTR(25).Compress(p)
	sp, err := NewSpline(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.At(p.StartTime() + p.Duration()/2); !ok {
		t.Error("spline cannot answer mid-trip time")
	}
	se, err := SplineAvgError(p, a, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	le, err := AvgError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	// Both error notions must be of the same order on car data.
	if se > 5*le+5 || se < le/5-5 {
		t.Errorf("spline error %v wildly different from linear %v", se, le)
	}
}

func TestEndToEndPipelineChannel(t *testing.T) {
	p := GenerateTrip(5, Urban, 600)
	in := make(chan Sample)
	out := make(chan Sample, p.Len())
	errc := make(chan error, 1)
	go func() { errc <- Pipeline(context.Background(), NewOnlineOPWTR(30, 0), in, out) }()
	for _, s := range p {
		in <- s
	}
	close(in)
	var got Trajectory
	for s := range out {
		got = append(got, s)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	batch := NewOPWTR(30).Compress(p)
	if got.Len() != batch.Len() {
		t.Errorf("pipeline %d points vs batch %d", got.Len(), batch.Len())
	}
}

func TestEndToEndGeoJSONAndCSV(t *testing.T) {
	p := GenerateTrip(6, Mixed, 600)
	named := []Named{{ID: "t1", Traj: p}}

	var csvBuf bytes.Buffer
	if err := EncodeCSV(&csvBuf, named); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Traj.Len() != p.Len() {
		t.Errorf("CSV round trip lost samples")
	}

	proj, err := NewProjector(LatLon{Lat: 52.22, Lon: 6.89})
	if err != nil {
		t.Fatal(err)
	}
	var gj bytes.Buffer
	if err := EncodeGeoJSON(&gj, named, proj); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gj.String(), "FeatureCollection") {
		t.Error("GeoJSON output malformed")
	}
}

func TestPaperDatasetViaFacade(t *testing.T) {
	ds := PaperDataset()
	if len(ds) != 10 {
		t.Fatalf("PaperDataset has %d trajectories", len(ds))
	}
	stats := SummarizeDataset(ds)
	if stats.Mean.NumPoints < 140 || stats.Mean.NumPoints > 260 {
		t.Errorf("dataset mean points %d out of calibration", stats.Mean.NumPoints)
	}
	if s := Summarize(ds[0]); s.NumPoints != ds[0].Len() {
		t.Errorf("Summarize inconsistent: %+v", s)
	}
}

func TestBuilderViaFacade(t *testing.T) {
	b := NewBuilder(4)
	for i := 0; i < 4; i++ {
		if err := b.AppendPoint(float64(i), float64(i*10), 0); err != nil {
			t.Fatal(err)
		}
	}
	p := b.Trajectory()
	if CompressionRate(p.Len(), NewUniform(2).Compress(p).Len()) <= 0 {
		t.Error("facade round trip failed")
	}
	if _, err := NewTrajectory([]Sample{S(1, 0, 0), S(0, 0, 0)}); err == nil {
		t.Error("invalid samples accepted")
	}
	d := SyncDistance(S(5, 0, 10), S(0, 0, 0), S(10, 100, 0))
	if d < 49 || d > 52 {
		t.Errorf("SyncDistance = %v, want ≈ sqrt(50²+10²)", d)
	}
}
