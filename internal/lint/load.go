package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the full import path, e.g. "repro/internal/geo".
	ImportPath string
	// RelKey is the module-root-relative directory with forward slashes:
	// "internal/geo", "cmd/trajlint", or "." for the root package.
	RelKey string
	// Key is the short layering key: RelKey without the "internal/"
	// prefix for internal packages ("geo", "sed", ...), otherwise "".
	Key string
	Dir string

	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TestOnly marks packages that exist only because tests were loaded
	// (the augmented base+_test.go package and external *_test packages).
	// Findings they produce in non-test files duplicate the base package's
	// and are suppressed centrally in Run.
	TestOnly bool
}

// Internal reports whether the package lives under internal/.
func (p *Package) Internal() bool { return p.Key != "" }

// Module is the fully loaded and type-checked module tree.
type Module struct {
	Root string // absolute filesystem root (directory holding go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	// Packages in dependency (topological) order.
	Packages []*Package

	byPath map[string]*Package
	// allows maps "relfile:line" → set of analyzer names suppressed there
	// by //lint:allow annotations.
	allows map[string]map[string]string
	// testFiles maps module-relative _test.go paths loaded by
	// LoadWithTests.
	testFiles map[string]bool
	// augOf maps an import path to its augmented (base+in-package-test)
	// package, so external foo_test packages type-check against the same
	// view of foo that `go test` compiles them with (in-package test
	// helpers like export_test.go definitions are visible to them).
	augOf map[string]*Package
	// df caches the concurrency-dataflow results (dataflow.go).
	df *moduleFlow
}

// IsTestFile reports whether a module-relative path was loaded as a test
// file.
func (m *Module) IsTestFile(rel string) bool { return m.testFiles[rel] }

// isTestPos reports whether pos lies in a loaded test file.
func (m *Module) isTestPos(pos token.Pos) bool {
	file, _, _ := m.position(pos)
	return m.testFiles[file]
}

// Load parses and type-checks every non-test package under root, which must
// contain a go.mod. Directories named testdata, vendor, or starting with
// "." or "_" are skipped. Test files (_test.go) are not analyzed: tests
// intentionally use exact float comparisons and ad-hoc goroutines.
func Load(root string) (*Module, error) {
	return loadModule(root, false)
}

// LoadWithTests additionally parses and type-checks _test.go files. Files
// in package foo join a separate "augmented" copy of package foo (the base
// package stays test-free, so analysis of production code is unchanged);
// files in package foo_test become their own package importing the checked
// base. Both are marked TestOnly.
func LoadWithTests(root string) (*Module, error) {
	return loadModule(root, true)
}

func loadModule(root string, tests bool) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:      root,
		Path:      modPath,
		Fset:      token.NewFileSet(),
		byPath:    make(map[string]*Package),
		allows:    make(map[string]map[string]string),
		testFiles: make(map[string]bool),
		augOf:     make(map[string]*Package),
	}
	if err := m.parseTree(tests); err != nil {
		return nil, err
	}
	if err := m.check(); err != nil {
		return nil, err
	}
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module path in %s", gomod)
}

func (m *Module) parseTree(tests bool) error {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if err := m.parseDir(dir, tests); err != nil {
			return err
		}
	}
	return nil
}

func (m *Module) parseDir(dir string, tests bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	var files, testFs []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !tests {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		m.scanAllows(f)
		if isTest {
			m.testFiles[m.relFile(filepath.Join(dir, name))] = true
			testFs = append(testFs, f)
		} else {
			files = append(files, f)
		}
	}
	if len(files) == 0 && len(testFs) == 0 {
		return nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	rel = filepath.ToSlash(rel)
	importPath := m.Path
	if rel != "." {
		importPath = m.Path + "/" + rel
	}
	key := strings.TrimPrefix(rel, "internal/")
	if !strings.HasPrefix(rel, "internal/") {
		key = ""
	}
	var base *Package
	if len(files) > 0 {
		base = &Package{
			ImportPath: importPath,
			RelKey:     rel,
			Key:        key,
			Dir:        dir,
			Files:      files,
		}
		m.Packages = append(m.Packages, base)
		m.byPath[importPath] = base
	}
	if len(testFs) == 0 {
		return nil
	}
	// Split test files into in-package (package foo) and external
	// (package foo_test) sets.
	var inPkg, external []*ast.File
	for _, f := range testFs {
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	if len(inPkg) > 0 && base != nil {
		// The augmented package is a leaf: it re-checks the base sources
		// together with the test files, is never imported by anything, and
		// so cannot create an import cycle even when a test imports a
		// package that itself imports the base.
		aug := &Package{
			ImportPath: importPath,
			RelKey:     rel,
			Key:        key,
			Dir:        dir,
			Files:      append(append([]*ast.File{}, files...), inPkg...),
			TestOnly:   true,
		}
		m.Packages = append(m.Packages, aug)
		m.augOf[importPath] = aug
	}
	if len(external) > 0 {
		ext := &Package{
			ImportPath: importPath + "_test",
			RelKey:     rel,
			Key:        key,
			Dir:        dir,
			Files:      external,
			TestOnly:   true,
		}
		m.Packages = append(m.Packages, ext)
	}
	return nil
}

// scanAllows records //lint:allow annotations. An annotation suppresses
// diagnostics of the named analyzer on its own line and on the line
// immediately following its comment group (so a comment block directly above
// a statement covers that statement).
func (m *Module) scanAllows(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//lint:allow ")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			analyzer := fields[0]
			reason := strings.TrimSpace(strings.TrimPrefix(rest, analyzer))
			pos := m.Fset.Position(c.Pos())
			end := m.Fset.Position(cg.End())
			m.addAllow(pos.Filename, pos.Line, analyzer, reason)
			m.addAllow(pos.Filename, end.Line+1, analyzer, reason)
		}
	}
}

func (m *Module) addAllow(file string, line int, analyzer, reason string) {
	key := m.relFile(file) + ":" + strconv.Itoa(line)
	set := m.allows[key]
	if set == nil {
		set = make(map[string]string)
		m.allows[key] = set
	}
	set[analyzer] = reason
}

// allowed reports whether an annotation suppresses analyzer at file:line,
// along with the annotation's reason text.
func (m *Module) allowed(file string, line int, analyzer string) (string, bool) {
	set := m.allows[file+":"+strconv.Itoa(line)]
	reason, ok := set[analyzer]
	return reason, ok
}

func (m *Module) relFile(file string) string {
	if rel, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// position converts a token.Pos into a module-relative (file, line, col).
func (m *Module) position(pos token.Pos) (string, int, int) {
	p := m.Fset.Position(pos)
	return m.relFile(p.Filename), p.Line, p.Column
}

// moduleImporter resolves module-internal imports from the already-checked
// package set and everything else (the standard library) through the
// compiler source importer, so the loader needs no toolchain export data.
type moduleImporter struct {
	m   *Module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := mi.m.byPath[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p.Types, nil
	}
	if from, ok := mi.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return mi.std.Import(path)
}

// selfTestImporter redirects one import path — an external test package's
// own base package — to the augmented copy that includes the in-package
// test files; every other import goes through the normal chain.
type selfTestImporter struct {
	next *moduleImporter
	path string
	aug  *types.Package
}

func (si *selfTestImporter) Import(path string) (*types.Package, error) {
	return si.ImportFrom(path, "", 0)
}

func (si *selfTestImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == si.path {
		return si.aug, nil
	}
	return si.next.ImportFrom(path, dir, mode)
}

// check type-checks every package in dependency order.
func (m *Module) check() error {
	order, err := m.topoOrder()
	if err != nil {
		return err
	}
	imp := &moduleImporter{m: m, std: importer.ForCompiler(m.Fset, "source", nil)}
	for _, p := range order {
		// An external foo_test package sees the augmented foo (with its
		// in-package test files), mirroring how `go test` links them.
		pkgImp := types.Importer(imp)
		if base, ok := strings.CutSuffix(p.ImportPath, "_test"); ok && p.TestOnly {
			if aug := m.augOf[base]; aug != nil && aug.Types != nil {
				pkgImp = &selfTestImporter{next: imp, path: base, aug: aug.Types}
			}
		}
		var firstErr error
		conf := types.Config{
			Importer: pkgImp,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		info := &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Defs:  make(map[*ast.Ident]types.Object),
			Uses:  make(map[*ast.Ident]types.Object),
		}
		tp, err := conf.Check(p.ImportPath, m.Fset, p.Files, info)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if firstErr != nil {
			return fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, firstErr)
		}
		p.Types = tp
		p.Info = info
	}
	m.Packages = order
	return nil
}

// topoOrder sorts packages so every package follows its in-module imports.
func (m *Module) topoOrder() ([]*Package, error) {
	const (
		unseen = iota
		visiting
		done
	)
	state := make(map[*Package]int, len(m.Packages))
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case visiting:
			return fmt.Errorf("lint: import cycle involving %s", p.ImportPath)
		case done:
			return nil
		}
		state[p] = visiting
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := m.byPath[path]; ok {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range m.Packages {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
