package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// riskyMathFuncs are math functions that return NaN (or ±Inf) for arguments
// outside their domain — the exact failure mode of the paper's closed-form
// integral when c1, the discriminant, or a time span degenerates.
var riskyMathFuncs = map[string]bool{
	"Sqrt": true, "Asinh": true, "Acosh": true, "Atanh": true,
	"Asin": true, "Acos": true,
	"Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Pow": true,
}

// mitigationDoc matches doc-comment vocabulary that documents a NaN/Inf
// precondition or degenerate-case contract.
var mitigationDoc = regexp.MustCompile(`(?i)(\bnan\b|\binf\b|\binfinit|\bdegenerate\b|\bprecondition\b|\bfinite\b|\bpanics?\b)`)

// nanguard flags exported functions in the numeric-core packages
// (Config.NaNGuardPkgs) that return a float computed through a
// NaN/Inf-capable operation — a risky math call or a division by a
// non-constant — without either an explicit math.IsNaN/math.IsInf guard in
// the body or a doc comment stating the precondition (mentioning NaN, Inf,
// degenerate, finite, or panic behaviour). A silent NaN here becomes a
// wrong compression ratio downstream, not a crash.
func nanguard(m *Module, p *Package, cfg *Config) []Diagnostic {
	if !cfg.NaNGuardPkgs[p.Key] {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedFunc(p, fd) {
				continue
			}
			if !returnsFloat(p, fd) {
				continue
			}
			risk := riskyOp(p, fd.Body)
			if risk == "" {
				continue
			}
			if bodyGuardsNonFinite(p, fd.Body) || mitigationDoc.MatchString(fd.Doc.Text()) {
				continue
			}
			file, line, col := m.position(fd.Name.Pos())
			out = append(out, Diagnostic{
				File: file, Line: line, Col: col,
				Message: fmt.Sprintf("exported %s returns a float computed via %s without a NaN/Inf guard (math.IsNaN/math.IsInf) or a documented precondition (mention NaN/Inf/degenerate/finite/panics in the doc comment)", fd.Name.Name, risk),
			})
		}
	}
	return out
}

// exportedFunc reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported type.
func exportedFunc(p *Package, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := p.Info.Types[fd.Recv.List[0].Type].Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return !ok || named.Obj().Exported()
}

func returnsFloat(p *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if isFloat(p.Info.Types[field.Type].Type) {
			return true
		}
	}
	return false
}

// riskyOp returns a description of the first NaN/Inf-capable operation in
// body, or "" if there is none.
func riskyOp(p *Package, body *ast.BlockStmt) string {
	var risk string
	ast.Inspect(body, func(n ast.Node) bool {
		if risk != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(p, n); fn != nil && isPkgFunc(fn, "math") && riskyMathFuncs[fn.Name()] {
				risk = "math." + fn.Name()
				return false
			}
		case *ast.BinaryExpr:
			if n.Op == token.QUO && isFloat(p.Info.Types[n.X].Type) && !nonZeroConst(p, n.Y) {
				risk = "division by a non-constant"
				return false
			}
		}
		return true
	})
	return risk
}

// nonZeroConst reports whether e is a compile-time constant other than zero
// (dividing by it cannot produce NaN/Inf from the division itself).
func nonZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() != "0"
}

// bodyGuardsNonFinite reports whether the body inspects its values with
// math.IsNaN or math.IsInf anywhere.
func bodyGuardsNonFinite(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(p, call); fn != nil {
			if isPkgFunc(fn, "math") && (fn.Name() == "IsNaN" || fn.Name() == "IsInf") {
				found = true
				return false
			}
			// Treat a call to a finiteness helper (e.g. geo.Point.IsFinite)
			// as a guard too.
			if strings.Contains(fn.Name(), "IsFinite") || strings.Contains(fn.Name(), "Finite") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions and built-ins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func isPkgFunc(fn *types.Func, pkgPath string) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}
