package lint

// dataflow.go is the shared substrate for the type-aware concurrency
// analyzers (mutexguard, lockorder, atomicmix). It computes, per function,
// a conservative lock-set at every interesting program point:
//
//   - a syntax-directed walk over each function body tracks which
//     sync.Mutex / sync.RWMutex instances are held after every statement
//     (Lock/RLock add, Unlock/RUnlock remove, defer Unlock holds to the
//     end, branches merge by intersection, branches that terminate in
//     return/panic/break do not leak their lock-state into the join);
//   - a module-level fixpoint propagates "ambient" locks through private
//     helpers: if every call site of an unexported function holds lock L
//     on the receiver/argument it passes, the helper's body is re-walked
//     with L held on entry — this is what lets xxxLocked helpers see the
//     lock their callers took;
//   - per-function transitive summaries (locks acquired, locks released,
//     blocking operations performed) let the analyzers reason about calls
//     whose bodies live in other packages.
//
// Everything is intersection-based (may-hold becomes must-hold only when
// every path agrees), so the substrate under-approximates the held set and
// the analyzers built on it err toward reporting, never toward silently
// passing a real race.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockMode distinguishes exclusive from shared (RLock) acquisition.
type lockMode int

const (
	modeShared lockMode = iota + 1
	modeExcl
)

// lockRef names one lock instance inside a function scope: the variable the
// lock is reached from plus the dotted field path to it ("mu", "log.mu", or
// "" when the variable itself is the mutex).
type lockRef struct {
	root types.Object
	path string
}

// lockClass names a lock at type granularity, e.g.
// "repro/internal/wal.Log.mu" or "repro/internal/store.shard.mu"; package
// level mutex variables use "pkgpath.varname". The empty class means the
// instance could not be classified (e.g. a local mutex variable).
type lockClass string

// heldSet is the set of locks held at a program point.
type heldSet map[lockRef]lockMode

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersectHeld keeps locks held on both paths; when the modes disagree the
// weaker (shared) mode survives.
func intersectHeld(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				out[k] = vb
			} else {
				out[k] = va
			}
		}
	}
	return out
}

// replaceHeld overwrites dst's contents with src, in place.
func replaceHeld(dst, src heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func unionHeld(a, b heldSet) heldSet {
	out := a.clone()
	for k, v := range b {
		if cur, ok := out[k]; !ok || v > cur {
			out[k] = v
		}
	}
	return out
}

// accessEvent is one read or write of a struct field.
type accessEvent struct {
	root  types.Object
	path  string       // dotted path from root, e.g. "objects" or "log.path"
	owner *types.Named // struct type that declares the final field
	field *types.Var
	write bool
	pos   token.Pos
	held  heldSet
	// compositeLocal marks accesses through a local variable initialized
	// from a composite literal in the same function: the object is still
	// under construction and not yet shared, so lock discipline does not
	// apply.
	compositeLocal bool
}

// acquireEvent is one Lock/RLock call; held is the set held just before.
type acquireEvent struct {
	ref   lockRef
	class lockClass
	mode  lockMode
	pos   token.Pos
	held  heldSet
}

// binding maps a caller-side lock root onto a callee parameter: index -1 is
// the receiver, otherwise the flattened parameter index.
type binding struct {
	index  int
	root   types.Object
	prefix string // field path from root the callee sees as its parameter
}

// callEvent is one statically-resolved call to a module-internal function.
type callEvent struct {
	callee   *types.Func
	pos      token.Pos
	held     heldSet
	bindings []binding
	async    bool // go statement: the callee runs outside this lock scope
	// construction marks method calls whose receiver is a local freshly
	// built from a composite literal: the object is not shared yet, so the
	// lock-free call site must not weaken the callee's ambient inference.
	construction bool
}

// blockEvent is one potentially-blocking operation (fsync, channel send).
type blockEvent struct {
	kind string // "fsync" or "send"
	desc string
	pos  token.Pos
	held heldSet
}

// funcFlow is the per-function analysis result.
type funcFlow struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	accesses []accessEvent
	acquires []acquireEvent
	calls    []callEvent
	blocks   []blockEvent
	releases map[lockClass]bool

	ambient heldSet // locks held at every call site, in this fn's scope

	recvObj   types.Object
	paramObjs []types.Object

	compositeLocals map[types.Object]bool
}

func (ff *funcFlow) reset() {
	ff.accesses, ff.acquires, ff.calls, ff.blocks = nil, nil, nil, nil
	ff.releases = make(map[lockClass]bool)
	ff.compositeLocals = make(map[types.Object]bool)
}

// bindTarget resolves a binding index to this function's receiver or
// parameter object (nil for anonymous parameters).
func (ff *funcFlow) bindTarget(index int) types.Object {
	if index == -1 {
		return ff.recvObj
	}
	if index >= 0 && index < len(ff.paramObjs) {
		return ff.paramObjs[index]
	}
	return nil
}

type callSite struct {
	caller *funcFlow
	ev     *callEvent
}

// moduleFlow caches the whole-module dataflow results on the Module.
type moduleFlow struct {
	m         *Module
	funcs     map[*types.Func]*funcFlow
	addrTaken map[*types.Func]bool
	callers   map[*types.Func][]callSite

	acquiredTrans map[*types.Func]map[lockClass]bool
	releasesTrans map[*types.Func]map[lockClass]bool
	blocksTrans   map[*types.Func]map[string]bool

	classCache map[lockRef]lockClass

	guardStats map[string]*guardStat // built lazily by mutexguard
	lockGraph  *lockGraph            // built lazily by lockorder
}

// flow computes (once) and returns the module-wide dataflow results.
func (m *Module) flow() *moduleFlow {
	if m.df == nil {
		m.df = buildFlow(m)
	}
	return m.df
}

func buildFlow(m *Module) *moduleFlow {
	mf := &moduleFlow{
		m:          m,
		funcs:      make(map[*types.Func]*funcFlow),
		addrTaken:  make(map[*types.Func]bool),
		classCache: make(map[lockRef]lockClass),
	}
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &funcFlow{fn: fn, decl: fd, pkg: p}
				if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					ff.recvObj = p.Info.Defs[fd.Recv.List[0].Names[0]]
				}
				for _, field := range fd.Type.Params.List {
					if len(field.Names) == 0 {
						ff.paramObjs = append(ff.paramObjs, nil)
						continue
					}
					for _, name := range field.Names {
						ff.paramObjs = append(ff.paramObjs, p.Info.Defs[name])
					}
				}
				mf.funcs[fn] = ff
			}
		}
	}
	// Phase 1: walk every body with an empty entry lock-set to discover the
	// call graph and the per-call held sets.
	mf.walkAll(false)
	mf.collectCallers()
	mf.solveAmbient()
	// Phase 2: re-walk with the ambient locks seeded on entry, so mid-body
	// releases of an ambient lock (the group-commit fsync pattern) are
	// tracked precisely.
	mf.walkAll(true)
	mf.collectCallers()
	mf.solveSummaries()
	return mf
}

func (mf *moduleFlow) walkAll(seedAmbient bool) {
	for _, ff := range mf.funcs {
		ff.reset()
		held := make(heldSet)
		if seedAmbient {
			for k, v := range ff.ambient {
				held[k] = v
			}
		}
		w := &flowWalker{mf: mf, ff: ff, p: ff.pkg}
		w.stmts(ff.decl.Body.List, held)
	}
}

func (mf *moduleFlow) collectCallers() {
	mf.callers = make(map[*types.Func][]callSite)
	for _, ff := range mf.funcs {
		for i := range ff.calls {
			ev := &ff.calls[i]
			mf.callers[ev.callee] = append(mf.callers[ev.callee], callSite{caller: ff, ev: ev})
		}
	}
}

// propagatable reports whether ambient-lock inference is sound for fn: the
// function must be unexported (all call sites visible), never used as a
// value, and actually called somewhere.
func (mf *moduleFlow) propagatable(ff *funcFlow) bool {
	name := ff.fn.Name()
	if ast.IsExported(name) || name == "init" || name == "main" {
		return false
	}
	if mf.addrTaken[ff.fn] {
		return false
	}
	return len(mf.callers[ff.fn]) > 0
}

// solveAmbient runs the descending fixpoint: ambient(fn) is the
// intersection over all call sites of the caller's effective held set
// mapped through the argument/receiver bindings into fn's scope. nil means
// "not yet known" (top); non-propagatable functions are pinned at empty.
func (mf *moduleFlow) solveAmbient() {
	for _, ff := range mf.funcs {
		if mf.propagatable(ff) {
			ff.ambient = nil // top
		} else {
			ff.ambient = make(heldSet)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range mf.funcs {
			if !mf.propagatable(ff) {
				continue
			}
			var newAmb heldSet // nil = top
			resolved := true
			for _, site := range mf.callers[ff.fn] {
				if site.ev.construction {
					continue // unshared receiver: lock discipline not needed
				}
				callerAmb := site.caller.ambient
				if callerAmb == nil {
					resolved = false
					continue
				}
				eff := unionHeld(site.ev.held, callerAmb)
				mapped := mapHeldToCallee(eff, site.ev, ff)
				if newAmb == nil {
					newAmb = mapped
				} else {
					newAmb = intersectHeld(newAmb, mapped)
				}
			}
			if newAmb == nil {
				if resolved {
					newAmb = make(heldSet)
				} else {
					continue // every site still top; try next round
				}
			}
			if !sameHeld(ff.ambient, newAmb) {
				ff.ambient = newAmb
				changed = true
			}
		}
	}
	// Anything still top after the fixpoint sits on a call cycle with no
	// resolved entry point; pin it at empty (conservative).
	for _, ff := range mf.funcs {
		if ff.ambient == nil {
			ff.ambient = make(heldSet)
		}
	}
}

func sameHeld(a, b heldSet) bool {
	if a == nil || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// mapHeldToCallee translates caller-scope held locks into callee scope via
// the call's receiver/argument bindings.
func mapHeldToCallee(eff heldSet, ev *callEvent, callee *funcFlow) heldSet {
	out := make(heldSet)
	for ref, mode := range eff {
		for _, b := range ev.bindings {
			if ref.root != b.root {
				continue
			}
			rest, ok := cutPathPrefix(ref.path, b.prefix)
			if !ok {
				continue
			}
			target := callee.bindTarget(b.index)
			if target == nil {
				continue
			}
			key := lockRef{root: target, path: rest}
			if cur, exists := out[key]; !exists || mode > cur {
				out[key] = mode
			}
		}
	}
	return out
}

// cutPathPrefix removes prefix from a dotted path: ("log.mu", "log") →
// ("mu", true); ("mu", "") → ("mu", true); ("mu", "log") → (_, false).
func cutPathPrefix(path, prefix string) (string, bool) {
	if prefix == "" {
		return path, true
	}
	if path == prefix {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, prefix+"."); ok {
		return rest, true
	}
	return "", false
}

// solveSummaries computes the transitive acquired/released lock classes and
// blocking-operation kinds per function.
func (mf *moduleFlow) solveSummaries() {
	mf.acquiredTrans = make(map[*types.Func]map[lockClass]bool)
	mf.releasesTrans = make(map[*types.Func]map[lockClass]bool)
	mf.blocksTrans = make(map[*types.Func]map[string]bool)
	for fn, ff := range mf.funcs {
		acq := make(map[lockClass]bool)
		for _, ev := range ff.acquires {
			if ev.class != "" {
				acq[ev.class] = true
			}
		}
		rel := make(map[lockClass]bool)
		for c := range ff.releases {
			if c != "" {
				rel[c] = true
			}
		}
		blk := make(map[string]bool)
		for _, ev := range ff.blocks {
			blk[ev.kind] = true
		}
		mf.acquiredTrans[fn] = acq
		mf.releasesTrans[fn] = rel
		mf.blocksTrans[fn] = blk
	}
	for changed := true; changed; {
		changed = false
		for fn, ff := range mf.funcs {
			for i := range ff.calls {
				ev := &ff.calls[i]
				if ev.async {
					continue
				}
				changed = mergeClassSet(mf.acquiredTrans[fn], mf.acquiredTrans[ev.callee]) || changed
				changed = mergeClassSet(mf.releasesTrans[fn], mf.releasesTrans[ev.callee]) || changed
				changed = mergeKindSet(mf.blocksTrans[fn], mf.blocksTrans[ev.callee]) || changed
			}
		}
	}
}

func mergeClassSet(dst, src map[lockClass]bool) bool {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return changed
}

func mergeKindSet(dst, src map[string]bool) bool {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return changed
}

// classOf resolves a lockRef to its type-level class, caching the result.
func (mf *moduleFlow) classOf(ref lockRef) lockClass {
	if c, ok := mf.classCache[ref]; ok {
		return c
	}
	c := computeClass(ref)
	mf.classCache[ref] = c
	return c
}

func computeClass(ref lockRef) lockClass {
	if ref.root == nil {
		return ""
	}
	if ref.path == "" {
		// The variable itself is the lock; only package-level variables
		// have a stable identity across functions.
		if v, ok := ref.root.(*types.Var); ok && !v.IsField() && v.Parent() != nil &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockClass(v.Pkg().Path() + "." + v.Name())
		}
		return ""
	}
	t := ref.root.Type()
	segs := strings.Split(ref.path, ".")
	var owner *types.Named
	var field *types.Var
	for _, seg := range segs {
		owner, field = fieldOwner(t, seg)
		if owner == nil {
			return ""
		}
		t = field.Type()
	}
	obj := owner.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return lockClass(obj.Pkg().Path() + "." + obj.Name() + "." + field.Name())
}

// fieldOwner finds the named struct type (possibly through embedding) that
// declares field name on t, returning the declaring type and the field.
func fieldOwner(t types.Type, name string) (*types.Named, *types.Var) {
	t = derefType(t)
	named, _ := t.(*types.Named)
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name {
			if named == nil {
				return nil, nil // anonymous struct: no stable class
			}
			return named, f
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Embedded() {
			continue
		}
		if owner, fv := fieldOwner(f.Type(), name); owner != nil {
			return owner, fv
		}
	}
	return nil, nil
}

// isLockType reports whether t is one of the sync lock types tracked here.
func isLockType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
		return true
	}
	return false
}

// lockFieldsOf lists the sync.Mutex/RWMutex fields declared directly on the
// struct underlying named.
func lockFieldsOf(named *types.Named) []*types.Var {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if n, ok := derefType(f.Type()).(*types.Named); ok {
			if obj := n.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
				out = append(out, f)
			}
		}
	}
	return out
}

// chainRoot resolves an expression to (root variable, dotted field path).
// It follows selector chains through pointers and parentheses; package
// qualified variables resolve to the variable itself with an empty path.
func chainRoot(p *Package, e ast.Expr) (types.Object, string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			return v, "", true
		}
		return nil, "", false
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok {
					return v, "", true
				}
				return nil, "", false
			}
		}
		root, path, ok := chainRoot(p, x.X)
		if !ok {
			return nil, "", false
		}
		v, ok := p.Info.Uses[x.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return nil, "", false
		}
		return root, joinPath(path, x.Sel.Name), true
	case *ast.StarExpr:
		return chainRoot(p, x.X)
	}
	return nil, "", false
}

func joinPath(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}

func parentPath(path string) string {
	if i := strings.LastIndex(path, "."); i >= 0 {
		return path[:i]
	}
	return ""
}
