package lint

// walk.go is the syntax-directed lock-set walker behind dataflow.go: one
// pass per function body, mutating a heldSet as Lock/Unlock calls are seen
// and recording access/acquire/call/block events with a snapshot of the
// locks held at that point.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type flowWalker struct {
	mf *moduleFlow
	ff *funcFlow
	p  *Package
}

// stmts walks a statement list sequentially, mutating held; it reports
// whether control definitely does not fall off the end (return, panic, or a
// branch statement).
func (w *flowWalker) stmts(list []ast.Stmt, held heldSet) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *flowWalker) stmt(s ast.Stmt, held heldSet) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && w.terminates(call) {
			for _, a := range call.Args {
				w.expr(a, held)
			}
			return true
		}
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs, held)
		}
		if s.Tok == token.DEFINE {
			// Remember locals initialized from composite literals: the
			// value is under construction and not yet shared.
			if len(s.Rhs) == len(s.Lhs) {
				for i, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && isCompositeInit(s.Rhs[i]) {
						if obj := w.p.Info.Defs[id]; obj != nil {
							w.ff.compositeLocals[obj] = true
						}
					}
				}
			}
		} else {
			for _, lhs := range s.Lhs {
				w.writeTarget(lhs, held)
			}
		}
	case *ast.IncDecStmt:
		w.writeTarget(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
					if len(vs.Values) == len(vs.Names) {
						for i, name := range vs.Names {
							if isCompositeInit(vs.Values[i]) {
								if obj := w.p.Info.Defs[name]; obj != nil {
									w.ff.compositeLocals[obj] = true
								}
							}
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, held)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto/fallthrough: conservative join
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenHeld := held.clone()
		thenTerm := w.stmts(s.Body.List, thenHeld)
		elseHeld := held.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceHeld(held, elseHeld)
		case elseTerm:
			replaceHeld(held, thenHeld)
		default:
			replaceHeld(held, intersectHeld(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := held.clone()
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		// Lock-state changes inside a loop body do not escape it: the body
		// may run zero times, so the conservative post-loop state is the
		// pre-loop one.
	case *ast.RangeStmt:
		w.expr(s.X, held)
		body := held.clone()
		w.stmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		return w.caseMerge(s.Body, held, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		return w.caseMerge(s.Body, held, false)
	case *ast.SelectStmt:
		return w.caseMerge(s.Body, held, true)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
		w.ff.blocks = append(w.ff.blocks, blockEvent{
			kind: "send", desc: "channel send", pos: s.Arrow, held: held.clone(),
		})
	case *ast.GoStmt:
		w.goCall(s.Call, held)
	case *ast.DeferStmt:
		w.deferCall(s.Call, held)
	}
	return false
}

// caseMerge walks switch/select clause bodies on cloned lock-sets and joins
// the survivors by intersection. A switch with no default keeps the
// original held set as one path; a select always takes exactly one clause.
func (w *flowWalker) caseMerge(body *ast.BlockStmt, held heldSet, isSelect bool) bool {
	var results []heldSet
	hasDefault := false
	for _, cs := range body.List {
		var clauseBody []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.expr(e, held)
			}
			clauseBody = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			clauseBody = c.Body
		default:
			continue
		}
		branch := held.clone()
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
			// The comm statement itself never flags as a blocking send: the
			// select construct makes it conditional.
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				w.expr(comm.Chan, branch)
				w.expr(comm.Value, branch)
			default:
				w.stmt(comm, branch)
			}
		}
		if !w.stmts(clauseBody, branch) {
			results = append(results, branch)
		}
	}
	if !isSelect && !hasDefault {
		results = append(results, held.clone())
	}
	if len(results) == 0 {
		return len(body.List) > 0 // every clause terminated
	}
	merged := results[0]
	for _, r := range results[1:] {
		merged = intersectHeld(merged, r)
	}
	replaceHeld(held, merged)
	return false
}

// expr scans an expression in read context.
func (w *flowWalker) expr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		if fn, ok := w.p.Info.Uses[x].(*types.Func); ok {
			if _, tracked := w.mf.funcs[fn]; tracked {
				w.mf.addrTaken[fn] = true
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := w.p.Info.Uses[x.Sel].(*types.Func); ok {
			// Method value (s.handle passed as a func): its body can run
			// with any lock state, so ambient inference must not trust it.
			if _, tracked := w.mf.funcs[fn]; tracked {
				w.mf.addrTaken[fn] = true
			}
			w.expr(x.X, held)
			return
		}
		if !w.recordChain(x, held, false) {
			w.expr(x.X, held)
		}
	case *ast.CallExpr:
		w.call(x, held, callNormal)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if !w.recordChain(x.X, held, true) {
				w.expr(x.X, held)
			}
			return
		}
		w.expr(x.X, held)
	case *ast.BinaryExpr:
		w.expr(x.X, held)
		w.expr(x.Y, held)
	case *ast.ParenExpr:
		w.expr(x.X, held)
	case *ast.StarExpr:
		if !w.recordChain(x, held, false) {
			w.expr(x.X, held)
		}
	case *ast.IndexExpr:
		w.expr(x.X, held)
		w.expr(x.Index, held)
	case *ast.IndexListExpr:
		w.expr(x.X, held)
		for _, idx := range x.Indices {
			w.expr(idx, held)
		}
	case *ast.SliceExpr:
		w.expr(x.X, held)
		w.expr(x.Low, held)
		w.expr(x.High, held)
		w.expr(x.Max, held)
	case *ast.TypeAssertExpr:
		w.expr(x.X, held)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.expr(el, held)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Value, held)
	case *ast.FuncLit:
		// A function literal used as a value may run with any lock state;
		// walk its body with nothing held. Literals invoked on the spot are
		// handled by call()/goCall()/deferCall().
		w.stmts(x.Body.List, make(heldSet))
	}
}

// writeTarget scans an assignment LHS: the final field of a selector chain
// is a write, everything on the way there is a read.
func (w *flowWalker) writeTarget(e ast.Expr, held heldSet) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		// Writing a plain variable: no field access.
	case *ast.SelectorExpr:
		if !w.recordChain(x, held, true) {
			w.expr(x.X, held)
		}
	case *ast.IndexExpr:
		// m[k] = v mutates the map/slice held in the field: a write to it.
		if !w.recordChain(x.X, held, true) {
			w.expr(x.X, held)
		}
		w.expr(x.Index, held)
	case *ast.StarExpr:
		// *p = v writes through the pointer; the chain itself is read.
		w.expr(x.X, held)
	default:
		w.expr(e, held)
	}
}

type callKind int

const (
	callNormal callKind = iota
	callGo
	callDefer
)

func (w *flowWalker) goCall(c *ast.CallExpr, held heldSet) {
	if lit, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		for _, a := range c.Args {
			w.expr(a, held)
		}
		w.stmts(lit.Body.List, make(heldSet))
		return
	}
	w.call(c, held, callGo)
}

func (w *flowWalker) deferCall(c *ast.CallExpr, held heldSet) {
	if lit, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		for _, a := range c.Args {
			w.expr(a, held)
		}
		// Deferred cleanup typically runs with the locks of the happy path
		// still decided by the body; walking with the current set covers
		// the dominant defer-unlock-and-finish pattern.
		w.stmts(lit.Body.List, held.clone())
		return
	}
	if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
		if name, _, ok := lockMethod(w.p, sel); ok {
			if name == "Unlock" || name == "RUnlock" {
				// defer mu.Unlock(): the lock stays held to the end of the
				// function, but the function does release it.
				if root, path, ok := chainRoot(w.p, sel.X); ok {
					w.ff.releases[w.mf.classOf(lockRef{root, path})] = true
				}
				return
			}
		}
	}
	w.call(c, held, callDefer)
}

// call handles a call expression: lock operations mutate held; resolvable
// module-internal calls record a callEvent; fsync-like calls record a block
// event; arguments and the receiver chain are scanned as reads.
func (w *flowWalker) call(c *ast.CallExpr, held heldSet, kind callKind) {
	fun := ast.Unparen(c.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if name, mode, ok := lockMethod(w.p, sel); ok {
			if root, path, ok := chainRoot(w.p, sel.X); ok {
				ref := lockRef{root, path}
				switch name {
				case "Lock", "RLock":
					if kind == callNormal {
						w.ff.acquires = append(w.ff.acquires, acquireEvent{
							ref: ref, class: w.mf.classOf(ref), mode: mode,
							pos: sel.Sel.Pos(), held: held.clone(),
						})
						held[ref] = mode
					}
				case "Unlock", "RUnlock":
					if kind == callNormal {
						delete(held, ref)
					}
					w.ff.releases[w.mf.classOf(ref)] = true
				}
				return
			}
			// Unresolvable lock receiver (e.g. through an index
			// expression): scan and move on.
			w.expr(sel.X, held)
			return
		}
	}

	fn := calleeFunc(w.p, c)
	eventHeld := held
	if kind == callGo {
		eventHeld = make(heldSet) // the goroutine starts with nothing held
	}
	if fn != nil && (fn.Name() == "Sync" || fn.Name() == "Fsync") {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && kind == callNormal {
			w.ff.blocks = append(w.ff.blocks, blockEvent{
				kind: "fsync", desc: fn.Name(), pos: c.Pos(), held: eventHeld.clone(),
			})
		}
	}
	if fn != nil {
		if _, tracked := w.mf.funcs[fn]; tracked {
			ev := callEvent{
				callee: fn, pos: c.Pos(), held: eventHeld.clone(),
				async: kind == callGo,
			}
			if kind == callDefer {
				// A deferred call runs at exit where the held set is
				// unknown; record it lock-free so it contributes summaries
				// but never a spurious held-across hazard.
				ev.held = make(heldSet)
			}
			sig, _ := fn.Type().(*types.Signature)
			if sel, ok := fun.(*ast.SelectorExpr); ok && sig != nil && sig.Recv() != nil {
				if root, path, ok := chainRoot(w.p, sel.X); ok {
					ev.bindings = append(ev.bindings, binding{index: -1, root: root, prefix: path})
					if path == "" && w.ff.compositeLocals[root] {
						ev.construction = true
					}
				}
			}
			nparams := 0
			if sig != nil {
				nparams = sig.Params().Len()
			}
			for i, arg := range c.Args {
				if i >= nparams {
					break
				}
				target := ast.Unparen(arg)
				if ue, ok := target.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					target = ast.Unparen(ue.X)
				}
				if root, path, ok := chainRoot(w.p, target); ok {
					ev.bindings = append(ev.bindings, binding{index: i, root: root, prefix: path})
				}
			}
			w.ff.calls = append(w.ff.calls, ev)
		}
	}

	// Scan the receiver chain and the arguments as reads; immediately
	// invoked function literals run under the current lock set.
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if !w.recordChain(f.X, held, false) {
			w.expr(f.X, held)
		}
	case *ast.FuncLit:
		w.stmts(f.Body.List, held.clone())
	case *ast.Ident:
		// plain function name: nothing to scan
	default:
		w.expr(fun, held)
	}
	for _, a := range c.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			// Callback literals (sort.Slice, filepath.WalkDir, Once.Do)
			// usually run synchronously inside the call.
			w.stmts(lit.Body.List, held.clone())
			continue
		}
		w.expr(a, held)
	}
}

// terminates reports whether a call statement never returns: the panic
// builtin, os.Exit, log.Fatal*, runtime.Goexit, and the testing Fatal/Skip
// family (which call Goexit).
func (w *flowWalker) terminates(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, builtin := w.p.Info.Uses[fun].(*types.Builtin)
			return builtin || w.p.Info.Uses[fun] == nil
		}
	case *ast.SelectorExpr:
		fn, _ := w.p.Info.Uses[fun.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			return strings.HasPrefix(fn.Name(), "Fatal")
		case "testing":
			switch fn.Name() {
			case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
				return true
			}
		}
	}
	return false
}

// lockMethod recognizes sync.Mutex/RWMutex Lock/Unlock/RLock/RUnlock calls
// and returns the method name and acquisition mode.
func lockMethod(p *Package, sel *ast.SelectorExpr) (string, lockMode, bool) {
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "Unlock":
		return fn.Name(), modeExcl, true
	case "RLock", "RUnlock":
		return fn.Name(), modeShared, true
	}
	return "", 0, false
}

// recordChain resolves e as a field chain from a variable root and records
// one access event per selector level (the final level carries the write
// flag). It reports whether e was such a chain.
func (w *flowWalker) recordChain(e ast.Expr, held heldSet, write bool) bool {
	root, path, ok := chainRoot(w.p, e)
	if !ok || path == "" {
		return false
	}
	segs := splitPath(path)
	t := root.Type()
	prefix := ""
	for i, seg := range segs {
		owner, field := fieldOwner(t, seg)
		if owner == nil {
			return true
		}
		full := joinPath(prefix, seg)
		if !isLockType(field.Type()) {
			w.ff.accesses = append(w.ff.accesses, accessEvent{
				root: root, path: full, owner: owner, field: field,
				write: write && i == len(segs)-1,
				pos:   e.Pos(), held: held.clone(),
				compositeLocal: w.ff.compositeLocals[root],
			})
		}
		t = field.Type()
		prefix = full
	}
	return true
}

func isCompositeInit(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		// new(T) is construction too.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

func splitPath(path string) []string {
	return strings.Split(path, ".")
}
