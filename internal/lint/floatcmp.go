package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// floatcmp flags == and != where either operand is a floating-point value.
// Exact float equality is almost always a bug in this codebase — GPS jitter
// produces near-zero-but-nonzero segment lengths, and the closed-form SED
// integral is evaluated with rounding — so every exact comparison must
// either move to an epsilon (math.Abs(a-b) <= eps, or a scale-relative
// bound) or be annotated as an intentional degenerate-case guard:
//
//	//lint:allow floatcmp <why exact comparison is correct here>
func floatcmp(m *Module, p *Package, cfg *Config) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.Types[be.X].Type) && !isFloat(p.Info.Types[be.Y].Type) {
				return true
			}
			file, line, col := m.position(be.OpPos)
			out = append(out, Diagnostic{
				File: file, Line: line, Col: col,
				Message: fmt.Sprintf("floating-point %s comparison; use an epsilon (math.Abs(a-b) <= eps) or annotate an intentional degenerate-case guard with //lint:allow floatcmp <reason>", be.Op),
			})
			return true
		})
	}
	return out
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
