package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// errcheck flags silently dropped error results:
//
//   - a call statement whose result set includes an error (assigning the
//     error to _ is an explicit, visible discard and is accepted);
//   - defer f.Close() where f is a file opened for writing in the same
//     file — on write paths the close error is the write error (buffered
//     data is flushed at close), so it must be checked.
//
// Calls whose dropped error is conventionally meaningless are ignored:
// fmt.Print*/Fprint* (callers check the underlying writer's Flush), and
// methods on strings.Builder and bytes.Buffer (documented to never fail).
func errcheck(m *Module, p *Package, cfg *Config) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		writeFiles := collectWriteFiles(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok || !returnsErrorValue(p, call) || droppedErrorOK(p, call) {
					return true
				}
				file, line, col := m.position(call.Pos())
				out = append(out, Diagnostic{
					File: file, Line: line, Col: col,
					Message: fmt.Sprintf("error result of %s is silently dropped; handle it or discard explicitly with _ =", callDesc(p, call)),
				})
			case *ast.DeferStmt:
				sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Close" {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || !writeFiles[p.Info.Uses[id]] {
					return true
				}
				file, line, col := m.position(n.Pos())
				out = append(out, Diagnostic{
					File: file, Line: line, Col: col,
					Message: fmt.Sprintf("defer %s.Close() on a file opened for writing drops the close error (the flush of buffered writes); check it, e.g. defer func() { if cerr := %s.Close(); ... }()", id.Name, id.Name),
				})
			}
			return true
		})
	}
	return out
}

// collectWriteFiles returns the objects bound to files opened for writing
// (os.Create, or os.OpenFile with a writable flag) anywhere in the file.
func collectWriteFiles(p *Package, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || !isPkgFunc(fn, "os") {
			return true
		}
		writable := fn.Name() == "Create" ||
			(fn.Name() == "OpenFile" && openFileWritable(call))
		if !writable {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(p, id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// openFileWritable reports whether an os.OpenFile call's flag argument
// mentions a write-mode constant.
func openFileWritable(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	writable := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
				writable = true
			}
		}
		return true
	})
	return writable
}

func identObj(p *Package, id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// returnsErrorValue reports whether the call produces at least one error
// result.
func returnsErrorValue(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// droppedErrorOK reports whether dropping the call's error is accepted by
// convention.
func droppedErrorOK(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if isPkgFunc(fn, "fmt") && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() + "." + obj.Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
	}
	return false
}

func callDesc(p *Package, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return types.TypeString(sig.Recv().Type(), types.RelativeTo(p.Types)) + "." + fn.Name()
		}
		if fn.Pkg() != nil && fn.Pkg() != p.Types {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
