package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// atomicmix flags variables and struct fields that are accessed both
// through the sync/atomic package-level functions (atomic.AddInt64(&x, 1))
// and through plain loads or stores. Mixing the two voids the atomicity
// guarantee: the plain access races with the atomic one, and the race
// detector only catches it when the schedule cooperates. The typed atomics
// (atomic.Int64 and friends) make this mistake impossible and are the
// preferred fix; a deliberately-unsynchronized access (a read after every
// writer goroutine has been joined) is annotated
// //lint:allow atomicmix <reason>.
func atomicmix(m *Module, p *Package, cfg *Config) []Diagnostic {
	// Pass 1: every variable whose address flows into a sync/atomic call.
	atomicObjs := make(map[types.Object]token.Pos)
	exempt := make(map[ast.Node]bool) // the &x nodes inside atomic calls
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
				return true // typed atomic method: inherently safe
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				target := ast.Unparen(ue.X)
				if obj := addressableObj(p, target); obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = call.Pos()
					}
					exempt[target] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any other use of those objects is a plain access.
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var id *ast.Ident
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if exempt[x] {
					return false
				}
				id = x.Sel
			case *ast.Ident:
				id = x
			default:
				return true
			}
			if exempt[n] {
				return false
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, atomicUse := atomicObjs[obj]; !atomicUse {
				return true
			}
			file, line, col := m.position(id.Pos())
			out = append(out, Diagnostic{
				File: file, Line: line, Col: col,
				Message: fmt.Sprintf("%s is updated with sync/atomic elsewhere but accessed plainly here; mixing atomic and plain access races — use the typed atomic.%s or annotate with //lint:allow atomicmix <reason>", obj.Name(), typedAtomicFor(obj.Type())),
			})
			// Stop descending so the Sel ident of a flagged selector does
			// not report the same access twice.
			return false
		})
	}
	return out
}

// addressableObj resolves &target to the variable or field object whose
// address is taken, or nil when it is not a plain variable/field chain.
func addressableObj(p *Package, target ast.Expr) types.Object {
	switch x := target.(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// typedAtomicFor suggests the typed sync/atomic replacement for t.
func typedAtomicFor(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return "Pointer"
		}
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	case types.Bool:
		return "Bool"
	}
	return "Value"
}
