// Package rogue is a fixture package that is deliberately absent from the
// layering rules table.
package rogue

// N is a placeholder.
const N = 1
