// Package geo is a fixture substrate package: it imports no internal
// packages and holds the negative cases — annotated or mitigated code the
// analyzers must accept.
package geo

import "math"

// Point is a planar position.
type Point struct{ X, Y float64 }

// Equal reports exact coordinate equality.
//
//lint:allow floatcmp exact equality is this function's contract
func Equal(a, b Point) bool { return a.X == b.X && a.Y == b.Y }

// Norm returns the Euclidean norm of p. Coordinates must be finite; a NaN
// coordinate yields NaN.
func Norm(p Point) float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// SafeRatio returns a/b, mapping a non-finite result to 0.
func SafeRatio(a, b float64) float64 {
	r := a / b
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

// IndexStepped sweeps [t0, t1] by index — the drift-free pattern the
// floatstep analyzer must accept: the float time value is derived, never
// accumulated, and the loop is bounded by the int counter.
func IndexStepped(t0, t1, dt float64) int {
	n := 0
	for i := 0; ; i++ {
		t := t0 + float64(i)*dt
		if t > t1 {
			break
		}
		n++
	}
	return n
}

// Integrate is a genuine integrator: the step varies per iteration, so
// index stepping cannot express it and accumulation is annotated.
func Integrate(steps []float64, limit float64) int {
	n := 0
	for t, i := 0.0, 0; t <= limit && i < len(steps); i++ {
		n++
		//lint:allow floatstep variable-step integrator from t=0: accumulation is the algorithm
		t += steps[i]
	}
	return n
}
