// Package geo is a fixture substrate package: it imports no internal
// packages and holds the negative cases — annotated or mitigated code the
// analyzers must accept.
package geo

import "math"

// Point is a planar position.
type Point struct{ X, Y float64 }

// Equal reports exact coordinate equality.
//
//lint:allow floatcmp exact equality is this function's contract
func Equal(a, b Point) bool { return a.X == b.X && a.Y == b.Y }

// Norm returns the Euclidean norm of p. Coordinates must be finite; a NaN
// coordinate yields NaN.
func Norm(p Point) float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// SafeRatio returns a/b, mapping a non-finite result to 0.
func SafeRatio(a, b float64) float64 {
	r := a / b
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}
