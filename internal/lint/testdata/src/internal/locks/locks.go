// Package locks is a fixture for the mutexguard analyzer: a majority of
// accesses under the sibling mutex makes a field "guarded", and the
// unguarded minority is flagged — including through unexported helpers
// that inherit the caller's lock (the ambient-lock propagation the
// dataflow substrate exists for).
package locks

import "sync"

// counter guards n with mu; hits is deliberately lock-free (accessed only
// once, so no guard is ever inferred for it).
type counter struct {
	mu   sync.Mutex
	n    int
	hits int
}

// NewCounter builds a counter; construction-phase writes need no lock.
func NewCounter() *counter {
	c := &counter{}
	c.n = 7 // negative: composite-literal local, not yet shared
	return c
}

// Inc increments under the lock.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Bump takes the lock and delegates to the unexported helper; the helper's
// access counts as guarded only because every call site holds mu.
func (c *counter) Bump() {
	c.mu.Lock()
	c.add()
	c.mu.Unlock()
}

// add runs with c.mu held at every call site (cross-function positive bait:
// without ambient propagation this access reads as unguarded and the
// majority flips).
func (c *counter) add() {
	c.n++
}

// Peek reads n without the lock: the flagged positive.
func (c *counter) Peek() int {
	return c.n
}

// Touch is the only access to hits; one access infers no guard.
func (c *counter) Touch() {
	c.hits = 1
}

// table guards m with an RWMutex: reads under RLock are properly guarded
// (the read-path negative), writes need the exclusive lock.
type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// Get reads under the shared lock — a negative: RLock guards reads.
func (t *table) Get(k string) int {
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

// Put writes under the exclusive lock.
func (t *table) Put(k string, v int) {
	t.mu.Lock()
	t.m[k] = v
	t.mu.Unlock()
}

// BadPut writes under the shared lock: flagged, RLock does not exclude
// concurrent writers.
func (t *table) BadPut(k string, v int) {
	t.mu.RLock()
	t.m[k] = v
	t.mu.RUnlock()
}
