// Package atomics is a fixture for the atomicmix analyzer: a field updated
// through sync/atomic must never also be loaded or stored plainly.
package atomics

import "sync/atomic"

// hits mixes atomic and plain access on n; total stays consistently atomic.
type hits struct {
	n     int64
	total int64
}

// Inc updates n atomically.
func (h *hits) Inc() {
	atomic.AddInt64(&h.n, 1)
	atomic.AddInt64(&h.total, 1)
}

// Read loads n plainly: the positive — this races with Inc.
func (h *hits) Read() int64 {
	return h.n
}

// Total loads total atomically: the negative.
func (h *hits) Total() int64 {
	return atomic.LoadInt64(&h.total)
}

// ops is a package-level counter accessed only atomically: a negative.
var ops int64

// BumpOps increments ops.
func BumpOps() {
	atomic.AddInt64(&ops, 1)
}

// Ops reads ops atomically.
func Ops() int64 {
	return atomic.LoadInt64(&ops)
}

// safe is a typed atomic: method access is inherently safe, a negative.
var safe atomic.Int64

// BumpSafe increments safe.
func BumpSafe() {
	safe.Add(1)
}

// ReadSafe reads safe plainly through its method.
func ReadSafe() int64 {
	return safe.Load()
}
