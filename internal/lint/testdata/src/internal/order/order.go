// Package order is a fixture for the lockorder analyzer: lock-acquisition
// cycles (including the two-instances-of-one-type self cycle) and
// blocking-while-locked hazards, next to the group-commit negative where
// the callee releases the lock around its fsync.
package order

import (
	"os"
	"sync"
)

// account: Transfer locks two instances of the same class with no global
// order — the classic AB/BA deadlock when two transfers cross.
type account struct {
	mu  sync.Mutex
	bal int
}

// Transfer moves funds while holding both account locks: the self-cycle
// positive (account.mu → account.mu).
func Transfer(a, b *account, amt int) {
	a.mu.Lock()
	b.mu.Lock()
	a.bal -= amt
	b.bal += amt
	b.mu.Unlock()
	a.mu.Unlock()
}

// red/blue: two lock classes acquired in both orders across two functions —
// the two-node cycle positive.
type red struct{ mu sync.Mutex }
type blue struct{ mu sync.Mutex }

// ForwardOrder acquires red then blue.
func ForwardOrder(r *red, b *blue) {
	r.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	r.mu.Unlock()
}

// ReverseOrder acquires blue then red: combined with ForwardOrder this
// closes the cycle.
func ReverseOrder(r *red, b *blue) {
	b.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	b.mu.Unlock()
}

// journal: fsync discipline fixtures.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// SyncUnderLock fsyncs while holding mu: the direct hazard positive.
func (j *journal) SyncUnderLock() {
	j.mu.Lock()
	_ = j.f.Sync()
	j.mu.Unlock()
}

// Flush delegates to flushLocked, which releases mu around the fsync — the
// group-commit leader pattern, a negative for both the hazard check and
// the self-edge check (the callee releases the class it reacquires).
func (j *journal) Flush() {
	j.mu.Lock()
	j.flushLocked()
	j.mu.Unlock()
}

// flushLocked runs with j.mu held at every call site and drops it around
// the blocking sync.
func (j *journal) flushLocked() {
	j.mu.Unlock()
	_ = j.f.Sync()
	j.mu.Lock()
}

// bus: channel-send discipline fixtures.
type bus struct {
	mu sync.Mutex
	ch chan int
}

// Emit sends while holding mu: a blocked receiver stalls every contender —
// the send hazard positive.
func (b *bus) Emit(v int) {
	b.mu.Lock()
	b.ch <- v
	b.mu.Unlock()
}

// TryEmit uses the nonblocking select form: the negative.
func (b *bus) TryEmit(v int) bool {
	b.mu.Lock()
	ok := false
	select {
	case b.ch <- v:
		ok = true
	default:
	}
	b.mu.Unlock()
	return ok
}
