// Package iox is a fixture package with seeded error-hygiene violations.
package iox

import (
	"fmt"
	"io"
	"os"
)

// Drop closes f and loses the error.
func Drop(f *os.File) {
	f.Close()
}

// Explicit discards the close error visibly.
func Explicit(f *os.File) {
	_ = f.Close()
}

// Save writes b to path with a deferred close on the write path.
func Save(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(b)
	return err
}

// Report prints via fmt, whose dropped error is conventional.
func Report(w io.Writer, n int) {
	fmt.Fprintln(w, "count", n)
}
