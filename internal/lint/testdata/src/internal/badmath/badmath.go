// Package badmath is a fixture package with seeded float-safety
// violations: one floatcmp, two nanguard and three floatstep positives.
package badmath

import "math"

// Same reports whether a equals b.
func Same(a, b float64) bool { return a == b }

// Ratio returns a/b.
func Ratio(a, b float64) float64 { return a / b }

// RootOf returns the square root of x.
func RootOf(x float64) float64 { return math.Sqrt(x) }

// Sweep counts sampling instants by accumulating the loop variable in the
// post statement (floatstep positive; int return keeps nanguard silent).
func Sweep(t0, t1, dt float64) int {
	n := 0
	for t := t0; t <= t1; t += dt {
		n++
	}
	return n
}

// SweepBody accumulates inside the body instead (floatstep positive).
func SweepBody(t0, t1, dt float64) int {
	n := 0
	for t := t0; t <= t1; {
		n++
		t += dt
	}
	return n
}

// SweepAssign uses the spelled-out t = t + dt form (floatstep positive).
func SweepAssign(t0, t1, dt float64) int {
	n := 0
	for t := t0; t <= t1; t = t + dt {
		n++
	}
	return n
}
