// Package badmath is a fixture package with seeded float-safety
// violations: one floatcmp and two nanguard positives.
package badmath

import "math"

// Same reports whether a equals b.
func Same(a, b float64) bool { return a == b }

// Ratio returns a/b.
func Ratio(a, b float64) float64 { return a / b }

// RootOf returns the square root of x.
func RootOf(x float64) float64 { return math.Sqrt(x) }
