// Fixture for -tests mode: concurrency analyzers run over _test.go files,
// while style/layering analyzers stay scoped to production code (the
// floating-point comparison below must NOT be flagged here).
package srv

import "testing"

// TestSpin launches an untracked goroutine: a goroleak positive that only
// -tests mode can see.
func TestSpin(t *testing.T) {
	g := &Gauge{}
	go func() {
		g.Set(1)
	}()
	if g.Value() == 1.0 {
		t.Log("raced")
	}
}
