// Package srv is a fixture serving layer with seeded concurrency and
// layering violations, next to tracked-goroutine negatives.
package srv

import (
	"sync"

	"fixture/internal/badmath"
)

// Gauge is a locked value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Value reads the gauge — through a value receiver that copies mu.
func (g Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Set writes the gauge through a pointer receiver.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

// Watch launches an untracked goroutine with no cancellation path.
func Watch(g *Gauge) {
	go func() {
		g.Set(badmath.Ratio(1, 3))
	}()
}

// Tracked launches a WaitGroup-tracked goroutine.
func Tracked(g *Gauge, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Set(1)
	}()
}

// Feed consumes a channel; closing it is the cancellation path.
func Feed(g *Gauge, ch <-chan float64) {
	go func() {
		for v := range ch {
			g.Set(v)
		}
	}()
}
