package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// lockorder builds the module-wide lock-acquisition graph — an edge A → B
// means some code path acquires a lock of class B while holding one of
// class A, either directly or through a call whose summary says it
// acquires B — and reports:
//
//   - potential-deadlock cycles (including class-level self edges, the
//     two-instances-of-the-same-type coupling that deadlocks under lock
//     inversion);
//   - re-acquisition of a lock instance that is already held;
//   - blocking operations (fsync, plain channel send) performed while a
//     lock is held, directly or via a callee that may block — unless the
//     callee releases that very lock class first (the group-commit leader
//     pattern: Flush holds mu, syncLocked drops mu around the fsync).
//
// Sends inside a select are never flagged: the select makes them
// conditional (the nonblocking publish pattern). Intentional hazards — a
// Close path that must flush under its own lock — are annotated
// //lint:allow lockorder <reason>.
func lockorder(m *Module, p *Package, cfg *Config) []Diagnostic {
	mf := m.flow()
	g := mf.lockGraphFor()
	var out []Diagnostic

	// Cycle reports are attributed to the package owning the representative
	// edge site, so each cycle is printed exactly once per Run.
	for _, cyc := range g.cycles {
		if cyc.site.pkg != p {
			continue
		}
		file, line, col := m.position(cyc.site.pos)
		out = append(out, Diagnostic{
			File: file, Line: line, Col: col,
			Message: fmt.Sprintf("potential deadlock: lock-order cycle %s; acquire these locks in one global order or annotate with //lint:allow lockorder <reason>", cyc.describe()),
		})
	}

	for _, ff := range mf.funcs {
		if ff.pkg != p {
			continue
		}
		// Re-acquisition of an instance already held.
		for i := range ff.acquires {
			ev := &ff.acquires[i]
			if _, already := ev.held[ev.ref]; already && mf.countsInTally(ff, ev.pos) {
				file, line, col := m.position(ev.pos)
				out = append(out, Diagnostic{
					File: file, Line: line, Col: col,
					Message: fmt.Sprintf("lock %s is acquired while already held on every path here: sync mutexes are not reentrant, this deadlocks", refString(ev.ref)),
				})
			}
		}
		// Direct blocking operations under a lock.
		for i := range ff.blocks {
			ev := &ff.blocks[i]
			held := heldDescription(mf, ev.held)
			if held == "" || !mf.countsInTally(ff, ev.pos) {
				continue
			}
			file, line, col := m.position(ev.pos)
			verb := "channel send"
			if ev.kind == "fsync" {
				verb = ev.desc + " (fsync)"
			}
			out = append(out, Diagnostic{
				File: file, Line: line, Col: col,
				Message: fmt.Sprintf("%s while holding %s; a blocked %s stalls every contender of the lock — release it first or annotate with //lint:allow lockorder <reason>", verb, held, ev.kind),
			})
		}
		// Calls whose summary says the callee may block, while a lock the
		// callee does not release is held.
		for i := range ff.calls {
			ev := &ff.calls[i]
			if ev.async || len(ev.held) == 0 {
				continue
			}
			blocks := mf.blocksTrans[ev.callee]
			if len(blocks) == 0 {
				continue
			}
			rel := mf.releasesTrans[ev.callee]
			held := heldExceptReleased(mf, ev.held, rel)
			if held == "" || !mf.countsInTally(ff, ev.pos) {
				continue
			}
			file, line, col := m.position(ev.pos)
			out = append(out, Diagnostic{
				File: file, Line: line, Col: col,
				Message: fmt.Sprintf("call to %s (which may %s) while holding %s; the lock is held across the blocking operation — release it first or annotate with //lint:allow lockorder <reason>", ev.callee.Name(), kindList(blocks), held),
			})
		}
	}
	return out
}

type lockEdge struct {
	from, to lockClass
}

type edgeSite struct {
	pkg    *Package
	pos    token.Pos
	inTest bool
}

type lockCycle struct {
	classes []lockClass
	site    edgeSite
}

func (c *lockCycle) describe() string {
	parts := make([]string, 0, len(c.classes)+1)
	for _, cl := range c.classes {
		parts = append(parts, shortClass(cl))
	}
	parts = append(parts, shortClass(c.classes[0]))
	return strings.Join(parts, " → ")
}

type lockGraph struct {
	edges  map[lockEdge]edgeSite
	cycles []lockCycle
}

// lockGraphFor builds (once) the class-level acquisition graph and its
// cycles.
func (mf *moduleFlow) lockGraphFor() *lockGraph {
	if mf.lockGraph != nil {
		return mf.lockGraph
	}
	g := &lockGraph{edges: make(map[lockEdge]edgeSite)}
	for _, ff := range mf.funcs {
		inTest := ff.pkg.TestOnly
		if !mf.countsInTallyFF(ff) {
			continue
		}
		for i := range ff.acquires {
			ev := &ff.acquires[i]
			if ev.class == "" {
				continue
			}
			for ref := range ev.held {
				from := mf.classOf(ref)
				if from == "" {
					continue
				}
				g.addEdge(mf, from, ev.class, ff.pkg, ev.pos, inTest)
			}
		}
		for i := range ff.calls {
			ev := &ff.calls[i]
			if ev.async || len(ev.held) == 0 {
				continue
			}
			acq := mf.acquiredTrans[ev.callee]
			if len(acq) == 0 {
				continue
			}
			rel := mf.releasesTrans[ev.callee]
			for ref := range ev.held {
				from := mf.classOf(ref)
				if from == "" || rel[from] {
					// The callee releases this class before (re)acquiring —
					// the group-commit leader pattern, not an ordering edge.
					continue
				}
				for to := range acq {
					g.addEdge(mf, from, to, ff.pkg, ev.pos, inTest)
				}
			}
		}
	}
	g.findCycles(mf)
	mf.lockGraph = g
	return g
}

func (g *lockGraph) addEdge(mf *moduleFlow, from, to lockClass, pkg *Package, pos token.Pos, inTest bool) {
	e := lockEdge{from, to}
	site := edgeSite{pkg: pkg, pos: pos, inTest: inTest}
	cur, ok := g.edges[e]
	if !ok || betterSite(mf, site, cur) {
		g.edges[e] = site
	}
}

// betterSite prefers non-test sites, then the smallest source position, so
// cycle reports are deterministic and point at production code when any
// production edge exists.
func betterSite(mf *moduleFlow, a, b edgeSite) bool {
	if a.inTest != b.inTest {
		return !a.inTest
	}
	fa, la, ca := mf.m.position(a.pos)
	fb, lb, cb := mf.m.position(b.pos)
	if fa != fb {
		return fa < fb
	}
	if la != lb {
		return la < lb
	}
	return ca < cb
}

// findCycles runs Tarjan's SCC over the class graph; every SCC with more
// than one node, plus every self edge, is a potential deadlock.
func (g *lockGraph) findCycles(mf *moduleFlow) {
	nodes := make(map[lockClass][]lockClass)
	for e := range g.edges {
		nodes[e.from] = append(nodes[e.from], e.to)
		if _, ok := nodes[e.to]; !ok {
			nodes[e.to] = nil
		}
	}
	ordered := make([]lockClass, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, succs := range nodes {
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
	}

	index := make(map[lockClass]int)
	low := make(map[lockClass]int)
	onStack := make(map[lockClass]bool)
	var stack []lockClass
	next := 0
	var sccs [][]lockClass
	var strongconnect func(v lockClass)
	strongconnect = func(v lockClass) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wcl := range nodes[v] {
			if _, seen := index[wcl]; !seen {
				strongconnect(wcl)
				if low[wcl] < low[v] {
					low[v] = low[wcl]
				}
			} else if onStack[wcl] && index[wcl] < low[v] {
				low[v] = index[wcl]
			}
		}
		if low[v] == index[v] {
			var scc []lockClass
			for {
				wcl := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[wcl] = false
				scc = append(scc, wcl)
				if wcl == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range ordered {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	for _, scc := range sccs {
		selfLoop := len(scc) == 1 && g.hasEdge(scc[0], scc[0])
		if len(scc) < 2 && !selfLoop {
			continue
		}
		sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
		// Representative site: the best site among the SCC's internal edges.
		var site edgeSite
		found := false
		inScc := make(map[lockClass]bool, len(scc))
		for _, c := range scc {
			inScc[c] = true
		}
		for e, s := range g.edges {
			if !inScc[e.from] || !inScc[e.to] {
				continue
			}
			if !found || betterSite(mf, s, site) {
				site = s
				found = true
			}
		}
		if found {
			g.cycles = append(g.cycles, lockCycle{classes: scc, site: site})
		}
	}
	sort.Slice(g.cycles, func(i, j int) bool {
		return g.cycles[i].classes[0] < g.cycles[j].classes[0]
	})
}

func (g *lockGraph) hasEdge(from, to lockClass) bool {
	_, ok := g.edges[lockEdge{from, to}]
	return ok
}

// heldDescription renders the classifiable held locks, "" when none.
func heldDescription(mf *moduleFlow, held heldSet) string {
	return heldExceptReleased(mf, held, nil)
}

func heldExceptReleased(mf *moduleFlow, held heldSet, released map[lockClass]bool) string {
	var names []string
	for ref := range held {
		cl := mf.classOf(ref)
		if cl == "" {
			names = append(names, refString(ref))
			continue
		}
		if released[cl] {
			continue
		}
		names = append(names, shortClass(cl))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func refString(ref lockRef) string {
	if ref.root == nil {
		return "<unknown>"
	}
	if ref.path == "" {
		return ref.root.Name()
	}
	return ref.root.Name() + "." + ref.path
}

// shortClass trims the module path prefix for readable messages:
// "repro/internal/wal.Log.mu" → "wal.Log.mu".
func shortClass(c lockClass) string {
	s := string(c)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}

func kindList(kinds map[string]bool) string {
	var out []string
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, "/")
}
