package lint_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current fixture findings")

// fixtureConfig mirrors DefaultConfig for the fixture module under
// testdata/src: srv is the serving layer, badmath and geo the numeric core.
// The rules table deliberately omits package rogue and forbids srv→badmath,
// so both layering branches have a seeded positive.
func fixtureConfig() *lint.Config {
	return &lint.Config{
		LayerRules: map[string][]string{
			"geo":     {},
			"badmath": {"geo"},
			"srv":     {"geo"},
			"iox":     {},
		},
		NaNGuardPkgs:  map[string]bool{"badmath": true, "geo": true},
		GoroutinePkgs: map[string]bool{"srv": true},
	}
}

var (
	fixtureOnce sync.Once
	fixtureMod  *lint.Module
	fixtureErr  error
)

func loadFixture(t *testing.T) *lint.Module {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureMod, fixtureErr = lint.Load(filepath.Join("testdata", "src"))
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture module: %v", fixtureErr)
	}
	return fixtureMod
}

func fixtureFindings(t *testing.T) []lint.Diagnostic {
	t.Helper()
	return lint.Run(loadFixture(t), fixtureConfig())
}

// TestFixtureGolden pins the exact findings on the seeded-violation fixture
// module. Regenerate with: go test ./internal/lint -run Golden -update
func TestFixtureGolden(t *testing.T) {
	ds := fixtureFindings(t)
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("fixture findings diverge from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFixtureCoversEveryAnalyzer guarantees each analyzer family has at
// least one positive case in the fixture — a fixture edit that silences a
// family fails here, not silently.
func TestFixtureCoversEveryAnalyzer(t *testing.T) {
	seen := make(map[string]int)
	for _, d := range fixtureFindings(t) {
		seen[d.Analyzer]++
	}
	for _, name := range lint.AnalyzerNames() {
		if seen[name] == 0 {
			t.Errorf("analyzer %s has no positive case in the fixture module", name)
		}
	}
}

// TestFixtureNegatives: the geo fixture package is all negatives — an
// annotated float comparison, a documented Sqrt, a guarded division, so any
// finding there is an analyzer regression. Likewise the tracked and
// channel-fed goroutines, the pointer-receiver method, the explicit `_ =`
// discard and the fmt.Fprintln call must stay silent.
func TestFixtureNegatives(t *testing.T) {
	for _, d := range fixtureFindings(t) {
		if strings.HasPrefix(d.File, "internal/geo/") {
			t.Errorf("unexpected finding in all-negative fixture package geo: %s", d)
		}
		if d.Analyzer == "goroleak" && d.Line >= 39 {
			t.Errorf("goroleak flagged a tracked goroutine: %s", d)
		}
		if d.Analyzer == "errcheck" && (strings.Contains(d.Message, "Fprintln") || d.Line == 17) {
			t.Errorf("errcheck flagged a conventional discard: %s", d)
		}
	}
}

// TestAllowlistSuppression: formatting every finding into an allowlist file,
// parsing it back, and re-running must suppress everything.
func TestAllowlistSuppression(t *testing.T) {
	ds := fixtureFindings(t)
	if len(ds) == 0 {
		t.Fatal("fixture produced no findings to suppress")
	}
	allow, err := lint.ParseAllowlist(lint.FormatAllowlist(ds))
	if err != nil {
		t.Fatalf("round-tripping allowlist: %v", err)
	}
	cfg := fixtureConfig()
	cfg.Allowlist = allow
	if left := lint.Run(loadFixture(t), cfg); len(left) != 0 {
		t.Errorf("allowlist left %d findings unsuppressed, first: %s", len(left), left[0])
	}
}

func TestParseAllowlistMalformed(t *testing.T) {
	if _, err := lint.ParseAllowlist("floatcmp missing-line-number\n"); err == nil {
		t.Error("ParseAllowlist accepted an entry without a file:line")
	}
	got, err := lint.ParseAllowlist("# comment\n\nfloatcmp internal/geo/point.go:42 reason text here\n")
	if err != nil {
		t.Fatal(err)
	}
	if !got["floatcmp internal/geo/point.go:42"] {
		t.Errorf("ParseAllowlist dropped a valid entry: %v", got)
	}
}

func TestDiagnosticJSON(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "floatcmp", File: "internal/x/x.go", Line: 3, Col: 7, Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"floatcmp","file":"internal/x/x.go","line":3,"col":7,"message":"m"}`
	if string(b) != want {
		t.Errorf("JSON shape changed:\n got %s\nwant %s", b, want)
	}
}

// TestRepoIsClean is the acceptance gate: the real module must lint clean
// under the default rules, so `go run ./cmd/trajlint ./...` exits zero.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m, err := lint.Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	ds := lint.Run(m, lint.DefaultConfig())
	for _, d := range ds {
		t.Errorf("repository finding: %s", d)
	}
}
