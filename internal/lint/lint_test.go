package lint_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current fixture findings")

// fixtureConfig mirrors DefaultConfig for the fixture module under
// testdata/src: srv is the serving layer, badmath and geo the numeric core.
// The rules table deliberately omits package rogue and forbids srv→badmath,
// so both layering branches have a seeded positive.
func fixtureConfig() *lint.Config {
	return &lint.Config{
		LayerRules: map[string][]string{
			"geo":     {},
			"badmath": {"geo"},
			"srv":     {"geo"},
			"iox":     {},
			"locks":   {},
			"order":   {},
			"atomics": {},
		},
		NaNGuardPkgs:  map[string]bool{"badmath": true, "geo": true},
		GoroutinePkgs: map[string]bool{"srv": true},
	}
}

var (
	fixtureOnce sync.Once
	fixtureMod  *lint.Module
	fixtureErr  error
)

func loadFixture(t *testing.T) *lint.Module {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureMod, fixtureErr = lint.Load(filepath.Join("testdata", "src"))
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture module: %v", fixtureErr)
	}
	return fixtureMod
}

func fixtureFindings(t *testing.T) []lint.Diagnostic {
	t.Helper()
	return lint.Run(loadFixture(t), fixtureConfig())
}

// TestFixtureGolden pins the exact findings on the seeded-violation fixture
// module. Regenerate with: go test ./internal/lint -run Golden -update
func TestFixtureGolden(t *testing.T) {
	ds := fixtureFindings(t)
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("fixture findings diverge from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFixtureCoversEveryAnalyzer guarantees each analyzer family has at
// least one positive case in the fixture — a fixture edit that silences a
// family fails here, not silently.
func TestFixtureCoversEveryAnalyzer(t *testing.T) {
	seen := make(map[string]int)
	for _, d := range fixtureFindings(t) {
		seen[d.Analyzer]++
	}
	for _, name := range lint.AnalyzerNames() {
		if seen[name] == 0 {
			t.Errorf("analyzer %s has no positive case in the fixture module", name)
		}
	}
}

// TestFixtureNegatives: the geo fixture package is all negatives — an
// annotated float comparison, a documented Sqrt, a guarded division, so any
// finding there is an analyzer regression. Likewise the tracked and
// channel-fed goroutines, the pointer-receiver method, the explicit `_ =`
// discard and the fmt.Fprintln call must stay silent.
func TestFixtureNegatives(t *testing.T) {
	for _, d := range fixtureFindings(t) {
		if strings.HasPrefix(d.File, "internal/geo/") {
			t.Errorf("unexpected finding in all-negative fixture package geo: %s", d)
		}
		if d.Analyzer == "goroleak" && d.Line >= 39 {
			t.Errorf("goroleak flagged a tracked goroutine: %s", d)
		}
		if d.Analyzer == "errcheck" && (strings.Contains(d.Message, "Fprintln") || d.Line == 17) {
			t.Errorf("errcheck flagged a conventional discard: %s", d)
		}
		switch {
		case d.Analyzer == "mutexguard" && strings.Contains(d.Message, "counter.hits"):
			t.Errorf("mutexguard inferred a guard from a single access: %s", d)
		case d.Analyzer == "mutexguard" && strings.Contains(d.File, "locks") && d.Line <= 30 && d.Line >= 19:
			t.Errorf("mutexguard flagged construction-phase or locked access: %s", d)
		case d.Analyzer == "lockorder" && strings.Contains(d.Message, "flushLocked"):
			t.Errorf("lockorder missed the release-around-fsync exemption: %s", d)
		case d.Analyzer == "lockorder" && d.File == "internal/order/order.go" && d.Line > 95:
			t.Errorf("lockorder flagged the nonblocking select send in TryEmit: %s", d)
		case d.Analyzer == "atomicmix" && (strings.Contains(d.Message, "total") || strings.Contains(d.Message, "ops") || strings.Contains(d.Message, "safe")):
			t.Errorf("atomicmix flagged a consistently-atomic or typed-atomic access: %s", d)
		}
	}
	// The RWMutex read path is a deliberate negative: Get reads under RLock.
	for _, d := range fixtureFindings(t) {
		if d.Analyzer == "mutexguard" && d.File == "internal/locks/locks.go" && d.Line >= 65 && d.Line <= 70 {
			t.Errorf("mutexguard flagged a read under RLock: %s", d)
		}
	}
}

// TestGuardInference pins the mutexguard tally on the fixture, proving the
// cross-function (ambient lock) propagation: counter.add is only guarded
// because every call site holds c.mu, and without that propagation the
// majority flips and counter.n stops being inferred at all.
func TestGuardInference(t *testing.T) {
	m := loadFixture(t)
	g, u, ok := lint.GuardTally(m, "locks.counter.n")
	if !ok {
		t.Fatal("no tally for locks.counter.n: field accesses were not tracked")
	}
	if g != 2 || u != 1 {
		t.Errorf("locks.counter.n tally = %d guarded / %d unguarded, want 2/1 (is ambient-lock propagation through counter.add broken?)", g, u)
	}
	if _, _, ok := lint.GuardTally(m, "locks.counter.hits"); !ok {
		t.Error("no tally for locks.counter.hits")
	}
	if g, u, _ := lint.GuardTally(m, "locks.counter.hits"); g != 0 || u != 1 {
		t.Errorf("locks.counter.hits tally = %d/%d, want 0/1 (single access must not infer a guard)", g, u)
	}
}

// TestFixtureTestsMode loads the fixture with _test.go files included:
// concurrency analyzers must see the untracked goroutine in srv_test.go,
// while the style analyzers must keep ignoring test files (the float
// comparison there stays silent).
func TestFixtureTestsMode(t *testing.T) {
	m, err := lint.LoadWithTests(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("loading fixture module with tests: %v", err)
	}
	ds := lint.Run(m, fixtureConfig())
	var sawTestLeak bool
	for _, d := range ds {
		if !strings.HasSuffix(d.File, "_test.go") {
			continue
		}
		switch d.Analyzer {
		case "goroleak":
			sawTestLeak = true
		case "floatcmp":
			t.Errorf("style analyzer ran on a test file: %s", d)
		}
	}
	if !sawTestLeak {
		t.Error("-tests mode missed the untracked goroutine in srv_test.go")
	}
}

// TestAllowlistSuppression: formatting every finding into an allowlist file,
// parsing it back, and re-running must suppress everything.
func TestAllowlistSuppression(t *testing.T) {
	ds := fixtureFindings(t)
	if len(ds) == 0 {
		t.Fatal("fixture produced no findings to suppress")
	}
	allow, err := lint.ParseAllowlist(lint.FormatAllowlist(ds))
	if err != nil {
		t.Fatalf("round-tripping allowlist: %v", err)
	}
	cfg := fixtureConfig()
	cfg.Allowlist = allow
	if left := lint.Run(loadFixture(t), cfg); len(left) != 0 {
		t.Errorf("allowlist left %d findings unsuppressed, first: %s", len(left), left[0])
	}
}

func TestParseAllowlistMalformed(t *testing.T) {
	if _, err := lint.ParseAllowlist("floatcmp missing-line-number\n"); err == nil {
		t.Error("ParseAllowlist accepted an entry without a file:line")
	}
	got, err := lint.ParseAllowlist("# comment\n\nfloatcmp internal/geo/point.go:42 reason text here\n")
	if err != nil {
		t.Fatal(err)
	}
	if !got["floatcmp internal/geo/point.go:42"] {
		t.Errorf("ParseAllowlist dropped a valid entry: %v", got)
	}
}

// TestPruneAllowlist: entries whose findings no longer fire are reported
// stale and dropped from the rewritten file, while comments, blanks, and
// live entries survive verbatim.
func TestPruneAllowlist(t *testing.T) {
	data := "# keep this comment\n\nfloatcmp internal/geo/point.go:42 still real\nerrcheck internal/iox/w.go:9 fixed long ago\n"
	live := map[string]bool{"floatcmp internal/geo/point.go:42": true}
	kept, stale, err := lint.PruneAllowlist(data, live)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 1 || stale[0] != "errcheck internal/iox/w.go:9 fixed long ago" {
		t.Errorf("stale = %q, want the fixed errcheck entry", stale)
	}
	if !strings.Contains(kept, "# keep this comment") || !strings.Contains(kept, "floatcmp internal/geo/point.go:42") {
		t.Errorf("pruned file lost a comment or live entry:\n%s", kept)
	}
	if strings.Contains(kept, "errcheck") {
		t.Errorf("pruned file kept the stale entry:\n%s", kept)
	}
	if _, _, err := lint.PruneAllowlist("not a valid line\n", nil); err == nil {
		t.Error("PruneAllowlist accepted a malformed allowlist")
	}
}

func TestDiagnosticJSON(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "floatcmp", File: "internal/x/x.go", Line: 3, Col: 7, Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"floatcmp","file":"internal/x/x.go","line":3,"col":7,"message":"m"}`
	if string(b) != want {
		t.Errorf("JSON shape changed:\n got %s\nwant %s", b, want)
	}
}

// TestRepoIsClean is the acceptance gate: the real module must lint clean
// under the default rules, so `go run ./cmd/trajlint ./...` exits zero.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m, err := lint.Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	ds := lint.Run(m, lint.DefaultConfig())
	for _, d := range ds {
		t.Errorf("repository finding: %s", d)
	}
	// A clean run is only meaningful if inference is not vacuous: the store
	// shards really do guard their object maps, and the module really does
	// have lock-acquisition edges to order.
	if g, u, ok := lint.GuardTally(m, "store.shard.objects"); !ok || g < 2 || g <= u {
		t.Errorf("store.shard.objects not inferred guarded (tally %d/%d, ok=%v): mutexguard is vacuous over the real module", g, u, ok)
	}
	if n := lint.LockEdges(m); n == 0 {
		t.Error("lock-acquisition graph is empty over the real module: lockorder is vacuous")
	}
}
