package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// mutexguard infers which struct fields a sibling sync.Mutex/RWMutex
// guards and flags accesses that bypass the lock. The inference rule: a
// field is considered guarded when, across the whole module, at least two
// accesses happen with the sibling lock held and the guarded accesses
// outnumber the unguarded ones — then every unguarded access is reported.
// Writes require the exclusive lock; a write under RLock is reported even
// when the field is mostly read-locked. Accesses through a local variable
// freshly built from a composite literal are exempt (the value is not yet
// shared). Intentional lock-free accesses (immutable-after-construction
// fields, Close-path reads) are annotated //lint:allow mutexguard <reason>.
func mutexguard(m *Module, p *Package, cfg *Config) []Diagnostic {
	mf := m.flow()
	stats := mf.guardStatsFor()
	var out []Diagnostic
	for _, ff := range mf.funcs {
		if ff.pkg != p {
			continue
		}
		for i := range ff.accesses {
			ev := &ff.accesses[i]
			if ev.compositeLocal {
				continue
			}
			key, lockName, ok := mf.guardKey(ev)
			if !ok {
				continue
			}
			st := stats[key]
			if st == nil || !st.inferred() {
				continue
			}
			verdict := guardVerdict(mf, ev)
			if verdict == guardOK {
				continue
			}
			if !mf.countsInTally(ff, ev.pos) {
				continue // duplicate universe (re-checked base file of a test package)
			}
			file, line, col := m.position(ev.pos)
			kind := "read"
			if ev.write {
				kind = "write"
			}
			msg := fmt.Sprintf("%s of %s without holding %s (%d of %d accesses hold it); lock it or annotate with //lint:allow mutexguard <reason>",
				kind, key, lockName, st.guarded, st.guarded+st.unguarded)
			if verdict == guardReadLocked && ev.write {
				msg = fmt.Sprintf("write of %s under RLock of %s; a shared lock does not exclude other readers from seeing the torn update — take the exclusive lock", key, lockName)
			}
			out = append(out, Diagnostic{File: file, Line: line, Col: col, Message: msg})
		}
	}
	return out
}

type guardStat struct {
	guarded   int
	unguarded int
}

// inferred applies the majority rule: ≥2 guarded accesses and strictly more
// guarded than unguarded.
func (s *guardStat) inferred() bool {
	return s.guarded >= 2 && s.guarded > s.unguarded
}

type guardVerdictKind int

const (
	guardOK guardVerdictKind = iota
	guardUnlocked
	guardReadLocked // only the shared lock is held
)

// guardVerdict reports whether the access holds a sibling lock adequately:
// reads accept shared or exclusive, writes require exclusive.
func guardVerdict(mf *moduleFlow, ev *accessEvent) guardVerdictKind {
	parent := parentPath(ev.path)
	best := guardUnlocked
	for _, lf := range lockFieldsOf(ev.owner) {
		ref := lockRef{root: ev.root, path: joinPath(parent, lf.Name())}
		mode, ok := ev.held[ref]
		if !ok {
			continue
		}
		if mode == modeExcl {
			return guardOK
		}
		if !ev.write {
			return guardOK
		}
		best = guardReadLocked
	}
	return best
}

// guardKey names the (struct, field) pair and its first sibling lock; ok is
// false when the owner has no mutex to guard with.
func (mf *moduleFlow) guardKey(ev *accessEvent) (key, lockName string, ok bool) {
	locks := lockFieldsOf(ev.owner)
	if len(locks) == 0 {
		return "", "", false
	}
	obj := ev.owner.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	key = shortPkg(obj.Pkg().Path()) + "." + obj.Name() + "." + ev.field.Name()
	names := make([]string, len(locks))
	for i, lf := range locks {
		names[i] = lf.Name()
	}
	return key, strings.Join(names, "/"), true
}

// guardStatsFor tallies guarded vs unguarded accesses per (struct, field)
// across the module, counting each source position once (test packages
// re-check their base files; those duplicate events are skipped).
func (mf *moduleFlow) guardStatsFor() map[string]*guardStat {
	if mf.guardStats != nil {
		return mf.guardStats
	}
	stats := make(map[string]*guardStat)
	for _, ff := range mf.funcs {
		if !mf.countsInTallyFF(ff) {
			continue
		}
		for i := range ff.accesses {
			ev := &ff.accesses[i]
			if ev.compositeLocal {
				continue
			}
			key, _, ok := mf.guardKey(ev)
			if !ok {
				continue
			}
			st := stats[key]
			if st == nil {
				st = &guardStat{}
				stats[key] = st
			}
			if guardVerdict(mf, ev) == guardOK {
				st.guarded++
			} else {
				st.unguarded++
			}
		}
	}
	mf.guardStats = stats
	return stats
}

// countsInTallyFF reports whether a function's events are primary: in a
// normal package always, in a test-only package only when the function
// lives in a _test.go file (its non-test files re-check sources already
// counted by the base package).
func (mf *moduleFlow) countsInTallyFF(ff *funcFlow) bool {
	if !ff.pkg.TestOnly {
		return true
	}
	return mf.m.isTestPos(ff.decl.Pos())
}

func (mf *moduleFlow) countsInTally(ff *funcFlow, pos token.Pos) bool {
	if !ff.pkg.TestOnly {
		return true
	}
	return mf.m.isTestPos(pos)
}

// shortPkg trims the module prefix off an import path for messages.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// sortedGuardKeys is a deterministic iteration helper for tests.
func sortedGuardKeys(stats map[string]*guardStat) []string {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
