package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// lockcopy flags methods whose value receiver contains a sync lock
// (sync.Mutex, RWMutex, WaitGroup, Once, Cond), directly or through nested
// value fields, arrays, or embedding. Calling such a method copies the
// lock, silently splitting the critical section — the classic cause of
// "impossible" data races. Runs on every package: a copied lock is never
// intentional here.
func lockcopy(m *Module, p *Package, cfg *Config) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvType := p.Info.Types[fd.Recv.List[0].Type].Type
			if recvType == nil {
				continue
			}
			if _, isPtr := recvType.Underlying().(*types.Pointer); isPtr {
				continue
			}
			lock := findLock(recvType, make(map[types.Type]bool))
			if lock == "" {
				continue
			}
			file, line, col := m.position(fd.Name.Pos())
			out = append(out, Diagnostic{
				File: file, Line: line, Col: col,
				Message: fmt.Sprintf("method %s has a value receiver of type %s which contains %s; each call copies the lock — use a pointer receiver", fd.Name.Name, types.TypeString(recvType, types.RelativeTo(p.Types)), lock),
			})
		}
	}
	return out
}

// findLock returns a description of the first sync lock reachable from t by
// value, or "".
func findLock(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
		return findLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := findLock(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return findLock(u.Elem(), seen)
	}
	return ""
}

// goroleak flags go statements in the serving-layer packages
// (Config.GoroutinePkgs) that have no visible cancellation or tracking
// path. A goroutine counts as tracked when its body (or the named function
// it calls) references a sync.WaitGroup method, receives from or sends on
// a channel (directly, via select, or via range), closes one (the
// done-channel idiom: `go func() { done <- srv.Serve(l) }()`), or uses a
// context.Context — the mechanisms Close/shutdown paths use to observe or
// terminate it. Anything else must justify its lifetime with
// //lint:allow goroleak <reason>.
func goroleak(m *Module, p *Package, cfg *Config) []Diagnostic {
	if !cfg.GoroutinePkgs[p.Key] {
		return nil
	}
	decls := funcDeclsByObj(p)
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				if fn := calleeFunc(p, g.Call); fn != nil {
					if fd := decls[fn]; fd != nil {
						body = fd.Body
					}
				}
			}
			if body != nil && hasCancellationPath(p, body) {
				return true
			}
			file, line, col := m.position(g.Pos())
			out = append(out, Diagnostic{
				File: file, Line: line, Col: col,
				Message: "goroutine has no visible cancellation path (no WaitGroup tracking, channel receive, select, or context); ensure shutdown terminates it or annotate with //lint:allow goroleak <reason>",
			})
			return true
		})
	}
	return out
}

// funcDeclsByObj maps each function object declared in the package to its
// declaration, so goroleak can look through `go name()` calls.
func funcDeclsByObj(p *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

func hasCancellationPath(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, builtin := p.Info.Uses[id].(*types.Builtin); builtin {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := p.Info.Uses[n.Sel].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if findLock(derefType(sig.Recv().Type()), make(map[types.Type]bool)) == "sync.WaitGroup" {
						found = true
					}
				}
			}
		case *ast.Ident:
			if obj := p.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

func isContextType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
