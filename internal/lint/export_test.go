package lint

// GuardTally exposes the mutexguard inference tally to external tests, so
// they can assert the dataflow substrate actually inferred a guard (a
// clean run over a module proves nothing if inference were vacuous).
func GuardTally(m *Module, key string) (guarded, unguarded int, ok bool) {
	st := m.flow().guardStatsFor()[key]
	if st == nil {
		return 0, 0, false
	}
	return st.guarded, st.unguarded, true
}

// LockEdges exposes the number of lock-acquisition graph edges, so tests
// can assert the lockorder graph is non-trivial over a real module.
func LockEdges(m *Module) int {
	return len(m.flow().lockGraphFor().edges)
}
