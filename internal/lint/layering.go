package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// layering enforces the declarative internal-package dependency table
// (Config.LayerRules). Only packages under internal/ are constrained; the
// facade, cmd/ and examples/ trees may import any internal package (the Go
// toolchain already fences them from other modules).
func layering(m *Module, p *Package, cfg *Config) []Diagnostic {
	if !p.Internal() || len(cfg.LayerRules) == 0 {
		return nil
	}
	allowed, registered := cfg.LayerRules[p.Key]
	var out []Diagnostic
	if !registered {
		file, line, col := m.position(p.Files[0].Package)
		out = append(out, Diagnostic{
			File: file, Line: line, Col: col,
			Message: fmt.Sprintf("internal package %q is not registered in the layering rules table; add it and its allowed dependencies to the LayerRules config", p.Key),
		})
		return out
	}
	allowedSet := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		allowedSet[a] = true
	}
	prefix := m.Path + "/internal/"
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			dep, ok := strings.CutPrefix(path, prefix)
			if !ok || allowedSet[dep] {
				continue
			}
			file, line, col := m.position(spec.Pos())
			out = append(out, Diagnostic{
				File: file, Line: line, Col: col,
				Message: fmt.Sprintf("layering violation: package %s may not import internal/%s (allowed: %s)",
					p.Key, dep, formatAllowed(allowed)),
			})
		}
	}
	return out
}

func formatAllowed(allowed []string) string {
	if len(allowed) == 0 {
		return "no internal packages"
	}
	return strings.Join(allowed, ", ")
}
