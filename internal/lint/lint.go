// Package lint implements trajlint, a repo-specific static-analysis suite
// built only on the standard library's go/ast, go/parser, go/token,
// go/types and go/importer packages.
//
// The paper's correctness story rests on delicate floating-point math (the
// time-ratio synchronized distance, the closed-form ∫√(c1·t²+c2·t+c3) dt
// integral with its case split) and, as the system grows into a concurrent
// service, on locking and goroutine-lifetime discipline. These invariants
// are easy to violate in refactors and invisible to the compiler, so this
// package machine-enforces them:
//
//   - layering:  internal packages may only import the internal packages a
//     declarative rules table allows (DESIGN.md dependency structure);
//   - floatcmp:  == / != on floating-point operands must be annotated as
//     intentional degenerate-case guards or rewritten with an epsilon;
//   - floatstep: loops may not advance a float loop variable by
//     accumulation (t += dt) while it bounds the loop — rounding drift
//     shifts or drops the final iterations at Unix-epoch-scale
//     timestamps; step by index (t = t0 + float64(i)·dt) instead;
//   - nanguard:  exported float64-returning functions in the numeric core
//     that call math.Sqrt/Asinh/... or divide must guard for NaN/Inf or
//     document their precondition;
//   - errcheck:  error results may not be silently dropped (`_ =` is an
//     explicit, visible discard and is accepted); deferred Close on
//     write-path files is flagged;
//   - lockcopy:  methods may not take receivers that copy a sync.Mutex or
//     similar lock by value;
//   - goroleak:  goroutines in the serving layers must have a visible
//     cancellation/tracking path (WaitGroup, channel receive, context).
//
// Findings are suppressed case-by-case with an in-source annotation on, or
// in the comment block directly above, the offending line:
//
//	//lint:allow <analyzer> <reason>
//
// or with an allowlist file (see cmd/trajlint -allowlist / -fix-allowlist).
package lint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, forward slashes
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Key is the allowlist-file key for this diagnostic: "analyzer file:line".
func (d Diagnostic) Key() string {
	return d.Analyzer + " " + d.File + ":" + strconv.Itoa(d.Line)
}

// Config selects which packages each analyzer applies to and which findings
// are suppressed. The zero value runs every analyzer with no layering table;
// use DefaultConfig for this repository's rules.
type Config struct {
	// LayerRules maps a short internal package key ("geo", "sed", ...) to
	// the set of short keys it may import. Internal packages absent from
	// the table are themselves flagged, so new packages must be registered.
	LayerRules map[string][]string

	// NaNGuardPkgs are the short keys of the numeric-core packages subject
	// to the nanguard analyzer.
	NaNGuardPkgs map[string]bool

	// GoroutinePkgs are the short keys of the serving-layer packages
	// subject to the goroleak analyzer.
	GoroutinePkgs map[string]bool

	// Allowlist suppresses findings by Diagnostic.Key. Line-number based,
	// so in-source //lint:allow annotations are preferred; this exists for
	// bulk suppression via cmd/trajlint -fix-allowlist.
	Allowlist map[string]bool
}

// DefaultConfig returns the rules for this repository.
func DefaultConfig() *Config {
	return &Config{
		LayerRules:    DefaultLayerRules(),
		NaNGuardPkgs:  map[string]bool{"geo": true, "sed": true, "compress": true},
		GoroutinePkgs: map[string]bool{"server": true, "stream": true, "repl": true},
	}
}

// DefaultLayerRules is the declarative dependency table for internal/*
// (DESIGN.md §"Static analysis & invariants"). A package may import exactly
// the internal packages listed; the substrate packages (geo, trajectory)
// sit at the bottom, and the numeric core (sed, compress) must never reach
// up into the service layers (store, wal, server).
func DefaultLayerRules() map[string][]string {
	return map[string][]string{
		"geo":        {},
		"trajectory": {"geo"},
		"sed":        {"geo", "trajectory"},
		"roadnet":    {"geo"},
		"rtree":      {"geo"},
		"metrics":    {},
		"fault":      {"metrics"},
		"interp":     {"geo", "trajectory", "sed"},
		"compress":   {"geo", "trajectory", "sed"},
		"quality":    {"geo", "trajectory", "sed", "compress"},
		"gpsgen":     {"geo", "trajectory", "roadnet"},
		"codec":      {"geo", "trajectory"},
		"analysis":   {"geo", "trajectory", "sed"},
		"cluster":    {"geo", "trajectory", "analysis"},
		"mapmatch":   {"geo", "trajectory", "roadnet"},
		"stream":     {"geo", "trajectory", "sed", "compress", "metrics"},
		"bus":        {"geo", "trajectory", "stream", "metrics"},
		"seal":       {"geo", "trajectory", "codec", "rtree", "metrics"},
		"store":      {"geo", "trajectory", "sed", "codec", "rtree", "stream", "metrics", "seal"},
		"wal":        {"geo", "trajectory", "codec", "store", "stream", "metrics", "fault"},
		"repl":       {"metrics", "wal", "store", "trajectory", "geo", "codec", "stream"},
		"server":     {"geo", "trajectory", "store", "stream", "wal", "repl", "metrics", "bus"},
		"tune":       {"geo", "trajectory", "sed", "compress"},
		"plot":       {"geo", "trajectory"},
		"experiments": {"geo", "trajectory", "sed", "compress", "gpsgen",
			"quality", "mapmatch", "roadnet", "plot"},
		"lint":   {},
		"ciyaml": {},
	}
}

// An analyzer inspects one package and reports findings. Suppression is
// handled centrally in Run.
type analyzer struct {
	name string
	run  func(m *Module, p *Package, cfg *Config) []Diagnostic
}

func analyzers() []analyzer {
	return []analyzer{
		{"layering", layering},
		{"floatcmp", floatcmp},
		{"floatstep", floatstep},
		{"nanguard", nanguard},
		{"errcheck", errcheck},
		{"lockcopy", lockcopy},
		{"goroleak", goroleak},
		{"mutexguard", mutexguard},
		{"lockorder", lockorder},
		{"atomicmix", atomicmix},
	}
}

// concurrencyAnalyzers are the analyzers that also apply to _test.go files
// when the module is loaded with LoadWithTests: the torture and
// group-commit tests are themselves concurrent, while the float and
// layering rules intentionally do not bind tests.
var concurrencyAnalyzers = map[string]bool{
	"lockcopy":   true,
	"goroleak":   true,
	"mutexguard": true,
	"lockorder":  true,
	"atomicmix":  true,
}

// AnalyzerNames lists every analyzer in the suite.
func AnalyzerNames() []string {
	as := analyzers()
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.name
	}
	return names
}

// Run executes the full analyzer suite over the module and returns the
// unsuppressed findings sorted by position.
func Run(m *Module, cfg *Config) []Diagnostic {
	if cfg == nil {
		cfg = &Config{}
	}
	var out []Diagnostic
	for _, p := range m.Packages {
		for _, a := range analyzers() {
			for _, d := range a.run(m, p, cfg) {
				d.Analyzer = a.name
				if m.testFiles[d.File] && !concurrencyAnalyzers[a.name] {
					continue // tests are exempt from the style/float rules
				}
				if p.TestOnly && !m.testFiles[d.File] {
					// A test package re-checks its base sources; findings in
					// them are duplicates of the base package's run.
					continue
				}
				if _, ok := m.allowed(d.File, d.Line, a.name); ok {
					continue
				}
				if cfg.Allowlist[d.Key()] {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// ParseAllowlist parses the -allowlist file format: one entry per line,
// "analyzer file:line [reason...]"; blank lines and lines starting with #
// are skipped.
func ParseAllowlist(data string) (map[string]bool, error) {
	out := make(map[string]bool)
	for i, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.Contains(fields[1], ":") {
			return nil, fmt.Errorf("lint: allowlist line %d: want \"analyzer file:line [reason]\", got %q", i+1, line)
		}
		out[fields[0]+" "+fields[1]] = true
	}
	return out, nil
}

// PruneAllowlist partitions an allowlist file's entries into live and
// stale against the set of finding keys a suppression-free Run produced.
// It returns the file content with stale entries removed (comments and
// blank lines preserved) and the stale entry lines themselves.
func PruneAllowlist(data string, liveKeys map[string]bool) (kept string, stale []string, err error) {
	if _, err := ParseAllowlist(data); err != nil {
		return "", nil, err
	}
	var b strings.Builder
	for _, line := range strings.Split(data, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			b.WriteString(line)
			b.WriteString("\n")
			continue
		}
		fields := strings.Fields(trimmed)
		key := fields[0] + " " + fields[1]
		if liveKeys[key] {
			b.WriteString(line)
			b.WriteString("\n")
			continue
		}
		stale = append(stale, trimmed)
	}
	kept = strings.TrimRight(b.String(), "\n")
	if kept != "" {
		kept += "\n"
	}
	return kept, stale, nil
}

// Keys collects Diagnostic.Key for each finding, the live set for
// PruneAllowlist.
func Keys(ds []Diagnostic) map[string]bool {
	out := make(map[string]bool, len(ds))
	for _, d := range ds {
		out[d.Key()] = true
	}
	return out
}

// FormatAllowlist renders diagnostics in the allowlist file format, one
// entry per finding, with the message as the trailing comment.
func FormatAllowlist(ds []Diagnostic) string {
	var b strings.Builder
	b.WriteString("# trajlint allowlist: \"analyzer file:line\" entries suppress matching findings.\n")
	b.WriteString("# Prefer in-source //lint:allow annotations; regenerate with trajlint -fix-allowlist.\n")
	for _, d := range ds {
		fmt.Fprintf(&b, "%s %s\n", d.Key(), d.Message)
	}
	return b.String()
}
