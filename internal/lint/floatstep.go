package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// floatstep flags loops that advance a floating-point loop variable by
// accumulation — `for t := t0; t <= t1; t += dt` and the equivalent
// in-body `t += dt` / `t = t + dt` forms — when that variable also appears
// in the loop condition. Each iteration adds about half an ulp of rounding
// error, which is invisible on toy data but shifts or drops the final
// iterations once the variable carries Unix-epoch-scale timestamps
// (ulp(1.7e9) ≈ 2.4e-7 s). Step by index instead:
//
//	for i := 0; ; i++ {
//	    t := t0 + float64(i)*dt
//	    if t > t1 { break }
//	    ...
//	}
//
// Genuine integrators (state advanced by a variable step, magnitudes that
// stay small) are annotated in place:
//
//	//lint:allow floatstep <why accumulation is benign here>
func floatstep(m *Module, p *Package, cfg *Config) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fs, ok := n.(*ast.ForStmt)
			if !ok || fs.Cond == nil {
				return true
			}
			condVars := floatVarsIn(p, fs.Cond)
			if len(condVars) == 0 {
				return true
			}
			report := func(pos token.Pos, name string) {
				file, line, col := m.position(pos)
				out = append(out, Diagnostic{
					File: file, Line: line, Col: col,
					Message: fmt.Sprintf("loop advances float variable %s by accumulation while it bounds the loop; rounding drift shifts or drops the final iterations at epoch-scale magnitudes — step by index (%s = start + float64(i)*step) or annotate //lint:allow floatstep <reason>", name, name),
				})
			}
			if name, pos, ok := floatStepAssign(p, fs.Post, condVars); ok {
				report(pos, name)
			}
			ast.Inspect(fs.Body, func(b ast.Node) bool {
				if inner, ok := b.(*ast.ForStmt); ok && inner != fs {
					// An inner loop gets its own visit; only its own
					// condition variables apply there.
					return false
				}
				if st, ok := b.(ast.Stmt); ok {
					if name, pos, ok := floatStepAssign(p, st, condVars); ok {
						report(pos, name)
					}
				}
				return true
			})
			return true
		})
	}
	return out
}

// floatVarsIn collects the objects of float-typed identifiers mentioned in
// an expression.
func floatVarsIn(p *Package, e ast.Expr) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if _, isVar := obj.(*types.Var); isVar && isFloat(obj.Type()) {
			vars[obj] = true
		}
		return true
	})
	return vars
}

// floatStepAssign reports whether st accumulates into one of vars:
// `v += d`, `v -= d`, or `v = v ± d` (either operand order for +).
func floatStepAssign(p *Package, st ast.Stmt, vars map[types.Object]bool) (string, token.Pos, bool) {
	as, ok := st.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return "", token.NoPos, false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return "", token.NoPos, false
	}
	obj := p.Info.Uses[id]
	if obj == nil || !vars[obj] {
		return "", token.NoPos, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return id.Name, as.Pos(), true
	case token.ASSIGN:
		be, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return "", token.NoPos, false
		}
		if x, ok := be.X.(*ast.Ident); ok && p.Info.Uses[x] == obj {
			return id.Name, as.Pos(), true
		}
		if be.Op == token.ADD {
			if y, ok := be.Y.(*ast.Ident); ok && p.Info.Uses[y] == obj {
				return id.Name, as.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}
