package bus

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/trajectory"
)

func TestKeyedDelivery(t *testing.T) {
	b := New(Options{Shards: 4})
	sub := b.Subscribe(SubOptions{ID: "car-1"})
	b.Publish("car-1", trajectory.S(1, 2, 3))
	b.Publish("car-2", trajectory.S(1, 9, 9)) // different object: not delivered

	lines, open := sub.Drain(nil)
	if !open {
		t.Fatal("feed closed unexpectedly")
	}
	want := []string{"POS car-1 1 2 3"}
	if len(lines) != 1 || lines[0] != want[0] {
		t.Fatalf("Drain = %q, want %q", lines, want)
	}
	if sub.Policy() != DropNewest {
		t.Fatalf("default policy = %v, want drop-newest", sub.Policy())
	}
}

func TestWildcardSeesEveryShard(t *testing.T) {
	b := New(Options{Shards: 8})
	sub := b.Subscribe(SubOptions{ID: "*"})
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, id := range ids {
		b.Publish(id, trajectory.S(float64(i), 0, 0))
	}
	got := map[string]bool{}
	for len(got) < len(ids) {
		lines, open := sub.Drain(nil)
		if !open {
			t.Fatal("feed closed early")
		}
		for _, l := range lines {
			got[strings.Fields(l)[1]] = true
		}
	}
}

func TestGeofenceFilters(t *testing.T) {
	box := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)}
	b := New(Options{})
	sub := b.Subscribe(SubOptions{Box: &box})
	b.Publish("in", trajectory.S(1, 5, 5))
	b.Publish("out", trajectory.S(2, 50, 50))
	b.Publish("edge", trajectory.S(3, 10, 10))

	lines, _ := sub.Drain(nil)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "POS in ") || !strings.Contains(joined, "POS edge ") {
		t.Fatalf("missing inside-box deliveries: %q", lines)
	}
	if strings.Contains(joined, "POS out ") {
		t.Fatalf("position outside the box was delivered: %q", lines)
	}
}

// TestDropOldestDeliversNewest pins the drop-oldest contract: a lagging
// consumer converges on the newest positions, not a stale backlog.
func TestDropOldestDeliversNewest(t *testing.T) {
	b := New(Options{})
	sub := b.Subscribe(SubOptions{ID: "o", Policy: DropOldest, Capacity: 2})
	for i := 1; i <= 5; i++ {
		b.Publish("o", trajectory.S(float64(i), 0, 0))
	}
	lines, open := sub.Drain(nil)
	if !open {
		t.Fatal("drop-oldest must not close the feed")
	}
	want := []string{"POS o 4 0 0", "POS o 5 0 0"}
	if len(lines) != 2 || lines[0] != want[0] || lines[1] != want[1] {
		t.Fatalf("Drain = %q, want the two newest lines %q", lines, want)
	}
}

// TestDropNewestKeepsBacklog pins today's behaviour, the default policy:
// the buffered backlog survives and the overflowing lines are lost.
func TestDropNewestKeepsBacklog(t *testing.T) {
	b := New(Options{})
	sub := b.Subscribe(SubOptions{ID: "o", Policy: DropNewest, Capacity: 2})
	for i := 1; i <= 5; i++ {
		b.Publish("o", trajectory.S(float64(i), 0, 0))
	}
	lines, open := sub.Drain(nil)
	if !open {
		t.Fatal("drop-newest must not close the feed")
	}
	want := []string{"POS o 1 0 0", "POS o 2 0 0"}
	if len(lines) != 2 || lines[0] != want[0] || lines[1] != want[1] {
		t.Fatalf("Drain = %q, want the two oldest lines %q", lines, want)
	}
}

// TestDisconnectClosesFeed pins the disconnect contract: overflow ends the
// feed after the backlog drains.
func TestDisconnectClosesFeed(t *testing.T) {
	b := New(Options{})
	sub := b.Subscribe(SubOptions{ID: "o", Policy: Disconnect, Capacity: 2})
	for i := 1; i <= 3; i++ {
		b.Publish("o", trajectory.S(float64(i), 0, 0))
	}
	lines, open := sub.Drain(nil)
	if len(lines) != 2 {
		t.Fatalf("backlog = %q, want the 2 buffered lines", lines)
	}
	if !open {
		// Acceptable: backlog and closure may be reported together only
		// when the backlog is empty; with lines present open must be true.
		t.Fatalf("Drain returned open=false with a non-empty backlog")
	}
	lines, open = sub.Drain(nil)
	if open || len(lines) != 0 {
		t.Fatalf("after overflow Drain = (%q, %v), want closed empty feed", lines, open)
	}
	// Publishing after disconnect is a no-op.
	b.Publish("o", trajectory.S(9, 0, 0))
	if lines, open := sub.Drain(nil); open || len(lines) != 0 {
		t.Fatalf("closed feed accepted a publish: (%q, %v)", lines, open)
	}
}

// TestCompressorResetOnPushError is the regression test for the
// publishCompressed bug: a sample that violates the compressor's ordering
// contract must reset that object's compressor, so the feed re-compresses
// from the offending sample instead of degrading to raw relay forever.
func TestCompressorResetOnPushError(t *testing.T) {
	factory, err := stream.ParseFactory("operb:10")
	if err != nil {
		t.Fatal(err)
	}
	b := New(Options{})
	sub := b.Subscribe(SubOptions{ID: "o", NewComp: factory})

	b.Publish("o", trajectory.S(10, 0, 0)) // anchors the compressor at t=10
	lines, _ := sub.Drain(nil)
	if len(lines) != 1 || lines[0] != "POS o 10 0 0" {
		t.Fatalf("anchor delivery = %q", lines)
	}

	// Out of order: the feed restarted at an older timestamp (the failover
	// scenario). The broken compressor must be replaced and re-anchored on
	// this sample, which is delivered once.
	b.Publish("o", trajectory.S(5, 0, 0))
	lines, _ = sub.Drain(nil)
	if len(lines) != 1 || lines[0] != "POS o 5 0 0" {
		t.Fatalf("re-anchor delivery = %q, want [POS o 5 0 0]", lines)
	}

	// The next in-order samples must be COMPRESSED again: a straight run
	// emits nothing until the sharp corner at t=9 forces a cut, which
	// retains the corner's predecessor (t=8). The intermediates t=6, t=7
	// arriving would mean the feed degraded to raw relay.
	for i := 6; i <= 8; i++ {
		b.Publish("o", trajectory.S(float64(i), float64((i-5)*10), 0))
	}
	b.Publish("o", trajectory.S(9, 30, 1000))
	lines, _ = sub.Drain(nil)
	for _, l := range lines {
		if strings.HasPrefix(l, "POS o 6 ") || strings.HasPrefix(l, "POS o 7 ") {
			t.Fatalf("feed degraded to raw relay after the error: %q", lines)
		}
	}
	if len(lines) != 1 || lines[0] != "POS o 8 30 0" {
		t.Fatalf("post-reset compression = %q, want [POS o 8 30 0]", lines)
	}
}

// TestReleaseCompressors is the regression test for the unbounded comps
// map: eviction must release per-object compressor state on wildcard
// subscribers with a compression spec.
func TestReleaseCompressors(t *testing.T) {
	factory, err := stream.ParseFactory("opwtr:5")
	if err != nil {
		t.Fatal(err)
	}
	b := New(Options{})
	sub := b.Subscribe(SubOptions{ID: "*", NewComp: factory, Capacity: 4096})

	// A churning fleet: 100 objects each seen once.
	for i := 0; i < 100; i++ {
		b.Publish(string(rune('A'+i%26))+string(rune('a'+i/26)), trajectory.S(1, 0, 0))
	}
	if n := sub.CompCount(); n != 100 {
		t.Fatalf("CompCount = %d, want 100", n)
	}
	// Evict everything but two survivors.
	live := map[string]bool{"Aa": true, "Ba": true}
	b.ReleaseCompressors(func(id string) bool { return live[id] })
	if n := sub.CompCount(); n != 2 {
		t.Fatalf("CompCount after release = %d, want 2 (leak)", n)
	}
}

func TestUnsubscribeIdempotentAndGauge(t *testing.T) {
	r := metrics.NewRegistry()
	active := r.Gauge("bus_test_active")
	b := New(Options{Active: active})
	s1 := b.Subscribe(SubOptions{ID: "a"})
	s2 := b.Subscribe(SubOptions{ID: "*"})
	if got := active.Value(); got != 2 {
		t.Fatalf("active = %v, want 2", got)
	}
	b.Unsubscribe(s1)
	b.Unsubscribe(s1) // double-unsubscribe must not decrement twice
	if got := active.Value(); got != 1 {
		t.Fatalf("active after double unsubscribe = %v, want 1", got)
	}
	b.CloseAll()
	if got := active.Value(); got != 0 {
		t.Fatalf("active after CloseAll = %v, want 0", got)
	}
	if lines, open := s2.Drain(nil); open || len(lines) != 0 {
		t.Fatalf("CloseAll left a feed open: (%q, %v)", lines, open)
	}
}

func TestDropCounters(t *testing.T) {
	r := metrics.NewRegistry()
	opts := Options{DropsTotal: r.Counter("bus_test_drops")}
	for p := 0; p < NumPolicies; p++ {
		opts.PolicyDrops[p] = r.Counter("bus_test_policy_drops", metrics.L("policy", Policy(p).String()))
	}
	b := New(opts)
	b.Subscribe(SubOptions{ID: "o", Policy: DropOldest, Capacity: 1})
	for i := 1; i <= 4; i++ {
		b.Publish("o", trajectory.S(float64(i), 0, 0))
	}
	if got := opts.DropsTotal.Value(); got != 3 {
		t.Fatalf("total drops = %v, want 3", got)
	}
	if got := opts.PolicyDrops[DropOldest].Value(); got != 3 {
		t.Fatalf("drop-oldest drops = %v, want 3", got)
	}
	if got := opts.PolicyDrops[DropNewest].Value(); got != 0 {
		t.Fatalf("drop-newest drops = %v, want 0", got)
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for p := Policy(0); p < NumPolicies; p++ {
		got, ok := ParsePolicy(p.String())
		if !ok || got != p {
			t.Fatalf("ParsePolicy(%q) = (%v, %v), want (%v, true)", p.String(), got, ok, p)
		}
	}
	if _, ok := ParsePolicy("operb:10"); ok {
		t.Fatal("a compression spec must not parse as a policy")
	}
}

// TestUnsubscribeDuringPublishRace exercises registration churn racing the
// lock-free publish path; run with -race.
func TestUnsubscribeDuringPublishRace(t *testing.T) {
	b := New(Options{Shards: 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b.Publish("obj", trajectory.S(float64(i), 1, 2))
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := "obj"
				if i%2 == 0 {
					id = "*"
				}
				sub := b.Subscribe(SubOptions{ID: id, Capacity: 8})
				b.Publish("obj", trajectory.S(float64(i), 0, 0))
				b.Unsubscribe(sub)
			}
		}()
	}
	// A consumer draining a feed that gets closed under it.
	sub := b.Subscribe(SubOptions{ID: "obj", Capacity: 8})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, open := sub.Drain(nil); !open {
				return
			}
		}
	}()
	b.Unsubscribe(sub)
	close(stop)
	wg.Wait()
}

// TestCloseAllDuringPublishRace exercises shutdown racing fan-out; run
// with -race.
func TestCloseAllDuringPublishRace(t *testing.T) {
	b := New(Options{Shards: 2})
	for i := 0; i < 16; i++ {
		id := "hot"
		if i%4 == 0 {
			id = "*"
		}
		b.Subscribe(SubOptions{ID: id, Capacity: 4, Policy: Policy(i % NumPolicies)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish("hot", trajectory.S(float64(g*1000+i), 0, 0))
			}
		}(g)
	}
	b.CloseAll()
	wg.Wait()
}
