// Package bus implements the sharded subscriber fan-out bus behind the
// server's SUBSCRIBE command.
//
// The paper's workload is continuously moving objects, so the live feed is
// a product surface in its own right: ingest must not slow down because
// thousands of consumers watch it. Publishing is therefore designed so the
// hot path holds no global lock and does no work for uninterested
// subscribers: a subscriber following one object registers on the shard
// that object's ID hashes to, wildcard and geofence subscribers are
// mirrored to every shard, and each shard keeps a copy-on-write view
// (object ID → subscribers, plus the mirrored wildcard list) that Publish
// reads through an atomic pointer without locking. All per-subscriber work
// — geofence matching, per-object compression, ring insertion — happens
// under that subscriber's own mutex, so one publish costs O(subscribers
// interested in the object); ingest throughput stays flat as unrelated
// subscribers accumulate (BenchmarkPublishScaling pins this to 10k).
//
// Each subscriber owns a fixed-capacity ring of formatted protocol lines
// and a slow-consumer Policy deciding what a full ring means: drop-newest
// (drop the incoming line — the bus's historical behaviour), drop-oldest
// (overwrite the oldest buffered line, converging on the freshest
// positions), or disconnect (end the feed). The consumer drains the ring
// in batches (Drain), so a burst of updates costs its connection one
// write+flush instead of one per line.
package bus

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/trajectory"
)

// Policy selects what Publish does with a subscriber whose ring is full.
type Policy uint8

const (
	// DropNewest drops the incoming update and keeps the buffered backlog.
	DropNewest Policy = iota
	// DropOldest overwrites the oldest buffered update with the incoming
	// one, so a lagging consumer always converges on the newest positions.
	DropOldest
	// Disconnect ends the feed: the consumer drains what is already
	// buffered and then sees end-of-feed.
	Disconnect

	// NumPolicies sizes per-policy instrument arrays.
	NumPolicies = 3
)

// String names the policy as it appears on the wire and in metric labels.
func (p Policy) String() string {
	switch p {
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	case Disconnect:
		return "disconnect"
	}
	return fmt.Sprintf("policy-%d", uint8(p))
}

// ParsePolicy recognizes a wire policy name.
func ParsePolicy(s string) (Policy, bool) {
	switch s {
	case "drop-newest":
		return DropNewest, true
	case "drop-oldest":
		return DropOldest, true
	case "disconnect":
		return Disconnect, true
	}
	return 0, false
}

// defaultCapacity is the ring size when neither the bus options nor the
// subscription specify one — matching the buffered channel the bus
// replaced.
const defaultCapacity = 256

// Options configures a Bus. The metric hooks are optional (nil = not
// counted); the server wires its registry's instruments through them.
type Options struct {
	// Shards is the number of object-ID hash shards, rounded up to a power
	// of two; 0 selects 16.
	Shards int
	// DefaultCapacity is the ring capacity for subscriptions that do not
	// set one; 0 selects 256.
	DefaultCapacity int

	// Active tracks the number of registered subscribers.
	Active *metrics.Gauge
	// DropsTotal counts every overflow event regardless of policy.
	DropsTotal *metrics.Counter
	// PolicyDrops counts overflow events per policy, indexed by Policy.
	PolicyDrops [NumPolicies]*metrics.Counter
}

// shardView is one shard's immutable subscriber snapshot. Publish loads it
// through an atomic pointer, so registration churn never blocks fan-out.
type shardView struct {
	byID map[string][]*Subscriber // keyed subscribers, by followed object
	wild []*Subscriber            // "*" and geofence subscribers (mirrored)
}

type shard struct {
	mu   sync.Mutex
	subs map[*Subscriber]struct{}
	view atomic.Pointer[shardView]
}

// rebuild recomputes the shard's copy-on-write view; callers hold sh.mu.
func (sh *shard) rebuild() {
	v := &shardView{byID: make(map[string][]*Subscriber)}
	for sub := range sh.subs {
		if sub.id == "*" {
			v.wild = append(v.wild, sub)
		} else {
			v.byID[sub.id] = append(v.byID[sub.id], sub)
		}
	}
	sh.view.Store(v)
}

// Bus fans published positions out to subscribers, sharded by object ID.
type Bus struct {
	opts   Options
	mask   uint32
	shards []shard

	// all tracks every registered subscriber exactly once (wildcards appear
	// in many shards); it backs the Active gauge, CloseAll and
	// ReleaseCompressors, and is never touched by Publish.
	allMu sync.Mutex
	all   map[*Subscriber]struct{}
}

// New returns a bus with the given options.
func New(opts Options) *Bus {
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	size := 1
	for size < n {
		size <<= 1
	}
	if opts.DefaultCapacity <= 0 {
		opts.DefaultCapacity = defaultCapacity
	}
	b := &Bus{
		opts:   opts,
		mask:   uint32(size - 1),
		shards: make([]shard, size),
		all:    make(map[*Subscriber]struct{}),
	}
	for i := range b.shards {
		b.shards[i].subs = make(map[*Subscriber]struct{})
	}
	return b
}

// fnv1a is the 32-bit FNV-1a hash of id (the store uses the same function
// for its shards), computed inline to keep Publish allocation-free.
func fnv1a(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}

// SubOptions describes one subscription.
type SubOptions struct {
	// ID is the object to follow, or "*" for every object.
	ID string
	// Box, when non-nil, is a geofence: only positions inside it are
	// delivered (implies following every object; ID is ignored).
	Box *geo.Rect
	// Policy selects the slow-consumer behaviour; the zero value is
	// DropNewest.
	Policy Policy
	// Capacity is the ring size; 0 selects the bus default.
	Capacity int
	// NewComp, when non-nil, compresses the feed: each object this
	// subscriber sees gets its own compressor and only retained points are
	// delivered.
	NewComp func() stream.Compressor
}

// Subscriber is one live feed: a fixed-capacity ring of formatted lines
// filled by Publish and drained in batches by the owning connection.
type Subscriber struct {
	// Immutable after Subscribe.
	id      string
	box     *geo.Rect
	policy  Policy
	newComp func() stream.Compressor

	mu     sync.Mutex
	cond   sync.Cond // signalled when the ring goes non-empty or the feed closes
	ring   []string
	head   int // index of the oldest buffered line
	n      int // buffered line count
	closed bool
	comps  map[string]stream.Compressor // per-object feed compressors
}

// Subscribe registers a new feed and returns its subscriber.
func (b *Bus) Subscribe(o SubOptions) *Subscriber {
	capacity := o.Capacity
	if capacity <= 0 {
		capacity = b.opts.DefaultCapacity
	}
	sub := &Subscriber{
		id:      o.ID,
		box:     o.Box,
		policy:  o.Policy,
		newComp: o.NewComp,
		ring:    make([]string, capacity),
	}
	sub.cond.L = &sub.mu
	if o.Box != nil {
		sub.id = "*" // a geofence watches every object
	}
	if sub.newComp != nil {
		sub.comps = make(map[string]stream.Compressor)
	}

	b.allMu.Lock()
	b.all[sub] = struct{}{}
	b.allMu.Unlock()
	if b.opts.Active != nil {
		b.opts.Active.Inc()
	}
	for _, sh := range b.homes(sub) {
		sh.mu.Lock()
		sh.subs[sub] = struct{}{}
		sh.rebuild()
		sh.mu.Unlock()
	}
	return sub
}

// homes returns the shards a subscriber registers on: one for a keyed
// subscription, every shard for wildcards and geofences.
func (b *Bus) homes(sub *Subscriber) []*shard {
	if sub.id != "*" {
		return []*shard{&b.shards[fnv1a(sub.id)&b.mask]}
	}
	out := make([]*shard, len(b.shards))
	for i := range b.shards {
		out[i] = &b.shards[i]
	}
	return out
}

// Unsubscribe removes the feed and closes it; the consumer's Drain returns
// any remaining buffered lines and then reports the feed over. Idempotent,
// and safe to call concurrently with Publish.
func (b *Bus) Unsubscribe(sub *Subscriber) {
	b.allMu.Lock()
	_, registered := b.all[sub]
	delete(b.all, sub)
	b.allMu.Unlock()
	if !registered {
		return
	}
	if b.opts.Active != nil {
		b.opts.Active.Dec()
	}
	for _, sh := range b.homes(sub) {
		sh.mu.Lock()
		delete(sh.subs, sub)
		sh.rebuild()
		sh.mu.Unlock()
	}
	sub.close()
}

// CloseAll closes every feed (consumers drain their backlog and then see
// end-of-feed) and empties the registry — the server's Shutdown path.
func (b *Bus) CloseAll() {
	b.allMu.Lock()
	subs := make([]*Subscriber, 0, len(b.all))
	for sub := range b.all {
		subs = append(subs, sub)
	}
	b.allMu.Unlock()
	for _, sub := range subs {
		b.Unsubscribe(sub)
	}
}

// ReleaseCompressors drops per-object compressor state for every object the
// keep predicate rejects, across all subscribers. The server calls this
// after EVICT/SEAL removes objects, so a wildcard subscriber with a
// compression spec does not accumulate compressors for a churning fleet.
func (b *Bus) ReleaseCompressors(keep func(id string) bool) {
	b.allMu.Lock()
	subs := make([]*Subscriber, 0, len(b.all))
	for sub := range b.all {
		subs = append(subs, sub)
	}
	b.allMu.Unlock()
	for _, sub := range subs {
		sub.mu.Lock()
		for id := range sub.comps {
			if !keep(id) {
				delete(sub.comps, id)
			}
		}
		sub.mu.Unlock()
	}
}

// Publish fans one accepted observation out to the subscribers interested
// in it. It takes no bus-wide or shard lock: the shard's subscriber view is
// read atomically, and all mutation happens under each subscriber's own
// mutex, so per-subscriber compression and ring insertion never serialize
// ingest against unrelated feeds.
func (b *Bus) Publish(id string, s trajectory.Sample) {
	v := b.shards[fnv1a(id)&b.mask].view.Load()
	if v == nil {
		return
	}
	line := "" // formatted once, shared by every plain-relay subscriber
	for _, sub := range v.byID[id] {
		sub.deliver(id, s, &line, b)
	}
	for _, sub := range v.wild {
		sub.deliver(id, s, &line, b)
	}
}

// deliver pushes one observation into this subscriber's feed: geofence
// filter, optional per-object compression, then the ring. shared caches the
// plain-relay line across subscribers of one Publish call.
func (sub *Subscriber) deliver(id string, s trajectory.Sample, shared *string, b *Bus) {
	if sub.box != nil && !sub.box.Contains(geo.Pt(s.X, s.Y)) {
		return
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	if sub.newComp == nil {
		if *shared == "" {
			*shared = PosLine(id, s)
		}
		sub.offerLocked(*shared, b)
		return
	}
	c := sub.comps[id]
	if c == nil {
		c = sub.newComp()
		sub.comps[id] = c
	}
	kept, err := c.Push(s)
	if err != nil {
		// The sample broke the compressor's ordering contract (e.g. the
		// feed restarted at an older timestamp after a primary failover).
		// Reset the object's compressor and re-anchor it on this sample —
		// keeping the broken one would degrade the feed to an error on
		// every subsequent in-order push, permanently.
		c = sub.newComp()
		sub.comps[id] = c
		kept, err = c.Push(s)
		if err != nil {
			// A fresh compressor refusing its first sample is pathological;
			// relay raw rather than lose the observation.
			sub.offerLocked(PosLine(id, s), b)
			return
		}
	}
	for _, k := range kept {
		sub.offerLocked(PosLine(id, k), b)
	}
}

// offerLocked appends one line to the ring, applying the slow-consumer
// policy on overflow; callers hold sub.mu.
func (sub *Subscriber) offerLocked(line string, b *Bus) {
	if sub.closed {
		return
	}
	if sub.n == len(sub.ring) {
		b.countDrop(sub.policy)
		switch sub.policy {
		case DropNewest:
			return
		case DropOldest:
			sub.ring[sub.head] = ""
			sub.head = (sub.head + 1) % len(sub.ring)
			sub.n--
		case Disconnect:
			// End the feed: the consumer drains the backlog, then sees
			// end-of-feed and closes the connection. The incoming line is
			// lost either way — a consumer this far behind asked for a
			// hangup over staleness.
			sub.closed = true
			sub.cond.Broadcast()
			return
		}
	}
	sub.ring[(sub.head+sub.n)%len(sub.ring)] = line
	sub.n++
	if sub.n == 1 {
		sub.cond.Broadcast()
	}
}

func (b *Bus) countDrop(p Policy) {
	if b.opts.DropsTotal != nil {
		b.opts.DropsTotal.Inc()
	}
	if int(p) < len(b.opts.PolicyDrops) && b.opts.PolicyDrops[p] != nil {
		b.opts.PolicyDrops[p].Inc()
	}
}

// close ends the feed; buffered lines remain drainable.
func (sub *Subscriber) close() {
	sub.mu.Lock()
	if !sub.closed {
		sub.closed = true
		sub.cond.Broadcast()
	}
	sub.comps = nil // release compressor state promptly
	sub.mu.Unlock()
}

// Drain blocks until the ring is non-empty or the feed is over, then moves
// every buffered line into buf (reusing its capacity) in arrival order. It
// reports open=false only once the feed is closed and empty, so a closing
// feed still delivers its backlog. One Drain per write+flush is the
// coalescing contract: a burst of published updates costs the consumer one
// syscall pair, not one per line.
func (sub *Subscriber) Drain(buf []string) (lines []string, open bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	for sub.n == 0 && !sub.closed {
		sub.cond.Wait()
	}
	buf = buf[:0]
	for ; sub.n > 0; sub.n-- {
		buf = append(buf, sub.ring[sub.head])
		sub.ring[sub.head] = ""
		sub.head = (sub.head + 1) % len(sub.ring)
	}
	return buf, !sub.closed || len(buf) > 0
}

// CompCount reports how many per-object compressors the subscriber holds —
// visibility for the eviction-release leak tests.
func (sub *Subscriber) CompCount() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return len(sub.comps)
}

// Policy reports the subscription's slow-consumer policy.
//
//lint:allow mutexguard policy is immutable after Subscribe
func (sub *Subscriber) Policy() Policy { return sub.policy }

// PosLine formats the wire line for one observation.
func PosLine(id string, s trajectory.Sample) string {
	return fmt.Sprintf("POS %s %g %g %g", id, s.T, s.X, s.Y)
}
