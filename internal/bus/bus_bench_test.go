package bus

import (
	"fmt"
	"testing"

	"repro/internal/trajectory"
)

// BenchmarkPublishScaling pins the acceptance criterion that ingest-side
// publish cost stays flat as unrelated subscribers accumulate: each idle
// subscriber follows its own object, so publishing to "hot" must not slow
// down as their count grows to 10k. A linear-scan bus fails this by orders
// of magnitude.
func BenchmarkPublishScaling(b *testing.B) {
	for _, idle := range []int{0, 100, 10000} {
		b.Run(fmt.Sprintf("idle=%d", idle), func(b *testing.B) {
			bus := New(Options{Shards: 16})
			for i := 0; i < idle; i++ {
				bus.Subscribe(SubOptions{ID: fmt.Sprintf("other-%d", i), Capacity: 8})
			}
			// One interested consumer so the publish path does real work.
			sub := bus.Subscribe(SubOptions{ID: "hot", Policy: DropOldest, Capacity: 64})
			_ = sub
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bus.Publish("hot", trajectory.S(float64(i), 1, 2))
			}
		})
	}
}

// BenchmarkPublishWildcardFanout measures the per-subscriber cost when
// every subscriber is interested (wildcards), the worst case for one
// publish.
func BenchmarkPublishWildcardFanout(b *testing.B) {
	for _, subs := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			bus := New(Options{Shards: 16})
			for i := 0; i < subs; i++ {
				bus.Subscribe(SubOptions{ID: "*", Policy: DropOldest, Capacity: 64})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bus.Publish("hot", trajectory.S(float64(i), 1, 2))
			}
		})
	}
}
