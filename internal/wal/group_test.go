package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trajectory"
)

// gateFS wraps a filesystem so the test can park fsyncs at a barrier: every
// Sync after the header setup blocks until the test releases it, and the
// release value decides success or failure. This makes group-commit
// coalescing deterministic instead of racing against disk latency.
type gateFS struct {
	fault.FS
	gate *syncGate
}

type syncGate struct {
	mu      sync.Mutex
	armed   bool
	syncs   atomic.Int64
	entered chan struct{} // one send per gated Sync entry
	release chan error    // one receive per gated Sync exit
}

func newSyncGate() *syncGate {
	return &syncGate{entered: make(chan struct{}, 64), release: make(chan error, 64)}
}

func (g *syncGate) arm()    { g.mu.Lock(); g.armed = true; g.mu.Unlock() }
func (g *syncGate) disarm() { g.mu.Lock(); g.armed = false; g.mu.Unlock() }

func (fs gateFS) OpenFile(name string, flag int, perm os.FileMode) (fault.File, error) {
	f, err := fs.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return gateFile{File: f, gate: fs.gate}, nil
}

type gateFile struct {
	fault.File
	gate *syncGate
}

func (f gateFile) Sync() error {
	f.gate.mu.Lock()
	armed := f.gate.armed
	f.gate.mu.Unlock()
	f.gate.syncs.Add(1)
	if !armed {
		return f.File.Sync()
	}
	f.gate.entered <- struct{}{}
	if err := <-f.gate.release; err != nil {
		return err
	}
	return f.File.Sync()
}

// TestGroupCommitCoalescesConcurrentAppends is the tentpole contract: while
// one leader's fsync is in flight, every append queued behind it must be
// covered by the single next fsync — four strict-durability appends, two
// fsyncs total.
func TestGroupCommitCoalescesConcurrentAppends(t *testing.T) {
	gate := newSyncGate()
	fsys := gateFS{FS: fault.NewFS(fault.OS, fault.NewSet(nil)), gate: gate}
	d, err := OpenDurableFS(fsys, filepath.Join(t.TempDir(), "trips.wal"), store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	d.SetSyncEvery(0) // every append waits for the fsync covering it
	gate.arm()
	before := gate.syncs.Load()

	// Leader: its fsync parks at the gate.
	leaderDone := make(chan error, 1)
	go func() { leaderDone <- d.Append("lead", trajectory.S(0, 0, 0)) }()
	<-gate.entered

	// Three followers queue while the leader's fsync is in flight.
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = d.Append(fmt.Sprintf("follow-%d", i), trajectory.S(float64(i), 1, 1))
		}(i)
	}
	// Wait until all three followers have staged their records behind the
	// in-flight fsync — only then is "one group fsync covers all three"
	// the required outcome rather than a lucky interleaving.
	waitForStaged(t, d, 4)
	// The followers must NOT start a second fsync while the leader holds
	// the token; give them the leader's release, then one more for the
	// group sync that covers all three.
	gate.release <- nil
	<-gate.entered
	gate.release <- nil
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader append: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("follower %d append: %v", i, err)
		}
	}
	if got := gate.syncs.Load() - before; got != 2 {
		t.Fatalf("4 strict appends used %d fsyncs, want 2 (1 leader + 1 group)", got)
	}
	gate.disarm()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitForStaged polls until n records have been staged into the write
// buffer (not necessarily synced).
func waitForStaged(t *testing.T, d *DurableStore, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.mu.Lock()
		l := d.log
		d.mu.Unlock()
		l.mu.Lock()
		staged := l.writeSeq
		l.mu.Unlock()
		if staged >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d records staged before timeout", staged, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// A failing group fsync must propagate the error to every append it was
// covering — none of them may report durability — and poison the store.
func TestGroupCommitSyncFailurePropagatesToAllWaiters(t *testing.T) {
	gate := newSyncGate()
	fsys := gateFS{FS: fault.NewFS(fault.OS, fault.NewSet(nil)), gate: gate}
	d, err := OpenDurableFS(fsys, filepath.Join(t.TempDir(), "trips.wal"), store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	d.SetSyncEvery(0)
	gate.arm()

	leaderDone := make(chan error, 1)
	go func() { leaderDone <- d.Append("lead", trajectory.S(0, 0, 0)) }()
	<-gate.entered

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = d.Append(fmt.Sprintf("follow-%d", i), trajectory.S(float64(i), 1, 1))
		}(i)
	}
	waitForStaged(t, d, 4)
	// Fail the leader's fsync. The waiters behind it must all error too:
	// either via the sticky torn-log state or the store's poison.
	broken := errors.New("injected fsync failure")
	gate.release <- broken
	if err := <-leaderDone; !errors.Is(err, broken) {
		t.Fatalf("leader append = %v, want the injected fsync failure", err)
	}
	// A second fsync attempt may or may not start before the poison is
	// observed; fail it as well if it does.
	for drained := false; !drained; {
		select {
		case <-gate.entered:
			gate.release <- broken
		default:
			drained = true
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("follower %d acknowledged an append the failed fsync never covered", i)
		}
	}
	if d.Poisoned() == nil {
		t.Fatal("store not poisoned after group-commit fsync failure")
	}
	if err := d.Append("after", trajectory.S(9, 9, 9)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failed group commit = %v, want ErrPoisoned", err)
	}
}

// Concurrent strict-durability appends across many goroutines must all be
// recoverable after reopen — the acknowledged-prefix guarantee holds under
// contention, and per-object order survives the shared log.
func TestGroupCommitConcurrentAppendsRecoverable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trips.wal")
	d, err := OpenDurable(path, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	d.SetSyncEvery(0)
	const goroutines, perObject = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := string(rune('a' + g))
			for i := 0; i < perObject; i++ {
				if err := d.Append(id, trajectory.S(float64(i), float64(g), float64(i))); err != nil {
					t.Errorf("append %s/%d: %v", id, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(path, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for g := 0; g < goroutines; g++ {
		id := string(rune('a' + g))
		snap, ok := d2.Snapshot(id)
		if !ok || snap.Len() != perObject {
			t.Fatalf("object %s: recovered %d samples, want %d", id, snap.Len(), perObject)
		}
		for i, s := range snap {
			if s.T != float64(i) || s.X != float64(g) {
				t.Fatalf("object %s sample %d = %+v, out of order or corrupt", id, i, s)
			}
		}
	}
}

// AppendBatch must behave like the equivalent singles: same store state,
// same durable log, one OK for the whole batch, and an intact applied
// prefix when a mid-batch sample is rejected.
func TestDurableAppendBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trips.wal")
	d, err := OpenDurable(path, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	d.SetSyncEvery(0)
	batch := []trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(1, 1, 0), trajectory.S(2, 2, 0),
	}
	if n, err := d.AppendBatch("car", batch); err != nil || n != 3 {
		t.Fatalf("AppendBatch = (%d, %v), want (3, nil)", n, err)
	}
	// Mid-batch rejection: t=1 is out of order after t=3; the prefix up to
	// it must stick, the suffix must not.
	bad := []trajectory.Sample{
		trajectory.S(3, 3, 0), trajectory.S(1, 9, 9), trajectory.S(4, 4, 0),
	}
	n, err := d.AppendBatch("car", bad)
	if err == nil || n != 1 {
		t.Fatalf("out-of-order batch = (%d, %v), want (1, error)", n, err)
	}
	if d.Poisoned() != nil {
		t.Fatalf("store rejection poisoned the log: %v", d.Poisoned())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(path, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, _ := d2.Snapshot("car")
	wantT := []float64{0, 1, 2, 3}
	if snap.Len() != len(wantT) {
		t.Fatalf("recovered %d samples, want %d", snap.Len(), len(wantT))
	}
	for i, w := range wantT {
		if snap[i].T != w {
			t.Fatalf("sample %d at t=%v, want t=%v", i, snap[i].T, w)
		}
	}
}
