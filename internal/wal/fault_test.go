package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trajectory"
)

func counterValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// TestLogTruncatedAtEveryByteOffset is the exhaustive crash-point sweep: a
// multi-record log chopped at every possible byte offset — mid-header,
// mid-length-prefix, mid-payload, mid-CRC — must always reopen, recover
// exactly the record prefix that fits below the cut, count the torn tail in
// wal_torn_tail_recoveries_total, and accept appends again.
func TestLogTruncatedAtEveryByteOffset(t *testing.T) {
	const nRecords = 6
	const recSize = 4 + (1 + 1 + 24) + 4 // len prefix + payload(idLen+id+3 floats) + crc

	full := filepath.Join(t.TempDir(), "full.wal")
	l, err := Open(full, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRecords; i++ {
		if err := l.Append(Record{ID: "x", Sample: trajectory.S(float64(i), float64(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := int64(len(headerMagic) + nRecords*recSize)
	if int64(len(data)) != wantSize {
		t.Fatalf("log size %d, want %d — record framing changed, update the test", len(data), wantSize)
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		var got []Record
		lc, err := openLog(fault.OS, path, func(r Record) error { got = append(got, r); return nil }, newInstruments(reg))
		if err != nil {
			t.Fatalf("cut at byte %d: reopen failed: %v", cut, err)
		}
		wantRecs := 0
		if cut >= len(headerMagic) {
			wantRecs = (cut - len(headerMagic)) / recSize
		}
		if len(got) != wantRecs {
			t.Fatalf("cut at byte %d: recovered %d records, want %d", cut, len(got), wantRecs)
		}
		for i, r := range got {
			if r.ID != "x" || r.Sample.T != float64(i) {
				t.Fatalf("cut at byte %d: record %d = %+v — not the logged prefix", cut, i, r)
			}
		}
		torn := cut != 0 && (cut < len(headerMagic) || (cut-len(headerMagic))%recSize != 0)
		wantTorn := 0.0
		if torn {
			wantTorn = 1
		}
		if got := counterValue(t, reg, "wal_torn_tail_recoveries_total"); got != wantTorn {
			t.Fatalf("cut at byte %d: torn-tail counter = %v, want %v", cut, got, wantTorn)
		}
		// The recovered log must be appendable: durability continues after
		// any crash shape.
		if err := lc.Append(Record{ID: "x", Sample: trajectory.S(1e9, 0, 0)}); err != nil {
			t.Fatalf("cut at byte %d: append after recovery: %v", cut, err)
		}
		if err := lc.Close(); err != nil {
			t.Fatalf("cut at byte %d: close: %v", cut, err)
		}
		n := 0
		lc2, err := openLog(fault.OS, path, func(Record) error { n++; return nil }, newInstruments(metrics.NewRegistry()))
		if err != nil {
			t.Fatalf("cut at byte %d: second reopen: %v", cut, err)
		}
		if n != wantRecs+1 {
			t.Fatalf("cut at byte %d: second reopen saw %d records, want %d", cut, n, wantRecs+1)
		}
		_ = lc2.Close()
	}
}

// A failed write mid-append leaves the in-memory store ahead of the log; the
// durable store must turn sticky-poisoned rather than keep acknowledging
// appends it cannot make durable — and a successful Compact must heal it.
func TestDurableStorePoisonAndHeal(t *testing.T) {
	reg := metrics.NewRegistry()
	set := fault.NewSet(reg)
	fsys := fault.NewFS(fault.OS, set)
	path := filepath.Join(t.TempDir(), "trips.wal")

	d, err := OpenDurableFS(fsys, path, store.Options{Metrics: reg}) // raw mode: every sample logged
	if err != nil {
		t.Fatal(err)
	}
	d.SetSyncEvery(0) // flush every append so the injected write error surfaces in Append
	for i := 0; i < 5; i++ {
		if err := d.Append("car", trajectory.S(float64(i), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}

	set.Enable(fault.SiteWrite, fault.OnCall(1), fault.Action{})
	if err := d.Append("car", trajectory.S(5, 5, 0)); err == nil {
		t.Fatal("append with failing write succeeded")
	}
	set.Disable(fault.SiteWrite)

	// The store is ahead of the log now; every write-path call must report
	// the sticky poison even though the disk works again.
	if err := d.Append("car", trajectory.S(6, 6, 0)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failure = %v, want ErrPoisoned", err)
	}
	if err := d.Flush(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("flush after failure = %v, want ErrPoisoned", err)
	}
	if d.Poisoned() == nil {
		t.Fatal("Poisoned() = nil after divergence")
	}
	if got := counterValue(t, reg, "fault_hits_total"); got != 1 {
		t.Errorf("fault_hits_total = %v, want 1", got)
	}

	// Compact rewrites the log from the store state: heals the poison, and
	// the recovered state afterwards matches the in-memory snapshot exactly
	// (including the sample whose log write failed).
	if err := d.Compact(); err != nil {
		t.Fatalf("healing compaction failed: %v", err)
	}
	if d.Poisoned() != nil {
		t.Fatalf("still poisoned after compaction: %v", d.Poisoned())
	}
	if err := d.Append("car", trajectory.S(7, 7, 0)); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	want, _ := d.Snapshot("car")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurableFS(fault.OS, path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, ok := d2.Snapshot("car")
	if !ok || got.Len() != want.Len() {
		t.Fatalf("recovered %d samples, want %d", got.Len(), want.Len())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// A failed fsync is as poisonous as a failed write: the acknowledgement
// contract (append returns nil ⇒ record durable under SyncEvery) would
// otherwise silently break.
func TestDurableStorePoisonOnSyncFailure(t *testing.T) {
	reg := metrics.NewRegistry()
	set := fault.NewSet(reg)
	path := filepath.Join(t.TempDir(), "trips.wal")
	d, err := OpenDurableFS(fault.NewFS(fault.OS, set), path, store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetSyncEvery(0)
	if err := d.Append("car", trajectory.S(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	set.Enable(fault.SiteSync, fault.OnCall(1), fault.Action{})
	if err := d.Append("car", trajectory.S(1, 0, 0)); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	set.Disable(fault.SiteSync)
	if err := d.Append("car", trajectory.S(2, 0, 0)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after sync failure = %v, want ErrPoisoned", err)
	}
}

// Compaction failures before the commit point must leave the old log
// authoritative and the store fully usable — no poison, no data loss.
func TestCompactFailuresBeforeCommitAreHarmless(t *testing.T) {
	reg := metrics.NewRegistry()
	set := fault.NewSet(reg)
	fsys := fault.NewFS(fault.OS, set)
	path := filepath.Join(t.TempDir(), "trips.wal")
	d, err := OpenDurableFS(fsys, path, store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Append("car", trajectory.S(float64(i), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}

	// Fail the replacement's final sync (inside tmp.Close), then the
	// tmp→done rename: both abort before the commit point.
	set.Enable(fault.SiteSync, fault.OnCall(1), fault.Action{})
	if err := d.Compact(); err == nil {
		t.Fatal("compaction with failing sync succeeded")
	}
	set.Disable(fault.SiteSync)
	set.Enable(fault.SiteRename, fault.OnCall(1), fault.Action{})
	if err := d.Compact(); err == nil {
		t.Fatal("compaction with failing rename succeeded")
	}
	set.Disable(fault.SiteRename)

	if d.Poisoned() != nil {
		t.Fatalf("aborted compaction poisoned the store: %v", d.Poisoned())
	}
	if err := d.Append("car", trajectory.S(100, 0, 0)); err != nil {
		t.Fatalf("append after aborted compactions: %v", err)
	}
	if _, err := os.Stat(path + compactTmpExt); !os.IsNotExist(err) {
		t.Error("aborted compaction left a .compact.tmp behind")
	}
	if _, err := os.Stat(path + compactDoneExt); !os.IsNotExist(err) {
		t.Error("aborted compaction left a .compact marker behind")
	}

	// And with the faults gone, compaction succeeds.
	if err := d.Compact(); err != nil {
		t.Fatalf("clean compaction after aborts: %v", err)
	}
	if got := counterValue(t, reg, "wal_compactions_total"); got != 1 {
		t.Errorf("wal_compactions_total = %v, want 1", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurableFS(fault.OS, path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, _ := d2.Snapshot("car")
	if snap.Len() != 11 {
		t.Errorf("recovered %d samples, want 11", snap.Len())
	}
}

// A failure of the commit rename (done→path) rolls the marker back: the old
// log stays authoritative and the store keeps working.
func TestCompactCommitRenameRollsBack(t *testing.T) {
	reg := metrics.NewRegistry()
	set := fault.NewSet(reg)
	path := filepath.Join(t.TempDir(), "trips.wal")
	d, err := OpenDurableFS(fault.NewFS(fault.OS, set), path, store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Append("car", trajectory.S(float64(i), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Rename 1 (tmp→done) succeeds, rename 2 (done→path) fails.
	set.Enable(fault.SiteRename, fault.OnCall(2), fault.Action{})
	if err := d.Compact(); err == nil {
		t.Fatal("compaction with failing commit rename succeeded")
	}
	set.Disable(fault.SiteRename)
	if _, err := os.Stat(path + compactDoneExt); !os.IsNotExist(err) {
		t.Fatal("rolled-back compaction left the .compact marker — next open would recover stale state")
	}
	if d.Poisoned() != nil {
		t.Fatalf("rolled-back compaction poisoned the store: %v", d.Poisoned())
	}
	if err := d.Append("car", trajectory.S(100, 0, 0)); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurableFS(fault.OS, path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, _ := d2.Snapshot("car")
	if snap.Len() != 11 {
		t.Errorf("recovered %d samples, want 11", snap.Len())
	}
}

// A crash between completing the replacement and committing it leaves a
// ".compact" file; recovery must prefer it over the stale old log.
func TestRecoveryPrefersCompletedCompact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trips.wal")

	// The stale old log: 10 records.
	old, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := old.Append(Record{ID: "stale", Sample: trajectory.S(float64(i), 0, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	// The completed replacement a crash stranded beside it: 3 records.
	repl, err := Open(path+compactDoneExt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := repl.Append(Record{ID: "fresh", Sample: trajectory.S(float64(i), 1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := repl.Close(); err != nil {
		t.Fatal(err)
	}
	// And a half-written tmp from some other crash: garbage to discard.
	if err := os.WriteFile(path+compactTmpExt, []byte("half-written junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := OpenDurable(path, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, ok := d.Snapshot("stale"); ok {
		t.Error("recovered from the stale log despite a completed .compact")
	}
	snap, ok := d.Snapshot("fresh")
	if !ok || snap.Len() != 3 {
		t.Fatalf("recovered %d fresh samples, want 3", snap.Len())
	}
	if _, err := os.Stat(path + compactDoneExt); !os.IsNotExist(err) {
		t.Error(".compact marker survived recovery")
	}
	if _, err := os.Stat(path + compactTmpExt); !os.IsNotExist(err) {
		t.Error(".compact.tmp garbage survived recovery")
	}
}

// SetSyncEvery must survive compaction's close-and-reopen of the log.
func TestSyncEverySurvivesCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trips.wal")
	d, err := OpenDurable(path, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetSyncEvery(0)
	if err := d.Append("car", trajectory.S(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	//lint:allow mutexguard single-threaded test peeking at the reopened log; no concurrent appender exists
	if got := d.log.SyncEvery; got != 0 {
		t.Errorf("SyncEvery after compaction = %d, want 0", got)
	}
}
