package wal

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/internal/trajectory"
)

// ErrPoisoned is the sticky error the durable store returns after a
// mid-batch log failure left the in-memory store ahead of the log.
// Accepting further appends would widen that divergence silently, so every
// write-path call fails with this error until a successful Compact rewrites
// the log from the store state and heals it.
var ErrPoisoned = errors.New("wal: log poisoned by earlier append failure")

// ErrSealedHistory is returned by Compact while the store's cold sealed
// tier holds history. Compaction rewrites the log from the hot retained
// state only, and the log is the sole durable copy of sealed samples (the
// cold tier is a regenerable cache, never a durability dependency) — so
// compacting would silently drop sealed history from durability.
var ErrSealedHistory = errors.New("wal: compaction refused while sealed history exists (the log is its only durable copy)")

// Compaction file extensions. A ".compact.tmp" is a replacement log still
// being written — garbage after a crash. A ".compact" is by construction
// fully written and synced (Compact renames tmp to it only after a clean
// close), so recovery prefers it over the log it was about to replace.
const (
	compactTmpExt  = ".compact.tmp"
	compactDoneExt = ".compact"
)

// DurableStore couples a moving-object store with a write-ahead log. Raw
// observations pass through the store's on-ingest compressor; the retained
// stream is logged, so a reopened DurableStore recovers the identical
// retained state. Samples still buffered in a compressor window are not yet
// durable — except that Close seals each object's latest position into the
// log before shutdown.
type DurableStore struct {
	*store.Store

	mu         sync.Mutex
	fs         fault.FS
	log        *Log
	ins        *instruments
	lastLogged map[string]float64 // last logged timestamp per object
	syncEvery  int                // sticky across compaction reopens
	poisoned   error              // sticky divergence error; see ErrPoisoned
	replica    bool               // replication follower: see SetReplica
}

// ErrReplica is returned by the write path while the store is in replica
// mode: a follower's state must stay exactly the replay of its primary's
// log, so only ApplyReplica may mutate it.
var ErrReplica = errors.New("wal: store is a replication follower (readonly)")

// OpenDurable opens (or creates) a durable store backed by the log at path,
// replaying any existing records into a fresh store built with opts. The
// WAL's instruments — and the fault-injection hit counter — register in
// opts.Metrics alongside the store's.
func OpenDurable(path string, opts store.Options) (*DurableStore, error) {
	return OpenDurableFS(fault.NewFS(fault.OS, fault.NewSet(opts.Metrics)), path, opts)
}

// OpenDurableFS is OpenDurable over an explicit filesystem, the entry point
// of the fault-injection tests.
func OpenDurableFS(fsys fault.FS, path string, opts store.Options) (*DurableStore, error) {
	// Finish a compaction that crashed between completing its replacement
	// and committing it: the ".compact" file is fully written and synced,
	// and it supersedes the old log (every old record is either in it or
	// was superseded). A ".compact.tmp" is a half-written replacement from
	// a crash mid-compaction — remove it.
	if _, err := fsys.Stat(path + compactDoneExt); err == nil {
		if err := fsys.Rename(path+compactDoneExt, path); err != nil {
			return nil, fmt.Errorf("wal: finishing interrupted compaction: %w", err)
		}
	}
	_ = fsys.Remove(path + compactTmpExt) // best effort: usually absent

	st := store.New(opts)
	ins := newInstruments(opts.Metrics)
	lastLogged := make(map[string]float64)
	log, err := openLog(fsys, path, func(rec Record) error {
		lastLogged[rec.ID] = rec.Sample.T
		return st.Restore(rec.ID, rec.Sample)
	}, ins)
	if err != nil {
		return nil, err
	}
	return &DurableStore{
		Store: st, fs: fsys, log: log, ins: ins,
		lastLogged: lastLogged, syncEvery: log.SyncEvery,
	}, nil
}

// SetSyncEvery sets how many records may be appended between fsyncs; 0
// syncs on every append, the strict mode under which an acknowledged
// append is durable before its caller hears OK. The setting survives
// compaction.
func (d *DurableStore) SetSyncEvery(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	d.syncEvery = n
	d.log.SetSyncEvery(n)
}

// Poisoned reports the sticky divergence error, or nil while the log and
// store agree.
func (d *DurableStore) Poisoned() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.poisoned
}

// Append ingests one raw observation and logs whatever the store retained.
// A sample is durable once logged (subject to the log's SyncEvery
// batching). A log failure mid-batch poisons the store: the in-memory state
// is ahead of the log, so every subsequent write-path call returns
// ErrPoisoned until Compact rewrites the log and heals the divergence.
//
// Only the store update and the buffered log write happen under the store
// lock (they must, so per-object log order matches store-accept order); the
// group-commit durability wait runs after it is released, so concurrent
// appenders share one fsync instead of serializing behind each other's.
func (d *DurableStore) Append(id string, s trajectory.Sample) error {
	d.mu.Lock()
	if d.replica {
		d.mu.Unlock()
		return ErrReplica
	}
	if d.poisoned != nil {
		err := d.poisoned
		d.mu.Unlock()
		return err
	}
	retained, err := d.Store.AppendObserved(id, s)
	if err != nil {
		d.mu.Unlock()
		return err // rejected before any state change: not poisonous
	}
	log, lastSeq, err := d.stageLocked(id, retained)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	if lastSeq == 0 {
		return nil // nothing retained: the sample sits in a compressor window
	}
	if cerr := log.commit(lastSeq); cerr != nil {
		return d.poisonCommit(log, id, cerr)
	}
	return nil
}

// AppendBatch ingests a batch of raw observations for one object with one
// shard-lock acquisition and at most one group-commit wait. On error the
// first `applied` samples were ingested and the rest were not — an intact
// prefix, the batch analogue of the acknowledged-prefix guarantee. Any
// non-nil error means the caller must not acknowledge the batch: a commit
// failure leaves even the applied prefix's durability unknown and poisons
// the store.
func (d *DurableStore) AppendBatch(id string, ss []trajectory.Sample) (int, error) {
	d.mu.Lock()
	if d.replica {
		d.mu.Unlock()
		return 0, ErrReplica
	}
	if d.poisoned != nil {
		err := d.poisoned
		d.mu.Unlock()
		return 0, err
	}
	applied, retained, err := d.Store.AppendBatchObserved(id, ss)
	log, lastSeq, serr := d.stageLocked(id, retained)
	d.mu.Unlock()
	if serr != nil {
		return applied, serr
	}
	if lastSeq != 0 {
		if cerr := log.commit(lastSeq); cerr != nil {
			return applied, d.poisonCommit(log, id, cerr)
		}
	}
	return applied, err
}

// stageLocked buffers the retained samples into the log and returns the log
// and the last staged sequence number (0 if nothing was staged) for the
// commit the caller performs after releasing d.mu. A staging failure
// poisons the store: the in-memory state is ahead of the log. Caller holds
// d.mu.
func (d *DurableStore) stageLocked(id string, retained []trajectory.Sample) (*Log, uint64, error) {
	var lastSeq uint64
	for _, r := range retained {
		seq, err := d.log.stage(Record{ID: id, Sample: r})
		if err != nil {
			d.poisoned = fmt.Errorf("%w (object %q: %v)", ErrPoisoned, id, err)
			return nil, 0, fmt.Errorf("wal: append %q: %w", id, err)
		}
		d.lastLogged[id] = r.T
		lastSeq = seq
	}
	return d.log, lastSeq, nil
}

// poisonCommit records the sticky divergence after a group-commit failure:
// samples the store already accepted may never have reached stable storage.
// If a concurrent Compact already replaced the log, the rewrite covered
// every retained sample from the store state, so the stale log's failure is
// moot and no poison is set. what names the failing operation for the error
// chain ("object \"car\"", "replica batch").
func (d *DurableStore) poisonCommit(log *Log, what string, err error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == log && d.poisoned == nil {
		d.poisoned = fmt.Errorf("%w (%s: %v)", ErrPoisoned, what, err)
	}
	return fmt.Errorf("wal: %s: %w", what, err)
}

// SetReplica flips the store in or out of replication-follower mode. In
// replica mode the write path (Append, AppendBatch) refuses with ErrReplica
// — only ApplyReplica may mutate state, so the local log stays a byte-exact
// prefix of the primary's — and Close skips sealing latest positions (the
// primary never logged those records, so sealing would diverge the logs).
// Promotion to primary is SetReplica(false).
func (d *DurableStore) SetReplica(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.replica = on
}

// Replica reports whether the store is in replication-follower mode.
func (d *DurableStore) Replica() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.replica
}

// AckedOffset returns the durable acknowledged byte offset of the log: the
// prefix below it is covered by a completed fsync. A follower sends it as
// the catch-up cursor of REPLICATE and reports it back in ACKs.
func (d *DurableStore) AckedOffset() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.AckedOffset()
}

// AckedSeq returns the number of log records covered by a completed fsync,
// counted from the log's first record — stable across reopens, and directly
// comparable between a primary and its followers for lag accounting.
func (d *DurableStore) AckedSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.SyncedSeq()
}

// WrittenOffset returns the staged log length in bytes; every append
// accepted so far ends at or below it. See Log.WrittenOffset.
func (d *DurableStore) WrittenOffset() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.WrittenOffset()
}

// LogPath returns the path of the live log file — the file a replication
// sender streams from. Compact swaps the file behind this path, which
// invalidates any open reader; replication deployments must not compact
// while followers are attached (runtime code never compacts — it is a
// maintenance operation).
func (d *DurableStore) LogPath() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.path
}

// SubscribeSynced registers ch for a poke whenever the durable acknowledged
// offset advances; UnsubscribeSynced removes it. See Log.SubscribeSynced.
func (d *DurableStore) SubscribeSynced(ch chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.log.SubscribeSynced(ch)
}

// UnsubscribeSynced removes ch from the sync notification list.
func (d *DurableStore) UnsubscribeSynced(ch chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.log.UnsubscribeSynced(ch)
}

// ApplyReplica applies records received from a primary's replication stream:
// each record is restored into the store (bypassing compression — the
// stream is already the primary's post-compression retained sequence) and
// staged into the local log, then the whole batch is committed with one
// group fsync. Re-encoding is deterministic, so the local log remains a
// byte-exact prefix of the primary's log and the local synced offset is the
// ACK cursor. A restore rejection (stream/store divergence) leaves store
// and log agreeing on the applied prefix and is returned un-poisoned; a log
// staging or commit failure poisons the store exactly like Append.
func (d *DurableStore) ApplyReplica(recs []Record) error {
	d.mu.Lock()
	if d.poisoned != nil {
		err := d.poisoned
		d.mu.Unlock()
		return err
	}
	var lastSeq uint64
	for _, rec := range recs {
		if err := d.Store.Restore(rec.ID, rec.Sample); err != nil {
			d.mu.Unlock()
			return fmt.Errorf("wal: replica apply %q: %w", rec.ID, err)
		}
		seq, err := d.log.stage(rec)
		if err != nil {
			d.poisoned = fmt.Errorf("%w (replica apply %q: %v)", ErrPoisoned, rec.ID, err)
			d.mu.Unlock()
			return fmt.Errorf("wal: replica apply %q: %w", rec.ID, err)
		}
		d.lastLogged[rec.ID] = rec.Sample.T
		lastSeq = seq
	}
	log := d.log
	d.mu.Unlock()
	if lastSeq == 0 {
		return nil // empty batch
	}
	if err := log.Flush(); err != nil {
		return d.poisonCommit(log, "replica", err)
	}
	return nil
}

// Flush forces all logged records to stable storage.
func (d *DurableStore) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		return d.poisoned
	}
	//lint:allow lockorder Flush is a stop-the-world durability barrier: holding d.mu across the fsync is the point
	return d.log.Flush()
}

// LogSize returns the current log size in bytes.
func (d *DurableStore) LogSize() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Size()
}

// Close seals each object's latest position into the log (if newer than the
// last logged record, so replay order is preserved) and closes the log.
// Sealing is safe only at shutdown: after a reopen every compressor window
// is empty, so no later emission can precede the sealed sample in time.
// The in-memory store remains usable read-only afterwards. A poisoned store
// skips sealing — the log's tail state is unknown — and reports the poison.
func (d *DurableStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		//lint:allow lockorder shutdown-only path: d.mu held across the final seal/close excludes concurrent appends by design
		_ = d.log.Close() // best effort: the poison is the error worth reporting
		return d.poisoned
	}
	if d.replica {
		// A follower must not invent records the primary never logged;
		// whatever sits in the replicated prefix is already durable.
		//lint:allow lockorder shutdown-only path: d.mu held across the final seal/close excludes concurrent appends by design
		return d.log.Close()
	}
	for _, id := range d.Store.IDs() {
		snap, ok := d.Store.Snapshot(id)
		if !ok || snap.Len() == 0 {
			continue
		}
		last := snap[snap.Len()-1]
		if last.T <= d.lastLogged[id] {
			continue
		}
		//lint:allow lockorder shutdown-only path: d.mu held across the final seal/close excludes concurrent appends by design
		if err := d.log.Append(Record{ID: id, Sample: last}); err != nil {
			//lint:allow lockorder shutdown-only path: d.mu held across the final seal/close excludes concurrent appends by design
			_ = d.log.Close() // best effort: the append error is the one worth reporting
			return err
		}
		d.lastLogged[id] = last.T
	}
	//lint:allow lockorder shutdown-only path: d.mu held across the final seal/close excludes concurrent appends by design
	return d.log.Close()
}

// Compact rewrites the log to contain exactly the store's current retained
// samples — dropping the accumulation of sealed tails from earlier sessions
// and any superseded records. A successful compaction also heals a poisoned
// store, since the rewritten log mirrors the store state exactly.
//
// The rewrite is crash-atomic, in three phases:
//
//  1. The replacement is written and synced beside the live log as
//     ".compact.tmp"; any failure aborts with the old log untouched.
//  2. The finished replacement is renamed to ".compact" — the completeness
//     marker. A crash after this point recovers from the replacement
//     (OpenDurableFS finishes the rename).
//  3. The old log is closed and the replacement renamed over it. A rename
//     failure rolls the marker back so the old log stays authoritative.
//
// Only retained samples are written (never buffered tails): a live
// compressor may still emit a cut point older than the buffered tail, and
// replay requires per-object time order.
//
// Compact refuses with ErrSealedHistory while the store's cold sealed tier
// holds samples: the rewrite covers only hot retained state, and the log is
// the sole durable copy of sealed history (the cold tier regenerates from
// replay and must never become a durability dependency).
func (d *DurableStore) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()

	if n := d.Store.SealedPoints(); n > 0 {
		return fmt.Errorf("%w (%d sealed points)", ErrSealedHistory, n)
	}

	path := d.log.path
	tmpPath := path + compactTmpExt
	donePath := path + compactDoneExt

	// Phase 1: build the replacement. The live log stays open and
	// authoritative until phase 2 completes.
	_ = d.fs.Remove(tmpPath) // a leftover from an earlier crash is garbage
	//lint:allow lockorder compaction is stop-the-world by design: d.mu is held for the whole crash-atomic rewrite
	tmp, err := openLog(d.fs, tmpPath, nil, d.ins)
	if err != nil {
		return err
	}
	tmp.SyncEvery = 1 << 20 // one sync at close; the rename is the commit
	newLast := make(map[string]float64)
	for _, id := range d.Store.IDs() {
		ret, _ := d.Store.Retained(id)
		for _, s := range ret {
			//lint:allow lockorder compaction is stop-the-world by design: d.mu is held for the whole crash-atomic rewrite
			if err := tmp.Append(Record{ID: id, Sample: s}); err != nil {
				//lint:allow lockorder compaction is stop-the-world by design: d.mu is held for the whole crash-atomic rewrite
				_ = tmp.Close()          // best effort: the append error is the one worth reporting
				_ = d.fs.Remove(tmpPath) // the temp file is garbage either way
				return err
			}
		}
		if ret.Len() > 0 {
			newLast[id] = ret[ret.Len()-1].T
		}
	}
	//lint:allow lockorder compaction is stop-the-world by design: d.mu is held for the whole crash-atomic rewrite
	if err := tmp.Close(); err != nil {
		_ = d.fs.Remove(tmpPath) // the temp file is garbage either way
		return err
	}

	// Phase 2: mark the replacement complete.
	if err := d.fs.Rename(tmpPath, donePath); err != nil {
		_ = d.fs.Remove(tmpPath) // the temp file is garbage either way
		return fmt.Errorf("wal: compact: %w", err)
	}

	// Phase 3: commit.
	//lint:allow lockorder compaction is stop-the-world by design: d.mu is held for the whole crash-atomic rewrite
	closeErr := d.log.Close()
	if err := d.fs.Rename(donePath, path); err != nil {
		// Roll the marker back so the old log stays authoritative; leaving
		// it would make the next open recover from the replacement while
		// this process keeps appending to the old log.
		if rerr := d.fs.Remove(donePath); rerr != nil {
			d.poisoned = fmt.Errorf("%w (compact commit: %v; rollback: %v)", ErrPoisoned, err, rerr)
			return d.poisoned
		}
		if closeErr != nil {
			// The old log's final flush failed too: its tail may lag the
			// store, so refuse further writes rather than diverge.
			d.poisoned = fmt.Errorf("%w (compact aborted: %v; old log close: %v)", ErrPoisoned, err, closeErr)
			return d.poisoned
		}
		//lint:allow lockorder compaction is stop-the-world by design: d.mu is held for the whole crash-atomic rewrite
		reopened, oerr := openLog(d.fs, path, nil, d.ins)
		if oerr != nil {
			d.poisoned = fmt.Errorf("%w (compact aborted: %v; reopen: %v)", ErrPoisoned, err, oerr)
			return d.poisoned
		}
		reopened.SyncEvery = d.syncEvery
		d.log = reopened
		return fmt.Errorf("wal: compact rename: %w", err)
	}
	//lint:allow lockorder compaction is stop-the-world by design: d.mu is held for the whole crash-atomic rewrite
	reopened, err := openLog(d.fs, path, nil, d.ins)
	if err != nil {
		d.poisoned = fmt.Errorf("%w (reopen after compaction: %v)", ErrPoisoned, err)
		return d.poisoned
	}
	reopened.SyncEvery = d.syncEvery
	d.log = reopened
	d.lastLogged = newLast
	d.ins.compactions.Inc()
	d.poisoned = nil // the log now mirrors the store exactly
	return nil
}
