package wal

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/store"
	"repro/internal/trajectory"
)

// DurableStore couples a moving-object store with a write-ahead log. Raw
// observations pass through the store's on-ingest compressor; the retained
// stream is logged, so a reopened DurableStore recovers the identical
// retained state. Samples still buffered in a compressor window are not yet
// durable — except that Close seals each object's latest position into the
// log before shutdown.
type DurableStore struct {
	*store.Store

	mu         sync.Mutex
	log        *Log
	ins        *instruments
	lastLogged map[string]float64 // last logged timestamp per object
}

// OpenDurable opens (or creates) a durable store backed by the log at path,
// replaying any existing records into a fresh store built with opts. The
// WAL's instruments register in opts.Metrics alongside the store's.
func OpenDurable(path string, opts store.Options) (*DurableStore, error) {
	st := store.New(opts)
	ins := newInstruments(opts.Metrics)
	lastLogged := make(map[string]float64)
	log, err := openLog(path, func(rec Record) error {
		lastLogged[rec.ID] = rec.Sample.T
		return st.Restore(rec.ID, rec.Sample)
	}, ins)
	if err != nil {
		return nil, err
	}
	return &DurableStore{Store: st, log: log, ins: ins, lastLogged: lastLogged}, nil
}

// Append ingests one raw observation and logs whatever the store retained.
// A sample is durable once logged (subject to the log's SyncEvery batching).
func (d *DurableStore) Append(id string, s trajectory.Sample) error {
	retained, err := d.Store.AppendObserved(id, s)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range retained {
		if err := d.log.Append(Record{ID: id, Sample: r}); err != nil {
			return err
		}
		d.lastLogged[id] = r.T
	}
	return nil
}

// Flush forces all logged records to stable storage.
func (d *DurableStore) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Flush()
}

// LogSize returns the current log size in bytes.
func (d *DurableStore) LogSize() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Size()
}

// Close seals each object's latest position into the log (if newer than the
// last logged record, so replay order is preserved) and closes the log.
// Sealing is safe only at shutdown: after a reopen every compressor window
// is empty, so no later emission can precede the sealed sample in time.
// The in-memory store remains usable read-only afterwards.
func (d *DurableStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, id := range d.Store.IDs() {
		snap, ok := d.Store.Snapshot(id)
		if !ok || snap.Len() == 0 {
			continue
		}
		last := snap[snap.Len()-1]
		if last.T <= d.lastLogged[id] {
			continue
		}
		if err := d.log.Append(Record{ID: id, Sample: last}); err != nil {
			_ = d.log.Close() // best effort: the append error is the one worth reporting
			return err
		}
		d.lastLogged[id] = last.T
	}
	return d.log.Close()
}

// Compact rewrites the log to contain exactly the store's current retained
// samples — dropping the accumulation of sealed tails from earlier sessions
// and any superseded records. The rewrite is atomic: a temporary file is
// written, synced, and renamed over the log.
//
// Only retained samples are written (never buffered tails): a live
// compressor may still emit a cut point older than the buffered tail, and
// replay requires per-object time order.
func (d *DurableStore) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()

	tmpPath := d.log.path + ".compact"
	if err := d.log.Close(); err != nil {
		return err
	}
	tmp, err := openLog(tmpPath, nil, d.ins)
	if err != nil {
		return err
	}
	tmp.SyncEvery = 1 << 20 // one sync at close; the rename is the commit
	for _, id := range d.Store.IDs() {
		ret, _ := d.Store.Retained(id)
		for _, s := range ret {
			if err := tmp.Append(Record{ID: id, Sample: s}); err != nil {
				_ = tmp.Close()        // best effort: the append error is the one worth reporting
				_ = os.Remove(tmpPath) // the temp file is garbage either way
				return err
			}
		}
		if ret.Len() > 0 {
			d.lastLogged[id] = ret[ret.Len()-1].T
		} else {
			delete(d.lastLogged, id)
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpPath) // the temp file is garbage either way
		return err
	}
	if err := os.Rename(tmpPath, d.log.path); err != nil {
		return fmt.Errorf("wal: compact rename: %w", err)
	}
	reopened, err := openLog(d.log.path, nil, d.ins)
	if err != nil {
		return err
	}
	d.log = reopened
	d.ins.compactions.Inc()
	return nil
}
