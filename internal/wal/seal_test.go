package wal

import (
	"errors"
	"testing"

	"repro/internal/geo"
	"repro/internal/store"
	"repro/internal/trajectory"
)

// sealEpoch matches the seal package's tests: Unix-time magnitude, where
// float64 time resolution is coarsest.
const sealEpoch = 1.7e9

func sealOpts() store.Options {
	return store.Options{SealEps: 2, SealBlockPoints: 32} // raw mode: every sample logged
}

func eastbound(t0 float64, n int) trajectory.Trajectory {
	out := make(trajectory.Trajectory, n)
	for i := range out {
		out[i] = trajectory.S(t0+float64(i)*10, float64(i)*10, 0)
	}
	return out
}

func TestCompactRefusedWhileSealedHistory(t *testing.T) {
	d, err := OpenDurable(logPath(t), sealOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, s := range eastbound(sealEpoch, 100) {
		if err := d.Append("car", s); err != nil {
			t.Fatal(err)
		}
	}
	// Before anything is sealed, compaction is allowed.
	if err := d.Compact(); err != nil {
		t.Fatalf("pre-seal Compact: %v", err)
	}

	if _, err := d.SealBefore(sealEpoch + 500); err != nil {
		t.Fatal(err)
	}
	if d.SealedPoints() == 0 {
		t.Fatal("nothing sealed")
	}
	// Compaction rewrites the log from hot retained state only; with sealed
	// history present it must refuse rather than drop that history's sole
	// durable copy.
	err = d.Compact()
	if !errors.Is(err, ErrSealedHistory) {
		t.Fatalf("Compact with sealed history = %v, want ErrSealedHistory", err)
	}
	// The refusal left the log fully usable.
	if err := d.Append("car", trajectory.S(sealEpoch+1000, 1000, 0)); err != nil {
		t.Fatalf("append after refused compaction: %v", err)
	}
}

func TestColdTierRegeneratesFromWAL(t *testing.T) {
	path := logPath(t)
	d, err := OpenDurable(path, sealOpts())
	if err != nil {
		t.Fatal(err)
	}
	p := eastbound(sealEpoch, 100)
	for _, s := range p {
		if err := d.Append("car", s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.SealBefore(sealEpoch + 500); err != nil {
		t.Fatal(err)
	}
	window := geo.Rect{Min: geo.Pt(95, -5), Max: geo.Pt(305, 5)} // sealed era: samples 10..30
	before := d.RangePoints(window, sealEpoch, sealEpoch+400)
	if len(before) != 21 {
		t.Fatalf("sealed-era RangePoints = %d, want 21", len(before))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The cold tier is a regenerable cache, never a durability dependency:
	// replay restores every logged sample to the hot tier, and re-sealing
	// rebuilds an equivalent cold tier.
	d2, err := OpenDurable(path, sealOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.SealedPoints() != 0 {
		t.Fatalf("cold tier not empty after replay: %d points", d2.SealedPoints())
	}
	snap, ok := d2.Snapshot("car")
	if !ok || snap.Len() != 100 {
		t.Fatalf("replay recovered %d hot samples, want all 100", snap.Len())
	}
	for i := range p {
		if snap[i] != p[i] {
			t.Fatalf("replayed sample %d = %v, want exact %v", i, snap[i], p[i])
		}
	}

	if _, err := d2.SealBefore(sealEpoch + 500); err != nil {
		t.Fatal(err)
	}
	after := d2.RangePoints(window, sealEpoch, sealEpoch+400)
	if len(after) != len(before) {
		t.Fatalf("rebuilt cold tier answers %d points, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i].ID != before[i].ID || after[i].S != before[i].S {
			t.Errorf("rebuilt point %d = %+v, want %+v (deterministic re-seal)", i, after[i], before[i])
		}
	}
}
