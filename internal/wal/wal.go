// Package wal provides write-ahead-log durability for the moving-object
// store: the retained (post-compression) sample stream of every object is
// appended to an on-disk log, so a restarted process recovers the full
// store state by replay. Logging the retained stream — rather than the raw
// GPS feed — carries the paper's compression savings straight to disk: the
// log grows with the compressed point count.
//
// Log format: a fixed header, then length-prefixed records each protected
// by CRC-32. Recovery reads records until the end of the file; a torn or
// corrupt tail record (a crash mid-write) ends replay at the last good
// record, the standard WAL contract. Recovery tolerates truncation at any
// byte offset — including inside the header — and always reopens with a
// prefix of the logged records.
//
// Durability semantics: a sample becomes durable when its record is written
// (and flushed, see SyncEvery). Samples still buffered inside an on-ingest
// compressor window at crash time are lost except for the window anchor —
// bounded by the compressor's window cap.
//
// Concurrency and group commit: the log is safe for concurrent appenders.
// Records are staged into the write buffer under the log's lock; fsyncs are
// group-committed: the first appender that needs durability becomes the
// leader, flushes everything staged so far, and runs the single fsync
// outside the lock while later appenders queue behind it. One fsync
// therefore covers every record staged before it started, so N concurrent
// appends cost O(1) fsyncs per round instead of N.
//
// All file operations go through an injectable fault.FS, so the
// fault-injection tests can fail any write, sync, close, or rename — and
// tear writes at any byte offset — without touching the real disk path.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/trajectory"
)

const (
	headerMagic = "TRJW\x01"
	maxIDLen    = 1 << 10
	recordFixed = 4 + 4 + 24 // length prefix + crc + three float64s (id extra)
)

// instruments holds the WAL's registered metrics. Open registers in the
// default registry; OpenDurable registers in store.Options.Metrics so an
// embedded deployment keeps its WAL and store observability together.
type instruments struct {
	// records counts records written to the log, including compaction
	// rewrites — it is a write counter, not a live record count.
	records *metrics.Counter
	// fsync is the latency distribution of the file sync on the flush path,
	// the dominant cost of the durability guarantee.
	fsync *metrics.Histogram
	// groupSize is the distribution of records covered per group-commit
	// fsync; values above 1 are appends that shared a sync with a neighbour.
	groupSize *metrics.Histogram
	// tornTails counts recoveries that truncated a torn or corrupt tail.
	tornTails *metrics.Counter
	// compactions counts successful log compactions.
	compactions *metrics.Counter
	// ackedOffset is the durable acknowledged byte offset: every byte below
	// it is covered by a completed fsync. It is what a replication follower
	// may be streamed and what its ACKs are measured against.
	ackedOffset *metrics.Gauge
}

func newInstruments(r *metrics.Registry) *instruments {
	if r == nil {
		r = metrics.Default()
	}
	return &instruments{
		records:     r.Counter("wal_records_total"),
		fsync:       r.Histogram("wal_fsync_seconds", nil),
		groupSize:   r.Histogram("wal_group_commit_records", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		tornTails:   r.Counter("wal_torn_tail_recoveries_total"),
		compactions: r.Counter("wal_compactions_total"),
		ackedOffset: r.Gauge("wal_acked_offset"),
	}
}

// Record is one durable observation.
type Record struct {
	ID     string
	Sample trajectory.Sample
}

// Log is an append-only record log, safe for concurrent appenders. Staged
// writes go into one buffered writer under the log's lock; durability is
// provided by the group committer in syncLocked. A write, flush, or sync
// failure is sticky: the buffer (or the file tail) is torn at an unknown
// byte, so every later operation fails until the log is rebuilt
// (DurableStore heals by Compact, which opens a fresh Log).
type Log struct {
	fs   fault.FS
	path string
	ins  *instruments

	mu       sync.Mutex
	synced   *sync.Cond // signalled whenever a leader's sync round finishes
	f        fault.File
	w        *bufio.Writer
	writeSeq uint64 // records staged into the buffer, counted from the log's first byte
	syncSeq  uint64 // records covered by a completed fsync, same absolute scale
	// writeBytes/syncBytes are the byte-offset twins of writeSeq/syncSeq:
	// the staged log length and the durable acknowledged prefix length.
	// Because the record encoding is deterministic, these offsets are stable
	// across reopens and identical on a faithful replication follower.
	writeBytes int64
	syncBytes  int64
	notify     []chan struct{} // subscribers poked when syncBytes advances
	syncing    bool            // a leader's flush+fsync round is in flight
	sticky     error           // first write/flush/sync failure; the log is torn

	// SyncEvery controls how many staged records may precede an fsync; 0
	// syncs on every append (slow, maximally durable: Append returning nil
	// means the record is on stable storage). Flush always syncs. The field
	// is read under the log's lock: direct assignment is safe only before
	// the log is shared; use SetSyncEvery when appenders may be running.
	SyncEvery int
}

// Open opens (creating if needed) the log at path, replays every intact
// record through apply, and returns the log positioned for appending.
// Replay stops silently at the first torn/corrupt record, truncating the
// log there.
func Open(path string, apply func(Record) error) (*Log, error) {
	return OpenFS(fault.OS, path, apply)
}

// OpenFS is Open over an explicit filesystem — fault.NewFS in the
// fault-injection tests, fault.OS in production.
func OpenFS(fsys fault.FS, path string, apply func(Record) error) (*Log, error) {
	return openLog(fsys, path, apply, newInstruments(nil))
}

func openLog(fsys fault.FS, path string, apply func(Record) error, ins *instruments) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	good, count, err := replay(f, apply)
	if err != nil {
		_ = f.Close() // the replay error is the one worth reporting
		return nil, err
	}
	if info, serr := f.Stat(); serr == nil && info.Size() > good {
		// Replay stopped before the end of the file: a torn or corrupt tail
		// is about to be truncated away.
		ins.tornTails.Inc()
	}
	// Truncate any torn tail and position for append.
	if err := f.Truncate(good); err != nil {
		_ = f.Close() // the truncate error is the one worth reporting
		return nil, fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close() // the seek error is the one worth reporting
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	// Seqs and byte offsets start at the replayed totals, not zero, so they
	// are absolute positions in the log — stable across reopens and directly
	// comparable between a primary and its replication followers.
	l := &Log{
		f: f, fs: fsys, w: bufio.NewWriter(f), path: path, ins: ins, SyncEvery: 64,
		writeSeq: count, syncSeq: count, writeBytes: good, syncBytes: good,
	}
	l.synced = sync.NewCond(&l.mu)
	if good == 0 {
		if _, err := l.w.WriteString(headerMagic); err != nil {
			_ = f.Close() // the header write error is the one worth reporting
			return nil, fmt.Errorf("wal: header: %w", err)
		}
		l.writeBytes = int64(len(headerMagic))
		if err := l.Flush(); err != nil {
			_ = f.Close() // the sync error is the one worth reporting
			return nil, err
		}
	}
	ins.ackedOffset.Set(float64(l.syncBytes))
	return l, nil
}

// replay reads the header and all intact records, returning the byte offset
// just past the last good record and the number of intact records.
func replay(f fault.File, apply func(Record) error) (int64, uint64, error) {
	r := bufio.NewReader(f)
	head := make([]byte, len(headerMagic))
	n, err := io.ReadFull(r, head)
	if err != nil {
		// A file shorter than the header is either brand new (n == 0) or a
		// crash tore the very first header write; both recover as an empty
		// log. Anything that is not a prefix of the magic is a foreign file.
		if n == 0 || string(head[:n]) == headerMagic[:n] {
			return 0, 0, nil
		}
		return 0, 0, errors.New("wal: not a trajectory WAL file")
	}
	if string(head) != headerMagic {
		return 0, 0, errors.New("wal: not a trajectory WAL file")
	}
	offset := int64(len(headerMagic))
	var count uint64
	for {
		rec, size, err := readRecord(r)
		if err != nil {
			return offset, count, nil // torn/corrupt/EOF tail: stop replay here
		}
		if apply != nil {
			if aerr := apply(rec); aerr != nil {
				return 0, 0, fmt.Errorf("wal: replay: %w", aerr)
			}
		}
		offset += size
		count++
	}
}

func readRecord(r *bufio.Reader) (Record, int64, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Record{}, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(lenBuf[:])
	if payloadLen < 25 || payloadLen > maxIDLen+25 {
		return Record{}, 0, errors.New("wal: implausible record length")
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, err
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return Record{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return Record{}, 0, errors.New("wal: checksum mismatch")
	}
	idLen := int(payload[0])
	if 1+idLen+24 != int(payloadLen) {
		return Record{}, 0, errors.New("wal: inconsistent record framing")
	}
	rec := Record{
		ID: string(payload[1 : 1+idLen]),
		Sample: trajectory.Sample{
			T: math.Float64frombits(binary.LittleEndian.Uint64(payload[1+idLen:])),
			X: math.Float64frombits(binary.LittleEndian.Uint64(payload[1+idLen+8:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(payload[1+idLen+16:])),
		},
	}
	return rec, int64(4 + payloadLen + 4), nil
}

// encode renders the record in its on-disk framing: length prefix, payload
// (id length, id, three float64s), CRC-32 of the payload.
func encode(rec Record) ([]byte, error) {
	if len(rec.ID) > maxIDLen || len(rec.ID) > 255 {
		return nil, fmt.Errorf("wal: object id longer than 255 bytes")
	}
	buf := make([]byte, recordFixed+1+len(rec.ID)) // fixed parts + idLen byte + id
	payload := buf[4 : 4+1+len(rec.ID)+24]
	payload[0] = byte(len(rec.ID))
	copy(payload[1:], rec.ID)
	binary.LittleEndian.PutUint64(payload[1+len(rec.ID):], math.Float64bits(rec.Sample.T))
	binary.LittleEndian.PutUint64(payload[1+len(rec.ID)+8:], math.Float64bits(rec.Sample.X))
	binary.LittleEndian.PutUint64(payload[1+len(rec.ID)+16:], math.Float64bits(rec.Sample.Y))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[len(buf)-4:], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// Append writes one record and waits for durability per SyncEvery: it
// returns once an fsync covers the record, or immediately while the number
// of unsynced records is within the SyncEvery allowance.
func (l *Log) Append(rec Record) error {
	seq, err := l.stage(rec)
	if err != nil {
		return err
	}
	return l.commit(seq)
}

// stage buffers one record without waiting for durability and returns its
// sequence number for commit. DurableStore stages under its own lock (so
// per-object log order matches store-accept order) and commits after
// releasing it, which is what lets concurrent appenders share fsyncs.
func (l *Log) stage(rec Record) (uint64, error) {
	buf, err := encode(rec)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sticky != nil {
		return 0, l.sticky
	}
	if _, err := l.w.Write(buf); err != nil {
		// The buffered writer may have spilled part of the record: the file
		// tail is torn at an unknown byte, so the log is done for.
		l.sticky = fmt.Errorf("wal: %w", err)
		l.synced.Broadcast()
		return 0, l.sticky
	}
	l.writeSeq++
	l.writeBytes += int64(len(buf))
	l.ins.records.Inc()
	return l.writeSeq, nil
}

// commit applies the SyncEvery policy to a staged record: if the unsynced
// record count exceeds SyncEvery the caller joins the group commit and
// blocks until an fsync covers seq; otherwise durability stays deferred and
// commit returns immediately.
func (l *Log) commit(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.syncSeq >= seq {
		return nil
	}
	if l.sticky != nil {
		return l.sticky
	}
	if l.writeSeq-l.syncSeq <= uint64(l.SyncEvery) {
		return nil // within the allowed unsynced window
	}
	return l.syncLocked(seq, false)
}

// syncLocked is the group committer: it runs (or waits behind) leader
// flush+fsync rounds until an fsync covers seq. The leader flushes the
// write buffer under the lock — a cheap page-cache copy — then releases it
// for the fsync itself, so appenders keep staging records that the next
// round will cover. With force, at least one full round runs even if seq is
// already covered (Flush's contract, and how the header reaches disk).
// Caller holds l.mu.
func (l *Log) syncLocked(seq uint64, force bool) error {
	for {
		if l.sticky != nil {
			return l.sticky
		}
		if !force && l.syncSeq >= seq {
			return nil
		}
		if l.syncing {
			l.synced.Wait()
			continue
		}
		l.syncing = true
		force = false
		if err := l.w.Flush(); err != nil {
			l.syncing = false
			l.sticky = fmt.Errorf("wal: flush: %w", err)
			l.synced.Broadcast()
			return l.sticky
		}
		target := l.writeSeq
		targetBytes := l.writeBytes
		l.mu.Unlock()
		t0 := time.Now()
		err := l.f.Sync()
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.sticky = fmt.Errorf("wal: sync: %w", err)
			l.synced.Broadcast()
			return l.sticky
		}
		l.ins.fsync.ObserveSince(t0)
		if target > l.syncSeq {
			l.ins.groupSize.Observe(float64(target - l.syncSeq))
			l.syncSeq = target
		}
		if targetBytes > l.syncBytes {
			l.syncBytes = targetBytes
			l.ins.ackedOffset.Set(float64(l.syncBytes))
			// Poke subscribers (replication senders waiting for new durable
			// bytes); a full channel already carries the wake-up.
			for _, ch := range l.notify {
				select {
				case ch <- struct{}{}:
				default:
				}
			}
		}
		l.synced.Broadcast()
	}
}

// SetSyncEvery adjusts the sync policy while appenders may be running.
func (l *Log) SetSyncEvery(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.SyncEvery = n
}

// Flush forces buffered records to stable storage.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked(l.writeSeq, true)
}

// Size returns the current log size in bytes.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sticky != nil {
		return 0, l.sticky
	}
	if err := l.w.Flush(); err != nil {
		l.sticky = fmt.Errorf("wal: %w", err)
		l.synced.Broadcast()
		return 0, l.sticky
	}
	info, err := l.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return info.Size(), nil
}

// AckedOffset returns the durable acknowledged byte offset: the log prefix
// below it is covered by a completed fsync. It is the offset a replication
// follower may be streamed up to, and the offset it reports back in ACKs.
func (l *Log) AckedOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncBytes
}

// SyncedSeq returns the number of records covered by a completed fsync,
// counted from the log's first record (absolute across reopens). The
// difference between a primary's SyncedSeq and a follower's is the
// follower's replication lag in records.
func (l *Log) SyncedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncSeq
}

// WrittenOffset returns the staged log length in bytes: every record
// accepted so far ends at or below it, whether or not an fsync covers it
// yet. Waiting for a follower ACK at WrittenOffset therefore covers every
// append staged before the call.
func (l *Log) WrittenOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeBytes
}

// SubscribeSynced registers ch for a non-blocking poke whenever the durable
// acknowledged offset advances. The channel should have capacity 1; a full
// channel already carries the pending wake-up.
func (l *Log) SubscribeSynced(ch chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.notify = append(l.notify, ch)
}

// UnsubscribeSynced removes ch from the sync notification list.
func (l *Log) UnsubscribeSynced(ch chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, c := range l.notify {
		if c == ch {
			l.notify = append(l.notify[:i], l.notify[i+1:]...)
			return
		}
	}
}

// Close flushes, syncs, and closes the log. Callers must have quiesced
// stage/Append; commit waiters are fine — the closing sync covers every
// staged record, so they wake before the file handle goes away.
func (l *Log) Close() error {
	if err := l.Flush(); err != nil {
		_ = l.f.Close() // best effort: the flush/sync error is the one worth reporting
		return err
	}
	return l.f.Close()
}

// HeaderLen is the byte length of the log header — the smallest valid
// offset into a log, and the catch-up offset of a brand-new replication
// follower.
const HeaderLen = len(headerMagic)

// Decode parses as many complete records as buf holds, returning them with
// the number of bytes consumed. A clean stop — buf simply ends inside a
// record — returns a nil error; the caller keeps the unconsumed tail and
// retries once more bytes arrive. A non-nil error means the bytes are not a
// record stream at the expected position (corruption or a desynchronized
// stream), which a replication follower must treat as fatal for the
// connection. It is the wire-side twin of the recovery replay loop.
func Decode(buf []byte) (recs []Record, consumed int, err error) {
	r := bufio.NewReader(bytes.NewReader(buf))
	for {
		rec, size, err := readRecord(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, consumed, nil // incomplete tail: wait for more bytes
			}
			return recs, consumed, err
		}
		recs = append(recs, rec)
		consumed += int(size)
	}
}
