// Package wal provides write-ahead-log durability for the moving-object
// store: the retained (post-compression) sample stream of every object is
// appended to an on-disk log, so a restarted process recovers the full
// store state by replay. Logging the retained stream — rather than the raw
// GPS feed — carries the paper's compression savings straight to disk: the
// log grows with the compressed point count.
//
// Log format: a fixed header, then length-prefixed records each protected
// by CRC-32. Recovery reads records until the end of the file; a torn or
// corrupt tail record (a crash mid-write) ends replay at the last good
// record, the standard WAL contract. Recovery tolerates truncation at any
// byte offset — including inside the header — and always reopens with a
// prefix of the logged records.
//
// Durability semantics: a sample becomes durable when its record is written
// (and flushed, see SyncEvery). Samples still buffered inside an on-ingest
// compressor window at crash time are lost except for the window anchor —
// bounded by the compressor's window cap.
//
// All file operations go through an injectable fault.FS, so the
// fault-injection tests can fail any write, sync, close, or rename — and
// tear writes at any byte offset — without touching the real disk path.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/trajectory"
)

const (
	headerMagic = "TRJW\x01"
	maxIDLen    = 1 << 10
	recordFixed = 4 + 4 + 24 // length prefix + crc + three float64s (id extra)
)

// instruments holds the WAL's registered metrics. Open registers in the
// default registry; OpenDurable registers in store.Options.Metrics so an
// embedded deployment keeps its WAL and store observability together.
type instruments struct {
	// records counts records written to the log, including compaction
	// rewrites — it is a write counter, not a live record count.
	records *metrics.Counter
	// fsync is the latency distribution of the file sync on the flush path,
	// the dominant cost of the durability guarantee.
	fsync *metrics.Histogram
	// tornTails counts recoveries that truncated a torn or corrupt tail.
	tornTails *metrics.Counter
	// compactions counts successful log compactions.
	compactions *metrics.Counter
}

func newInstruments(r *metrics.Registry) *instruments {
	if r == nil {
		r = metrics.Default()
	}
	return &instruments{
		records:     r.Counter("wal_records_total"),
		fsync:       r.Histogram("wal_fsync_seconds", nil),
		tornTails:   r.Counter("wal_torn_tail_recoveries_total"),
		compactions: r.Counter("wal_compactions_total"),
	}
}

// Record is one durable observation.
type Record struct {
	ID     string
	Sample trajectory.Sample
}

// Log is an append-only record log. Not safe for concurrent use; callers
// (DurableStore) serialize access.
type Log struct {
	f       fault.File
	fs      fault.FS
	w       *bufio.Writer
	path    string
	pending int
	ins     *instruments
	// SyncEvery controls how many appended records may precede an fsync;
	// 0 syncs on every append (slow, maximally durable). Flush always
	// syncs.
	SyncEvery int
}

// Open opens (creating if needed) the log at path, replays every intact
// record through apply, and returns the log positioned for appending.
// Replay stops silently at the first torn/corrupt record, truncating the
// log there.
func Open(path string, apply func(Record) error) (*Log, error) {
	return OpenFS(fault.OS, path, apply)
}

// OpenFS is Open over an explicit filesystem — fault.NewFS in the
// fault-injection tests, fault.OS in production.
func OpenFS(fsys fault.FS, path string, apply func(Record) error) (*Log, error) {
	return openLog(fsys, path, apply, newInstruments(nil))
}

func openLog(fsys fault.FS, path string, apply func(Record) error, ins *instruments) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	good, err := replay(f, apply)
	if err != nil {
		_ = f.Close() // the replay error is the one worth reporting
		return nil, err
	}
	if info, serr := f.Stat(); serr == nil && info.Size() > good {
		// Replay stopped before the end of the file: a torn or corrupt tail
		// is about to be truncated away.
		ins.tornTails.Inc()
	}
	// Truncate any torn tail and position for append.
	if err := f.Truncate(good); err != nil {
		_ = f.Close() // the truncate error is the one worth reporting
		return nil, fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close() // the seek error is the one worth reporting
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l := &Log{f: f, fs: fsys, w: bufio.NewWriter(f), path: path, ins: ins, SyncEvery: 64}
	if good == 0 {
		if _, err := l.w.WriteString(headerMagic); err != nil {
			_ = f.Close() // the header write error is the one worth reporting
			return nil, fmt.Errorf("wal: header: %w", err)
		}
		if err := l.flushSync(); err != nil {
			_ = f.Close() // the sync error is the one worth reporting
			return nil, err
		}
	}
	return l, nil
}

// replay reads the header and all intact records, returning the byte offset
// just past the last good record.
func replay(f fault.File, apply func(Record) error) (int64, error) {
	r := bufio.NewReader(f)
	head := make([]byte, len(headerMagic))
	n, err := io.ReadFull(r, head)
	if err != nil {
		// A file shorter than the header is either brand new (n == 0) or a
		// crash tore the very first header write; both recover as an empty
		// log. Anything that is not a prefix of the magic is a foreign file.
		if n == 0 || string(head[:n]) == headerMagic[:n] {
			return 0, nil
		}
		return 0, errors.New("wal: not a trajectory WAL file")
	}
	if string(head) != headerMagic {
		return 0, errors.New("wal: not a trajectory WAL file")
	}
	offset := int64(len(headerMagic))
	for {
		rec, size, err := readRecord(r)
		if err != nil {
			return offset, nil // torn/corrupt/EOF tail: stop replay here
		}
		if apply != nil {
			if aerr := apply(rec); aerr != nil {
				return 0, fmt.Errorf("wal: replay: %w", aerr)
			}
		}
		offset += size
	}
}

func readRecord(r *bufio.Reader) (Record, int64, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Record{}, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(lenBuf[:])
	if payloadLen < 25 || payloadLen > maxIDLen+25 {
		return Record{}, 0, errors.New("wal: implausible record length")
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, err
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return Record{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return Record{}, 0, errors.New("wal: checksum mismatch")
	}
	idLen := int(payload[0])
	if 1+idLen+24 != int(payloadLen) {
		return Record{}, 0, errors.New("wal: inconsistent record framing")
	}
	rec := Record{
		ID: string(payload[1 : 1+idLen]),
		Sample: trajectory.Sample{
			T: math.Float64frombits(binary.LittleEndian.Uint64(payload[1+idLen:])),
			X: math.Float64frombits(binary.LittleEndian.Uint64(payload[1+idLen+8:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(payload[1+idLen+16:])),
		},
	}
	return rec, int64(4 + payloadLen + 4), nil
}

// Append writes one record, syncing according to SyncEvery.
func (l *Log) Append(rec Record) error {
	if len(rec.ID) > maxIDLen || len(rec.ID) > 255 {
		return fmt.Errorf("wal: object id longer than 255 bytes")
	}
	payload := make([]byte, 1+len(rec.ID)+24)
	payload[0] = byte(len(rec.ID))
	copy(payload[1:], rec.ID)
	binary.LittleEndian.PutUint64(payload[1+len(rec.ID):], math.Float64bits(rec.Sample.T))
	binary.LittleEndian.PutUint64(payload[1+len(rec.ID)+8:], math.Float64bits(rec.Sample.X))
	binary.LittleEndian.PutUint64(payload[1+len(rec.ID)+16:], math.Float64bits(rec.Sample.Y))

	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := l.w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.pending++
	l.ins.records.Inc()
	if l.pending > l.SyncEvery {
		return l.flushSync()
	}
	return nil
}

// Flush forces buffered records to stable storage.
func (l *Log) Flush() error { return l.flushSync() }

func (l *Log) flushSync() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.ins.fsync.ObserveSince(t0)
	l.pending = 0
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() (int64, error) {
	if err := l.w.Flush(); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	info, err := l.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return info.Size(), nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if err := l.flushSync(); err != nil {
		_ = l.f.Close() // the flush/sync error is the one worth reporting
		return err
	}
	return l.f.Close()
}
