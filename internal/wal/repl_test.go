package wal

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trajectory"
)

// TestAckedOffsetTracksFileAndSurvivesReopen: the acknowledged offset is the
// durable log length in bytes and the acknowledged seq the absolute record
// count — both must match the file exactly and come back unchanged (not
// reset to zero) after a reopen, because a replication follower resumes its
// catch-up from them.
func TestAckedOffsetTracksFileAndSurvivesReopen(t *testing.T) {
	path := logPath(t)
	d, err := OpenDurable(path, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	d.SetSyncEvery(0) // strict: every append fsyncs before returning
	for i := 0; i < 7; i++ {
		if err := d.Append("car", trajectory.S(float64(i), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.AckedOffset(); got != info.Size() {
		t.Errorf("AckedOffset = %d, want file size %d", got, info.Size())
	}
	if got := d.AckedSeq(); got != 7 {
		t.Errorf("AckedSeq = %d, want 7", got)
	}
	if got := d.WrittenOffset(); got != d.AckedOffset() {
		t.Errorf("WrittenOffset = %d, want %d (every record synced)", got, d.AckedOffset())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(path, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	d2.SetSyncEvery(0)
	info, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.AckedOffset(); got != info.Size() {
		t.Errorf("reopened AckedOffset = %d, want file size %d", got, info.Size())
	}
	// Close sealed one extra record per object beyond the 7 appends? No:
	// every append was logged (raw mode), so the seq is still absolute 7.
	if got := d2.AckedSeq(); got != 7 {
		t.Errorf("reopened AckedSeq = %d, want 7 (absolute, not reset)", got)
	}
	// Offsets keep counting from the replayed base, not from zero.
	if err := d2.Append("car", trajectory.S(100, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := d2.AckedSeq(); got != 8 {
		t.Errorf("AckedSeq after post-reopen append = %d, want 8", got)
	}
	if got := d2.AckedOffset(); got <= info.Size() {
		t.Errorf("AckedOffset after post-reopen append = %d, want > %d", got, info.Size())
	}
}

// TestDecodeRoundTrip: Decode over a raw byte slice must recover exactly the
// records the log encodes, report the consumed byte count, and treat a
// truncated tail as "wait for more bytes" (no error, partial consumed) —
// that is how a follower reassembles records split across stream chunks.
func TestDecodeRoundTrip(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{ID: "a", Sample: trajectory.S(1, 2, 3)},
		{ID: "bb", Sample: trajectory.S(4, -5, 6.5)},
		{ID: "a", Sample: trajectory.S(7, 8, 9)},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := raw[HeaderLen:]

	recs, consumed, err := Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(body) {
		t.Errorf("consumed %d bytes, want %d", consumed, len(body))
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}

	// Chop the tail mid-record: Decode returns the intact prefix, consumes
	// only its bytes, and reports no error (the rest is in flight).
	cut := body[:len(body)-5]
	recs, consumed, err = Decode(cut)
	if err != nil {
		t.Fatalf("truncated tail must not error: %v", err)
	}
	if len(recs) != 2 {
		t.Errorf("decoded %d records from cut buffer, want 2", len(recs))
	}
	if consumed >= len(cut) || consumed <= 0 {
		t.Errorf("consumed = %d, want a proper prefix of %d", consumed, len(cut))
	}
	// Corruption (bad CRC) is an error, not a silent stop.
	bad := append([]byte(nil), body...)
	bad[consumed+3] ^= 0xFF
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode accepted a corrupted record")
	}
}

// TestApplyReplicaByteIdentity is the core replication invariant: a follower
// that applies the primary's decoded record stream through ApplyReplica
// produces a byte-identical log file, the same acknowledged offset, and the
// same queryable store state. Byte identity is what lets the follower's own
// log length serve as its catch-up cursor after a restart.
func TestApplyReplicaByteIdentity(t *testing.T) {
	pPath := logPath(t)
	primary, err := OpenDurable(pPath, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id := "even"
		if i%2 == 1 {
			id = "odd"
		}
		if err := primary.Append(id, trajectory.S(float64(i), float64(i)*1.5, -float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(pPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, consumed, err := Decode(raw[HeaderLen:])
	if err != nil || consumed != len(raw)-HeaderLen {
		t.Fatalf("Decode primary log: consumed=%d err=%v", consumed, err)
	}

	fPath := logPath(t)
	follower, err := OpenDurable(fPath, store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReplica(true)
	// Apply in two batches to cover the batch boundary.
	if err := follower.ApplyReplica(recs[:7]); err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplica(recs[7:]); err != nil {
		t.Fatal(err)
	}

	if got, want := follower.AckedOffset(), primary.AckedOffset(); got != want {
		t.Errorf("follower AckedOffset = %d, want %d", got, want)
	}
	if got, want := follower.AckedSeq(), primary.AckedSeq(); got != want {
		t.Errorf("follower AckedSeq = %d, want %d", got, want)
	}
	fRaw, err := os.ReadFile(fPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fRaw, raw) {
		t.Errorf("follower log differs from primary log (%d vs %d bytes)", len(fRaw), len(raw))
	}
	for _, id := range []string{"even", "odd"} {
		ps, ok1 := primary.Snapshot(id)
		fs, ok2 := follower.Snapshot(id)
		if ok1 != ok2 || len(ps) != len(fs) {
			t.Fatalf("%s: snapshot mismatch (primary %d, follower %d)", id, len(ps), len(fs))
		}
		for i := range ps {
			if ps[i] != fs[i] {
				t.Errorf("%s sample %d = %+v, want %+v", id, i, fs[i], ps[i])
			}
		}
	}

	// Replica Close must not seal extra records: the follower's log stays a
	// byte-exact prefix of (here: equal to) the primary's.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(fPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != int64(len(raw)) {
		t.Errorf("replica Close changed log size: %d, want %d", after.Size(), len(raw))
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaModeRejectsWrites: in replica mode the public write path is
// closed — only ApplyReplica may mutate the store.
func TestReplicaModeRejectsWrites(t *testing.T) {
	d, err := OpenDurable(logPath(t), store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetReplica(true)
	if !d.Replica() {
		t.Fatal("Replica() = false after SetReplica(true)")
	}
	if err := d.Append("x", trajectory.S(1, 2, 3)); !errors.Is(err, ErrReplica) {
		t.Errorf("Append in replica mode = %v, want ErrReplica", err)
	}
	if n, err := d.AppendBatch("x", []trajectory.Sample{trajectory.S(1, 2, 3)}); n != 0 || !errors.Is(err, ErrReplica) {
		t.Errorf("AppendBatch in replica mode = (%d, %v), want (0, ErrReplica)", n, err)
	}
	// Flipping back reopens the write path.
	d.SetReplica(false)
	if err := d.Append("x", trajectory.S(1, 2, 3)); err != nil {
		t.Errorf("Append after SetReplica(false): %v", err)
	}
}

// TestSubscribeSynced: a subscriber is poked when the durable prefix
// advances, which is how the replication sender tails live group commits
// without polling.
func TestSubscribeSynced(t *testing.T) {
	d, err := OpenDurable(logPath(t), store.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetSyncEvery(0)
	ch := make(chan struct{}, 1)
	d.SubscribeSynced(ch)
	defer d.UnsubscribeSynced(ch)
	before := d.AckedOffset()
	if err := d.Append("x", trajectory.S(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no sync notification within 5s")
	}
	if got := d.AckedOffset(); got <= before {
		t.Errorf("AckedOffset = %d after notified sync, want > %d", got, before)
	}
}
