package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gpsgen"
	"repro/internal/metrics"
	"repro/internal/sed"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/trajectory"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "trips.wal")
}

func TestLogAppendReplay(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{ID: "a", Sample: trajectory.S(0, 1, 2)},
		{ID: "b", Sample: trajectory.S(5, -3, 4)},
		{ID: "a", Sample: trajectory.S(10, 9, 9)},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	l2, err := Open(path, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestLogTornTailRecovery(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(Record{ID: "x", Sample: trajectory.S(float64(i), 0, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop a few bytes off the file.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	var got []Record
	l2, err := Open(path, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Errorf("recovered %d records after torn tail, want 9", len(got))
	}
	// The log must accept appends after recovery.
	if err := l2.Append(Record{ID: "x", Sample: trajectory.S(100, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got = nil
	l3, err := Open(path, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(got) != 10 {
		t.Errorf("after repair+append: %d records, want 10", len(got))
	}
}

func TestLogCorruptMiddleStopsReplay(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(Record{ID: "x", Sample: trajectory.S(float64(i), 0, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got int
	l2, err := Open(path, func(Record) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got >= 10 {
		t.Errorf("replayed %d records past corruption", got)
	}
}

func TestLogRejectsForeignFile(t *testing.T) {
	path := logPath(t)
	if err := os.WriteFile(path, []byte("definitely not a WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil {
		t.Error("foreign file accepted")
	}
}

func TestLogRejectsLongID(t *testing.T) {
	l, err := Open(logPath(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	if err := l.Append(Record{ID: string(long)}); err == nil {
		t.Error("256+ byte id accepted")
	}
}

func TestLogSizeGrows(t *testing.T) {
	l, err := Open(logPath(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s0, err := l.Size()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(Record{ID: "a", Sample: trajectory.S(float64(i), 0, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := l.Size()
	if err != nil {
		t.Fatal(err)
	}
	if s1 <= s0 {
		t.Errorf("size did not grow: %d → %d", s0, s1)
	}
}

func TestOpenRejectsDirectory(t *testing.T) {
	if _, err := Open(t.TempDir(), nil); err == nil {
		t.Error("directory path accepted")
	}
}

func TestOpenPropagatesApplyError(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append(Record{ID: "a", Sample: trajectory.S(0, 0, 0)})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantErr := func(Record) error { return errSentinel }
	if _, err := Open(path, wantErr); err == nil {
		t.Error("apply error swallowed")
	}
}

var errSentinel = errTest{}

type errTest struct{}

func (errTest) Error() string { return "sentinel" }

func TestDurableStoreRoundTrip(t *testing.T) {
	path := logPath(t)
	opts := store.Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(40, 0) },
	}
	d, err := OpenDurable(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := gpsgen.New(51, gpsgen.Config{}).Trip(gpsgen.Urban, 1200)
	for _, s := range p {
		if err := d.Append("car", s); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := d.Snapshot("car")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	after, ok := d2.Snapshot("car")
	if !ok {
		t.Fatal("object lost across restart")
	}
	// Close sealed the tail, so the recovered snapshot equals the
	// pre-shutdown snapshot exactly.
	if after.Len() != before.Len() {
		t.Fatalf("recovered %d points, want %d", after.Len(), before.Len())
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, after[i], before[i])
		}
	}
	// And the recovered trajectory still honours the compressor's bound.
	worst, err := sed.MaxError(p, after)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 40+1e-9 {
		t.Errorf("recovered error %.2f exceeds bound", worst)
	}
}

func TestDurableStoreAppendAfterReopen(t *testing.T) {
	path := logPath(t)
	opts := store.Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(40, 0) },
	}
	d, err := OpenDurable(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := d.Append("car", trajectory.S(float64(i*10), float64(i*100), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Continue the stream where it left off.
	for i := 50; i < 100; i++ {
		if err := d2.Append("car", trajectory.S(float64(i*10), float64(i*100), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	d3, err := OpenDurable(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	snap, _ := d3.Snapshot("car")
	if snap.Len() < 2 {
		t.Fatalf("recovered only %d points", snap.Len())
	}
	if got := snap[snap.Len()-1].T; got != 990 {
		t.Errorf("final recovered time %v, want 990", got)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("recovered snapshot invalid: %v", err)
	}
}

func TestDurableStoreCompact(t *testing.T) {
	path := logPath(t)
	d, err := OpenDurable(path, store.Options{}) // raw mode: every sample logged
	if err != nil {
		t.Fatal(err)
	}
	p := gpsgen.New(52, gpsgen.Config{}).Trip(gpsgen.Urban, 900)
	for _, s := range p {
		if err := d.Append("car", s); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore, err := d.LogSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	sizeAfter, err := d.LogSize()
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfter > sizeBefore {
		t.Errorf("compaction grew the log: %d → %d", sizeBefore, sizeAfter)
	}
	// Appends continue to work after compaction...
	last := p[p.Len()-1]
	if err := d.Append("car", trajectory.S(last.T+10, last.X, last.Y)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and the compacted log replays the full state.
	d2, err := OpenDurable(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, _ := d2.Snapshot("car")
	if snap.Len() != p.Len()+1 {
		t.Errorf("recovered %d points, want %d", snap.Len(), p.Len()+1)
	}
}

// The WAL materializes the paper's storage claim: logging the compressed
// stream shrinks the on-disk footprint by roughly the compression rate.
func TestDurableStoreCompressionShrinksLog(t *testing.T) {
	p := gpsgen.New(53, gpsgen.Config{}).Trip(gpsgen.Mixed, 1800)

	run := func(opts store.Options) int64 {
		path := logPath(t)
		d, err := OpenDurable(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range p {
			if err := d.Append("car", s); err != nil {
				t.Fatal(err)
			}
		}
		size, err := d.LogSize()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return size
	}

	raw := run(store.Options{})
	compressed := run(store.Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(50, 0) },
	})
	if compressed >= raw/2 {
		t.Errorf("compressed log %d not well below raw %d", compressed, raw)
	}
}

// TestWALMetrics checks the records counter, fsync latency histogram,
// compaction counter, and torn-tail recovery counter against a private
// registry threaded through store.Options.Metrics.
func TestWALMetrics(t *testing.T) {
	path := logPath(t)
	reg := metrics.NewRegistry()
	opts := store.Options{Metrics: reg}
	d, err := OpenDurable(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Append("car", trajectory.S(float64(i), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	var records, compactions, torn float64
	var fsyncs int64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "wal_records_total":
			records = m.Value
		case "wal_compactions_total":
			compactions = m.Value
		case "wal_torn_tail_recoveries_total":
			torn = m.Value
		case "wal_fsync_seconds":
			fsyncs = m.Count
		}
	}
	// 10 live appends + 10 compaction rewrites; the write counter sees both.
	if records != 20 {
		t.Errorf("wal_records_total = %v, want 20", records)
	}
	if compactions != 1 {
		t.Errorf("wal_compactions_total = %v, want 1", compactions)
	}
	if torn != 0 {
		t.Errorf("wal_torn_tail_recoveries_total = %v, want 0", torn)
	}
	if fsyncs < 2 {
		t.Errorf("wal_fsync_seconds count = %d, want >= 2", fsyncs)
	}

	// Corrupt the tail and reopen: the torn-tail recovery counter moves.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for _, m := range reg.Snapshot() {
		if m.Name == "wal_torn_tail_recoveries_total" && m.Value != 1 {
			t.Errorf("after torn reopen: wal_torn_tail_recoveries_total = %v, want 1", m.Value)
		}
	}
	if got := d2.Stats().RetainedPoints; got != 10 {
		t.Errorf("recovered %d points, want 10", got)
	}
}
