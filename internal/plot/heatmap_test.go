package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHeatmapRenderSVG(t *testing.T) {
	h := Heatmap{
		Title: "density",
		Cell:  250,
		Cells: []HeatCell{
			{CX: 0, CY: 0, Weight: 10},
			{CX: 1, CY: 0, Weight: 40},
			{CX: -2, CY: 3, Weight: 5},
		},
	}
	var buf bytes.Buffer
	if err := h.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	out := buf.String()
	if got := strings.Count(out, "<rect"); got != 4 { // background + 3 cells
		t.Errorf("%d rects, want 4", got)
	}
	if !strings.Contains(out, "density") {
		t.Error("title missing")
	}
}

func TestHeatmapRejectsBadInput(t *testing.T) {
	cases := []Heatmap{
		{Title: "empty", Cell: 100},
		{Title: "badcell", Cell: 0, Cells: []HeatCell{{Weight: 1}}},
		{Title: "negweight", Cell: 100, Cells: []HeatCell{{Weight: -1}}},
		{Title: "nan", Cell: 100, Cells: []HeatCell{{Weight: math.NaN()}}},
	}
	for _, h := range cases {
		if err := h.RenderSVG(&bytes.Buffer{}); err == nil {
			t.Errorf("heatmap %q accepted", h.Title)
		}
	}
}

func TestHeatmapAllZeroWeights(t *testing.T) {
	h := Heatmap{Title: "zero", Cell: 100, Cells: []HeatCell{{CX: 0, CY: 0, Weight: 0}}}
	var buf bytes.Buffer
	if err := h.RenderSVG(&buf); err != nil {
		t.Fatalf("zero weights rejected: %v", err)
	}
	wellFormed(t, buf.Bytes())
}
