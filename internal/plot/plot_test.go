package plot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"repro/internal/gpsgen"
	"repro/internal/trajectory"
)

func sampleChart() Chart {
	return Chart{
		Title:  "error vs threshold",
		XLabel: "threshold (m)",
		YLabel: "error (m)",
		Series: []Series{
			{Name: "NDP", X: []float64{30, 50, 100}, Y: []float64{118, 121, 122}},
			{Name: "TD-TR", X: []float64{30, 50, 100}, Y: []float64{7, 12, 20}},
		},
	}
}

// wellFormed checks the output parses as XML.
func wellFormed(t *testing.T, data []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestChartRenderSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, buf.Bytes())
	for _, want := range []string{"<svg", "polyline", "NDP", "TD-TR", "error vs threshold", "threshold (m)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestChartEscapesText(t *testing.T) {
	c := sampleChart()
	c.Title = `errors < & > "quotes"`
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	if strings.Contains(buf.String(), `errors < &`) {
		t.Error("unescaped markup characters in output")
	}
}

func TestChartRejectsBadSeries(t *testing.T) {
	cases := []Chart{
		{Title: "empty"},
		{Title: "mismatch", Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1, 2}}}},
		{Title: "hollow", Series: []Series{{Name: "s"}}},
		{Title: "nan", Series: []Series{{Name: "s", X: []float64{math.NaN()}, Y: []float64{1}}}},
		{Title: "inf", Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{math.Inf(1)}}}},
	}
	for _, c := range cases {
		if err := c.RenderSVG(&bytes.Buffer{}); err == nil {
			t.Errorf("chart %q accepted", c.Title)
		}
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	c := Chart{
		Title:  "flat",
		Series: []Series{{Name: "s", X: []float64{5, 5}, Y: []float64{3, 3}}},
	}
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf); err != nil {
		t.Fatalf("degenerate range: %v", err)
	}
	wellFormed(t, buf.Bytes())
}

func TestTicks(t *testing.T) {
	got := ticks(0, 100, 6)
	if len(got) < 2 || len(got) > 7 {
		t.Errorf("ticks(0,100,6) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("ticks not increasing: %v", got)
		}
	}
	if got[0] < 0 || got[len(got)-1] > 100+1e-9 {
		t.Errorf("ticks out of range: %v", got)
	}
}

func TestTrackMap(t *testing.T) {
	g := gpsgen.New(1, gpsgen.Config{})
	m := TrackMap{
		Title: "routes",
		Tracks: []Track{
			{Name: "urban", Traj: g.Trip(gpsgen.Urban, 600)},
			{Name: "rural", Traj: g.Trip(gpsgen.Rural, 600)},
		},
	}
	var buf bytes.Buffer
	if err := m.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	out := buf.String()
	for _, want := range []string{"urban", "rural", "circle", "km"} {
		if !strings.Contains(out, want) {
			t.Errorf("track map missing %q", want)
		}
	}
}

func TestTrackMapRejectsEmpty(t *testing.T) {
	if err := (TrackMap{}).RenderSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty track map accepted")
	}
	m := TrackMap{Tracks: []Track{{Name: "x", Traj: trajectory.Trajectory{}}}}
	if err := m.RenderSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty track accepted")
	}
}
