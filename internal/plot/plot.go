// Package plot renders line charts and track maps as standalone SVG — the
// display side of the paper's motivation ("storage, transmission,
// computation, and display challenges"). It has no dependencies beyond the
// standard library and produces self-contained files suitable for viewing
// the reproduced figures in a browser.
package plot

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"
)

// Series is one polyline of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a 2D line chart.
type Chart struct {
	Title          string
	XLabel, YLabel string
	// Width and Height are the SVG canvas size in pixels; zero selects
	// 800 × 500.
	Width, Height int
	Series        []Series
}

// palette holds the series colours, reused cyclically.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginLeft   = 70.0
	marginRight  = 24.0
	marginTop    = 44.0
	marginBottom = 56.0
	legendRow    = 18.0
)

// RenderSVG writes the chart as a standalone SVG document.
func (c Chart) RenderSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	width, height := float64(c.Width), float64(c.Height)
	if width <= 0 {
		width = 800
	}
	if height <= 0 {
		height = 500
	}

	// Data bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				return fmt.Errorf("plot: series %q has non-finite point %d", s.Name, i)
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	// Always include zero on the y axis for honest magnitude comparison,
	// and pad degenerate ranges.
	ymin = math.Min(ymin, 0)
	//lint:allow floatcmp degenerate-case guard: pad an exactly empty axis range
	if ymax == ymin {
		ymax = ymin + 1
	}
	//lint:allow floatcmp degenerate-case guard: pad an exactly empty axis range
	if xmax == xmin {
		xmax = xmin + 1
	}

	plotW := width - marginLeft - marginRight
	plotH := height - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b builder
	b.open(width, height)
	b.text(width/2, marginTop/2+4, "middle", 15, "bold", c.Title)

	// Axes.
	b.line(marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH, "#333", 1)
	b.line(marginLeft, marginTop, marginLeft, marginTop+plotH, "#333", 1)
	for _, t := range ticks(xmin, xmax, 6) {
		x := px(t)
		b.line(x, marginTop+plotH, x, marginTop+plotH+5, "#333", 1)
		b.line(x, marginTop, x, marginTop+plotH, "#eee", 1)
		b.text(x, marginTop+plotH+20, "middle", 11, "", formatTick(t))
	}
	for _, t := range ticks(ymin, ymax, 6) {
		y := py(t)
		b.line(marginLeft-5, y, marginLeft, y, "#333", 1)
		b.line(marginLeft, y, marginLeft+plotW, y, "#eee", 1)
		b.text(marginLeft-8, y+4, "end", 11, "", formatTick(t))
	}
	b.text(marginLeft+plotW/2, height-14, "middle", 12, "", c.XLabel)
	b.vtext(18, marginTop+plotH/2, 12, c.YLabel)

	// Series and legend.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		pts := make([][2]float64, len(s.X))
		for j := range s.X {
			pts[j] = [2]float64{px(s.X[j]), py(s.Y[j])}
		}
		b.polyline(pts, color)
		ly := marginTop + 8 + float64(i)*legendRow
		b.line(marginLeft+plotW-130, ly, marginLeft+plotW-108, ly, color, 2.5)
		b.text(marginLeft+plotW-102, ly+4, "start", 11, "", s.Name)
	}

	b.close()
	_, err := io.WriteString(w, b.String())
	return err
}

// ticks returns ≤ n "nice" tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n) {
		switch {
		case span/(step*2) <= float64(n):
			step *= 2
		//lint:allow floatcmp exact power-of-ten test: Log10 of a decade step is exact
		case span/(step*2.5) <= float64(n) && math.Mod(math.Log10(step), 1) == 0:
			step *= 2.5
		case span/(step*5) <= float64(n):
			step *= 5
		default:
			step *= 10
		}
	}
	var out []float64
	// Step by index: accumulating t += step drifts when the axis covers
	// Unix-epoch-scale values and can lose the final tick.
	base := math.Ceil(lo/step) * step
	for i := 0; ; i++ {
		t := base + float64(i)*step
		if t > hi+step/1e6 {
			break
		}
		out = append(out, t)
	}
	return out
}

func formatTick(v float64) string {
	//lint:allow floatcmp integrality check chooses the tick label format
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// builder accumulates SVG elements with proper escaping.
type builder struct {
	buf []byte
}

func (b *builder) open(w, h float64) {
	b.appendf(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.appendf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" font-family="sans-serif">`+"\n", w, h, w, h)
	b.appendf(`<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", w, h)
}

func (b *builder) close() { b.appendf("</svg>\n") }

func (b *builder) line(x1, y1, x2, y2 float64, color string, width float64) {
	b.appendf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, color, width)
}

func (b *builder) polyline(pts [][2]float64, color string) {
	b.appendf(`<polyline fill="none" stroke="%s" stroke-width="2" points="`, color)
	for _, p := range pts {
		b.appendf("%.1f,%.1f ", p[0], p[1])
	}
	b.appendf(`"/>` + "\n")
}

func (b *builder) text(x, y float64, anchor string, size float64, weight, s string) {
	w := ""
	if weight != "" {
		w = fmt.Sprintf(` font-weight="%s"`, weight)
	}
	b.appendf(`<text x="%.1f" y="%.1f" text-anchor="%s" font-size="%.0f"%s>%s</text>`+"\n",
		x, y, anchor, size, w, escape(s))
}

func (b *builder) vtext(x, y, size float64, s string) {
	b.appendf(`<text x="%.1f" y="%.1f" text-anchor="middle" font-size="%.0f" transform="rotate(-90 %.1f %.1f)">%s</text>`+"\n",
		x, y, size, x, y, escape(s))
}

func (b *builder) appendf(format string, args ...any) {
	b.buf = append(b.buf, fmt.Sprintf(format, args...)...)
}

func (b *builder) String() string { return string(b.buf) }

func escape(s string) string {
	var out []byte
	if err := xml.EscapeText(discard{&out}, []byte(s)); err != nil {
		return s
	}
	return string(out)
}

type discard struct{ buf *[]byte }

func (d discard) Write(p []byte) (int, error) {
	*d.buf = append(*d.buf, p...)
	return len(p), nil
}
