package plot

import (
	"fmt"
	"io"
	"math"

	"repro/internal/trajectory"
)

// Track is one named trajectory on a track map.
type Track struct {
	Name string
	Traj trajectory.Trajectory
}

// TrackMap renders the spatial paths of trajectories (x east, y north, equal
// scale) as a standalone SVG — a minimal map view for eyeballing
// compression results and route families.
type TrackMap struct {
	Title  string
	Width  int // zero selects 700
	Height int // zero selects 700
	Tracks []Track
}

// RenderSVG writes the track map as a standalone SVG document.
func (m TrackMap) RenderSVG(w io.Writer) error {
	if len(m.Tracks) == 0 {
		return fmt.Errorf("plot: track map %q has no tracks", m.Title)
	}
	width, height := float64(m.Width), float64(m.Height)
	if width <= 0 {
		width = 700
	}
	if height <= 0 {
		height = 700
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, t := range m.Tracks {
		if t.Traj.Len() == 0 {
			return fmt.Errorf("plot: track %q is empty", t.Name)
		}
		b := t.Traj.Bounds()
		xmin, xmax = math.Min(xmin, b.Min.X), math.Max(xmax, b.Max.X)
		ymin, ymax = math.Min(ymin, b.Min.Y), math.Max(ymax, b.Max.Y)
	}
	//lint:allow floatcmp degenerate-case guard: pad an exactly empty axis range
	if xmax == xmin {
		xmax = xmin + 1
	}
	//lint:allow floatcmp degenerate-case guard: pad an exactly empty axis range
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Equal scale: fit the larger extent, centre the smaller.
	plotW := width - marginLeft - marginRight
	plotH := height - marginTop - marginBottom
	scale := math.Min(plotW/(xmax-xmin), plotH/(ymax-ymin))
	cx, cy := (xmin+xmax)/2, (ymin+ymax)/2
	px := func(x float64) float64 { return marginLeft + plotW/2 + (x-cx)*scale }
	py := func(y float64) float64 { return marginTop + plotH/2 - (y-cy)*scale }

	var b builder
	b.open(width, height)
	b.text(width/2, marginTop/2+4, "middle", 15, "bold", m.Title)

	for i, t := range m.Tracks {
		color := palette[i%len(palette)]
		pts := make([][2]float64, t.Traj.Len())
		for j, s := range t.Traj {
			pts[j] = [2]float64{px(s.X), py(s.Y)}
		}
		b.polyline(pts, color)
		// Start marker.
		b.appendf(`<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", pts[0][0], pts[0][1], color)
		ly := marginTop + 8 + float64(i)*legendRow
		b.line(marginLeft+8, ly, marginLeft+30, ly, color, 2.5)
		b.text(marginLeft+36, ly+4, "start", 11, "", t.Name)
	}

	// Scale bar: a round distance spanning ~1/4 of the width.
	barMetres := niceLength(plotW / 4 / scale)
	barPx := barMetres * scale
	y := height - marginBottom/2
	b.line(marginLeft, y, marginLeft+barPx, y, "#333", 2)
	b.text(marginLeft+barPx/2, y-6, "middle", 11, "", formatDistance(barMetres))

	b.close()
	_, err := io.WriteString(w, b.String())
	return err
}

// niceLength rounds v down to a 1/2/5 × 10^k length.
func niceLength(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	switch {
	case v >= 5*mag:
		return 5 * mag
	case v >= 2*mag:
		return 2 * mag
	default:
		return mag
	}
}

func formatDistance(m float64) string {
	if m >= 1000 {
		return fmt.Sprintf("%g km", m/1000)
	}
	return fmt.Sprintf("%g m", m)
}
