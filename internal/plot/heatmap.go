package plot

import (
	"fmt"
	"io"
	"math"
)

// HeatCell is one weighted cell of a heatmap.
type HeatCell struct {
	CX, CY int // cell indices
	Weight float64
}

// Heatmap renders a cell-weight grid (e.g. analysis.Heatmap weights) as an
// SVG density map: darker cells carry more weight.
type Heatmap struct {
	Title string
	// Cell is the cell edge in metres (used for the scale bar).
	Cell   float64
	Width  int // zero selects 700
	Height int // zero selects 700
	Cells  []HeatCell
}

// RenderSVG writes the heatmap as a standalone SVG document.
func (h Heatmap) RenderSVG(w io.Writer) error {
	if len(h.Cells) == 0 {
		return fmt.Errorf("plot: heatmap %q has no cells", h.Title)
	}
	if h.Cell <= 0 {
		return fmt.Errorf("plot: heatmap %q has non-positive cell size", h.Title)
	}
	width, height := float64(h.Width), float64(h.Height)
	if width <= 0 {
		width = 700
	}
	if height <= 0 {
		height = 700
	}

	minX, maxX := math.MaxInt32, math.MinInt32
	minY, maxY := math.MaxInt32, math.MinInt32
	var maxW float64
	for _, c := range h.Cells {
		if c.Weight < 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) {
			return fmt.Errorf("plot: heatmap %q has invalid weight %v", h.Title, c.Weight)
		}
		minX, maxX = min(minX, c.CX), max(maxX, c.CX)
		minY, maxY = min(minY, c.CY), max(maxY, c.CY)
		maxW = math.Max(maxW, c.Weight)
	}
	//lint:allow floatcmp degenerate-case guard: every validated weight is exactly 0
	if maxW == 0 {
		maxW = 1
	}
	cols := maxX - minX + 1
	rows := maxY - minY + 1
	plotW := width - marginLeft - marginRight
	plotH := height - marginTop - marginBottom
	scale := math.Min(plotW/float64(cols), plotH/float64(rows))

	var b builder
	b.open(width, height)
	b.text(width/2, marginTop/2+4, "middle", 15, "bold", h.Title)
	for _, c := range h.Cells {
		x := marginLeft + float64(c.CX-minX)*scale
		// SVG y grows downward; cell rows grow northward.
		y := marginTop + float64(maxY-c.CY)*scale
		opacity := 0.08 + 0.92*(c.Weight/maxW)
		b.appendf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#c4442d" fill-opacity="%.3f"/>`+"\n",
			x, y, scale, scale, opacity)
	}

	// Scale bar in cells → metres.
	barCells := int(math.Max(1, niceLength(float64(cols)/4)))
	y := height - marginBottom/2
	b.line(marginLeft, y, marginLeft+float64(barCells)*scale, y, "#333", 2)
	b.text(marginLeft+float64(barCells)*scale/2, y-6, "middle", 11, "",
		formatDistance(float64(barCells)*h.Cell))

	b.close()
	_, err := io.WriteString(w, b.String())
	return err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
