// Package rtree implements a dynamic 3-dimensional (x, y, t) R-tree over
// trajectory segments — the index family the paper's related work points to
// for trajectory data (trajectory-oriented R-tree variants such as the
// 2+3 TR-tree). It backs the moving-object store's spatiotemporal range
// queries as an alternative to the uniform grid, trading insert cost for
// robustness to skewed data where a fixed cell size degenerates.
//
// The implementation follows Guttman's original design: least-enlargement
// leaf choice and quadratic split, with volume computed over the
// space–time box (area × duration, with small floors so degenerate boxes —
// stationary objects, instantaneous events — still order sensibly).
package rtree

import (
	"fmt"

	"repro/internal/geo"
)

const (
	maxEntries = 16
	minEntries = 6 // ≈ 40% of max, Guttman's recommendation

	// Floors applied when computing volumes so zero-extent boxes (points,
	// stationary segments) retain a meaningful ordering.
	minExtent = 1e-9
)

// Box is an axis-aligned space–time volume.
type Box struct {
	Rect   geo.Rect
	T0, T1 float64
}

// Valid reports whether the box is well-formed (non-empty rectangle,
// T0 ≤ T1).
func (b Box) Valid() bool { return !b.Rect.IsEmpty() && b.T0 <= b.T1 }

// Intersects reports whether two boxes share a point in space and time.
func (b Box) Intersects(o Box) bool {
	return b.Rect.Intersects(o.Rect) && b.T0 <= o.T1 && o.T0 <= b.T1
}

func (b Box) union(o Box) Box {
	out := Box{Rect: b.Rect.Union(o.Rect), T0: b.T0, T1: b.T1}
	if o.T0 < out.T0 {
		out.T0 = o.T0
	}
	if o.T1 > out.T1 {
		out.T1 = o.T1
	}
	return out
}

func (b Box) volume() float64 {
	w := b.Rect.Width() + minExtent
	h := b.Rect.Height() + minExtent
	d := b.T1 - b.T0 + minExtent
	return w * h * d
}

// Tree is a 3D R-tree mapping boxes to string values. Not safe for
// concurrent use; the store serializes access.
type Tree struct {
	root *node
	size int
	// path records the ancestors of the last chooseLeaf descent, root
	// first; kept on the tree to avoid per-insert allocation.
	path []*node
}

type entry struct {
	box   Box
	child *node  // nil at leaves
	value string // set at leaves
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of stored values.
func (t *Tree) Len() int { return t.size }

// Insert adds a value under a box. It panics on invalid boxes, which
// indicate programmer error upstream (segments always have valid bounds).
func (t *Tree) Insert(b Box, value string) {
	if !b.Valid() {
		panic(fmt.Sprintf("rtree: invalid box %+v", b))
	}
	leaf := t.chooseLeaf(t.root, b)
	leaf.entries = append(leaf.entries, entry{box: b, value: value})
	t.size++

	split := t.splitIfNeeded(leaf)
	t.adjustUp(leaf, split)
}

// Search calls fn for every stored value whose box intersects q, until fn
// returns false. Values inserted under several boxes are reported once per
// intersecting box.
func (t *Tree) Search(q Box, fn func(value string) bool) {
	if !q.Valid() {
		return
	}
	search(t.root, q, fn)
}

func search(n *node, q Box, fn func(string) bool) bool {
	for _, e := range n.entries {
		if !e.box.Intersects(q) {
			continue
		}
		if n.leaf {
			if !fn(e.value) {
				return false
			}
		} else if !search(e.child, q, fn) {
			return false
		}
	}
	return true
}

// chooseLeaf descends to the leaf whose enlargement to include b is
// minimal, tracking parents via the path slice on the tree.
func (t *Tree) chooseLeaf(n *node, b Box) *node {
	t.path = t.path[:0]
	for !n.leaf {
		t.path = append(t.path, n)
		best := 0
		bestEnl, bestVol := 0.0, 0.0
		for i, e := range n.entries {
			vol := e.box.volume()
			enl := e.box.union(b).volume() - vol
			//lint:allow floatcmp deterministic tie-break on equal bounding-box enlargement
			if i == 0 || enl < bestEnl || (enl == bestEnl && vol < bestVol) {
				best, bestEnl, bestVol = i, enl, vol
			}
		}
		n.entries[best].box = n.entries[best].box.union(b)
		n = n.entries[best].child
	}
	return n
}

// splitIfNeeded splits an overfull node and returns the new sibling (nil if
// no split happened).
func (t *Tree) splitIfNeeded(n *node) *node {
	if len(n.entries) <= maxEntries {
		return nil
	}
	return quadraticSplit(n)
}

// adjustUp propagates splits and bounding-box updates to the root.
func (t *Tree) adjustUp(n *node, split *node) {
	for i := len(t.path) - 1; i >= 0; i-- {
		parent := t.path[i]
		if split != nil {
			parent.entries = append(parent.entries, entry{box: boundsOf(split), child: split})
		}
		// Refresh the entry covering n (its box may have grown precisely;
		// chooseLeaf already grew it conservatively, but a split shrinks).
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j].box = boundsOf(n)
			}
		}
		split = t.splitIfNeeded(parent)
		n = parent
	}
	if split != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &node{
			leaf: false,
			entries: []entry{
				{box: boundsOf(old), child: old},
				{box: boundsOf(split), child: split},
			},
		}
	}
}

func boundsOf(n *node) Box {
	b := n.entries[0].box
	for _, e := range n.entries[1:] {
		b = b.union(e.box)
	}
	return b
}

// quadraticSplit redistributes an overfull node's entries into the node and
// a new sibling using Guttman's quadratic seeds/next heuristics.
func quadraticSplit(n *node) *node {
	entries := n.entries
	// Pick seeds: the pair wasting the most volume if grouped.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].box.union(entries[j].box).volume() -
				entries[i].box.volume() - entries[j].box.volume()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	groupA := []entry{entries[s1]}
	groupB := []entry{entries[s2]}
	boxA, boxB := entries[s1].box, entries[s2].box
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}

	for len(rest) > 0 {
		// Force-assign when one group must take everything to reach min.
		need := minEntries - len(groupA)
		if need > 0 && need >= len(rest) {
			groupA = append(groupA, rest...)
			rest = nil
			break
		}
		need = minEntries - len(groupB)
		if need > 0 && need >= len(rest) {
			groupB = append(groupB, rest...)
			rest = nil
			break
		}
		// Pick the entry with the strongest group preference.
		bestIdx, bestDiff, preferA := 0, -1.0, true
		for i, e := range rest {
			dA := boxA.union(e.box).volume() - boxA.volume()
			dB := boxB.union(e.box).volume() - boxB.volume()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx, preferA = diff, i, dA < dB
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if preferA {
			groupA = append(groupA, e)
			boxA = boxA.union(e.box)
		} else {
			groupB = append(groupB, e)
			boxB = boxB.union(e.box)
		}
	}

	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}
