package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

func boxAt(x, y, t float64) Box {
	return Box{
		Rect: geo.Rect{Min: geo.Pt(x, y), Max: geo.Pt(x+10, y+10)},
		T0:   t, T1: t + 10,
	}
}

func collect(t *Tree, q Box) []string {
	var out []string
	t.Search(q, func(v string) bool {
		out = append(out, v)
		return true
	})
	sort.Strings(out)
	return out
}

func TestInsertSearchBasic(t *testing.T) {
	tr := New()
	tr.Insert(boxAt(0, 0, 0), "a")
	tr.Insert(boxAt(100, 100, 0), "b")
	tr.Insert(boxAt(0, 0, 100), "c") // same place, later time
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := collect(tr, boxAt(0, 0, 0))
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("search near origin t=0: %v, want [a]", got)
	}
	got = collect(tr, boxAt(0, 0, 100))
	if len(got) != 1 || got[0] != "c" {
		t.Errorf("search near origin t=100: %v, want [c]", got)
	}
	// A query spanning all time at the origin finds a and c.
	got = collect(tr, Box{Rect: geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(5, 5)}, T0: -1e9, T1: 1e9})
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("all-time search: %v, want [a c]", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(boxAt(0, 0, 0), fmt.Sprintf("v%d", i))
	}
	count := 0
	tr.Search(boxAt(0, 0, 0), func(string) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d, want 5", count)
	}
}

func TestInvalidBoxes(t *testing.T) {
	tr := New()
	defer func() {
		if recover() == nil {
			t.Error("invalid box insert did not panic")
		}
	}()
	// Searching with invalid boxes is a no-op, not a panic.
	tr.Search(Box{Rect: geo.EmptyRect()}, func(string) bool { t.Error("matched"); return true })
	tr.Search(Box{Rect: geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}, T0: 5, T1: 1},
		func(string) bool { t.Error("matched"); return true })
	tr.Insert(Box{Rect: geo.EmptyRect(), T0: 0, T1: 1}, "bad")
}

// Brute-force equivalence under random workloads: the tree must return
// exactly the same result set as a linear scan.
func TestRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	type item struct {
		box Box
		val string
	}
	for trial := 0; trial < 10; trial++ {
		tr := New()
		var items []item
		n := 100 + rng.Intn(900)
		for i := 0; i < n; i++ {
			b := Box{
				Rect: geo.Rect{
					Min: geo.Pt(rng.Float64()*1e4, rng.Float64()*1e4),
				},
				T0: rng.Float64() * 1e4,
			}
			b.Rect.Max = b.Rect.Min.Add(geo.Pt(rng.Float64()*200, rng.Float64()*200))
			b.T1 = b.T0 + rng.Float64()*100
			v := fmt.Sprintf("i%d", i)
			tr.Insert(b, v)
			items = append(items, item{b, v})
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for q := 0; q < 50; q++ {
			qb := Box{
				Rect: geo.Rect{Min: geo.Pt(rng.Float64()*1e4, rng.Float64()*1e4)},
				T0:   rng.Float64() * 1e4,
			}
			qb.Rect.Max = qb.Rect.Min.Add(geo.Pt(rng.Float64()*2000, rng.Float64()*2000))
			qb.T1 = qb.T0 + rng.Float64()*2000

			var want []string
			for _, it := range items {
				if it.box.Intersects(qb) {
					want = append(want, it.val)
				}
			}
			sort.Strings(want)
			got := collect(tr, qb)
			if len(got) != len(want) {
				t.Fatalf("trial %d query %d: got %d results, want %d", trial, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d query %d: result %d = %q, want %q", trial, q, i, got[i], want[i])
				}
			}
		}
	}
}

// Degenerate boxes (points in space and instants in time) must index and
// query correctly.
func TestDegenerateBoxes(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		x := float64(i)
		tr.Insert(Box{
			Rect: geo.Rect{Min: geo.Pt(x, x), Max: geo.Pt(x, x)},
			T0:   x, T1: x,
		}, fmt.Sprintf("p%d", i))
	}
	got := collect(tr, Box{
		Rect: geo.Rect{Min: geo.Pt(49.5, 49.5), Max: geo.Pt(52.5, 52.5)},
		T0:   0, T1: 1e9,
	})
	if len(got) != 3 {
		t.Errorf("point query returned %v, want p50 p51 p52", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, y, tt := rng.Float64()*1e5, rng.Float64()*1e5, rng.Float64()*1e5
		tr.Insert(boxAt(x, y, tt), "v")
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := New()
	for i := 0; i < 50000; i++ {
		tr.Insert(boxAt(rng.Float64()*1e5, rng.Float64()*1e5, rng.Float64()*1e5), "v")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := boxAt(rng.Float64()*1e5, rng.Float64()*1e5, rng.Float64()*1e5)
		tr.Search(q, func(string) bool { return true })
	}
}
