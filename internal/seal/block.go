package seal

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/rtree"
	"repro/internal/trajectory"
)

// Stream byte codes. Each interior sample of a block is one spatial code
// followed by one time code; escape codes carry their operand inline.
const (
	// Spatial codes: 0..maxCellCodes-1 index the block's cell codebook.
	maxCellCodes = 252
	cellEsc16    = 252 // two little-endian int16 cell coordinates (4 bytes)
	cellEsc32    = 253 // two little-endian int32 cell coordinates (8 bytes)
	cellEsc64    = 254 // two float64 deltas, exact (16 bytes) — cell overflow

	// Time codes: 0..maxDtCodes-1 index the block's dt codebook.
	maxDtCodes = 254
	dtEsc32    = 254 // raw float32 delta (4 bytes)
	dtEsc64    = 255 // raw float64 delta (8 bytes) — sub-float32 spacing
)

// blockOverheadBytes is the per-block bookkeeping charged against the cold
// tier's footprint on top of codebooks and the code stream: the two exact
// boundary samples (48), the spatiotemporal box (48) and the counters/error
// fields. Deliberately generous so reported compression never flatters.
const blockOverheadBytes = 128

// cell is one spatial codebook entry: a quantizer cell in units of the
// block's cell edge, relative to the previous reconstructed position.
type cell struct{ i, j int32 }

// Block is one immutable sealed run of a single object's trajectory.
//
// The first and last samples are stored exactly; every interior sample is
// delta-coded against the previous *reconstructed* position (closed-loop
// DPCM), quantized onto a cell grid of edge q = ε·√2 and encoded through a
// per-block codebook of the most frequent cells. Because each delta is taken
// from the reconstruction, quantization error never accumulates: every
// reconstructed position is within ε of its original by construction, and
// the actually incurred maxima are recorded (EpsSpace, EpsTime) so queries
// can expand predicates by the true bound rather than the configured one.
//
// Exact boundary samples make chains stitchable: consecutive blocks overlap
// in exactly one sample with bit-identical time and position, so duplicate
// suppression at query time is exact comparison, never tolerance matching.
type Block struct {
	seq  int  // position in the owning chain
	cont bool // first sample duplicates the previous block's last
	n    int  // decoded sample count (including both exact boundaries)

	first, last trajectory.Sample // exact
	box         rtree.Box         // covers original and reconstructed tracks

	q        float64 // quantizer cell edge (ε·√2)
	epsSpace float64 // max position reconstruction error incurred (≤ ε)
	epsTime  float64 // max timestamp reconstruction error incurred

	cells  []cell    // spatial codebook
	dts    []float32 // time-delta codebook
	stream []byte    // interior samples: (spatial code, time code) pairs
}

// Box returns the block's spatiotemporal bounding box. It covers both the
// original samples and their reconstructions, so R-tree pruning against it
// never misses a block whose true (uncompressed) points intersect a query.
func (b *Block) Box() rtree.Box { return b.box }

// Len returns the number of samples the block decodes to.
func (b *Block) Len() int { return b.n }

// EpsSpace returns the maximum position reconstruction error the block
// actually incurred, in metres (≤ the configured ε).
func (b *Block) EpsSpace() float64 { return b.epsSpace }

// EpsTime returns the maximum timestamp reconstruction error the block
// actually incurred, in seconds.
func (b *Block) EpsTime() float64 { return b.epsTime }

// CompressedBytes returns the block's accounted footprint: fixed overhead
// plus codebooks plus the code stream.
func (b *Block) CompressedBytes() int {
	return blockOverheadBytes + 8*len(b.cells) + 4*len(b.dts) + len(b.stream)
}

// middle is the scratch representation of one interior sample during encode.
type middle struct {
	exact  bool // cell overflow: dx/dy carried as exact float64 deltas
	ci, cj int64
	dx, dy float64
	use64  bool // dt too small for float32 monotonicity: float64 delta
	dt32   float32
	dt64   float64
}

// newBlock seals one run of samples. ss must be non-empty, finite and
// strictly increasing in time; eps must be positive. The error cases are
// pathological inputs a caller cannot quantize away (sample spacing below
// float64 resolution at the given epoch).
func newBlock(seq int, cont bool, eps float64, ss []trajectory.Sample) (*Block, error) {
	n := len(ss)
	if n == 0 {
		return nil, fmt.Errorf("seal: empty block")
	}
	if eps <= 0 {
		return nil, fmt.Errorf("seal: non-positive eps %v", eps)
	}
	for i, s := range ss {
		if !s.IsFinite() {
			return nil, fmt.Errorf("seal: %w at sample %d", trajectory.ErrNotFinite, i)
		}
		if i > 0 && s.T <= ss[i-1].T {
			return nil, fmt.Errorf("seal: %w: t=%v after t=%v", trajectory.ErrUnsorted, s.T, ss[i-1].T)
		}
	}

	b := &Block{
		seq:   seq,
		cont:  cont,
		n:     n,
		first: ss[0],
		last:  ss[n-1],
		q:     eps * math.Sqrt2,
	}
	rect := geo.Rect{Min: b.first.Pos(), Max: b.first.Pos()}
	rect = rect.Extend(b.last.Pos())
	tMax := b.last.T

	// Pass 1: closed-loop quantization of the interior samples. The
	// reconstruction here replays exactly what scan computes at decode time,
	// so the recorded error bounds hold for decoded output.
	mids := make([]middle, 0, maxInt(0, n-2))
	px, py, pt := b.first.X, b.first.Y, b.first.T
	for k := 1; k <= n-2; k++ {
		s := ss[k]
		var m middle
		dx, dy := s.X-px, s.Y-py
		ci := math.Round(dx / b.q)
		cj := math.Round(dy / b.q)
		var rx, ry float64
		if math.Abs(ci) > math.MaxInt32 || math.Abs(cj) > math.MaxInt32 {
			m.exact, m.dx, m.dy = true, dx, dy
			rx, ry = px+dx, py+dy
		} else {
			m.ci, m.cj = int64(ci), int64(cj)
			rx = px + float64(m.ci)*b.q
			ry = py + float64(m.cj)*b.q
		}

		m.dt32 = float32(s.T - pt)
		rt := pt + float64(m.dt32)
		if !(rt > pt) {
			m.use64 = true
			m.dt64 = s.T - pt
			rt = pt + m.dt64
			if !(rt > pt) {
				return nil, fmt.Errorf("seal: sample spacing below time resolution at t=%v", s.T)
			}
		}

		if e := math.Hypot(s.X-rx, s.Y-ry); e > b.epsSpace {
			b.epsSpace = e
		}
		if e := math.Abs(s.T - rt); e > b.epsTime {
			b.epsTime = e
		}
		rect = rect.Extend(s.Pos()).Extend(geo.Pt(rx, ry))
		if rt > tMax {
			tMax = rt
		}
		mids = append(mids, m)
		px, py, pt = rx, ry, rt
	}
	if n >= 3 && !(pt < b.last.T) {
		return nil, fmt.Errorf("seal: reconstructed time %v not before final sample t=%v", pt, b.last.T)
	}
	b.box = rtree.Box{Rect: rect, T0: b.first.T, T1: tMax}

	// Pass 2: build the codebooks from frequency, deterministically.
	b.cells, b.dts = buildCodebooks(mids)
	cellIdx := make(map[cell]int, len(b.cells))
	for i, c := range b.cells {
		cellIdx[c] = i
	}
	dtIdx := make(map[float32]int, len(b.dts))
	for i, d := range b.dts {
		dtIdx[d] = i
	}

	// Pass 3: emit the code stream.
	buf := make([]byte, 0, 3*len(mids))
	for _, m := range mids {
		switch {
		case m.exact:
			buf = append(buf, cellEsc64)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.dx))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.dy))
		default:
			c := cell{int32(m.ci), int32(m.cj)}
			if idx, ok := cellIdx[c]; ok {
				buf = append(buf, byte(idx))
			} else if fitsInt16(m.ci) && fitsInt16(m.cj) {
				buf = append(buf, cellEsc16)
				buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(m.ci)))
				buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(m.cj)))
			} else {
				buf = append(buf, cellEsc32)
				buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(m.ci)))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(m.cj)))
			}
		}
		switch {
		case m.use64:
			buf = append(buf, dtEsc64)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.dt64))
		default:
			if idx, ok := dtIdx[m.dt32]; ok {
				buf = append(buf, byte(idx))
			} else {
				buf = append(buf, dtEsc32)
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(m.dt32))
			}
		}
	}
	b.stream = buf
	return b, nil
}

// buildCodebooks selects the most frequent cells and time deltas, capped at
// the code space, ordered by descending count with value tie-breaks so the
// encoding is deterministic.
func buildCodebooks(mids []middle) ([]cell, []float32) {
	cellCount := make(map[cell]int)
	dtCount := make(map[float32]int)
	for _, m := range mids {
		if !m.exact {
			cellCount[cell{int32(m.ci), int32(m.cj)}]++
		}
		if !m.use64 {
			dtCount[m.dt32]++
		}
	}
	cells := make([]cell, 0, len(cellCount))
	for c := range cellCount {
		cells = append(cells, c)
	}
	sortStable(cells, func(a, b cell) bool {
		if cellCount[a] != cellCount[b] {
			return cellCount[a] > cellCount[b]
		}
		if a.i != b.i {
			return a.i < b.i
		}
		return a.j < b.j
	})
	if len(cells) > maxCellCodes {
		cells = cells[:maxCellCodes]
	}
	dts := make([]float32, 0, len(dtCount))
	for d := range dtCount {
		dts = append(dts, d)
	}
	sortStable(dts, func(a, b float32) bool {
		if dtCount[a] != dtCount[b] {
			return dtCount[a] > dtCount[b]
		}
		return a < b
	})
	if len(dts) > maxDtCodes {
		dts = dts[:maxDtCodes]
	}
	return cells, dts
}

// scan decodes the block sequentially, calling fn for each sample in time
// order until fn returns false. The first and last samples are exact; the
// interior is the closed-loop reconstruction, within EpsSpace/EpsTime of the
// originals. Blocks are immutable, so scan is safe for concurrent use.
func (b *Block) scan(fn func(k int, s trajectory.Sample) bool) {
	if !fn(0, b.first) {
		return
	}
	if b.n == 1 {
		return
	}
	px, py, pt := b.first.X, b.first.Y, b.first.T
	off := 0
	for k := 1; k <= b.n-2; k++ {
		code := b.stream[off]
		off++
		switch {
		case code < maxCellCodes:
			c := b.cells[code]
			px += float64(c.i) * b.q
			py += float64(c.j) * b.q
		case code == cellEsc16:
			ci := int16(binary.LittleEndian.Uint16(b.stream[off:]))
			cj := int16(binary.LittleEndian.Uint16(b.stream[off+2:]))
			off += 4
			px += float64(ci) * b.q
			py += float64(cj) * b.q
		case code == cellEsc32:
			ci := int32(binary.LittleEndian.Uint32(b.stream[off:]))
			cj := int32(binary.LittleEndian.Uint32(b.stream[off+4:]))
			off += 8
			px += float64(ci) * b.q
			py += float64(cj) * b.q
		default: // cellEsc64
			px += math.Float64frombits(binary.LittleEndian.Uint64(b.stream[off:]))
			py += math.Float64frombits(binary.LittleEndian.Uint64(b.stream[off+8:]))
			off += 16
		}
		code = b.stream[off]
		off++
		switch {
		case code < maxDtCodes:
			pt += float64(b.dts[code])
		case code == dtEsc32:
			pt += float64(math.Float32frombits(binary.LittleEndian.Uint32(b.stream[off:])))
			off += 4
		default: // dtEsc64
			pt += math.Float64frombits(binary.LittleEndian.Uint64(b.stream[off:]))
			off += 8
		}
		if !fn(k, trajectory.S(pt, px, py)) {
			return
		}
	}
	fn(b.n-1, b.last)
}

// samples decodes the whole block. Test and interpolation helper.
func (b *Block) samples() trajectory.Trajectory {
	out := make(trajectory.Trajectory, 0, b.n)
	b.scan(func(_ int, s trajectory.Sample) bool {
		out = append(out, s)
		return true
	})
	return out
}

// sortStable orders xs by less with sort.SliceStable, keeping codebook
// construction deterministic for equal counts.
func sortStable[T any](xs []T, less func(a, b T) bool) {
	sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
}

func fitsInt16(v int64) bool { return v >= math.MinInt16 && v <= math.MaxInt16 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
