package seal

import (
	"math"
	"testing"

	"repro/internal/gpsgen"
	"repro/internal/trajectory"
)

// epoch puts test trajectories at a realistic Unix-time magnitude, where
// float64 time resolution is coarsest (~2.4e-7 s) — the regime the
// closed-loop time coding must survive.
const epoch = 1.7e9

func shiftEpoch(p trajectory.Trajectory) trajectory.Trajectory {
	out := p.Clone()
	for i := range out {
		out[i].T += epoch
	}
	return out
}

func tripSamples(t *testing.T, seed int64, dur float64) trajectory.Trajectory {
	t.Helper()
	g := gpsgen.New(seed, gpsgen.Config{})
	p := shiftEpoch(g.Trip(gpsgen.Urban, dur))
	if p.Len() < 3 {
		t.Fatalf("trip too short: %d samples", p.Len())
	}
	return p
}

func TestBlockRoundTripWithinEps(t *testing.T) {
	const eps = 5.0
	p := tripSamples(t, 1, 2400)
	blk, err := newBlock(0, false, eps, p)
	if err != nil {
		t.Fatal(err)
	}
	got := blk.samples()
	if len(got) != p.Len() {
		t.Fatalf("decoded %d samples, want %d", len(got), p.Len())
	}
	if !got[0].Pos().Equal(p[0].Pos()) || got[0].T != p[0].T {
		t.Errorf("first sample not exact: %v vs %v", got[0], p[0])
	}
	last := p[p.Len()-1]
	if !got[len(got)-1].Pos().Equal(last.Pos()) || got[len(got)-1].T != last.T {
		t.Errorf("last sample not exact: %v vs %v", got[len(got)-1], last)
	}
	maxPos, maxTime := 0.0, 0.0
	for i, s := range got {
		if d := s.Pos().Dist(p[i].Pos()); d > maxPos {
			maxPos = d
		}
		if d := math.Abs(s.T - p[i].T); d > maxTime {
			maxTime = d
		}
		if i > 0 && s.T <= got[i-1].T {
			t.Fatalf("reconstructed time not increasing at %d: %v after %v", i, s.T, got[i-1].T)
		}
	}
	if maxPos > eps {
		t.Errorf("position error %v exceeds eps %v", maxPos, eps)
	}
	if maxPos > blk.EpsSpace() {
		t.Errorf("position error %v exceeds recorded bound %v", maxPos, blk.EpsSpace())
	}
	if maxTime > blk.EpsTime() {
		t.Errorf("time error %v exceeds recorded bound %v", maxTime, blk.EpsTime())
	}
	if blk.EpsTime() > 1e-3 {
		t.Errorf("time error bound %v implausibly large", blk.EpsTime())
	}
}

func TestBlockBoxCoversOriginalAndReconstruction(t *testing.T) {
	p := tripSamples(t, 2, 1800)
	blk, err := newBlock(0, false, 10, p)
	if err != nil {
		t.Fatal(err)
	}
	box := blk.Box()
	for i, s := range p {
		if !box.Rect.Contains(s.Pos()) {
			t.Errorf("original sample %d outside box", i)
		}
		if s.T < box.T0 || s.T > box.T1 {
			t.Errorf("original time %d outside box span", i)
		}
	}
	for i, s := range blk.samples() {
		if !box.Rect.Contains(s.Pos()) {
			t.Errorf("reconstructed sample %d outside box", i)
		}
		if s.T < box.T0 || s.T > box.T1 {
			t.Errorf("reconstructed time %d outside box span", i)
		}
	}
}

func TestBlockCompression(t *testing.T) {
	p := tripSamples(t, 3, 2550) // ≈256 samples at the default 10 s interval
	blk, err := newBlock(0, false, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	raw := rawSampleBytes * p.Len()
	if ratio := float64(raw) / float64(blk.CompressedBytes()); ratio < 4 {
		t.Errorf("compression ratio %.2f < 4 (%d raw, %d compressed)", ratio, raw, blk.CompressedBytes())
	}
}

func TestBlockDeterministic(t *testing.T) {
	p := tripSamples(t, 4, 1200)
	a, err := newBlock(0, false, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newBlock(0, false, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.stream) != string(b.stream) {
		t.Error("same input produced different streams")
	}
	if len(a.cells) != len(b.cells) || len(a.dts) != len(b.dts) {
		t.Error("same input produced different codebooks")
	}
}

func TestBlockTinyRuns(t *testing.T) {
	for n := 1; n <= 4; n++ {
		ss := make(trajectory.Trajectory, n)
		for i := range ss {
			ss[i] = trajectory.S(epoch+float64(i)*10, float64(i)*7, float64(i)*-3)
		}
		blk, err := newBlock(0, false, 1, ss)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := blk.samples()
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d", n, len(got))
		}
		for i := range ss {
			if got[i].Pos().Dist(ss[i].Pos()) > 1 {
				t.Errorf("n=%d sample %d error too large", n, i)
			}
		}
	}
}

func TestBlockLargeJumpEscapes(t *testing.T) {
	// A jump of 1e9 m with eps 1e-3 overflows the int32 cell space and must
	// take the exact-delta escape; a mid-size jump exercises the int32
	// escape; jitter stays in the codebook.
	ss := trajectory.Trajectory{
		trajectory.S(epoch, 0, 0),
		trajectory.S(epoch+10, 1, 1),
		trajectory.S(epoch+20, 1e9, -1e9),
		trajectory.S(epoch+30, 1e9+100, -1e9+100),
		trajectory.S(epoch+40, 1e9+101, -1e9+101),
		trajectory.S(epoch+50, 1e9+102, -1e9+102),
	}
	blk, err := newBlock(0, false, 1e-3, ss)
	if err != nil {
		t.Fatal(err)
	}
	got := blk.samples()
	for i, s := range got {
		if d := s.Pos().Dist(ss[i].Pos()); d > 1e-3 {
			t.Errorf("sample %d error %v exceeds eps", i, d)
		}
	}
}

func TestBlockRejectsBadInput(t *testing.T) {
	ok := trajectory.Trajectory{trajectory.S(0, 0, 0), trajectory.S(1, 1, 1)}
	if _, err := newBlock(0, false, 0, ok); err == nil {
		t.Error("accepted eps=0")
	}
	if _, err := newBlock(0, false, 1, nil); err == nil {
		t.Error("accepted empty run")
	}
	unsorted := trajectory.Trajectory{trajectory.S(1, 0, 0), trajectory.S(1, 1, 1)}
	if _, err := newBlock(0, false, 1, unsorted); err == nil {
		t.Error("accepted duplicate timestamps")
	}
	nan := trajectory.Trajectory{trajectory.S(0, 0, 0), trajectory.S(1, math.NaN(), 1)}
	if _, err := newBlock(0, false, 1, nan); err == nil {
		t.Error("accepted NaN")
	}
}
