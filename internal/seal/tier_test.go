package seal

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/trajectory"
)

// line returns n samples marching east from (x0, 0) at 1 m/s, sampled every
// 10 s starting at t0.
func line(t0, x0 float64, n int) trajectory.Trajectory {
	out := make(trajectory.Trajectory, n)
	for i := range out {
		out[i] = trajectory.S(t0+float64(i)*10, x0+float64(i)*10, 0)
	}
	return out
}

func newTestTier(eps float64, blockPts int) *Tier {
	return NewTier(Config{Eps: eps, BlockPoints: blockPts, Metrics: metrics.NewRegistry()})
}

func TestTierSealAndQueryIDs(t *testing.T) {
	tr := newTestTier(2, 32)
	if err := tr.Seal("east", line(epoch, 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Seal("far", line(epoch, 1e6, 100)); err != nil {
		t.Fatal(err)
	}
	if tr.Points() != 200 {
		t.Errorf("points = %d, want 200", tr.Points())
	}
	if tr.Blocks() < 4 {
		t.Errorf("blocks = %d, want ≥ 4 with 32-point blocks", tr.Blocks())
	}

	got := tr.QueryIDs(geo.Rect{Min: geo.Pt(100, -5), Max: geo.Pt(200, 5)}, epoch, epoch+1000)
	if len(got) != 1 || got[0] != "east" {
		t.Errorf("QueryIDs = %v, want [east]", got)
	}
	// Time window excludes the spatial hit.
	got = tr.QueryIDs(geo.Rect{Min: geo.Pt(100, -5), Max: geo.Pt(200, 5)}, epoch+5000, epoch+6000)
	if len(got) != 0 {
		t.Errorf("QueryIDs outside time window = %v, want none", got)
	}
	// A rect far from everything.
	got = tr.QueryIDs(geo.Rect{Min: geo.Pt(-1e5, 1e4), Max: geo.Pt(-9e4, 2e4)}, epoch, epoch+1000)
	if len(got) != 0 {
		t.Errorf("QueryIDs far rect = %v, want none", got)
	}
}

func TestTierRangePointsDeduplicatesOverlap(t *testing.T) {
	tr := newTestTier(2, 16)
	p := line(epoch, 0, 100) // chunks into 16-point blocks with 1-sample overlap
	if err := tr.Seal("obj", p); err != nil {
		t.Fatal(err)
	}
	hits := tr.RangePoints(geo.Rect{Min: geo.Pt(-1e9, -1e9), Max: geo.Pt(1e9, 1e9)}, epoch-1, epoch+1e6)
	if len(hits) != p.Len() {
		t.Fatalf("RangePoints returned %d points, want %d (overlap heads deduplicated)", len(hits), p.Len())
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].S.T <= hits[i-1].S.T {
			t.Fatalf("hits not strictly increasing in time at %d", i)
		}
	}
	for i, h := range hits {
		if d := h.S.Pos().Dist(p[i].Pos()); d > 2 {
			t.Errorf("hit %d error %v exceeds eps", i, d)
		}
	}
}

func TestTierSealOverlapContinuation(t *testing.T) {
	tr := newTestTier(2, 64)
	p := line(epoch, 0, 41)
	// Seal [0..20] then [20..40]: the boundary sample is shared, the way the
	// store's seal-on-evict hands over runs.
	if err := tr.Seal("obj", p[:21]); err != nil {
		t.Fatal(err)
	}
	if err := tr.Seal("obj", p[20:]); err != nil {
		t.Fatal(err)
	}
	if tr.Points() != 41 {
		t.Errorf("points = %d, want 41 (boundary counted once)", tr.Points())
	}
	hits := tr.RangePoints(geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(1e5, 1)}, epoch-1, epoch+1e6)
	if len(hits) != 41 {
		t.Errorf("RangePoints = %d points, want 41", len(hits))
	}

	// Re-sealing just the boundary is a no-op; regressing is an error.
	if err := tr.Seal("obj", p[40:41]); err != nil {
		t.Errorf("boundary-only run: %v", err)
	}
	if err := tr.Seal("obj", p[10:30]); err == nil {
		t.Error("accepted run starting before sealed history end")
	}
}

func TestTierPositionAt(t *testing.T) {
	tr := newTestTier(2, 16)
	if err := tr.Seal("obj", line(epoch, 0, 50)); err != nil {
		t.Fatal(err)
	}
	pos, ok := tr.PositionAt("obj", epoch+105) // midway between samples 10 and 11
	if !ok {
		t.Fatal("no position inside sealed span")
	}
	if want := geo.Pt(105, 0); pos.Dist(want) > 2+1e-6 {
		t.Errorf("PositionAt = %v, want within eps of %v", pos, want)
	}
	if _, ok := tr.PositionAt("obj", epoch-1); ok {
		t.Error("position before sealed span")
	}
	if _, ok := tr.PositionAt("obj", epoch+491); ok {
		t.Error("position after sealed span")
	}
	if _, ok := tr.PositionAt("ghost", epoch); ok {
		t.Error("position for unknown object")
	}
}

func TestTierGapYieldsNoPosition(t *testing.T) {
	tr := newTestTier(2, 16)
	if err := tr.Seal("obj", line(epoch, 0, 10)); err != nil {
		t.Fatal(err)
	}
	// Disjoint run: starts 1000 s after the first ended.
	if err := tr.Seal("obj", line(epoch+1090, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.PositionAt("obj", epoch+500); ok {
		t.Error("interpolated across a seal gap")
	}
	if _, ok := tr.PositionAt("obj", epoch+1100); !ok {
		t.Error("no position inside second run")
	}
}

func TestTierPositionsAtSkips(t *testing.T) {
	tr := newTestTier(2, 16)
	for _, id := range []string{"a", "b", "c"} {
		if err := tr.Seal(id, line(epoch, 0, 10)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]geo.Point{}
	tr.PositionsAt(epoch+45, func(id string) bool { return id == "b" }, func(id string, pos geo.Point) {
		got[id] = pos
	})
	if len(got) != 2 {
		t.Fatalf("visited %v, want a and c only", got)
	}
	if _, ok := got["b"]; ok {
		t.Error("skip function ignored")
	}
}

func TestTierFootprintAndMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := NewTier(Config{Eps: 5, BlockPoints: 256, Metrics: reg})
	if err := tr.Seal("obj", line(epoch, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	raw := tr.RawEquivalentBytes()
	comp := tr.CompressedBytes()
	if comp <= 0 || raw != int64(tr.Points())*rawSampleBytes {
		t.Fatalf("footprint accounting broken: raw=%d comp=%d", raw, comp)
	}
	if float64(raw)/float64(comp) < 4 {
		t.Errorf("compression ratio %.2f < 4", float64(raw)/float64(comp))
	}

	tr.QueryIDs(geo.Rect{Min: geo.Pt(0, -1), Max: geo.Pt(50, 1)}, epoch, epoch+100)

	want := map[string]bool{
		"seal_blocks": true, "seal_points": true, "seal_bytes": true,
		"seal_compression_ratio": true, "seal_seals_total": true,
		"seal_sealed_points_total": true, "seal_blocks_decoded_total": true,
		"seal_blocks_pruned_total": true, "seal_query_seconds": true,
	}
	vals := map[string]float64{}
	for _, snap := range reg.Snapshot() {
		if want[snap.Name] {
			delete(want, snap.Name)
		}
		vals[snap.Name] = snap.Value
	}
	for name := range want {
		t.Errorf("metric %s not registered", name)
	}
	if vals["seal_points"] != 1000 {
		t.Errorf("seal_points = %v, want 1000", vals["seal_points"])
	}
	if vals["seal_compression_ratio"] < 4 {
		t.Errorf("seal_compression_ratio = %v, want ≥ 4", vals["seal_compression_ratio"])
	}
}

func TestTierQueryCountsPrunedBlocks(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := NewTier(Config{Eps: 2, BlockPoints: 16, Metrics: reg})
	// Two objects far apart; a query touching one must not decode the other.
	if err := tr.Seal("near", line(epoch, 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Seal("far", line(epoch, 1e7, 100)); err != nil {
		t.Fatal(err)
	}
	tr.QueryIDs(geo.Rect{Min: geo.Pt(0, -1), Max: geo.Pt(30, 1)}, epoch, epoch+100)

	var decoded, pruned float64
	for _, snap := range reg.Snapshot() {
		switch snap.Name {
		case "seal_blocks_decoded_total":
			decoded = snap.Value
		case "seal_blocks_pruned_total":
			pruned = snap.Value
		}
	}
	if decoded == 0 {
		t.Fatal("no blocks decoded")
	}
	total := float64(tr.Blocks())
	if decoded+pruned != total {
		t.Errorf("decoded %v + pruned %v != total %v", decoded, pruned, total)
	}
	if decoded > total/2 {
		t.Errorf("decoded %v of %v blocks; R-tree pruning ineffective", decoded, total)
	}
}

func TestTierRejectsInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTier accepted eps=0")
		}
	}()
	NewTier(Config{Eps: 0})
}

func TestTierConcurrentSealAndQuery(t *testing.T) {
	tr := newTestTier(2, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = tr.Seal("mover", line(epoch+float64(i)*1e4, float64(i)*100, 50))
		}
	}()
	rect := geo.Rect{Min: geo.Pt(-1e6, -1e6), Max: geo.Pt(1e6, 1e6)}
	for i := 0; i < 50; i++ {
		tr.QueryIDs(rect, epoch, epoch+1e6)
		tr.RangePoints(rect, epoch, epoch+1e6)
		tr.PositionAt("mover", epoch+math.Mod(float64(i)*37, 1e4))
	}
	<-done
}
