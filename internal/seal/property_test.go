package seal

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/trajectory"
)

// TestPropertyQueriesMatchUncompressedReference is the tier's acceptance
// property: on randomized gpsgen fleets, range and kNN answers over sealed
// blocks match the uncompressed reference within the configured ε —
// specifically,
//
//   - range: every object whose ORIGINAL points enter the query rectangle
//     during the window is returned (no false negatives), and every
//     returned object's original trajectory intersects the rectangle
//     expanded by ε plus the conservative segment-bbox slack;
//   - points: every original point inside the rectangle has a reported
//     reconstruction within ε of it, and nothing is reported that is not
//     within ε of where the original trajectory actually was;
//   - kNN: every reported position is within ε of the object's true
//     interpolated position at the query time.
func TestPropertyQueriesMatchUncompressedReference(t *testing.T) {
	for _, seed := range []int64{7, 21, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const eps = 8.0
			g := gpsgen.New(seed, gpsgen.Config{})
			fleet := g.Fleet(12, 4000, 3000)
			orig := make(map[string]trajectory.Trajectory, len(fleet))
			tr := newTestTier(eps, 64)
			for i, p := range fleet {
				id := fmt.Sprintf("v%02d", i)
				p = shiftEpoch(p)
				orig[id] = p
				if err := tr.Seal(id, p); err != nil {
					t.Fatal(err)
				}
			}

			rng := rand.New(rand.NewSource(seed))
			// Fleet bounds for plausible random query windows.
			bounds := geo.EmptyRect()
			tMin, tMax := math.Inf(1), math.Inf(-1)
			for _, p := range orig {
				for _, s := range p {
					bounds = bounds.Extend(s.Pos())
					tMin = math.Min(tMin, s.T)
					tMax = math.Max(tMax, s.T)
				}
			}

			for q := 0; q < 40; q++ {
				rect := randRect(rng, bounds)
				t0 := tMin + rng.Float64()*(tMax-tMin)
				t1 := t0 + rng.Float64()*(tMax-t0)
				checkRange(t, tr, orig, rect, t0, t1, eps)
				checkPoints(t, tr, orig, rect, t0, t1, eps)
				checkNearest(t, tr, orig, t0+rng.Float64()*(t1-t0), eps)
			}
		})
	}
}

func randRect(rng *rand.Rand, bounds geo.Rect) geo.Rect {
	w, h := bounds.Width(), bounds.Height()
	cx := bounds.Min.X + rng.Float64()*w
	cy := bounds.Min.Y + rng.Float64()*h
	rw := (0.02 + rng.Float64()*0.3) * w
	rh := (0.02 + rng.Float64()*0.3) * h
	return geo.Rect{Min: geo.Pt(cx-rw/2, cy-rh/2), Max: geo.Pt(cx+rw/2, cy+rh/2)}
}

// pointInWindow reports whether any original point of p lies in rect during
// [t0, t1] — the strictest reference: objects matching it MUST be returned.
func pointInWindow(p trajectory.Trajectory, rect geo.Rect, t0, t1 float64) bool {
	for _, s := range p {
		if s.T >= t0 && s.T <= t1 && rect.Contains(s.Pos()) {
			return true
		}
	}
	return false
}

// segNearWindow reports whether any original segment's bounding box
// overlapping [t0, t1] intersects rect expanded by slack — the loosest
// reference: objects NOT matching it must not be returned (conservative
// bbox-granularity false positives within slack are allowed).
func segNearWindow(p trajectory.Trajectory, rect geo.Rect, t0, t1, slack float64) bool {
	r := rect.Expand(slack)
	if len(p) == 1 {
		return r.Contains(p[0].Pos()) && p[0].T >= t0 && p[0].T <= t1
	}
	for i := 0; i+1 < len(p); i++ {
		if p[i].T <= t1 && p[i+1].T >= t0 &&
			geo.Seg(p[i].Pos(), p[i+1].Pos()).Bounds().Intersects(r) {
			return true
		}
	}
	return false
}

func checkRange(t *testing.T, tr *Tier, orig map[string]trajectory.Trajectory, rect geo.Rect, t0, t1, eps float64) {
	t.Helper()
	got := map[string]bool{}
	for _, id := range tr.QueryIDs(rect, t0, t1) {
		got[id] = true
	}
	for id, p := range orig {
		if pointInWindow(p, rect, t0, t1) && !got[id] {
			t.Fatalf("range %v [%v,%v]: object %s in window but not returned (false negative)", rect, t0, t1, id)
		}
		if got[id] && !segNearWindow(p, rect, t0, t1, 2*eps) {
			t.Fatalf("range %v [%v,%v]: object %s returned but nowhere near the window", rect, t0, t1, id)
		}
	}
}

func checkPoints(t *testing.T, tr *Tier, orig map[string]trajectory.Trajectory, rect geo.Rect, t0, t1, eps float64) {
	t.Helper()
	hits := tr.RangePoints(rect, t0, t1)
	byID := map[string][]trajectory.Sample{}
	for _, h := range hits {
		byID[h.ID] = append(byID[h.ID], h.S)
	}
	for id, p := range orig {
		// Completeness: every original point strictly inside the window has
		// a reported reconstruction within eps (timestamps within 1 ms).
		for _, s := range p {
			if s.T < t0 || s.T > t1 || !rect.Contains(s.Pos()) {
				continue
			}
			found := false
			for _, h := range byID[id] {
				if math.Abs(h.T-s.T) < 1e-3 && h.Pos().Dist(s.Pos()) <= eps {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("points %v [%v,%v]: original point %v of %s missing from sealed answer", rect, t0, t1, s, id)
			}
		}
		// Soundness: every reported point is within eps of the original
		// trajectory's interpolated position at that instant.
		for _, h := range byID[id] {
			pos, ok := p.LocAt(h.T)
			if !ok || pos.Dist(h.Pos()) > eps+1e-6 {
				t.Fatalf("points: reported %v for %s is %v from the true position %v", h, id, pos.Dist(h.Pos()), pos)
			}
		}
	}
}

func checkNearest(t *testing.T, tr *Tier, orig map[string]trajectory.Trajectory, at, eps float64) {
	t.Helper()
	tr.PositionsAt(at, nil, func(id string, pos geo.Point) {
		truth, ok := orig[id].LocAt(at)
		if !ok {
			t.Fatalf("nearest at %v: %s reported but original has no position", at, id)
		}
		if d := pos.Dist(truth); d > eps+1e-6 {
			t.Fatalf("nearest at %v: %s position off by %v > eps %v", at, id, d, eps)
		}
	})
	// Symmetric completeness: every object live at `at` is visited.
	visited := map[string]bool{}
	tr.PositionsAt(at, nil, func(id string, _ geo.Point) { visited[id] = true })
	for id, p := range orig {
		if _, ok := p.LocAt(at); ok && !visited[id] {
			t.Fatalf("nearest at %v: live object %s not visited", at, id)
		}
	}
}
