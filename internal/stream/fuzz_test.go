package stream

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/geo"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// fuzzTrack derives a deterministic pseudo-random trajectory from a seed
// using a simple LCG, mirroring internal/compress's fuzz target.
func fuzzTrack(seed int64, n int) trajectory.Trajectory {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	p := make(trajectory.Trajectory, n)
	t, x, y := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		p[i] = trajectory.S(t, x, y)
		t += 0.1 + next()*20
		x += (next() - 0.5) * 500
		y += (next() - 0.5) * 500
	}
	return p
}

// FuzzOPWSPStreamMatchesBatch drives the online OPW-SP engine over
// fuzz-shaped trajectories and checks it against the batch algorithm:
//
//   - unbounded window: the emitted stream must equal the batch output
//     bit-for-bit (the package's core contract);
//   - bounded window: forced cuts may retain extra points, but the output
//     must stay a valid vertex subsequence with both endpoints, and no two
//     consecutive retained points may span more than maxWindow input
//     samples (the memory bound the cap exists to enforce).
func FuzzOPWSPStreamMatchesBatch(f *testing.F) {
	f.Add(int64(1), uint8(40), float64(50), float64(5), uint8(0))
	f.Add(int64(7), uint8(3), float64(0), float64(1), uint8(3))
	f.Add(int64(11), uint8(200), float64(30), float64(15), uint8(4))
	f.Add(int64(42), uint8(120), float64(1e6), float64(0.5), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, dist, speed float64, win uint8) {
		if n < 3 || !(dist >= 0) || math.IsInf(dist, 0) || !(speed > 0) || math.IsInf(speed, 0) {
			return
		}
		p := fuzzTrack(seed, int(n))

		// Unbounded: online == batch, exactly.
		got, err := Collect(NewOPWSP(dist, speed, 0), p)
		if err != nil {
			t.Fatal(err)
		}
		want := compress.OPWSP{DistThreshold: dist, SpeedThreshold: speed}.Compress(p)
		if !sameTrajectory(got, want) {
			t.Fatalf("unbounded online OPW-SP diverges from batch: %d vs %d points", got.Len(), want.Len())
		}

		// Bounded: clamp the fuzzed cap into the legal range [3, 64].
		maxWindow := 3 + int(win)%62
		bounded, err := Collect(NewOPWSP(dist, speed, maxWindow), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := bounded.Validate(); err != nil {
			t.Fatalf("bounded output invalid: %v", err)
		}
		if !bounded.IsVertexSubsetOf(p) {
			t.Fatal("bounded output is not a vertex subsequence of the input")
		}
		if bounded[0] != p[0] || bounded[bounded.Len()-1] != p[p.Len()-1] {
			t.Fatal("bounded output dropped an endpoint")
		}
		// Forced cuts must actually bound the buffered window: consecutive
		// retained points can be at most maxWindow input samples apart.
		idx := 0
		prev := -1
		for _, s := range bounded {
			for p[idx] != s {
				idx++
			}
			if prev >= 0 && idx-prev > maxWindow {
				t.Fatalf("retained points %d and %d are %d input samples apart, window cap %d", prev, idx, idx-prev, maxWindow)
			}
			prev = idx
		}
	})
}

// FuzzOPERBStreamMatchesBatch mirrors the OPW-SP target for the one-pass
// OPERB engine: the emitted stream must equal the batch output bit-for-bit
// (they share one engine, so this pins the wrapper), stay a vertex
// subsequence with both endpoints, and honour the bounded-error invariant —
// every discarded point within ε (perpendicular distance, plus float slack)
// of the output segment covering it.
func FuzzOPERBStreamMatchesBatch(f *testing.F) {
	f.Add(int64(1), uint8(40), float64(50))
	f.Add(int64(7), uint8(3), float64(0))
	f.Add(int64(11), uint8(200), float64(30))
	f.Add(int64(42), uint8(120), float64(1e6))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, eps float64) {
		if n < 3 || !(eps >= 0) || math.IsInf(eps, 0) {
			return
		}
		p := fuzzTrack(seed, int(n))
		got, err := Collect(NewOPERB(eps), p)
		if err != nil {
			t.Fatal(err)
		}
		want := compress.OPERB{Threshold: eps}.Compress(p)
		if !sameTrajectory(got, want) {
			t.Fatalf("online OPERB diverges from batch: %d vs %d points", got.Len(), want.Len())
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		if !got.IsVertexSubsetOf(p) {
			t.Fatal("output is not a vertex subsequence of the input")
		}
		if got[0] != p[0] || got[got.Len()-1] != p[p.Len()-1] {
			t.Fatal("output dropped an endpoint")
		}
		tol := eps*(1+1e-9) + 1e-3
		j := 0
		for _, s := range p {
			for j+1 < got.Len()-1 && got[j+1].T < s.T {
				j++
			}
			seg := geo.Seg(got[j].Pos(), got[j+1].Pos())
			if d := seg.Dist(s.Pos()); d > tol {
				t.Fatalf("sample t=%v is %v from its covering segment, bound %v", s.T, d, tol)
			}
		}
	})
}

// FuzzCISEDStreamMatchesBatch is the same target for both CISED variants,
// with the bounded-error invariant measured in the synchronous Euclidean
// distance. The weak variant is additionally pinned to never invent
// timestamps.
func FuzzCISEDStreamMatchesBatch(f *testing.F) {
	f.Add(int64(1), uint8(40), float64(50), false)
	f.Add(int64(7), uint8(3), float64(0), true)
	f.Add(int64(11), uint8(200), float64(30), true)
	f.Add(int64(42), uint8(120), float64(1e6), false)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, eps float64, weak bool) {
		if n < 3 || !(eps >= 0) || math.IsInf(eps, 0) {
			return
		}
		p := fuzzTrack(seed, int(n))
		fresh := func() Compressor {
			if weak {
				return NewCISEDW(eps)
			}
			return NewCISEDS(eps)
		}
		got, err := Collect(fresh(), p)
		if err != nil {
			t.Fatal(err)
		}
		var batch compress.Algorithm
		if weak {
			batch = compress.CISEDW{Threshold: eps}
		} else {
			batch = compress.CISEDS{Threshold: eps}
		}
		want := batch.Compress(p)
		if !sameTrajectory(got, want) {
			t.Fatalf("online %s diverges from batch: %d vs %d points", batch.Name(), got.Len(), want.Len())
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		if weak {
			times := make(map[float64]bool, p.Len())
			for _, s := range p {
				times[s.T] = true
			}
			for _, s := range got {
				if !times[s.T] {
					t.Fatalf("CISED-W invented timestamp %v", s.T)
				}
			}
		} else if !got.IsVertexSubsetOf(p) {
			t.Fatal("CISED-S output is not a vertex subsequence of the input")
		}
		tol := eps*(1+1e-9) + 1e-3
		j := 0
		for _, s := range p {
			for j+1 < got.Len()-1 && got[j+1].T < s.T {
				j++
			}
			if d := sed.Distance(s, got[j], got[j+1]); d > tol {
				t.Fatalf("sample t=%v has SED %v to its covering segment, bound %v", s.T, d, tol)
			}
		}
	})
}
