package stream

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/trajectory"
)

// fuzzTrack derives a deterministic pseudo-random trajectory from a seed
// using a simple LCG, mirroring internal/compress's fuzz target.
func fuzzTrack(seed int64, n int) trajectory.Trajectory {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	p := make(trajectory.Trajectory, n)
	t, x, y := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		p[i] = trajectory.S(t, x, y)
		t += 0.1 + next()*20
		x += (next() - 0.5) * 500
		y += (next() - 0.5) * 500
	}
	return p
}

// FuzzOPWSPStreamMatchesBatch drives the online OPW-SP engine over
// fuzz-shaped trajectories and checks it against the batch algorithm:
//
//   - unbounded window: the emitted stream must equal the batch output
//     bit-for-bit (the package's core contract);
//   - bounded window: forced cuts may retain extra points, but the output
//     must stay a valid vertex subsequence with both endpoints, and no two
//     consecutive retained points may span more than maxWindow input
//     samples (the memory bound the cap exists to enforce).
func FuzzOPWSPStreamMatchesBatch(f *testing.F) {
	f.Add(int64(1), uint8(40), float64(50), float64(5), uint8(0))
	f.Add(int64(7), uint8(3), float64(0), float64(1), uint8(3))
	f.Add(int64(11), uint8(200), float64(30), float64(15), uint8(4))
	f.Add(int64(42), uint8(120), float64(1e6), float64(0.5), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, dist, speed float64, win uint8) {
		if n < 3 || !(dist >= 0) || math.IsInf(dist, 0) || !(speed > 0) || math.IsInf(speed, 0) {
			return
		}
		p := fuzzTrack(seed, int(n))

		// Unbounded: online == batch, exactly.
		got, err := Collect(NewOPWSP(dist, speed, 0), p)
		if err != nil {
			t.Fatal(err)
		}
		want := compress.OPWSP{DistThreshold: dist, SpeedThreshold: speed}.Compress(p)
		if !sameTrajectory(got, want) {
			t.Fatalf("unbounded online OPW-SP diverges from batch: %d vs %d points", got.Len(), want.Len())
		}

		// Bounded: clamp the fuzzed cap into the legal range [3, 64].
		maxWindow := 3 + int(win)%62
		bounded, err := Collect(NewOPWSP(dist, speed, maxWindow), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := bounded.Validate(); err != nil {
			t.Fatalf("bounded output invalid: %v", err)
		}
		if !bounded.IsVertexSubsetOf(p) {
			t.Fatal("bounded output is not a vertex subsequence of the input")
		}
		if bounded[0] != p[0] || bounded[bounded.Len()-1] != p[p.Len()-1] {
			t.Fatal("bounded output dropped an endpoint")
		}
		// Forced cuts must actually bound the buffered window: consecutive
		// retained points can be at most maxWindow input samples apart.
		idx := 0
		prev := -1
		for _, s := range bounded {
			for p[idx] != s {
				idx++
			}
			if prev >= 0 && idx-prev > maxWindow {
				t.Fatalf("retained points %d and %d are %d input samples apart, window cap %d", prev, idx, idx-prev, maxWindow)
			}
			prev = idx
		}
	})
}
