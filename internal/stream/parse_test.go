package stream

import (
	"testing"

	"repro/internal/trajectory"
)

func TestParseFactoryValid(t *testing.T) {
	cases := []string{"nopw:30", "opwtr:30", "opwtr:30:16", "opwsp:30:5", "opwsp:30:5:16", "dr:40"}
	p := trajectory.Trajectory{
		trajectory.S(0, 0, 0), trajectory.S(10, 100, 0), trajectory.S(20, 150, 80),
	}
	for _, spec := range cases {
		f, err := ParseFactory(spec)
		if err != nil {
			t.Errorf("ParseFactory(%q): %v", spec, err)
			continue
		}
		if f == nil {
			t.Errorf("ParseFactory(%q) returned nil factory", spec)
			continue
		}
		out, err := Collect(f(), p)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
		}
		if err := out.Validate(); err != nil {
			t.Errorf("%q output invalid: %v", spec, err)
		}
	}
}

func TestParseFactoryNone(t *testing.T) {
	f, err := ParseFactory("none")
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Error("none returned a non-nil factory")
	}
}

func TestParseFactoryInvalid(t *testing.T) {
	cases := []string{
		"", "what:5",
		"nopw",        // missing threshold
		"nopw:x",      // non-numeric
		"nopw:-1",     // negative
		"nopw:30:2",   // window < 3
		"nopw:30:3.5", // non-integer window
		"opwsp:30",    // missing speed
		"opwsp:30:0",  // zero speed
		"dr:30:5",     // too many args
		"none:1",      // none takes no args
	}
	for _, spec := range cases {
		if _, err := ParseFactory(spec); err == nil {
			t.Errorf("ParseFactory(%q) accepted", spec)
		}
	}
}

func TestParseFactoryFreshInstances(t *testing.T) {
	f, err := ParseFactory("opwtr:30")
	if err != nil {
		t.Fatal(err)
	}
	a, b := f(), f()
	if a == b {
		t.Error("factory returned the same compressor twice")
	}
	// Feeding a must not affect b.
	if _, err := a.Push(trajectory.S(100, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Push(trajectory.S(0, 0, 0)); err != nil {
		t.Errorf("independent compressor rejected earlier timestamp: %v", err)
	}
}
