package stream

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// Metamorphic cross-algorithm suite for the one-pass family (OPERB,
// CISED-S, CISED-W), run over seeded gpsgen fleets:
//
//	(a) the online stream output equals the batch output on identical
//	    input — including at epoch-scale timestamps (t0 ≈ 1.7e9), where
//	    naive accumulation schemes lose precision;
//	(b) the ε error bound is never exceeded, under each algorithm's own
//	    metric (perpendicular distance for OPERB, SED for CISED);
//	(c) the compression rate is monotone: raising ε never retains more
//	    points.

// onePassCase pairs the batch algorithm with its stream constructor.
type onePassCase struct {
	name   string
	batch  func(eps float64) compress.Algorithm
	stream func(eps float64) Compressor
	sedErr bool // error metric: SED (CISED) vs perpendicular (OPERB)
}

func onePassCases() []onePassCase {
	return []onePassCase{
		{"OPERB", func(e float64) compress.Algorithm { return compress.OPERB{Threshold: e} }, NewOPERB, false},
		{"CISED-S", func(e float64) compress.Algorithm { return compress.CISEDS{Threshold: e} }, NewCISEDS, true},
		{"CISED-W", func(e float64) compress.Algorithm { return compress.CISEDW{Threshold: e} }, NewCISEDW, true},
	}
}

// onePassTol mirrors the compress package's test slack: the bound is
// re-measured in coordinate space while the engines decide in derived
// spaces, which costs a few rounding steps.
func onePassTol(eps float64) float64 { return eps*(1+1e-9) + 1e-3 }

// fleetTracks builds the seeded gpsgen workload shared by the suite, once
// at native timestamps and once shifted to an epoch-scale origin.
func fleetTracks() []trajectory.Trajectory {
	g := gpsgen.New(29, gpsgen.Config{})
	tracks := g.Fleet(4, 3000, 1500)
	for _, p := range g.Fleet(3, 8000, 900) {
		tracks = append(tracks, p.Shift(1.7e9, 0, 0))
	}
	return tracks
}

// checkBound asserts every input sample is within tol of the output
// segment covering its timestamp, under the case's error metric.
func checkBound(t *testing.T, c onePassCase, p, a trajectory.Trajectory, tol float64) {
	t.Helper()
	j := 0
	for _, s := range p {
		for j+1 < a.Len()-1 && a[j+1].T < s.T {
			j++
		}
		var d float64
		if c.sedErr {
			d = sed.Distance(s, a[j], a[j+1])
		} else {
			d = geo.Seg(a[j].Pos(), a[j+1].Pos()).Dist(s.Pos())
		}
		if d > tol {
			t.Fatalf("%s: sample t=%v is %v from the simplification, bound %v", c.name, s.T, d, tol)
		}
	}
}

func TestOnePassStreamMatchesBatch(t *testing.T) {
	for _, c := range onePassCases() {
		for ti, p := range fleetTracks() {
			for _, eps := range []float64{5, 30, 120} {
				got, err := Collect(c.stream(eps), p)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				want := c.batch(eps).Compress(p)
				if !sameTrajectory(got, want) {
					t.Fatalf("%s: track %d ε=%v: stream %d points, batch %d points",
						c.name, ti, eps, got.Len(), want.Len())
				}
			}
		}
	}
}

func TestOnePassErrorBoundOnFleets(t *testing.T) {
	for _, c := range onePassCases() {
		for ti, p := range fleetTracks() {
			for _, eps := range []float64{5, 30, 120} {
				got, err := Collect(c.stream(eps), p)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("%s: track %d: %v", c.name, ti, err)
				}
				checkBound(t, c, p, got, onePassTol(eps))
			}
		}
	}
}

func TestOnePassCompressionMonotoneInEps(t *testing.T) {
	ladder := []float64{1, 2, 5, 10, 20, 50, 100, 200, 500}
	for _, c := range onePassCases() {
		for ti, p := range fleetTracks() {
			prev := p.Len() + 1
			for _, eps := range ladder {
				got, err := Collect(c.stream(eps), p)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				if got.Len() > prev {
					t.Fatalf("%s: track %d: ε=%v retained %d points, more than the tighter ε's %d",
						c.name, ti, eps, got.Len(), prev)
				}
				prev = got.Len()
			}
		}
	}
}

// The one-pass compressors reject out-of-order input and recover cleanly
// after Flush, like every other Compressor in the package.
func TestOnePassStreamContract(t *testing.T) {
	for _, c := range onePassCases() {
		comp := c.stream(30)
		if _, err := comp.Push(trajectory.S(10, 0, 0)); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if _, err := comp.Push(trajectory.S(10, 1, 1)); err == nil {
			t.Fatalf("%s: accepted a non-increasing timestamp", c.name)
		}
		comp.Flush()
		// Reusable after Flush, per the Compressor contract.
		p := fuzzTrack(5, 50)
		got, err := Collect(comp, p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want, err := Collect(c.stream(30), p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !sameTrajectory(got, want) {
			t.Fatalf("%s: reused compressor diverges from a fresh one", c.name)
		}
		// BufferLen stays ≤ 1: the one-pass O(1) memory guarantee.
		bl, ok := comp.(interface{ BufferLen() int })
		if !ok {
			t.Fatalf("%s: no BufferLen", c.name)
		}
		for i, s := range p {
			if _, err := comp.Push(s); err != nil {
				t.Fatal(err)
			}
			if n := bl.BufferLen(); n > 1 {
				t.Fatalf("%s: BufferLen %d after %d pushes", c.name, n, i+1)
			}
		}
		comp.Flush()
	}
}

// ParseFactory must expose the one-pass algorithms to the server flag and
// the wire protocol, and reject malformed specs.
func TestOnePassParseFactory(t *testing.T) {
	p := fuzzTrack(3, 80)
	for spec, fresh := range map[string]func() Compressor{
		"operb:40":  func() Compressor { return NewOPERB(40) },
		"ciseds:40": func() Compressor { return NewCISEDS(40) },
		"cisedw:40": func() Compressor { return NewCISEDW(40) },
	} {
		factory, err := ParseFactory(spec)
		if err != nil {
			t.Fatalf("ParseFactory(%q): %v", spec, err)
		}
		got, err := Collect(factory(), p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Collect(fresh(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !sameTrajectory(got, want) {
			t.Fatalf("spec %q built a different compressor", spec)
		}
	}
	for _, bad := range []string{"operb", "operb:-1", "operb:30:5", "ciseds:30:4", "cisedw:x"} {
		if _, err := ParseFactory(bad); err == nil {
			t.Fatalf("ParseFactory(%q) unexpectedly succeeded", bad)
		}
	}
}

// A quick sanity anchor for the head-to-head story: at a city-scale ε the
// one-pass algorithms must actually compress a fleet (not degenerate to
// retain-everything), or the CPU benchmark comparison would be vacuous.
func TestOnePassCompresses(t *testing.T) {
	g := gpsgen.New(7, gpsgen.Config{})
	p := g.Trip(gpsgen.Urban, 2400)
	for _, c := range onePassCases() {
		got, err := Collect(c.stream(30), p)
		if err != nil {
			t.Fatal(err)
		}
		if rate := compress.Rate(p.Len(), got.Len()); rate < 30 {
			t.Fatalf("%s removed only %.1f%% of an urban trip at ε=30m", c.name, rate)
		}
	}
}
