package stream

import (
	"context"

	"repro/internal/trajectory"
)

// Pipeline connects a compressor between two channels: samples received on
// in are pushed through c and retained samples are sent on out. The pipeline
// stops when in is closed (after flushing) or when ctx is cancelled; out is
// closed before returning. A non-nil error is returned if a sample arrives
// out of order or the context is cancelled.
func Pipeline(ctx context.Context, c Compressor, in <-chan trajectory.Sample, out chan<- trajectory.Sample) error {
	defer close(out)
	send := func(samples []trajectory.Sample) error {
		for _, s := range samples {
			select {
			case out <- s:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	for {
		select {
		case s, ok := <-in:
			if !ok {
				return send(c.Flush())
			}
			emitted, err := c.Push(s)
			if err != nil {
				return err
			}
			if err := send(emitted); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
