// Package stream provides online (push-based) counterparts of the
// opening-window compression algorithms, for compressing position streams in
// real time with bounded memory — the paper's motivation for studying
// opening-window algorithms at all ("they are online algorithms", §2.2).
//
// An online compressor receives samples one at a time and emits retained
// samples as soon as their fate is decided. For the opening-window
// algorithms the emitted stream is identical to the batch result of
// internal/compress on the same input (verified by tests), except that an
// optional window cap can force earlier cuts to bound memory.
package stream

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// Compressor consumes a stream of samples and emits the retained
// subsequence incrementally.
type Compressor interface {
	// Push feeds one sample and returns any samples whose retention became
	// definite. Samples must arrive with strictly increasing timestamps.
	// The returned slice is only valid until the next call.
	Push(s trajectory.Sample) ([]trajectory.Sample, error)
	// Flush terminates the stream, returning the remaining retained samples
	// (at least the final input sample, if any input was seen after the
	// last emission). The compressor is reusable for a new stream after
	// Flush.
	Flush() []trajectory.Sample
}

// ErrOutOfOrder is returned by Push for non-increasing timestamps.
var ErrOutOfOrder = errors.New("stream: sample timestamps must strictly increase")

// violation reports whether window[i] violates the halting condition for the
// candidate segment window[0] – window[len-1].
type violation func(window []trajectory.Sample, i int) bool

// opw is the shared online opening-window engine. The buffered window holds
// the current anchor at index 0 and the float at the end; fe is the largest
// float index already validated against all its intermediates, so each Push
// costs one O(window) scan and the total work matches the batch algorithm.
type opw struct {
	window    []trajectory.Sample
	fe        int // floats ≤ fe are validated; new scans start at fe+1
	violates  violation
	maxWindow int // 0 = unbounded
	emitted   bool
	out       []trajectory.Sample
}

func (o *opw) Push(s trajectory.Sample) ([]trajectory.Sample, error) {
	if n := len(o.window); n > 0 && s.T <= o.window[n-1].T {
		return nil, fmt.Errorf("%w: t=%v after t=%v", ErrOutOfOrder, s.T, o.window[n-1].T)
	}
	o.out = o.out[:0]
	if len(o.window) == 0 {
		// The very first sample of a stream is always retained.
		o.window = append(o.window, s)
		o.fe = 1
		o.out = append(o.out, s)
		o.emitted = true
		return o.out, nil
	}
	o.window = append(o.window, s)
	o.settle()
	return o.out, nil
}

// settle advances the float over any unvalidated window suffix, emitting cut
// points. It mirrors the batch loop of internal/compress exactly: the float
// grows from anchor+2; on the first violating intermediate point the window
// is cut there and the scan restarts inside the shrunk window.
func (o *opw) settle() {
	e := o.fe + 1
	for e < len(o.window) {
		cut := -1
		for i := 1; i < e; i++ {
			if o.violates(o.window[:e+1], i) {
				cut = i
				break
			}
		}
		if cut < 0 {
			o.fe = e
			e++
			continue
		}
		o.emit(cut)
		e = 2
	}
	if o.maxWindow > 0 && len(o.window) > o.maxWindow {
		// Forced cut to bound memory: retain the sample before the float,
		// the most recent point whose segment has been validated.
		o.emit(len(o.window) - 2)
	}
}

// emit retains window[cut] and re-anchors the window there.
func (o *opw) emit(cut int) {
	o.out = append(o.out, o.window[cut])
	o.window = append(o.window[:0], o.window[cut:]...)
	o.fe = 1
}

func (o *opw) Flush() []trajectory.Sample {
	var out []trajectory.Sample
	if len(o.window) > 1 {
		out = append(out, o.window[len(o.window)-1])
	} else if len(o.window) == 1 && !o.emitted {
		out = append(out, o.window[0])
	}
	o.window = o.window[:0]
	o.fe = 0
	o.emitted = false
	return out
}

// NewOPWTR returns an online OPW-TR compressor (synchronized-distance
// halting condition). maxWindow caps the buffered window size; 0 means
// unbounded, matching the batch algorithm exactly.
func NewOPWTR(threshold float64, maxWindow int) Compressor {
	if threshold < 0 {
		panic(fmt.Sprintf("stream: negative threshold %v", threshold))
	}
	validateWindow(maxWindow)
	return &opw{
		maxWindow: maxWindow,
		violates: func(w []trajectory.Sample, i int) bool {
			return sed.Distance(w[i], w[0], w[len(w)-1]) > threshold
		},
	}
}

// NewOPWSP returns an online OPW-SP compressor (the paper's SPT pseudocode):
// synchronized distance plus the speed-difference criterion. maxWindow caps
// the buffered window size; 0 means unbounded.
func NewOPWSP(distThreshold, speedThreshold float64, maxWindow int) Compressor {
	if distThreshold < 0 || speedThreshold <= 0 {
		panic(fmt.Sprintf("stream: invalid thresholds (%v, %v)", distThreshold, speedThreshold))
	}
	validateWindow(maxWindow)
	return &opw{
		maxWindow: maxWindow,
		violates: func(w []trajectory.Sample, i int) bool {
			if sed.Distance(w[i], w[0], w[len(w)-1]) > distThreshold {
				return true
			}
			vPrev := w[i].Pos().Dist(w[i-1].Pos()) / (w[i].T - w[i-1].T)
			vNext := w[i+1].Pos().Dist(w[i].Pos()) / (w[i+1].T - w[i].T)
			dv := vNext - vPrev
			if dv < 0 {
				dv = -dv
			}
			return dv > speedThreshold
		},
	}
}

// NewNOPW returns an online NOPW compressor (perpendicular distance).
// maxWindow caps the buffered window size; 0 means unbounded.
func NewNOPW(threshold float64, maxWindow int) Compressor {
	if threshold < 0 {
		panic(fmt.Sprintf("stream: negative threshold %v", threshold))
	}
	validateWindow(maxWindow)
	return &opw{
		maxWindow: maxWindow,
		violates: func(w []trajectory.Sample, i int) bool {
			seg := geo.Seg(w[0].Pos(), w[len(w)-1].Pos())
			return seg.PerpDist(w[i].Pos()) > threshold
		},
	}
}

// NewDeadReckoning returns an online dead-reckoning compressor: points whose
// position is predicted within threshold by extrapolating the velocity at
// the last retained point are dropped.
func NewDeadReckoning(threshold float64) Compressor {
	if threshold < 0 {
		panic(fmt.Sprintf("stream: negative threshold %v", threshold))
	}
	return &deadReckoner{threshold: threshold}
}

type deadReckoner struct {
	threshold float64
	anchor    trajectory.Sample
	prev      trajectory.Sample
	vx, vy    float64
	n         int // samples seen since last reset
	out       []trajectory.Sample
}

func (d *deadReckoner) Push(s trajectory.Sample) ([]trajectory.Sample, error) {
	if d.n > 0 && s.T <= d.prev.T {
		return nil, fmt.Errorf("%w: t=%v after t=%v", ErrOutOfOrder, s.T, d.prev.T)
	}
	d.out = d.out[:0]
	switch d.n {
	case 0:
		d.anchor = s
		d.out = append(d.out, s)
	case 1:
		dt := s.T - d.anchor.T
		d.vx = (s.X - d.anchor.X) / dt
		d.vy = (s.Y - d.anchor.Y) / dt
	default:
		dt := s.T - d.anchor.T
		predX := d.anchor.X + d.vx*dt
		predY := d.anchor.Y + d.vy*dt
		dx, dy := s.X-predX, s.Y-predY
		if dx*dx+dy*dy > d.threshold*d.threshold {
			d.out = append(d.out, s)
			d.anchor = s
			d.n = 0 // velocity re-derives from the next sample
		}
	}
	d.prev = s
	d.n++
	return d.out, nil
}

func (d *deadReckoner) Flush() []trajectory.Sample {
	var out []trajectory.Sample
	if d.n > 1 && d.prev != d.anchor {
		out = append(out, d.prev)
	}
	d.n = 0
	return out
}

// validateWindow rejects window caps too small for the opening-window
// engine to make progress (anchor + one intermediate + float).
func validateWindow(maxWindow int) {
	if maxWindow != 0 && maxWindow < 3 {
		panic(fmt.Sprintf("stream: maxWindow %d must be 0 (unbounded) or ≥ 3", maxWindow))
	}
}

// Collect runs a compressor over a whole trajectory and gathers the emitted
// stream, including the flush — a convenience for tests and batch callers.
func Collect(c Compressor, p trajectory.Trajectory) (trajectory.Trajectory, error) {
	var out trajectory.Trajectory
	for _, s := range p {
		emitted, err := c.Push(s)
		if err != nil {
			return nil, err
		}
		out = append(out, emitted...)
	}
	return append(out, c.Flush()...), nil
}
