package stream

import (
	"repro/internal/metrics"
	"repro/internal/trajectory"
)

// Instruments aggregates live compression observability across a set of
// online compressors (typically: every object of one store). All fields
// update atomically, so one Instruments value may be shared by wrappers
// running under different locks.
type Instruments struct {
	// in and out count raw samples pushed and retained samples emitted;
	// their ratio is the live compression rate.
	in, out *metrics.Counter
	// ratio is the derived live compression percentage (points discarded).
	ratio *metrics.Gauge
	// buffered is the total number of samples currently held inside
	// compressor windows — the memory the opening-window algorithms trade
	// for their online guarantee.
	buffered *metrics.Gauge
}

// NewInstruments registers the stream instruments in r (nil selects the
// default registry):
//
//	stream_points_in_total          raw samples pushed
//	stream_points_out_total         retained samples emitted
//	stream_compression_ratio_pct    live % of points discarded
//	stream_buffered_samples         samples buffered across compressor windows
func NewInstruments(r *metrics.Registry) *Instruments {
	if r == nil {
		r = metrics.Default()
	}
	return &Instruments{
		in:       r.Counter("stream_points_in_total"),
		out:      r.Counter("stream_points_out_total"),
		ratio:    r.Gauge("stream_compression_ratio_pct"),
		buffered: r.Gauge("stream_buffered_samples"),
	}
}

// bufferLener is implemented by compressors that expose their window
// occupancy (the opening-window engine and the dead reckoner do).
type bufferLener interface {
	BufferLen() int
}

// Instrument wraps a compressor so pushes and emissions update ins. A nil
// ins returns c unchanged. The wrapper is exactly as concurrency-safe as
// the wrapped compressor (not safe for concurrent use; callers serialize).
func Instrument(c Compressor, ins *Instruments) Compressor {
	if ins == nil {
		return c
	}
	return &instrumented{c: c, ins: ins}
}

type instrumented struct {
	c       Compressor
	ins     *Instruments
	lastBuf int
}

func (w *instrumented) Push(s trajectory.Sample) ([]trajectory.Sample, error) {
	emitted, err := w.c.Push(s)
	if err != nil {
		return emitted, err
	}
	w.ins.in.Inc()
	w.ins.out.Add(int64(len(emitted)))
	w.sync()
	return emitted, nil
}

func (w *instrumented) Flush() []trajectory.Sample {
	out := w.c.Flush()
	w.ins.out.Add(int64(len(out)))
	w.sync()
	return out
}

// sync publishes the wrapper's buffer-occupancy delta and refreshes the
// derived compression ratio.
func (w *instrumented) sync() {
	if bl, ok := w.c.(bufferLener); ok {
		if n := bl.BufferLen(); n != w.lastBuf {
			w.ins.buffered.Add(float64(n - w.lastBuf))
			w.lastBuf = n
		}
	}
	if in := w.ins.in.Value(); in > 0 {
		w.ins.ratio.Set(100 * (1 - float64(w.ins.out.Value())/float64(in)))
	}
}

// BufferLen reports the opening-window engine's current window occupancy.
func (o *opw) BufferLen() int { return len(o.window) }

// BufferLen reports how many samples the dead reckoner holds whose fate is
// undecided (at most the one trailing sample behind the anchor).
func (d *deadReckoner) BufferLen() int {
	if d.n > 1 {
		return 1
	}
	return 0
}
