package stream

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFactory builds a compressor factory from a compact textual spec, as
// used by the tracking server:
//
//	none                 no compression (returns a nil-factory)
//	nopw:D[:W]           online NOPW, perpendicular tolerance D metres
//	opwtr:D[:W]          online OPW-TR, synchronized tolerance D metres
//	opwsp:D:V[:W]        online OPW-SP, speed tolerance V m/s
//	dr:D                 online dead reckoning
//	operb:D              one-pass error bounded (O(1) memory, no window)
//	ciseds:D             one-pass strong SED simplification
//	cisedw:D             one-pass weak SED simplification (synthesizes
//	                     window-closing joints)
//
// W is the optional window cap (default unbounded). The one-pass
// algorithms buffer at most one sample by construction and take no window
// argument. The returned factory yields a fresh compressor per call; it is
// nil for "none".
func ParseFactory(spec string) (func() Compressor, error) {
	parts := strings.Split(spec, ":")
	name := strings.ToLower(strings.TrimSpace(parts[0]))
	args := make([]float64, 0, len(parts)-1)
	for i, a := range parts[1:] {
		v, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
		if err != nil {
			return nil, fmt.Errorf("stream: spec %q: argument %d: %w", spec, i+1, err)
		}
		args = append(args, v)
	}
	window := func(idx int) (int, error) {
		if len(args) <= idx {
			return 0, nil
		}
		w := args[idx]
		//lint:allow floatcmp integrality check and zero sentinel on a parsed window flag
		if w != float64(int(w)) || (w != 0 && w < 3) {
			return 0, fmt.Errorf("stream: spec %q: window must be 0 or an integer ≥ 3", spec)
		}
		return int(w), nil
	}
	argsBetween := func(lo, hi int) error {
		if len(args) < lo || len(args) > hi {
			return fmt.Errorf("stream: spec %q: %s takes %d to %d arguments, got %d", spec, name, lo, hi, len(args))
		}
		return nil
	}

	switch name {
	case "none":
		if err := argsBetween(0, 0); err != nil {
			return nil, err
		}
		return nil, nil
	case "nopw", "opwtr":
		if err := argsBetween(1, 2); err != nil {
			return nil, err
		}
		d := args[0]
		if d < 0 {
			return nil, fmt.Errorf("stream: spec %q: negative threshold", spec)
		}
		w, err := window(1)
		if err != nil {
			return nil, err
		}
		if name == "nopw" {
			return func() Compressor { return NewNOPW(d, w) }, nil
		}
		return func() Compressor { return NewOPWTR(d, w) }, nil
	case "opwsp":
		if err := argsBetween(2, 3); err != nil {
			return nil, err
		}
		d, v := args[0], args[1]
		if d < 0 || v <= 0 {
			return nil, fmt.Errorf("stream: spec %q: thresholds must be positive", spec)
		}
		w, err := window(2)
		if err != nil {
			return nil, err
		}
		return func() Compressor { return NewOPWSP(d, v, w) }, nil
	case "dr", "operb", "ciseds", "cisedw":
		if err := argsBetween(1, 1); err != nil {
			return nil, err
		}
		d := args[0]
		if d < 0 {
			return nil, fmt.Errorf("stream: spec %q: negative threshold", spec)
		}
		switch name {
		case "operb":
			return func() Compressor { return NewOPERB(d) }, nil
		case "ciseds":
			return func() Compressor { return NewCISEDS(d) }, nil
		case "cisedw":
			return func() Compressor { return NewCISEDW(d) }, nil
		default:
			return func() Compressor { return NewDeadReckoning(d) }, nil
		}
	default:
		return nil, fmt.Errorf("stream: unknown online algorithm %q (want none, nopw, opwtr, opwsp, dr, operb, ciseds or cisedw)", name)
	}
}
