package stream

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/trajectory"
)

// The one-pass compressors wrap the incremental engines of
// internal/compress (OPERB and CISED), which decide every point's fate the
// moment it arrives: unlike the opening-window engine there is no buffered
// window to re-scan, so the per-point cost is O(1) and BufferLen never
// exceeds one. The emitted stream equals the batch algorithm's output on
// the same input by construction — both run the identical engine.

// onePassEngine is the incremental surface shared by the compress-package
// engines.
type onePassEngine interface {
	Push(s trajectory.Sample) []trajectory.Sample
	Flush() []trajectory.Sample
	Pending() int
}

type onePass struct {
	engine onePassEngine
	seen   bool
	prevT  float64
}

// NewOPERB returns the online OPERB compressor (one-pass error bounded,
// perpendicular distance ≤ eps; arXiv:1702.05597). O(1) memory, no window
// cap needed.
func NewOPERB(eps float64) Compressor {
	return &onePass{engine: compress.NewOPERBEngine(eps)}
}

// NewCISEDS returns the online CISED-S compressor (one-pass strong SED
// simplification, SED ≤ eps; arXiv:1801.05360). O(1) memory, emits only
// input samples.
func NewCISEDS(eps float64) Compressor {
	return &onePass{engine: compress.NewCISEDEngine(eps, false)}
}

// NewCISEDW returns the online CISED-W compressor: like CISED-S but weak —
// windows close with synthesized joint points (at input timestamps), which
// buys a higher compression rate at the same ε.
func NewCISEDW(eps float64) Compressor {
	return &onePass{engine: compress.NewCISEDEngine(eps, true)}
}

func (o *onePass) Push(s trajectory.Sample) ([]trajectory.Sample, error) {
	if o.seen && s.T <= o.prevT {
		return nil, fmt.Errorf("%w: t=%v after t=%v", ErrOutOfOrder, s.T, o.prevT)
	}
	o.seen = true
	o.prevT = s.T
	return o.engine.Push(s), nil
}

func (o *onePass) Flush() []trajectory.Sample {
	o.seen = false
	return o.engine.Flush()
}

// BufferLen reports the samples awaiting a retention decision — at most 1,
// the one-pass memory guarantee (vs the opening-window engines' windows).
func (o *onePass) BufferLen() int { return o.engine.Pending() }
