package stream

import (
	"context"
	"errors"
	"testing"

	"repro/internal/compress"
	"repro/internal/gpsgen"
	"repro/internal/trajectory"
)

func testTrips() []trajectory.Trajectory {
	g := gpsgen.New(11, gpsgen.Config{})
	return []trajectory.Trajectory{
		g.Trip(gpsgen.Urban, 1200),
		g.Trip(gpsgen.Mixed, 1800),
		g.Trip(gpsgen.Rural, 900),
	}
}

func sameTrajectory(a, b trajectory.Trajectory) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The online OPW-TR stream must equal the batch algorithm's output exactly.
func TestOnlineOPWTRMatchesBatch(t *testing.T) {
	for _, p := range testTrips() {
		for _, eps := range []float64{20, 50, 100} {
			got, err := Collect(NewOPWTR(eps, 0), p)
			if err != nil {
				t.Fatal(err)
			}
			want := compress.OPWTR{Threshold: eps}.Compress(p)
			if !sameTrajectory(got, want) {
				t.Fatalf("OPW-TR eps=%v: online %d points, batch %d points", eps, got.Len(), want.Len())
			}
		}
	}
}

func TestOnlineOPWSPMatchesBatch(t *testing.T) {
	for _, p := range testTrips() {
		got, err := Collect(NewOPWSP(50, 5, 0), p)
		if err != nil {
			t.Fatal(err)
		}
		want := compress.OPWSP{DistThreshold: 50, SpeedThreshold: 5}.Compress(p)
		if !sameTrajectory(got, want) {
			t.Fatalf("OPW-SP: online %d points, batch %d points", got.Len(), want.Len())
		}
	}
}

func TestOnlineNOPWMatchesBatch(t *testing.T) {
	for _, p := range testTrips() {
		got, err := Collect(NewNOPW(50, 0), p)
		if err != nil {
			t.Fatal(err)
		}
		want := compress.NOPW{Threshold: 50}.Compress(p)
		if !sameTrajectory(got, want) {
			t.Fatalf("NOPW: online %d points, batch %d points", got.Len(), want.Len())
		}
	}
}

func TestOnlineDeadReckoningMatchesBatch(t *testing.T) {
	for _, p := range testTrips() {
		got, err := Collect(NewDeadReckoning(50), p)
		if err != nil {
			t.Fatal(err)
		}
		want := compress.DeadReckoning{Threshold: 50}.Compress(p)
		if !sameTrajectory(got, want) {
			t.Fatalf("DeadReckoning: online %d points, batch %d points", got.Len(), want.Len())
		}
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	c := NewOPWTR(10, 0)
	if _, err := c.Push(trajectory.S(5, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(trajectory.S(5, 1, 1)); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("duplicate timestamp: got %v", err)
	}
	if _, err := c.Push(trajectory.S(4, 1, 1)); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("decreasing timestamp: got %v", err)
	}
	d := NewDeadReckoning(10)
	if _, err := d.Push(trajectory.S(5, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(trajectory.S(5, 1, 1)); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("dead reckoning duplicate timestamp: got %v", err)
	}
}

// A bounded window must cut eventually but still produce a valid subsequence
// within the synchronized error guarantee.
func TestBoundedWindow(t *testing.T) {
	p := testTrips()[0]
	const cap = 8
	got, err := Collect(NewOPWTR(1e12, cap), p) // huge threshold: only the cap cuts
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("bounded-window output invalid: %v", err)
	}
	if !got.IsVertexSubsetOf(p) {
		t.Fatal("bounded-window output not a subsequence")
	}
	// With the cap, roughly one point per cap-1 inputs must be retained.
	if got.Len() < p.Len()/cap {
		t.Errorf("bounded window kept only %d of %d points", got.Len(), p.Len())
	}
	unbounded := compress.OPWTR{Threshold: 1e12}.Compress(p)
	if got.Len() <= unbounded.Len() {
		t.Errorf("cap had no effect: %d vs %d points", got.Len(), unbounded.Len())
	}
}

func TestCompressorReusableAfterFlush(t *testing.T) {
	c := NewOPWTR(50, 0)
	p := testTrips()[0]
	first, err := Collect(c, p)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Collect(c, p) // same compressor, fresh stream
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrajectory(first, second) {
		t.Error("compressor state leaked across Flush")
	}
}

func TestFlushSingleSample(t *testing.T) {
	c := NewOPWTR(50, 0)
	emitted, err := c.Push(trajectory.S(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 {
		t.Fatalf("first sample not emitted immediately: %v", emitted)
	}
	if out := c.Flush(); len(out) != 0 {
		t.Errorf("flush re-emitted the only sample: %v", out)
	}
}

func TestValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewOPWTR(-1, 0) },
		func() { NewOPWSP(10, 0, 0) },
		func() { NewNOPW(-1, 0) },
		func() { NewDeadReckoning(-1) },
		func() { NewOPWTR(10, 2) }, // window cap too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPipeline(t *testing.T) {
	p := testTrips()[0]
	in := make(chan trajectory.Sample)
	out := make(chan trajectory.Sample)
	errc := make(chan error, 1)
	go func() {
		errc <- Pipeline(context.Background(), NewOPWTR(50, 0), in, out)
	}()
	go func() {
		for _, s := range p {
			in <- s
		}
		close(in)
	}()
	var got trajectory.Trajectory
	for s := range out {
		got = append(got, s)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	want := compress.OPWTR{Threshold: 50}.Compress(p)
	if !sameTrajectory(got, want) {
		t.Errorf("pipeline output %d points, batch %d", got.Len(), want.Len())
	}
}

func TestPipelineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan trajectory.Sample)
	out := make(chan trajectory.Sample)
	errc := make(chan error, 1)
	go func() {
		errc <- Pipeline(ctx, NewOPWTR(50, 0), in, out)
	}()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation returned %v", err)
	}
	if _, ok := <-out; ok {
		t.Error("out channel not closed after cancellation")
	}
}

func TestPipelinePropagatesPushError(t *testing.T) {
	in := make(chan trajectory.Sample, 2)
	out := make(chan trajectory.Sample, 16)
	in <- trajectory.S(5, 0, 0)
	in <- trajectory.S(4, 0, 0) // out of order
	close(in)
	err := Pipeline(context.Background(), NewOPWTR(50, 0), in, out)
	if !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("got %v, want ErrOutOfOrder", err)
	}
}
