package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// inf is the +Inf overflow-bucket bound of histogram snapshots.
var inf = math.Inf(1)

// Label is one name/value dimension of a metric (e.g. cmd="APPEND").
// Cardinality discipline is the caller's: label values must come from a
// small fixed set, never from user input.
type Label struct {
	Key, Value string
}

// L is shorthand for Label{Key: k, Value: v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Kind discriminates the instrument behind a registry entry.
type Kind int

const (
	// KindCounter is a monotone counter.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value.
	KindGauge
	// KindHistogram is a bucketed distribution.
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered instrument.
type entry struct {
	name   string
	labels []Label // sorted by key
	kind   Kind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry is a named set of instruments. Lookups are get-or-create: asking
// twice for the same name and labels returns the same instrument, so
// subsystems can resolve their instruments independently and still share
// them. Registration takes a lock; the returned instruments update
// lock-free, so hot paths resolve once and hold the pointer.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	kinds   map[string]Kind // family name → kind, one kind per name
	started time.Time
}

// NewRegistry returns an empty registry. Its creation instant anchors
// Uptime.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		kinds:   make(map[string]Kind),
		started: time.Now(),
	}
}

// defaultRegistry is the process-wide registry used when a subsystem is not
// given an explicit one — the common single-server deployment.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Uptime reports how long ago the registry was created — the process
// uptime, for the default registry.
func (r *Registry) Uptime() time.Duration { return time.Since(r.started) }

// Counter returns the counter registered under name and labels, creating it
// on first use. It panics if the name is invalid or already registered as a
// different kind.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, KindCounter, nil, labels).c
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, KindGauge, nil, labels).g
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket upper bounds on first use (nil bounds
// select DefBuckets). Later lookups ignore bounds and return the first
// registration.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return r.lookup(name, KindHistogram, bounds, labels).h
}

func (r *Registry) lookup(name string, kind Kind, bounds []float64, labels []Label) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	ls := sortLabels(labels)
	key := entryKey(name, ls)

	r.mu.RLock()
	e := r.entries[key]
	r.mu.RUnlock()
	if e == nil {
		r.mu.Lock()
		e = r.entries[key]
		if e == nil {
			if have, ok := r.kinds[name]; ok && have != kind {
				r.mu.Unlock()
				panic(fmt.Sprintf("metrics: %q already registered as a %s, requested as %s", name, have, kind))
			}
			e = &entry{name: name, labels: ls, kind: kind}
			switch kind {
			case KindCounter:
				e.c = &Counter{}
			case KindGauge:
				e.g = &Gauge{}
			case KindHistogram:
				if bounds == nil {
					bounds = DefBuckets()
				}
				e.h = newHistogram(bounds)
			}
			r.kinds[name] = kind
			r.entries[key] = e
		}
		r.mu.Unlock()
	}
	if e.kind != kind {
		panic(fmt.Sprintf("metrics: %q already registered as a %s, requested as %s", name, e.kind, kind))
	}
	return e
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

func entryKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// BucketCount is one histogram bucket of a snapshot: the count of
// observations ≤ UpperBound and above the previous bound (non-cumulative).
type BucketCount struct {
	UpperBound float64
	Count      int64
}

// MetricSnapshot is the point-in-time state of one instrument.
type MetricSnapshot struct {
	Name   string
	Labels []Label
	Kind   Kind

	// Value is the counter count or gauge value.
	Value float64

	// Histogram state; Buckets is empty for counters and gauges.
	Count   int64
	Sum     float64
	Max     float64
	Buckets []BucketCount
}

// Quantile estimates a quantile from the snapshot's buckets (histograms
// only; NaN otherwise).
func (m MetricSnapshot) Quantile(q float64) float64 {
	bounds := make([]float64, 0, len(m.Buckets))
	counts := make([]int64, 0, len(m.Buckets)+1)
	for _, b := range m.Buckets {
		bounds = append(bounds, b.UpperBound)
		counts = append(counts, b.Count)
	}
	if len(bounds) > 0 {
		// The final snapshot bucket is the +Inf overflow: split it off the
		// bounds list so bucketQuantile sees finite bounds plus overflow.
		bounds = bounds[:len(bounds)-1]
	}
	return bucketQuantile(bounds, counts, m.Max, q)
}

// Snapshot captures every instrument, sorted by name then labels. Each
// instrument is read atomically; the set as a whole is not transactional
// (counters touched mid-snapshot may skew by an update — the usual
// monitoring contract).
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	// Sort by name first so exposition families stay contiguous, then by
	// labels for determinism.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.name != b.name {
			return a.name < b.name
		}
		return entryKey(a.name, a.labels) < entryKey(b.name, b.labels)
	})

	out := make([]MetricSnapshot, 0, len(entries))
	for _, e := range entries {
		m := MetricSnapshot{Name: e.name, Labels: e.labels, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			m.Value = float64(e.c.Value())
		case KindGauge:
			m.Value = e.g.Value()
		case KindHistogram:
			h := e.h
			m.Count = h.Count()
			m.Sum = h.Sum()
			m.Max = h.Max()
			m.Buckets = make([]BucketCount, len(h.counts))
			for i := range h.counts {
				bound := inf
				if i < len(h.bounds) {
					bound = h.bounds[i]
				}
				m.Buckets[i] = BucketCount{UpperBound: bound, Count: h.counts[i].Load()}
			}
		}
		out = append(out, m)
	}
	return out
}
