package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders snapshots in the Prometheus text exposition
// format (version 0.0.4): a # TYPE header per metric family, counters and
// gauges as single samples, histograms as cumulative _bucket series plus
// _sum and _count. Write errors surface through the writer (callers flush
// buffered writers and check there), matching the server's protocol writer
// convention.
func WritePrometheus(w io.Writer, snaps []MetricSnapshot) {
	lastName := ""
	for _, m := range snaps {
		if m.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind)
			lastName = m.Name
		}
		switch m.Kind {
		case KindHistogram:
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket%s %d\n",
					m.Name, labelString(m.Labels, formatBound(b.UpperBound)), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, labelString(m.Labels, ""), formatValue(m.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labelString(m.Labels, ""), m.Count)
		default:
			fmt.Fprintf(w, "%s%s %s\n", m.Name, labelString(m.Labels, ""), formatValue(m.Value))
		}
	}
}

// WriteText renders snapshots as an aligned human-readable table, with
// count/mean/p50/p99/max summaries for histograms — the STATS-style view
// for terminals.
func WriteText(w io.Writer, snaps []MetricSnapshot) {
	width := 0
	for _, m := range snaps {
		if n := len(m.Name) + len(labelString(m.Labels, "")); n > width {
			width = n
		}
	}
	for _, m := range snaps {
		id := m.Name + labelString(m.Labels, "")
		switch m.Kind {
		case KindHistogram:
			mean := 0.0
			if m.Count > 0 {
				mean = m.Sum / float64(m.Count)
			}
			fmt.Fprintf(w, "%-*s  count=%d mean=%s p50=%s p99=%s max=%s\n",
				width, id, m.Count,
				formatValue(mean), formatValue(m.Quantile(0.5)),
				formatValue(m.Quantile(0.99)), formatValue(m.Max))
		default:
			fmt.Fprintf(w, "%-*s  %s\n", width, id, formatValue(m.Value))
		}
	}
}

// labelString renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label. Returns "" for no labels.
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func formatValue(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry's Prometheus
// exposition — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r.Snapshot())
	})
}
