package metrics

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-7) // counters are monotone: negative adds are ignored
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Inc()
	g.Dec()
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Errorf("Value = %v, want 3", got)
	}
}

// A distribution spread uniformly inside one bucket is recovered exactly by
// linear interpolation: with k observations filling bucket (10, 20], the
// q-quantile is 10 + 10·q.
func TestHistogramQuantileExactWithinBucket(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	const k = 100
	for i := 0; i < k; i++ {
		h.Observe(10.05 + float64(i)*0.099) // all in (10, 20]
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		want := 10 + 10*q
		if got := h.Quantile(q); math.Abs(got-want) > 0.2 {
			t.Errorf("Quantile(%v) = %v, want ≈ %v", q, got, want)
		}
	}
}

// Exact rank arithmetic across several buckets: 5 observations ≤ 10, then
// 5 in (10, 20]. The median rank 5 lands exactly on the first bucket's
// upper edge; the 0.75-rank (7.5) is halfway through the second bucket.
func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	h := newHistogram([]float64{10, 20})
	for i := 0; i < 5; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("p50 = %v, want 10", got)
	}
	// rank 7.5 → 2.5 of 5 observations into (10, 15] (upper clamped by the
	// tracked max 15): 10 + 5·(2.5/5) = 12.5.
	if got := h.Quantile(0.75); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("p75 = %v, want 12.5", got)
	}
	if got := h.Quantile(1); math.Abs(got-15) > 1e-9 {
		t.Errorf("p100 = %v, want the max 15", got)
	}
}

func TestHistogramOverflowBucketReportsMax(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.5)
	h.Observe(7)
	h.Observe(9)
	if got := h.Quantile(0.99); math.Abs(got-9) > 1e-9 {
		t.Errorf("p99 = %v, want the tracked max 9", got)
	}
	if got := h.Max(); math.Abs(got-9) > 1e-9 {
		t.Errorf("Max = %v, want 9", got)
	}
}

func TestHistogramQuantileMonotoneAcrossBuckets(t *testing.T) {
	h := newHistogram(DefBuckets())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Observe(math.Exp(rng.NormFloat64()*2 - 6)) // lognormal latencies
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		cur := h.Quantile(q)
		if math.IsNaN(cur) || cur < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v: not monotone", q, cur, prev)
		}
		prev = cur
	}
	if max := h.Max(); prev > max {
		t.Errorf("Quantile(1) = %v exceeds Max %v", prev, max)
	}
}

func TestHistogramEmptyAndDegenerate(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 0 {
		t.Error("NaN observation was counted")
	}
	h.Observe(-5) // clamped to 0
	if got := h.Quantile(0.5); got < 0 || got > 1 {
		t.Errorf("clamped observation quantile = %v, want within first bucket", got)
	}
	if h.Sum() != 0 {
		t.Errorf("Sum = %v, want 0 after clamping", h.Sum())
	}
}

func TestHistogramSumCountObserveSince(t *testing.T) {
	h := newHistogram(DefBuckets())
	h.Observe(0.25)
	h.Observe(0.75)
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2", h.Count())
	}
	if math.Abs(h.Sum()-1.0) > 1e-12 {
		t.Errorf("Sum = %v, want 1", h.Sum())
	}
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 3 || h.Sum() < 1 {
		t.Errorf("ObserveSince not recorded: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", L("cmd", "GET"))
	b := r.Counter("requests_total", L("cmd", "GET"))
	if a != b {
		t.Error("same name+labels did not return the same counter")
	}
	c := r.Counter("requests_total", L("cmd", "PUT"))
	if a == c {
		t.Error("different labels returned the same counter")
	}
	if r.Gauge("occupancy") == nil || r.Histogram("latency_seconds", nil) == nil {
		t.Fatal("gauge/histogram lookup failed")
	}

	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("requests_total")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid name did not panic")
		}
	}()
	NewRegistry().Counter("bad-name")
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_level").Set(1.5)
	r.Histogram("c_seconds", []float64{1, 2}).Observe(0.5)
	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("Snapshot has %d entries, want 3", len(snaps))
	}
	if snaps[0].Name != "a_level" || snaps[1].Name != "b_total" || snaps[2].Name != "c_seconds" {
		t.Errorf("snapshot order: %s, %s, %s", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
	if snaps[0].Value != 1.5 || snaps[1].Value != 2 {
		t.Errorf("snapshot values: %v, %v", snaps[0].Value, snaps[1].Value)
	}
	h := snaps[2]
	if h.Count != 1 || len(h.Buckets) != 3 || !math.IsInf(h.Buckets[2].UpperBound, 1) {
		t.Errorf("histogram snapshot: count=%d buckets=%v", h.Count, h.Buckets)
	}
	if got := h.Quantile(0.5); math.IsNaN(got) || got > 1 {
		t.Errorf("snapshot Quantile = %v, want within first bucket", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("cmds_total", L("cmd", "APPEND")).Add(3)
	r.Counter("cmds_total", L("cmd", "QUERY")).Add(1)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	got := b.String()

	for _, want := range []string{
		"# TYPE cmds_total counter\n",
		`cmds_total{cmd="APPEND"} 3` + "\n",
		`cmds_total{cmd="QUERY"} 1` + "\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 5.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	if strings.Count(got, "# TYPE cmds_total") != 1 {
		t.Error("family TYPE header repeated")
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Gauge("occupancy").Set(7)
	r.Histogram("lat_seconds", []float64{1}).Observe(0.5)
	var b strings.Builder
	WriteText(&b, r.Snapshot())
	got := b.String()
	if !strings.Contains(got, "occupancy") || !strings.Contains(got, "count=1") ||
		!strings.Contains(got, "p99=") {
		t.Errorf("text table missing fields:\n%s", got)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}

func TestEscapeLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", L("k", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	if !strings.Contains(b.String(), `{k="a\"b\\c\nd"}`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

// The concurrency hammer: parallel writers on shared instruments plus
// concurrent snapshots, meaningful under -race (scripts/check.sh runs it).
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	g := r.Gauge("occupancy")
	h := r.Histogram("lat_seconds", nil)

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(rng.Float64())
				// Registration races with lookups of the same instruments.
				if r.Counter("ops_total") != c {
					t.Error("counter identity changed under concurrency")
					return
				}
			}
		}(int64(w))
	}
	// Concurrent readers while the writers run.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				_ = h.Quantile(0.99)
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	sum := int64(0)
	for _, b := range mustHistogramSnapshot(t, r, "lat_seconds").Buckets {
		sum += b.Count
	}
	if sum != workers*perWorker {
		t.Errorf("bucket counts sum to %d, want %d", sum, workers*perWorker)
	}
}

func mustHistogramSnapshot(t *testing.T, r *Registry, name string) MetricSnapshot {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("metric %s not in snapshot", name)
	return MetricSnapshot{}
}
