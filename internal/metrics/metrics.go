// Package metrics is a dependency-free instrumentation substrate for the
// moving-object service layers: atomic counters and gauges, fixed-bucket
// latency histograms with quantile estimation, and a named registry with
// label support that renders both a human-readable table and
// Prometheus-style exposition text.
//
// The paper's systems argument — compress on ingest so that storage,
// indexing and transmission all shrink — is only credible when the live
// trade-off is observable: points in versus points retained, append and
// query latency, fsync cost, backpressure drops. Every hot path
// (internal/server, internal/store, internal/wal, internal/stream)
// registers its instruments here; cmd/trajserver exposes the registry over
// the TCP protocol (METRICS) and optionally HTTP (/metrics), and
// cmd/trajload turns it into tracked benchmark artifacts.
//
// All instruments are safe for concurrent use and update via sync/atomic
// only — an Observe/Inc on a hot path is a handful of atomic operations,
// never a lock.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative n is ignored (counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value that may go up and down
// (occupancy, ratios, sizes).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d (negative d decreases it).
func (g *Gauge) Add(d float64) { addFloatBits(&g.bits, d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloatBits atomically adds d to a float64 stored as bits.
func addFloatBits(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// maxFloatBits atomically raises a float64-as-bits cell to v if v exceeds it.
func maxFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram accumulates non-negative observations (latencies in seconds,
// sizes) into fixed buckets, tracking count, sum and maximum. Quantiles are
// estimated by linear interpolation inside the bucket holding the requested
// rank, so accuracy is bounded by bucket width — the standard fixed-bucket
// trade: O(1) lock-free observes against a few per-bucket resolution.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

// DefBuckets is the default latency scale in seconds: 10 µs to 10 s in a
// 1-2.5-5 progression, fine enough to separate a loopback round-trip from
// an fsync from a stall.
func DefBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// newHistogram validates and copies the bucket bounds. Bounds must be
// finite, positive and strictly ascending.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) || b <= 0 {
			panic("metrics: histogram bounds must be finite and positive")
		}
		if i > 0 && b <= own[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: own, counts: make([]atomic.Int64, len(own)+1)}
}

// Observe records one value. Negative observations are clamped to zero
// (latencies can read negative across clock adjustments); NaN is dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sum, v)
	maxFloatBits(&h.max, v)
}

// ObserveSince records the elapsed wall time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max returns the largest observation, 0 before the first.
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution; NaN when nothing was observed. The estimate interpolates
// linearly inside the bucket containing rank q·count, and is clamped by the
// tracked maximum, which the overflow bucket also reports exactly.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bucketQuantile(h.bounds, counts, h.Max(), q)
}

// bucketQuantile is the shared quantile estimator over a bucket-count
// snapshot; Histogram.Quantile and MetricSnapshot.Quantile both use it.
func bucketQuantile(bounds []float64, counts []int64, max, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1 // below the first observation there is nothing to interpolate
	}
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(bounds) {
			return max // overflow bucket: the tracked maximum is exact
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		if max < upper {
			upper = max // no observation exceeds the tracked maximum
		}
		if upper < lower {
			lower = upper
		}
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return max
}
