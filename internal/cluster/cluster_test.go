package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/trajectory"
)

// routeFamily generates trips that follow one of three distinct corridors
// with per-trip noise: the ground truth for recovery tests.
func routeFamily(rng *rand.Rand, family int) trajectory.Trajectory {
	var p trajectory.Trajectory
	t := 0.0
	x, y := 0.0, 0.0
	for i := 0; i < 40; i++ {
		p = append(p, trajectory.S(t, x+rng.NormFloat64()*15, y+rng.NormFloat64()*15))
		t += 10
		switch family {
		case 0: // eastbound
			x += 150
		case 1: // northbound
			y += 150
		default: // diagonal
			x += 110
			y += 110
		}
	}
	return p
}

func labelled(rng *rand.Rand, perFamily int) ([]trajectory.Trajectory, []int) {
	var ps []trajectory.Trajectory
	var labels []int
	for f := 0; f < 3; f++ {
		for i := 0; i < perFamily; i++ {
			ps = append(ps, routeFamily(rng, f))
			labels = append(labels, f)
		}
	}
	return ps, labels
}

// purity measures how well assignments recover the ground-truth labels.
func purity(assign, labels []int, k int) float64 {
	correct := 0
	for c := 0; c < k; c++ {
		counts := map[int]int{}
		for i, a := range assign {
			if a == c {
				counts[labels[i]]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

func frechetMetric(a, b trajectory.Trajectory) (float64, error) { return analysis.Frechet(a, b) }
func dtwMetric(a, b trajectory.Trajectory) (float64, error)     { return analysis.DTW(a, b) }

func TestDistanceMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps, _ := labelled(rng, 2)
	d, err := DistanceMatrix(ps, frechetMetric)
	if err != nil {
		t.Fatal(err)
	}
	n := len(ps)
	for i := 0; i < n; i++ {
		if d[i][i] != 0 {
			t.Errorf("diagonal (%d) = %v", i, d[i][i])
		}
		for j := 0; j < n; j++ {
			if d[i][j] != d[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
			if d[i][j] < 0 {
				t.Errorf("negative distance at (%d,%d)", i, j)
			}
		}
	}
}

func TestKMedoidsRecoversRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps, labels := labelled(rng, 6)
	d, err := DistanceMatrix(ps, frechetMetric)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMedoids(d, 3, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(res.Assignments, labels, 3); p < 0.95 {
		t.Errorf("k-medoids purity %.2f, want ≥ 0.95", p)
	}
	if len(res.Medoids) != 3 {
		t.Errorf("medoids = %v", res.Medoids)
	}
	sil, err := Silhouette(d, res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if sil < 0.5 {
		t.Errorf("silhouette %.2f too low for well-separated routes", sil)
	}
}

func TestAgglomerativeRecoversRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps, labels := labelled(rng, 5)
	d, err := DistanceMatrix(ps, dtwMetric)
	if err != nil {
		t.Fatal(err)
	}
	for _, linkage := range []Linkage{Single, Complete, Average} {
		res, err := Agglomerative(d, 3, linkage)
		if err != nil {
			t.Fatal(err)
		}
		if p := purity(res.Assignments, labels, 3); p < 0.95 {
			t.Errorf("linkage %d purity %.2f, want ≥ 0.95", linkage, p)
		}
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps, _ := labelled(rng, 4)
	d, err := DistanceMatrix(ps, frechetMetric)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := KMedoids(d, 3, 99, 50)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMedoids(d, 3, 99, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestValidation(t *testing.T) {
	d := [][]float64{{0, 1}, {1, 0}}
	if _, err := KMedoids(d, 3, 1, 10); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMedoids(d, 0, 1, 10); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := KMedoids(d, 1, 1, 0); err == nil {
		t.Error("maxIter = 0 accepted")
	}
	if _, err := Agglomerative([][]float64{{0}, {0}}, 1, Single); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Silhouette(d, []int{0}); err == nil {
		t.Error("assignment length mismatch accepted")
	}
	bad := func(a, b trajectory.Trajectory) (float64, error) { return math.NaN(), nil }
	if _, err := DistanceMatrix([]trajectory.Trajectory{{}, {}}, bad); err == nil {
		t.Error("NaN metric accepted")
	}
}

func TestSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps, _ := labelled(rng, 2)
	d, err := DistanceMatrix(ps, frechetMetric)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMedoids(d, 1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Fatal("k=1 produced multiple clusters")
		}
	}
	// Silhouette of a single cluster is defined as 0 here.
	if sil, err := Silhouette(d, res.Assignments); err != nil || sil != 0 {
		t.Errorf("single-cluster silhouette = %v, %v", sil, err)
	}
}
