package cluster

import "fmt"

// DBSCANResult labels each item with a cluster in [0, K) or Noise.
type DBSCANResult struct {
	// Assignments maps each item to its cluster, or Noise.
	Assignments []int
	// K is the number of clusters found.
	K int
}

// Noise marks items that belong to no cluster.
const Noise = -1

// DBSCAN performs density-based clustering over a distance matrix: an item
// with at least minPts neighbours within eps is a core item; clusters grow
// by density reachability; everything else is Noise. Unlike k-medoids it
// discovers the cluster count and tolerates outlier trajectories (erratic
// trips that fit no route family).
func DBSCAN(dist [][]float64, eps float64, minPts int) (DBSCANResult, error) {
	n := len(dist)
	if eps < 0 {
		return DBSCANResult{}, fmt.Errorf("cluster: negative eps %v", eps)
	}
	if minPts < 1 {
		return DBSCANResult{}, fmt.Errorf("cluster: minPts %d < 1", minPts)
	}
	for i, row := range dist {
		if len(row) != n {
			return DBSCANResult{}, fmt.Errorf("cluster: row %d has %d entries, want %d", i, len(row), n)
		}
	}

	neighbours := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if dist[i][j] <= eps {
				out = append(out, j) // includes i itself, per convention
			}
		}
		return out
	}

	const unvisited = -2
	assign := make([]int, n)
	for i := range assign {
		assign[i] = unvisited
	}
	k := 0
	for i := 0; i < n; i++ {
		if assign[i] != unvisited {
			continue
		}
		nb := neighbours(i)
		if len(nb) < minPts {
			assign[i] = Noise
			continue
		}
		// Start a new cluster and expand it.
		cluster := k
		k++
		assign[i] = cluster
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if assign[j] == Noise {
				assign[j] = cluster // border item reclaimed from noise
			}
			if assign[j] != unvisited {
				continue
			}
			assign[j] = cluster
			if nbj := neighbours(j); len(nbj) >= minPts {
				queue = append(queue, nbj...)
			}
		}
	}
	return DBSCANResult{Assignments: assign, K: k}, nil
}
