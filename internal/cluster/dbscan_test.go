package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/trajectory"
)

func TestDBSCANRecoversRoutesAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps, labels := labelled(rng, 5)
	// Add one erratic outlier trajectory.
	var outlier trajectory.Trajectory
	x, y := 50000.0, -50000.0
	for i := 0; i < 40; i++ {
		outlier = append(outlier, trajectory.S(float64(i*10), x, y))
		x += rng.NormFloat64() * 3000
		y += rng.NormFloat64() * 3000
	}
	ps = append(ps, outlier)
	labels = append(labels, -1)

	d, err := DistanceMatrix(ps, frechetMetric)
	if err != nil {
		t.Fatal(err)
	}
	// eps: within-family Fréchet distances are noise-scale (tens of m);
	// between families they are kilometres.
	res, err := DBSCAN(d, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("found %d clusters, want 3 (assignments %v)", res.K, res.Assignments)
	}
	if res.Assignments[len(ps)-1] != Noise {
		t.Errorf("outlier assigned to cluster %d, want Noise", res.Assignments[len(ps)-1])
	}
	// All same-family items share a cluster.
	for f := 0; f < 3; f++ {
		first := res.Assignments[f*5]
		if first == Noise {
			t.Fatalf("family %d marked noise", f)
		}
		for i := 0; i < 5; i++ {
			if res.Assignments[f*5+i] != first {
				t.Errorf("family %d split: %v", f, res.Assignments)
			}
		}
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	// Pairwise distances all exceed eps: everything is noise.
	d := [][]float64{
		{0, 10, 10},
		{10, 0, 10},
		{10, 10, 0},
	}
	res, err := DBSCAN(d, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 {
		t.Errorf("K = %d, want 0", res.K)
	}
	for i, a := range res.Assignments {
		if a != Noise {
			t.Errorf("item %d = %d, want Noise", i, a)
		}
	}
}

func TestDBSCANValidation(t *testing.T) {
	d := [][]float64{{0, 1}, {1, 0}}
	if _, err := DBSCAN(d, -1, 2); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := DBSCAN(d, 1, 0); err == nil {
		t.Error("minPts 0 accepted")
	}
	if _, err := DBSCAN([][]float64{{0}, {0}}, 1, 1); err == nil {
		t.Error("ragged matrix accepted")
	}
}
