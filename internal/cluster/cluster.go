// Package cluster groups trajectories by similarity — the pattern-mining
// step of the paper's motivation (commuter flows, fleet route families,
// migration corridors). It is metric-agnostic: any trajectory distance
// (DTW or discrete Fréchet from internal/analysis, or a custom function)
// yields a distance matrix that both k-medoids and agglomerative clustering
// consume.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/trajectory"
)

// Metric measures dissimilarity between two trajectories.
type Metric func(a, b trajectory.Trajectory) (float64, error)

// DistanceMatrix computes the symmetric pairwise distance matrix of ps
// under m. The diagonal is zero.
func DistanceMatrix(ps []trajectory.Trajectory, m Metric) ([][]float64, error) {
	n := len(ps)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v, err := m(ps[i], ps[j])
			if err != nil {
				return nil, fmt.Errorf("cluster: distance(%d, %d): %w", i, j, err)
			}
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("cluster: metric returned invalid distance %v for (%d, %d)", v, i, j)
			}
			d[i][j], d[j][i] = v, v
		}
	}
	return d, nil
}

// Result is a clustering of n items into K groups.
type Result struct {
	// Assignments maps each item index to its cluster in [0, K).
	Assignments []int
	// Medoids holds the representative item index of each cluster
	// (k-medoids only; nil for agglomerative results).
	Medoids []int
	// K is the number of clusters.
	K int
}

// validateMatrix checks a distance matrix is square, symmetric enough, and
// large enough for k clusters.
func validateMatrix(dist [][]float64, k int) error {
	n := len(dist)
	if k < 1 {
		return fmt.Errorf("cluster: k = %d < 1", k)
	}
	if n < k {
		return fmt.Errorf("cluster: %d items cannot form %d clusters", n, k)
	}
	for i, row := range dist {
		if len(row) != n {
			return fmt.Errorf("cluster: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	return nil
}

// KMedoids clusters the items of a distance matrix into k groups around
// medoid items, using Voronoi-style alternation (assign to nearest medoid,
// re-pick each cluster's cost-minimizing medoid) from a deterministic
// seeded start, for at most maxIter rounds.
func KMedoids(dist [][]float64, k int, seed int64, maxIter int) (Result, error) {
	if err := validateMatrix(dist, k); err != nil {
		return Result{}, err
	}
	if maxIter < 1 {
		return Result{}, errors.New("cluster: maxIter < 1")
	}
	n := len(dist)
	rng := rand.New(rand.NewSource(seed))

	// k-means++-style seeding: spread initial medoids apart.
	medoids := []int{rng.Intn(n)}
	for len(medoids) < k {
		var weights []float64
		var total float64
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for _, m := range medoids {
				d = math.Min(d, dist[i][m])
			}
			weights = append(weights, d)
			total += d
		}
		//lint:allow floatcmp degenerate-case guard: total is exactly 0 only when every remaining item coincides with a medoid
		if total == 0 {
			// All remaining items coincide with medoids; pick arbitrarily.
			for i := 0; i < n && len(medoids) < k; i++ {
				if !contains(medoids, i) {
					medoids = append(medoids, i)
				}
			}
			break
		}
		r := rng.Float64() * total
		for i, w := range weights {
			r -= w
			if r <= 0 {
				if !contains(medoids, i) {
					medoids = append(medoids, i)
				} else {
					medoids = append(medoids, (i+1)%n)
				}
				break
			}
		}
	}

	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		// Assign to nearest medoid.
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c, m := range medoids {
				if d := dist[i][m]; d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		// Re-pick medoids.
		changed := false
		for c := range medoids {
			bestM, bestCost := medoids[c], math.Inf(1)
			for i := 0; i < n; i++ {
				if assign[i] != c {
					continue
				}
				var cost float64
				for j := 0; j < n; j++ {
					if assign[j] == c {
						cost += dist[i][j]
					}
				}
				if cost < bestCost {
					bestM, bestCost = i, cost
				}
			}
			if bestM != medoids[c] {
				medoids[c] = bestM
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return Result{Assignments: assign, Medoids: medoids, K: k}, nil
}

// Linkage selects the inter-cluster distance for Agglomerative.
type Linkage int

const (
	// Single links clusters by their closest pair.
	Single Linkage = iota
	// Complete links clusters by their farthest pair.
	Complete
	// Average links clusters by the mean pairwise distance.
	Average
)

// Agglomerative performs hierarchical agglomerative clustering down to k
// clusters under the given linkage, returning the assignment.
func Agglomerative(dist [][]float64, k int, linkage Linkage) (Result, error) {
	if err := validateMatrix(dist, k); err != nil {
		return Result{}, err
	}
	n := len(dist)
	// Active clusters as member lists.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	linkDist := func(a, b []int) float64 {
		switch linkage {
		case Single:
			d := math.Inf(1)
			for _, i := range a {
				for _, j := range b {
					d = math.Min(d, dist[i][j])
				}
			}
			return d
		case Complete:
			d := 0.0
			for _, i := range a {
				for _, j := range b {
					d = math.Max(d, dist[i][j])
				}
			}
			return d
		default:
			var sum float64
			for _, i := range a {
				for _, j := range b {
					sum += dist[i][j]
				}
			}
			return sum / float64(len(a)*len(b))
		}
	}
	for len(clusters) > k {
		bi, bj, bd := 0, 1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d := linkDist(clusters[i], clusters[j]); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	assign := make([]int, n)
	for c, members := range clusters {
		for _, i := range members {
			assign[i] = c
		}
	}
	return Result{Assignments: assign, K: k}, nil
}

// Silhouette returns the mean silhouette coefficient of a clustering in
// [-1, 1]; higher is better. Items in singleton clusters contribute 0.
func Silhouette(dist [][]float64, assign []int) (float64, error) {
	n := len(dist)
	if len(assign) != n {
		return 0, fmt.Errorf("cluster: %d assignments for %d items", len(assign), n)
	}
	if n == 0 {
		return 0, errors.New("cluster: empty matrix")
	}
	var total float64
	for i := 0; i < n; i++ {
		var a, aCount float64
		other := map[int]*struct {
			sum float64
			n   int
		}{}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if assign[j] == assign[i] {
				a += dist[i][j]
				aCount++
			} else {
				o := other[assign[j]]
				if o == nil {
					o = &struct {
						sum float64
						n   int
					}{}
					other[assign[j]] = o
				}
				o.sum += dist[i][j]
				o.n++
			}
		}
		//lint:allow floatcmp degenerate-case guard: aCount accumulates exact small integers
		if aCount == 0 || len(other) == 0 {
			continue // singleton or single-cluster case contributes 0
		}
		a /= aCount
		b := math.Inf(1)
		for _, o := range other {
			b = math.Min(b, o.sum/float64(o.n))
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n), nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
