package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewProjectorValidation(t *testing.T) {
	if _, err := NewProjector(LatLon{Lat: 91, Lon: 0}); err == nil {
		t.Error("latitude 91 accepted")
	}
	if _, err := NewProjector(LatLon{Lat: 0, Lon: 181}); err == nil {
		t.Error("longitude 181 accepted")
	}
	if _, err := NewProjector(LatLon{Lat: 89.5, Lon: 0}); err == nil {
		t.Error("near-pole origin accepted")
	}
	if _, err := NewProjector(LatLon{Lat: math.NaN(), Lon: 0}); err == nil {
		t.Error("NaN latitude accepted")
	}
	pr, err := NewProjector(LatLon{Lat: 52.22, Lon: 6.89}) // Enschede
	if err != nil {
		t.Fatalf("valid origin rejected: %v", err)
	}
	if pr.Origin() != (LatLon{Lat: 52.22, Lon: 6.89}) {
		t.Errorf("Origin = %+v", pr.Origin())
	}
}

func TestProjectorRoundTrip(t *testing.T) {
	origin := LatLon{Lat: 52.22, Lon: 6.89}
	pr, err := NewProjector(origin)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		ll := LatLon{
			Lat: origin.Lat + rng.Float64()*0.4 - 0.2,
			Lon: origin.Lon + rng.Float64()*0.4 - 0.2,
		}
		back := pr.ToLatLon(pr.ToPlanar(ll))
		if math.Abs(back.Lat-ll.Lat) > 1e-9 || math.Abs(back.Lon-ll.Lon) > 1e-9 {
			t.Fatalf("round trip %+v -> %+v", ll, back)
		}
	}
}

// Planar distance in the projected frame should match haversine to within a
// small relative error at city scale.
func TestProjectorDistanceAgreesWithHaversine(t *testing.T) {
	origin := LatLon{Lat: 52.22, Lon: 6.89}
	pr, err := NewProjector(origin)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		a := LatLon{Lat: origin.Lat + rng.Float64()*0.2 - 0.1, Lon: origin.Lon + rng.Float64()*0.2 - 0.1}
		b := LatLon{Lat: origin.Lat + rng.Float64()*0.2 - 0.1, Lon: origin.Lon + rng.Float64()*0.2 - 0.1}
		hd := Haversine(a, b)
		pd := pr.ToPlanar(a).Dist(pr.ToPlanar(b))
		if hd < 100 {
			continue // relative error meaningless at tiny distances
		}
		if rel := math.Abs(hd-pd) / hd; rel > 0.002 {
			t.Fatalf("distance mismatch: haversine %.2f planar %.2f rel %.5f", hd, pd, rel)
		}
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Enschede to Amsterdam, roughly 140 km.
	enschede := LatLon{Lat: 52.2215, Lon: 6.8937}
	amsterdam := LatLon{Lat: 52.3676, Lon: 4.9041}
	d := Haversine(enschede, amsterdam)
	if d < 130e3 || d > 150e3 {
		t.Errorf("Haversine Enschede-Amsterdam = %.1f km, want ≈140 km", d/1000)
	}
	if Haversine(enschede, enschede) != 0 {
		t.Error("Haversine of identical points non-zero")
	}
}

func TestLatLonValid(t *testing.T) {
	valid := []LatLon{{0, 0}, {-90, -180}, {90, 180}}
	for _, ll := range valid {
		if !ll.Valid() {
			t.Errorf("%+v reported invalid", ll)
		}
	}
	invalid := []LatLon{{90.1, 0}, {0, -180.1}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, ll := range invalid {
		if ll.Valid() {
			t.Errorf("%+v reported valid", ll)
		}
	}
}
