package geo

import "math"

// MinSegLen is the segment length in metres below which geometric
// operations treat a segment as degenerate (a repeated point). Real GPS
// jitter produces near-zero-but-nonzero segment lengths; dividing by them
// amplifies noise by many orders of magnitude, so the guards in
// ProjectParam, PerpDist and AngleBetween compare against this epsilon
// rather than exactly zero. At 1e-9 m the threshold is far below GPS
// resolution yet far above float64 rounding at city-scale coordinates.
const MinSegLen = 1e-9

// minSegLen2 is MinSegLen squared, for guards on squared lengths.
const minSegLen2 = MinSegLen * MinSegLen

// Segment is the directed straight segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// IsDegenerate reports whether the segment has zero length.
func (s Segment) IsDegenerate() bool { return s.A.Equal(s.B) }

// At returns the point A + f*(B-A). f is not clamped.
func (s Segment) At(f float64) Point { return s.A.Lerp(s.B, f) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return s.At(0.5) }

// ProjectParam returns the parameter f of the orthogonal projection of p onto
// the infinite line through the segment, such that the projection is At(f).
// For a degenerate segment (shorter than MinSegLen) it returns 0.
func (s Segment) ProjectParam(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	if l2 <= minSegLen2 {
		return 0
	}
	return p.Sub(s.A).Dot(d) / l2
}

// Project returns the orthogonal projection of p onto the infinite line
// through the segment.
func (s Segment) Project(p Point) Point { return s.At(s.ProjectParam(p)) }

// PerpDist returns the perpendicular distance from p to the infinite line
// through the segment. For a degenerate segment (shorter than MinSegLen) it
// returns the distance to A.
//
// This is the classic line-generalization discard criterion (Douglas-Peucker,
// NOPW/BOPW); the paper argues it ignores time and proposes the synchronized
// distance instead (internal/sed).
func (s Segment) PerpDist(p Point) float64 {
	d := s.B.Sub(s.A)
	l := d.Norm()
	if l <= MinSegLen {
		return p.Dist(s.A)
	}
	return math.Abs(d.Cross(p.Sub(s.A))) / l
}

// ClosestParam returns the parameter in [0, 1] of the point on the segment
// nearest to p.
func (s Segment) ClosestParam(p Point) float64 {
	f := s.ProjectParam(p)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// ClosestPoint returns the point on the segment nearest to p.
func (s Segment) ClosestPoint(p Point) Point { return s.At(s.ClosestParam(p)) }

// Dist returns the distance from p to the nearest point of the segment.
func (s Segment) Dist(p Point) float64 { return p.Dist(s.ClosestPoint(p)) }

// Bounds returns the axis-aligned bounding rectangle of the segment.
func (s Segment) Bounds() Rect {
	return Rect{
		Min: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Max: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}

// Rect is an axis-aligned rectangle, Min ≤ Max in both coordinates.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns a rectangle that contains nothing and acts as the
// identity for Union.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the x extent; zero for empty rectangles.
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the y extent; zero for empty rectangles.
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and q share at least one point.
func (r Rect) Intersects(q Rect) bool {
	if r.IsEmpty() || q.IsEmpty() {
		return false
	}
	return r.Min.X <= q.Max.X && q.Min.X <= r.Max.X &&
		r.Min.Y <= q.Max.Y && q.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and q.
func (r Rect) Union(q Rect) Rect {
	if r.IsEmpty() {
		return q
	}
	if q.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, q.Min.X), math.Min(r.Min.Y, q.Min.Y)},
		Max: Point{math.Max(r.Max.X, q.Max.X), math.Max(r.Max.Y, q.Max.Y)},
	}
}

// Extend returns the smallest rectangle containing r and p.
func (r Rect) Extend(p Point) Rect {
	return r.Union(Rect{Min: p, Max: p})
}

// Expand grows the rectangle by d on every side. Expanding an empty
// rectangle yields an empty rectangle.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}
