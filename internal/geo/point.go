// Package geo provides planar geometric primitives used throughout the
// trajectory compression library.
//
// All coordinates are planar metres: x grows eastward, y grows northward.
// GPS (WGS-84) positions are converted to this local frame with a Projector.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the local planar frame, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q, treating both as vectors.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q, treating both as vectors.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates between p and q: result = p + f*(q-p).
// f is not clamped; values outside [0, 1] extrapolate.
func (p Point) Lerp(q Point, f float64) Point {
	return Point{p.X + f*(q.X-p.X), p.Y + f*(q.Y-p.Y)}
}

// Equal reports whether p and q are exactly equal. Use AlmostEqual for
// tolerance-based comparison of computed coordinates.
//
//lint:allow floatcmp exact bitwise equality is this method's contract
func (p Point) Equal(q Point) bool { return p.X == q.X && p.Y == q.Y }

// AlmostEqual reports whether p and q are within eps of each other in both
// coordinates.
func (p Point) AlmostEqual(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// IsFinite reports whether both coordinates are finite (not NaN or ±Inf).
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Bearing returns the compass-style bearing in radians from p to q measured
// counter-clockwise from the positive x axis, in (-π, π]. For coincident
// points it returns 0.
func (p Point) Bearing(q Point) float64 {
	if p.Equal(q) {
		return 0
	}
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// AngleBetween returns the absolute turning angle at point b when travelling
// a → b → c, in radians in [0, π]. A straight continuation yields 0; a full
// reversal yields π. Degenerate legs (shorter than MinSegLen) yield 0:
// GPS jitter on a stopped object produces arbitrary turning angles between
// near-coincident fixes, which must not register as turns.
func AngleBetween(a, b, c Point) float64 {
	u := b.Sub(a)
	v := c.Sub(b)
	nu, nv := u.Norm(), v.Norm()
	if nu <= MinSegLen || nv <= MinSegLen {
		return 0
	}
	cos := u.Dot(v) / (nu * nv)
	cos = math.Max(-1, math.Min(1, cos))
	return math.Acos(cos)
}
