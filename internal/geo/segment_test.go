package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestPerpDist(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},
		{Pt(5, -3), 3},
		{Pt(0, 0), 0},
		{Pt(10, 0), 0},
		{Pt(20, 4), 4}, // beyond the segment: distance to the infinite line
	}
	for _, tc := range tests {
		if got := s.PerpDist(tc.p); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("PerpDist(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPerpDistDegenerate(t *testing.T) {
	s := Seg(Pt(2, 2), Pt(2, 2))
	if got := s.PerpDist(Pt(5, 6)); !almostEq(got, 5, 1e-12) {
		t.Errorf("degenerate PerpDist = %v, want 5", got)
	}
}

func TestSegmentDist(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},
		{Pt(-3, 4), 5},  // clamps to A
		{Pt(13, -4), 5}, // clamps to B
	}
	for _, tc := range tests {
		if got := s.Dist(tc.p); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Dist(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestProject(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	p := Pt(10, 0)
	proj := s.Project(p)
	if !proj.AlmostEqual(Pt(5, 5), 1e-12) {
		t.Errorf("Project = %v, want (5,5)", proj)
	}
	if f := s.ProjectParam(p); !almostEq(f, 0.5, 1e-12) {
		t.Errorf("ProjectParam = %v, want 0.5", f)
	}
}

func TestClosestPointClampsToEndpoints(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if got := s.ClosestPoint(Pt(-5, 5)); !got.Equal(Pt(0, 0)) {
		t.Errorf("ClosestPoint before A = %v, want A", got)
	}
	if got := s.ClosestPoint(Pt(15, 5)); !got.Equal(Pt(10, 0)) {
		t.Errorf("ClosestPoint after B = %v, want B", got)
	}
}

// The perpendicular distance to the line never exceeds the distance to the
// segment, and the segment distance never exceeds the distance to either
// endpoint.
func TestDistanceOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		s := Seg(
			Pt(rng.NormFloat64()*50, rng.NormFloat64()*50),
			Pt(rng.NormFloat64()*50, rng.NormFloat64()*50),
		)
		p := Pt(rng.NormFloat64()*50, rng.NormFloat64()*50)
		perp := s.PerpDist(p)
		seg := s.Dist(p)
		if perp > seg+1e-9 {
			t.Fatalf("PerpDist %v > segment Dist %v for s=%v p=%v", perp, seg, s, p)
		}
		if seg > p.Dist(s.A)+1e-9 || seg > p.Dist(s.B)+1e-9 {
			t.Fatalf("segment Dist %v exceeds endpoint distance for s=%v p=%v", seg, s, p)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := EmptyRect()
	if !r.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if r.Width() != 0 || r.Height() != 0 {
		t.Errorf("empty rect has extent %v × %v", r.Width(), r.Height())
	}
	r = r.Extend(Pt(1, 2)).Extend(Pt(-1, 5))
	if r.IsEmpty() {
		t.Fatal("extended rect is empty")
	}
	if r.Min != Pt(-1, 2) || r.Max != Pt(1, 5) {
		t.Errorf("rect = %+v, want min (-1,2) max (1,5)", r)
	}
	if !r.Contains(Pt(0, 3)) || r.Contains(Pt(2, 3)) {
		t.Error("Contains misclassifies")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	b := Rect{Min: Pt(5, 5), Max: Pt(15, 15)}
	c := Rect{Min: Pt(11, 11), Max: Pt(12, 12)}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects reported overlapping")
	}
	if a.Intersects(EmptyRect()) || EmptyRect().Intersects(a) {
		t.Error("empty rect intersects something")
	}
	// Touching edges count as intersecting.
	d := Rect{Min: Pt(10, 0), Max: Pt(20, 10)}
	if !a.Intersects(d) {
		t.Error("edge-touching rects reported disjoint")
	}
}

func TestRectUnionExpand(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(1, 1)}
	b := Rect{Min: Pt(2, 2), Max: Pt(3, 3)}
	u := a.Union(b)
	if u.Min != Pt(0, 0) || u.Max != Pt(3, 3) {
		t.Errorf("Union = %+v", u)
	}
	if got := a.Union(EmptyRect()); got != a {
		t.Errorf("Union with empty = %+v, want %+v", got, a)
	}
	e := a.Expand(1)
	if e.Min != Pt(-1, -1) || e.Max != Pt(2, 2) {
		t.Errorf("Expand = %+v", e)
	}
	if !EmptyRect().Expand(5).IsEmpty() {
		t.Error("expanding empty rect produced non-empty rect")
	}
}

func TestSegmentBounds(t *testing.T) {
	s := Seg(Pt(3, -1), Pt(-2, 4))
	b := s.Bounds()
	if b.Min != Pt(-2, -1) || b.Max != Pt(3, 4) {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestSegmentAt(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 8))
	if got := s.Midpoint(); !got.Equal(Pt(2, 4)) {
		t.Errorf("Midpoint = %v", got)
	}
	if got := s.Length(); !almostEq(got, math.Sqrt(80), 1e-12) {
		t.Errorf("Length = %v", got)
	}
	if !Seg(Pt(1, 1), Pt(1, 1)).IsDegenerate() {
		t.Error("degenerate segment not detected")
	}
}
