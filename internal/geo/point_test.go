package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v, want (4,-2)", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v, want (-2,6)", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
	if got := p.Dot(q); got != 1*3+2*(-4) {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := p.Cross(q); got != 1*(-4)-2*3 {
		t.Errorf("Cross = %v, want -10", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.p.Dist2(tc.q); !almostEq(got, tc.want*tc.want, 1e-12) {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); !got.Equal(p) {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); !got.Equal(q) {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); !got.Equal(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
	// Extrapolation is allowed.
	if got := p.Lerp(q, 2); !got.Equal(Pt(20, 40)) {
		t.Errorf("Lerp(2) = %v, want (20,40)", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestBearing(t *testing.T) {
	tests := []struct {
		q    Point
		want float64
	}{
		{Pt(1, 0), 0},
		{Pt(0, 1), math.Pi / 2},
		{Pt(-1, 0), math.Pi},
		{Pt(0, -1), -math.Pi / 2},
	}
	for _, tc := range tests {
		if got := Pt(0, 0).Bearing(tc.q); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Bearing(origin,%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Pt(3, 3).Bearing(Pt(3, 3)); got != 0 {
		t.Errorf("Bearing of coincident points = %v, want 0", got)
	}
}

func TestAngleBetween(t *testing.T) {
	// Straight line: no turn.
	if got := AngleBetween(Pt(0, 0), Pt(1, 0), Pt(2, 0)); !almostEq(got, 0, 1e-12) {
		t.Errorf("straight angle = %v, want 0", got)
	}
	// Right angle turn.
	if got := AngleBetween(Pt(0, 0), Pt(1, 0), Pt(1, 1)); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("right angle = %v, want π/2", got)
	}
	// Full reversal.
	if got := AngleBetween(Pt(0, 0), Pt(1, 0), Pt(0, 0)); !almostEq(got, math.Pi, 1e-12) {
		t.Errorf("reversal angle = %v, want π", got)
	}
	// Degenerate leg.
	if got := AngleBetween(Pt(0, 0), Pt(0, 0), Pt(1, 1)); got != 0 {
		t.Errorf("degenerate angle = %v, want 0", got)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a, b := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by))
		return almostEq(a.Dist(b), b.Dist(a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := Pt(rng.NormFloat64()*100, rng.NormFloat64()*100)
		b := Pt(rng.NormFloat64()*100, rng.NormFloat64()*100)
		c := Pt(rng.NormFloat64()*100, rng.NormFloat64()*100)
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestLerpEndpointsProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Confine magnitudes to a physically plausible range; at float64
		// extremes b-a overflows and the identity cannot hold.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a, b := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by))
		return a.Lerp(b, 0).Equal(a) && a.Lerp(b, 1).AlmostEqual(b, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
