package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean Earth radius in metres (IUGG).
const EarthRadius = 6371008.8

// LatLon is a WGS-84 geographic coordinate in decimal degrees.
type LatLon struct {
	Lat, Lon float64
}

// Valid reports whether the coordinate lies in the legal WGS-84 range.
func (ll LatLon) Valid() bool {
	return ll.Lat >= -90 && ll.Lat <= 90 && ll.Lon >= -180 && ll.Lon <= 180 &&
		!math.IsNaN(ll.Lat) && !math.IsNaN(ll.Lon)
}

// Haversine returns the great-circle distance in metres between two
// geographic coordinates. The haversine intermediate is clamped to [0, 1]
// before the square root and arcsine, so finite inputs (see LatLon.Valid)
// never produce NaN.
func Haversine(a, b LatLon) float64 {
	const rad = math.Pi / 180
	lat1, lat2 := a.Lat*rad, b.Lat*rad
	dLat := (b.Lat - a.Lat) * rad
	dLon := (b.Lon - a.Lon) * rad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadius * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Projector converts WGS-84 coordinates to the local planar frame using an
// equirectangular projection centred on an origin. For trajectories spanning
// tens of kilometres — the paper's working scale — the distortion is well
// below GPS noise, so planar Euclidean distances in the projected frame are a
// faithful stand-in for geodesic distances.
type Projector struct {
	origin LatLon
	cosLat float64
}

// NewProjector returns a projector centred at origin.
// It returns an error if origin is outside the WGS-84 range or so close to a
// pole that the projection degenerates.
func NewProjector(origin LatLon) (*Projector, error) {
	if !origin.Valid() {
		return nil, fmt.Errorf("geo: invalid projection origin %+v", origin)
	}
	if math.Abs(origin.Lat) > 89 {
		return nil, fmt.Errorf("geo: projection origin latitude %.4f too close to pole", origin.Lat)
	}
	return &Projector{
		origin: origin,
		cosLat: math.Cos(origin.Lat * math.Pi / 180),
	}, nil
}

// Origin returns the projection origin.
func (pr *Projector) Origin() LatLon { return pr.origin }

// ToPlanar converts a geographic coordinate to local planar metres.
func (pr *Projector) ToPlanar(ll LatLon) Point {
	const rad = math.Pi / 180
	return Point{
		X: (ll.Lon - pr.origin.Lon) * rad * EarthRadius * pr.cosLat,
		Y: (ll.Lat - pr.origin.Lat) * rad * EarthRadius,
	}
}

// ToLatLon converts a local planar position back to geographic coordinates.
func (pr *Projector) ToLatLon(p Point) LatLon {
	const deg = 180 / math.Pi
	return LatLon{
		Lat: pr.origin.Lat + p.Y/EarthRadius*deg,
		Lon: pr.origin.Lon + p.X/(EarthRadius*pr.cosLat)*deg,
	}
}
