package roadnet

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func TestGridConstruction(t *testing.T) {
	g := Grid(4, 3, 100)
	if g.NumNodes() != 12 {
		t.Errorf("nodes = %d, want 12", g.NumNodes())
	}
	// Horizontal: 3 per row × 3 rows; vertical: 4 per column × 2 = 8.
	if g.NumEdges() != 3*3+4*2 {
		t.Errorf("edges = %d, want 17", g.NumEdges())
	}
	if got := g.Node(1*4 + 2); !got.Equal(geo.Pt(200, 100)) {
		t.Errorf("node (2,1) at %v", got)
	}
}

func TestNearbyEdges(t *testing.T) {
	g := Grid(5, 5, 100)
	// A point 10 m north of the road between (100,100) and (200,100).
	p := geo.Pt(150, 110)
	cs := g.NearbyEdges(p, 50)
	if len(cs) == 0 {
		t.Fatal("no candidates")
	}
	best := cs[0]
	if math.Abs(best.Dist-10) > 1e-9 {
		t.Errorf("best candidate at distance %v, want 10", best.Dist)
	}
	if !best.Point.AlmostEqual(geo.Pt(150, 100), 1e-9) {
		t.Errorf("projection %v, want (150, 100)", best.Point)
	}
	// Ordered by distance.
	for i := 1; i < len(cs); i++ {
		if cs[i].Dist < cs[i-1].Dist {
			t.Fatal("candidates not ordered")
		}
	}
	// Radius respected.
	for _, c := range cs {
		if c.Dist > 50 {
			t.Errorf("candidate beyond radius: %v", c.Dist)
		}
	}
	if got := g.NearbyEdges(geo.Pt(1e6, 1e6), 50); len(got) != 0 {
		t.Errorf("far query returned %d candidates", len(got))
	}
}

func TestNetworkDistSameEdge(t *testing.T) {
	g := Grid(3, 3, 100)
	cs := g.NearbyEdges(geo.Pt(20, 0), 10)
	ds := g.NearbyEdges(geo.Pt(80, 0), 10)
	d := g.NetworkDist(cs[0], ds[0], 0)
	if math.Abs(d-60) > 1e-9 {
		t.Errorf("same-edge distance %v, want 60", d)
	}
}

func TestNetworkDistAcrossGrid(t *testing.T) {
	g := Grid(5, 5, 100)
	// From the midpoint of the bottom-left horizontal edge to the midpoint
	// of the next horizontal edge: along the road, 100 m.
	a := g.NearbyEdges(geo.Pt(50, 0), 5)[0]
	b := g.NearbyEdges(geo.Pt(150, 0), 5)[0]
	if d := g.NetworkDist(a, b, 0); math.Abs(d-100) > 1e-9 {
		t.Errorf("adjacent-edge distance %v, want 100", d)
	}
	// Manhattan detour: (50, 0) to (0, 150) must go via a corner:
	// 50 to node (0,0) + 100 up + 50 more = 200.
	c := g.NearbyEdges(geo.Pt(0, 150), 5)[0]
	if d := g.NetworkDist(a, c, 0); math.Abs(d-200) > 1e-9 {
		t.Errorf("cross distance %v, want 200", d)
	}
}

func TestNetworkDistPruned(t *testing.T) {
	g := Grid(10, 10, 100)
	a := g.NearbyEdges(geo.Pt(0, 50), 5)[0]
	b := g.NearbyEdges(geo.Pt(900, 850), 5)[0]
	full := g.NetworkDist(a, b, 0)
	if math.IsInf(full, 1) || full < 1500 {
		t.Fatalf("full distance = %v", full)
	}
	if d := g.NetworkDist(a, b, 100); !math.IsInf(d, 1) {
		t.Errorf("tight prune returned finite distance %v", d)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := NewGraph()
	a0 := g.AddNode(geo.Pt(0, 0))
	a1 := g.AddNode(geo.Pt(100, 0))
	b0 := g.AddNode(geo.Pt(10000, 10000))
	b1 := g.AddNode(geo.Pt(10100, 10000))
	g.AddEdge(a0, a1)
	g.AddEdge(b0, b1)
	g.Build()
	pa := g.NearbyEdges(geo.Pt(50, 0), 10)[0]
	pb := g.NearbyEdges(geo.Pt(10050, 10000), 10)[0]
	if d := g.NetworkDist(pa, pb, 0); !math.IsInf(d, 1) {
		t.Errorf("disconnected distance %v, want +Inf", d)
	}
}

func TestValidationPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Grid(1, 5, 100) },
		func() { Grid(5, 5, 0) },
		func() {
			g := NewGraph()
			g.AddNode(geo.Pt(0, 0))
			g.AddEdge(0, 0)
		},
		func() {
			g := NewGraph()
			g.AddNode(geo.Pt(0, 0))
			g.AddEdge(0, 5)
		},
		func() {
			g := NewGraph()
			g.AddNode(geo.Pt(0, 0))
			g.AddNode(geo.Pt(1, 0))
			g.AddEdge(0, 1)
			g.NearbyEdges(geo.Pt(0, 0), 10) // Build not called
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}
