// Package roadnet is a minimal road-network substrate: an undirected graph
// of nodes (junctions) and straight edges (road segments) with a spatial
// edge index and shortest-path search. The paper observes that "in many of
// the applications we have in mind, object movement appears to be
// restricted to an underlying transportation infrastructure that itself has
// linear characteristics" — this package models that infrastructure, and
// internal/mapmatch snaps noisy trajectories onto it.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geo"
)

// Graph is an undirected road network. Construct with NewGraph/AddNode/
// AddEdge (or the Grid helper), then call Build before spatial queries.
type Graph struct {
	nodes []geo.Point
	edges []Edge
	adj   [][]int // node → incident edge indices

	index map[cellKey][]int // cell → edge indices
	cell  float64
	built bool
}

// Edge is one undirected road segment between two node indices.
type Edge struct {
	A, B   int
	Length float64
}

type cellKey struct{ cx, cy int32 }

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a junction and returns its index.
func (g *Graph) AddNode(p geo.Point) int {
	g.nodes = append(g.nodes, p)
	g.adj = append(g.adj, nil)
	g.built = false
	return len(g.nodes) - 1
}

// AddEdge connects two nodes with a straight road segment and returns the
// edge index. It panics on invalid node indices or self-loops (programmer
// error when constructing a network).
func (g *Graph) AddEdge(a, b int) int {
	if a < 0 || b < 0 || a >= len(g.nodes) || b >= len(g.nodes) || a == b {
		panic(fmt.Sprintf("roadnet: invalid edge (%d, %d) with %d nodes", a, b, len(g.nodes)))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{A: a, B: b, Length: g.nodes[a].Dist(g.nodes[b])})
	g.adj[a] = append(g.adj[a], idx)
	g.adj[b] = append(g.adj[b], idx)
	g.built = false
	return idx
}

// Node returns the position of node i.
func (g *Graph) Node(i int) geo.Point { return g.nodes[i] }

// EdgeAt returns edge e.
func (g *Graph) EdgeAt(e int) Edge { return g.edges[e] }

// NumNodes and NumEdges report the graph size.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Build constructs the spatial edge index; it must be called after the last
// AddEdge and before NearbyEdges/Project. The cell size is derived from the
// median edge length.
func (g *Graph) Build() {
	if len(g.edges) == 0 {
		g.index = map[cellKey][]int{}
		g.cell = 1
		g.built = true
		return
	}
	var total float64
	for _, e := range g.edges {
		total += e.Length
	}
	g.cell = math.Max(1, total/float64(len(g.edges)))
	g.index = make(map[cellKey][]int, len(g.edges))
	for i, e := range g.edges {
		box := geo.Seg(g.nodes[e.A], g.nodes[e.B]).Bounds()
		lo := g.keyOf(box.Min)
		hi := g.keyOf(box.Max)
		for cx := lo.cx; cx <= hi.cx; cx++ {
			for cy := lo.cy; cy <= hi.cy; cy++ {
				k := cellKey{cx, cy}
				g.index[k] = append(g.index[k], i)
			}
		}
	}
	g.built = true
}

func (g *Graph) keyOf(p geo.Point) cellKey {
	return cellKey{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Y / g.cell))}
}

// Projection is a position on an edge: the nearest road point to a query.
type Projection struct {
	EdgeIdx int
	// Frac is the position along the edge from node A (0) to node B (1).
	Frac float64
	// Point is the projected position.
	Point geo.Point
	// Dist is the distance from the query to Point.
	Dist float64
}

// NearbyEdges returns projections of p onto all edges within maxDist,
// ordered by increasing distance. Build must have been called.
func (g *Graph) NearbyEdges(p geo.Point, maxDist float64) []Projection {
	if !g.built {
		panic("roadnet: NearbyEdges called before Build")
	}
	lo := g.keyOf(geo.Pt(p.X-maxDist, p.Y-maxDist))
	hi := g.keyOf(geo.Pt(p.X+maxDist, p.Y+maxDist))
	seen := map[int]bool{}
	var out []Projection
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, ei := range g.index[cellKey{cx, cy}] {
				if seen[ei] {
					continue
				}
				seen[ei] = true
				e := g.edges[ei]
				seg := geo.Seg(g.nodes[e.A], g.nodes[e.B])
				frac := seg.ClosestParam(p)
				pt := seg.At(frac)
				d := p.Dist(pt)
				if d <= maxDist {
					out = append(out, Projection{EdgeIdx: ei, Frac: frac, Point: pt, Dist: d})
				}
			}
		}
	}
	// Insertion sort by distance; candidate lists are short.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dist < out[j-1].Dist; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NetworkDist returns the shortest along-road distance between two
// projections, or +Inf if they are disconnected. maxDist (0 = unlimited)
// prunes the search for speed.
func (g *Graph) NetworkDist(from, to Projection, maxDist float64) float64 {
	if from.EdgeIdx == to.EdgeIdx {
		// Same edge: straight along it.
		return math.Abs(from.Frac-to.Frac) * g.edges[from.EdgeIdx].Length
	}
	ef, et := g.edges[from.EdgeIdx], g.edges[to.EdgeIdx]
	// Distances from the source projection to its edge's endpoints.
	srcCost := map[int]float64{
		ef.A: from.Frac * ef.Length,
		ef.B: (1 - from.Frac) * ef.Length,
	}
	// Costs added when reaching the target edge's endpoints.
	dstCost := map[int]float64{
		et.A: to.Frac * et.Length,
		et.B: (1 - to.Frac) * et.Length,
	}
	best := math.Inf(1)
	dist := g.dijkstra(srcCost, maxDist)
	for node, tail := range dstCost {
		if d, ok := dist[node]; ok && d+tail < best {
			best = d + tail
		}
	}
	return best
}

// dijkstra runs a multi-source shortest path from the given node costs,
// pruned beyond maxDist when positive.
func (g *Graph) dijkstra(src map[int]float64, maxDist float64) map[int]float64 {
	dist := make(map[int]float64, len(src)*8)
	h := &nodeHeap{}
	for n, d := range src {
		heap.Push(h, nodeItem{node: n, dist: d})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(nodeItem)
		if d, ok := dist[it.node]; ok && d <= it.dist {
			continue
		}
		dist[it.node] = it.dist
		if maxDist > 0 && it.dist > maxDist {
			continue
		}
		for _, ei := range g.adj[it.node] {
			e := g.edges[ei]
			other := e.A
			if other == it.node {
				other = e.B
			}
			nd := it.dist + e.Length
			if d, ok := dist[other]; !ok || nd < d {
				heap.Push(h, nodeItem{node: other, dist: nd})
			}
		}
	}
	return dist
}

type nodeItem struct {
	node int
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Grid builds an nx × ny junction grid with the given block length —
// matching the road world of internal/gpsgen. The node at column i, row j
// has index j*nx + i.
func Grid(nx, ny int, block float64) *Graph {
	if nx < 2 || ny < 2 || block <= 0 {
		panic(fmt.Sprintf("roadnet: invalid grid %d×%d block %v", nx, ny, block))
	}
	g := NewGraph()
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			g.AddNode(geo.Pt(float64(i)*block, float64(j)*block))
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			n := j*nx + i
			if i+1 < nx {
				g.AddEdge(n, n+1)
			}
			if j+1 < ny {
				g.AddEdge(n, n+nx)
			}
		}
	}
	g.Build()
	return g
}
