package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/repl"
	"repro/internal/store"
	"repro/internal/trajectory"
	"repro/internal/wal"
)

// replNode is one WAL-backed server in a replicated test deployment.
type replNode struct {
	store *wal.DurableStore
	srv   *Server
	reg   *metrics.Registry
	addr  string
}

// startReplNode starts a WAL-backed server wired for replication. When
// replicateFrom is non-empty the node runs as a follower of that address.
func startReplNode(t *testing.T, mode repl.Mode, ackTimeout time.Duration, replicateFrom string) *replNode {
	t.Helper()
	reg := metrics.NewRegistry()
	d, err := wal.OpenDurable(filepath.Join(t.TempDir(), "trips.wal"), store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	d.SetSyncEvery(0)
	srv := New(d)
	srv.UseRegistry(reg)
	srv.Repl = repl.NewPrimary(d, repl.Options{
		Mode:       mode,
		AckTimeout: ackTimeout,
		PingEvery:  20 * time.Millisecond,
		Metrics:    reg,
	})
	if replicateFrom != "" {
		srv.Follower = repl.StartFollower(d, replicateFrom, repl.FollowerOptions{
			DialTimeout: time.Second,
			ReadTimeout: 2 * time.Second,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
			Metrics:     reg,
		})
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	n := &replNode{store: d, srv: srv, reg: reg, addr: l.Addr().String()}
	t.Cleanup(func() {
		if srv.Follower != nil {
			srv.Follower.Stop()
		}
		_ = srv.Close()
		<-done
		_ = d.Close()
	})
	return n
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationEndToEnd drives the whole wire path: a client writes to the
// primary, the follower converges to the same durable offset, serves reads,
// refuses writes, and accepts them after PROMOTE.
func TestReplicationEndToEnd(t *testing.T) {
	primary := startReplNode(t, repl.AckPrimary, 0, "")
	follower := startReplNode(t, repl.AckPrimary, 0, primary.addr)

	c, err := Dial(primary.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 30; i++ {
		if err := c.Append("tram", trajectory.S(float64(i), float64(i), 5)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	waitCond(t, "follower convergence", func() bool {
		return follower.store.AckedOffset() == primary.store.AckedOffset()
	})

	fc, err := Dial(follower.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// STATS reports the replication role and the durable WAL offset.
	st, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" {
		t.Errorf("follower STATS role = %q, want follower", st.Role)
	}
	if st.WALAckedOffset != primary.store.AckedOffset() {
		t.Errorf("follower walacked = %d, want %d", st.WALAckedOffset, primary.store.AckedOffset())
	}
	pst, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if pst.Role != "primary" {
		t.Errorf("primary STATS role = %q, want primary", pst.Role)
	}

	// The follower serves reads with the replicated data.
	snap, err := fc.Snapshot("tram")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 30 {
		t.Errorf("follower snapshot has %d samples, want 30", len(snap))
	}

	// Writes are refused with a readonly error.
	err = fc.Append("tram", trajectory.S(100, 1, 1))
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.HasPrefix(remote.Msg, "readonly") {
		t.Errorf("follower Append = %v, want readonly RemoteError", err)
	}
	if _, err := fc.EvictBefore(5); !errors.As(err, &remote) || !strings.HasPrefix(remote.Msg, "readonly") {
		t.Errorf("follower Evict = %v, want readonly RemoteError", err)
	}

	// PROMOTE flips the node; it now accepts writes.
	if err := fc.Promote(); err != nil {
		t.Fatalf("PROMOTE: %v", err)
	}
	if err := fc.Append("tram", trajectory.S(100, 1, 1)); err != nil {
		t.Errorf("post-promotion Append: %v", err)
	}
	// PROMOTE on a node that already is a primary stays OK.
	if err := c.Promote(); err != nil {
		t.Errorf("PROMOTE on primary: %v", err)
	}
}

// TestFollowerReadonlyKeepsMAPPENDFraming: the readonly refusal of MAPPEND
// must still consume the batch's data lines, or the connection would
// interpret samples as commands.
func TestFollowerReadonlyKeepsMAPPENDFraming(t *testing.T) {
	primary := startReplNode(t, repl.AckPrimary, 0, "")
	follower := startReplNode(t, repl.AckPrimary, 0, primary.addr)

	conn, err := net.Dial("tcp", follower.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "MAPPEND x 2\n1 1 1\n2 2 2\nPING\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "ERR readonly") {
		t.Fatalf("MAPPEND reply = %q, %v; want ERR readonly", line, err)
	}
	line, err = br.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "OK pong" {
		t.Fatalf("post-batch PING reply = %q, %v; want OK pong (framing intact)", line, err)
	}
}

// TestFollowerAckMode: with -repl-ack=follower semantics, a write is only
// acknowledged once a follower has fsynced it; with no follower attached the
// append fails rather than lying about replication.
func TestFollowerAckMode(t *testing.T) {
	// A short ack wait so the no-follower case fails fast.
	primary := startReplNode(t, repl.AckFollower, 150*time.Millisecond, "")

	c, err := Dial(primary.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Append("x", trajectory.S(1, 1, 1))
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.HasPrefix(remote.Msg, "repl:") {
		t.Fatalf("no-follower append = %v, want repl RemoteError", err)
	}

	follower := startReplNode(t, repl.AckPrimary, 0, primary.addr)
	// The follower first catches up the unconfirmed record, then live
	// appends are confirmed synchronously.
	deadline := time.Now().Add(10 * time.Second)
	var appendErr error
	n := 1
	for time.Now().Before(deadline) {
		if appendErr = c.Append("x", trajectory.S(float64(n+1), 1, 1)); appendErr == nil {
			break
		}
		n++
	}
	if appendErr != nil {
		t.Fatalf("append with live follower never succeeded: %v", appendErr)
	}
	waitCond(t, "synchronous replication", func() bool {
		return follower.store.AckedOffset() == primary.store.AckedOffset()
	})
}
