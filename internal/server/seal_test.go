package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/store"
	"repro/internal/trajectory"
)

// sealEpoch matches the seal package's tests: Unix-time magnitude, where
// float64 time resolution is coarsest.
const sealEpoch = 1.7e9

func TestServerSealAndTieredQueries(t *testing.T) {
	st := store.New(store.Options{SealEps: 2, SealBlockPoints: 32})
	addr, shutdown := startServer(t, st)
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 100 samples marching east at 1 m/s, one every 10 s.
	p := make(trajectory.Trajectory, 100)
	for i := range p {
		p[i] = trajectory.S(sealEpoch+float64(i)*10, float64(i)*10, 0)
	}
	if err := c.AppendBatch("car", p); err != nil {
		t.Fatal(err)
	}

	sealed, err := c.Seal(sealEpoch + 500)
	if err != nil {
		t.Fatal(err)
	}
	if sealed != 50 {
		t.Fatalf("Seal moved %d samples, want 50", sealed)
	}

	// QUERYRANGE straddling the hot/cold boundary unions both tiers.
	rect := geo.Rect{Min: geo.Pt(400, -5), Max: geo.Pt(600, 5)}
	pts, err := c.QueryRange(rect, sealEpoch+400, sealEpoch+600)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 21 {
		t.Fatalf("QueryRange = %d points, want 21 (samples 40..60)", len(pts))
	}
	for i, rp := range pts {
		want := p[40+i]
		if rp.ID != "car" || rp.S.Pos().Dist(want.Pos()) > 2 {
			t.Errorf("point %d = %+v, want within eps of %v", i, rp, want)
		}
	}

	// NEAREST at a sealed-era instant answers from the cold tier.
	nbs, err := c.Nearest(geo.Pt(100, 0), sealEpoch+100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 1 || nbs[0].ID != "car" {
		t.Fatalf("Nearest = %+v, want [car]", nbs)
	}
	if nbs[0].Dist > 2+1e-9 {
		t.Errorf("sealed-era neighbor distance %v exceeds eps", nbs[0].Dist)
	}

	// STATS reports the cold-tier footprint.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SealedPoints != 51 { // 50 aged + the boundary overlap head
		t.Errorf("Stats.SealedPoints = %d, want 51", stats.SealedPoints)
	}
	if stats.SealedBlocks == 0 || stats.SealedBytes == 0 {
		t.Errorf("Stats sealed footprint = %d blocks / %d bytes, want nonzero",
			stats.SealedBlocks, stats.SealedBytes)
	}
	// Re-sealing the same cut is a no-op.
	if sealed, err := c.Seal(sealEpoch + 500); err != nil || sealed != 0 {
		t.Errorf("second Seal = (%d, %v), want (0, nil)", sealed, err)
	}
}

func TestServerSealDisabled(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Seal(100); err == nil {
		t.Fatal("Seal on a store without a cold tier did not error")
	} else if _, ok := err.(*RemoteError); !ok {
		t.Fatalf("Seal error = %T (%v), want *RemoteError", err, err)
	}
	// Without sealing, NEAREST and QUERYRANGE still answer from the hot tier.
	_ = c.Append("a", trajectory.S(0, 5, 5))
	nbs, err := c.Nearest(geo.Pt(0, 0), 0, 1)
	if err != nil || len(nbs) != 1 || nbs[0].ID != "a" {
		t.Errorf("hot-only Nearest = %+v, %v, want [a]", nbs, err)
	}
	pts, err := c.QueryRange(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)}, 0, 1)
	if err != nil || len(pts) != 1 || pts[0].ID != "a" {
		t.Errorf("hot-only QueryRange = %+v, %v, want [a]", pts, err)
	}
}

// Raw-protocol test: the new commands reject malformed input with ERR
// without killing the connection, matching QUERY/QUERYTOL conventions.
func TestServerSealCommandUsageErrors(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{SealEps: 2}))
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	send := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response to %q: %v", line, err)
		}
		return strings.TrimSpace(resp)
	}

	cases := []string{
		"QUERYRANGE 1 2 3",
		"QUERYRANGE 0 0 1 1 bad 1",
		"QUERYRANGE 10 10 0 0 0 1", // inverted rectangle
		"QUERYRANGE 0 0 1 1 5 1",   // inverted time window
		"NEAREST",
		"NEAREST 0 0 bad 1",
		"NEAREST 0 0 0 0",  // k must be positive
		"NEAREST 0 0 0 -1", // k must be positive
		"SEAL",
		"SEAL notanumber",
	}
	for _, line := range cases {
		if resp := send(line); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q: response %q, want ERR", line, resp)
		}
	}
	if resp := send("SEAL 100"); resp != "OK sealed=0" {
		t.Errorf("SEAL on empty store: %q, want OK sealed=0", resp)
	}
	if resp := send("PING"); resp != "OK pong" {
		t.Errorf("connection unusable after errors: %q", resp)
	}
}
