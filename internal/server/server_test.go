package server

import (
	"bufio"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/trajectory"
	"repro/internal/wal"
)

// startServer runs a server on a random loopback port and returns its
// address and a shutdown func.
func startServer(t *testing.T, st *store.Store) (addr string, shutdown func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	return l.Addr().String(), func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	}
}

func TestClientServerBasics(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Append("bus-7", trajectory.S(float64(i*10), float64(i*100), 0)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	pos, err := c.PositionAt("bus-7", 45)
	if err != nil {
		t.Fatal(err)
	}
	if !pos.AlmostEqual(geo.Pt(450, 0), 1e-9) {
		t.Errorf("PositionAt = %v, want (450, 0)", pos)
	}
	snap, err := c.Snapshot("bus-7")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 10 {
		t.Errorf("snapshot has %d points, want 10", snap.Len())
	}
	if err := snap.Validate(); err != nil {
		t.Errorf("snapshot invalid: %v", err)
	}
	ids, err := c.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "bus-7" {
		t.Errorf("IDs = %v", ids)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 1 || stats.RawPoints != 10 || stats.RetainedPoints != 10 {
		t.Errorf("Stats = %d, %d, %d", stats.Objects, stats.RawPoints, stats.RetainedPoints)
	}
	if stats.PointsPerObject["bus-7"] != 10 {
		t.Errorf("PointsPerObject = %v, want bus-7:10", stats.PointsPerObject)
	}
	if stats.UptimeSeconds <= 0 {
		t.Errorf("UptimeSeconds = %v, want > 0", stats.UptimeSeconds)
	}
}

func TestServerQuery(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{CellSize: 100}))
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_ = c.Append("near", trajectory.S(0, 0, 0))
	_ = c.Append("near", trajectory.S(10, 100, 0))
	_ = c.Append("far", trajectory.S(0, 9000, 9000))
	_ = c.Append("far", trajectory.S(10, 9100, 9000))

	got, err := c.Query(geo.Rect{Min: geo.Pt(-10, -10), Max: geo.Pt(150, 10)}, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "near" {
		t.Errorf("Query = %v, want [near]", got)
	}
}

func TestServerQueryTolAndEvict(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{CellSize: 100}))
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_ = c.Append("a", trajectory.S(0, 0, 0))
	_ = c.Append("a", trajectory.S(10, 100, 0))
	_ = c.Append("a", trajectory.S(20, 200, 0))

	// A rectangle 30 m off the path misses plainly but hits with eps=50.
	rect := geo.Rect{Min: geo.Pt(40, 35), Max: geo.Pt(60, 45)}
	plain, err := c.Query(rect, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 0 {
		t.Errorf("plain query unexpectedly hit: %v", plain)
	}
	tol, err := c.QueryWithTolerance(rect, 0, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(tol) != 1 || tol[0] != "a" {
		t.Errorf("tolerance query = %v, want [a]", tol)
	}

	n, err := c.EvictBefore(15)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("EvictBefore removed nothing")
	}
	snap, err := c.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	if snap[0].T < 15 {
		t.Errorf("evicted sample survived: %v", snap[0])
	}
}

func TestServerErrors(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.PositionAt("ghost", 0); err == nil {
		t.Error("unknown object did not error")
	}
	if _, err := c.Snapshot("ghost"); err == nil {
		t.Error("unknown snapshot did not error")
	}
	if err := c.Append("bad id", trajectory.S(0, 0, 0)); err == nil {
		t.Error("whitespace id accepted client-side")
	}
	_ = c.Append("a", trajectory.S(5, 0, 0))
	if err := c.Append("a", trajectory.S(5, 0, 0)); err == nil {
		t.Error("duplicate timestamp accepted")
	}
	// The connection survives errors.
	if err := c.Ping(); err != nil {
		t.Errorf("ping after errors: %v", err)
	}
}

// Raw-protocol test: malformed lines get ERR responses without killing the
// connection.
func TestServerProtocolRobustness(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	send := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response to %q: %v", line, err)
		}
		return strings.TrimSpace(resp)
	}

	cases := []string{
		"BOGUS",
		"APPEND onlyid",
		"APPEND id notanumber 0 0",
		"POSITION",
		"QUERY 1 2 3",
		"QUERY 10 10 0 0 0 1", // inverted rectangle
		"QUERY 0 0 1 1 5 1",   // inverted time window
	}
	for _, line := range cases {
		if resp := send(line); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q: response %q, want ERR", line, resp)
		}
	}
	if resp := send("PING"); resp != "OK pong" {
		t.Errorf("connection unusable after errors: %q", resp)
	}
	if resp := send("QUIT"); resp != "OK bye" {
		t.Errorf("QUIT response %q", resp)
	}
}

func TestServerSubscribe(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()

	// Subscriber connection (raw protocol).
	subConn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer subConn.Close()
	subR := bufio.NewReader(subConn)
	fmt.Fprintln(subConn, "SUBSCRIBE bus-1")
	if resp, _ := subR.ReadString('\n'); !strings.HasPrefix(resp, "OK subscribed") {
		t.Fatalf("subscribe response %q", resp)
	}

	// Publisher connection.
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Append("bus-1", trajectory.S(10, 100, 200)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Append("bus-2", trajectory.S(10, 0, 0)); err != nil {
		t.Fatal(err) // different object: must NOT reach the subscriber
	}
	if err := pub.Append("bus-1", trajectory.S(20, 110, 210)); err != nil {
		t.Fatal(err)
	}

	subConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line1, err := subR.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	line2, err := subR.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line1) != "POS bus-1 10 100 200" {
		t.Errorf("first update %q", line1)
	}
	if strings.TrimSpace(line2) != "POS bus-1 20 110 210" {
		t.Errorf("second update %q", line2)
	}
}

// A SUBSCRIBE with a stream-algorithm spec must deliver only the retained
// points: the compressor runs per object inside the publish path.
func TestServerSubscribeCompressed(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()

	subConn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer subConn.Close()
	subR := bufio.NewReader(subConn)
	fmt.Fprintln(subConn, "SUBSCRIBE bus-1 operb:10")
	if resp, _ := subR.ReadString('\n'); !strings.HasPrefix(resp, "OK subscribed") {
		t.Fatalf("subscribe response %q", resp)
	}

	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// A straight run: OPERB retains only the first point immediately...
	for i := 0; i < 4; i++ {
		if err := pub.Append("bus-1", trajectory.S(float64(i), float64(i*10), 0)); err != nil {
			t.Fatal(err)
		}
	}
	// ...until a sharp corner forces a cut, which retains the corner's
	// predecessor (t=3). The intermediates t=1, t=2 must never arrive.
	if err := pub.Append("bus-1", trajectory.S(4, 30, 1000)); err != nil {
		t.Fatal(err)
	}

	subConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line1, err := subR.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	line2, err := subR.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line1) != "POS bus-1 0 0 0" {
		t.Errorf("first update %q, want the anchor point", line1)
	}
	if strings.TrimSpace(line2) != "POS bus-1 3 30 0" {
		t.Errorf("second update %q, want the pre-corner cut point", line2)
	}
}

// A malformed spec must be refused at SUBSCRIBE time, leaving the
// connection usable.
func TestServerSubscribeBadSpec(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	for _, line := range []string{"SUBSCRIBE bus-1 bogus:1", "SUBSCRIBE bus-1 operb:-5", "SUBSCRIBE a b c"} {
		fmt.Fprintln(conn, line)
		if resp, _ := r.ReadString('\n'); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q: response %q, want ERR", line, resp)
		}
	}
	fmt.Fprintln(conn, "PING")
	if resp, _ := r.ReadString('\n'); strings.TrimSpace(resp) != "OK pong" {
		t.Fatalf("connection unusable after bad SUBSCRIBE: %q", resp)
	}
}

func TestServerSubscribeWildcard(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()

	subConn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer subConn.Close()
	subR := bufio.NewReader(subConn)
	fmt.Fprintln(subConn, "SUBSCRIBE *")
	if resp, _ := subR.ReadString('\n'); !strings.HasPrefix(resp, "OK subscribed") {
		t.Fatalf("subscribe response %q", resp)
	}

	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	_ = pub.Append("a", trajectory.S(1, 0, 0))
	_ = pub.Append("b", trajectory.S(2, 0, 0))

	subConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		line, err := subR.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		got[strings.Fields(line)[1]] = true
	}
	if !got["a"] || !got["b"] {
		t.Errorf("wildcard missed updates: %v", got)
	}
}

func TestServerIdleTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store.New(store.Options{}))
	srv.IdleTimeout = 50 * time.Millisecond
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		<-done
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Stay silent past the idle timeout: the server must close the
	// connection (read returns EOF/reset).
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("idle connection not closed")
	}
}

// The server works over a durable (WAL-backed) backend, and the data
// survives a full server+store restart.
func TestServerDurableBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server.wal")
	opts := store.Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(40, 0) },
	}

	session := func(appendData bool) int {
		d, err := wal.OpenDurable(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := New(d)
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		c, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if appendData {
			for i := 0; i < 40; i++ {
				if err := c.Append("tram", trajectory.S(float64(i*10), float64(i*120), 0)); err != nil {
					t.Fatal(err)
				}
			}
		}
		snap, err := c.Snapshot("tram")
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		<-done
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return snap.Len()
	}

	wrote := session(true)
	if wrote < 2 {
		t.Fatalf("first session stored only %d points", wrote)
	}
	recovered := session(false)
	if recovered != wrote {
		t.Errorf("recovered %d points after restart, want %d", recovered, wrote)
	}
}

func TestServerWithCompressionAndConcurrency(t *testing.T) {
	st := store.New(store.Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(30, 0) },
	})
	addr, shutdown := startServer(t, st)
	defer shutdown()

	const clients = 6
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			id := fmt.Sprintf("veh-%d", n)
			for k := 0; k < 60; k++ {
				s := trajectory.S(float64(k*10), float64(k*50+n), float64(n*100))
				if err := c.Append(id, s); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != clients || stats.RawPoints != clients*60 {
		t.Errorf("Stats objects=%d raw=%d, want %d and %d", stats.Objects, stats.RawPoints, clients, clients*60)
	}
}

func TestServerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	st := store.New(store.Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(25, 0) },
		Metrics:       reg,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st)
	srv.UseRegistry(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		<-done
	}()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 20; i++ {
		if err := c.Append("tram-1", trajectory.S(float64(i), float64(i*10), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.PositionAt("tram-1", 5); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE server_commands_total counter",
		`server_commands_total{cmd="APPEND"} 20`,
		`server_commands_total{cmd="POSITION"} 1`,
		"server_connections_active 1",
		"server_subscribers_active 0",
		`server_subscribe_policy_drops_total{policy="drop-newest"} 0`,
		`server_subscribe_policy_drops_total{policy="drop-oldest"} 0`,
		`server_subscribe_policy_drops_total{policy="disconnect"} 0`,
		"store_appends_total 20",
		"stream_points_in_total 20",
		`server_command_seconds_count{cmd="APPEND"} 20`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("METRICS missing %q in:\n%s", want, text)
		}
	}

	// The counters behind the exposition are the registry's: the straight-line
	// trajectory compresses, and the live ratio is visible in the snapshot.
	for _, m := range reg.Snapshot() {
		if m.Name == "stream_points_in_total" && m.Value != 20 {
			t.Errorf("stream_points_in_total = %v, want 20", m.Value)
		}
	}
}
