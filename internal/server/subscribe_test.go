package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/trajectory"
)

// subscribeLine opens a raw connection, sends one SUBSCRIBE line, and
// returns the connection, its reader, and the server's one-line response.
func subscribeLine(t *testing.T, addr, line string) (net.Conn, *bufio.Reader, string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	r := bufio.NewReader(conn)
	fmt.Fprintln(conn, line)
	resp, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("no response to %q: %v", line, err)
	}
	return conn, r, strings.TrimSpace(resp)
}

func TestServerSubscribeBox(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()

	subConn, subR, resp := subscribeLine(t, addr, "SUBSCRIBE BOX 0 0 100 100")
	if !strings.HasPrefix(resp, "OK subscribed") {
		t.Fatalf("subscribe response %q", resp)
	}

	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// Inside, outside, inside again: only the in-box positions arrive, and
	// in order, regardless of object.
	if err := pub.Append("inside", trajectory.S(1, 50, 50)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Append("roamer", trajectory.S(1, 5000, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Append("roamer", trajectory.S(2, 99, 99)); err != nil {
		t.Fatal(err)
	}

	subConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for _, want := range []string{"POS inside 1 50 50", "POS roamer 2 99 99"} {
		line, err := subR.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(line); got != want {
			t.Fatalf("geofence delivered %q, want %q", got, want)
		}
	}
}

func TestServerSubscribePolicyGrammar(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()

	for _, tc := range []struct {
		line string
		ok   bool
	}{
		{"SUBSCRIBE car-1 drop-oldest", true},
		{"SUBSCRIBE * operb:10 disconnect", true},
		{"SUBSCRIBE * disconnect operb:10", true}, // either order
		{"SUBSCRIBE BOX 0 0 10 10 drop-newest", true},
		{"SUBSCRIBE BOX 0 0 10 10 ciseds:5 drop-oldest", true},
		{"SUBSCRIBE car-1 drop-oldest drop-newest", false}, // two policies
		{"SUBSCRIBE car-1 bogus-spec", false},
		{"SUBSCRIBE BOX 0 0 10", false},    // truncated bbox
		{"SUBSCRIBE BOX 10 10 0 0", false}, // empty box
	} {
		_, _, resp := subscribeLine(t, addr, tc.line)
		if got := strings.HasPrefix(resp, "OK subscribed"); got != tc.ok {
			t.Errorf("%q → %q, want ok=%v", tc.line, resp, tc.ok)
		}
	}
}

// TestServerEvictReleasesFeedCompressors is the server-level wiring test
// for the compressor-leak fix: after EVICT removes objects, wildcard feeds
// with a compression spec must shed the evicted objects' compressors.
func TestServerEvictReleasesFeedCompressors(t *testing.T) {
	st := store.New(store.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		<-done
	}()

	// Register the compressed wildcard feed directly on the server's bus so
	// the test can observe its per-object compressor count.
	factory, err := stream.ParseFactory("opwtr:5")
	if err != nil {
		t.Fatal(err)
	}
	sub := srv.bus.Subscribe(bus.SubOptions{ID: "*", NewComp: factory, Capacity: 4096})
	defer srv.bus.Unsubscribe(sub)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A churning fleet: 20 objects, then all but the newest evicted.
	for i := 0; i < 20; i++ {
		if err := c.Append(fmt.Sprintf("cab-%02d", i), trajectory.S(float64(i), 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := sub.CompCount(); got != 20 {
		t.Fatalf("CompCount = %d, want 20", got)
	}
	if _, err := c.EvictBefore(19); err != nil {
		t.Fatal(err)
	}
	if got := sub.CompCount(); got != 1 {
		t.Fatalf("CompCount after EVICT = %d, want 1 (evicted objects leaked)", got)
	}
}

// TestServerShutdownDuringFanout races graceful Shutdown against active
// publishers and subscribers; run with -race. Appends may fail once the
// drain begins — only data races and deadlocks fail the test.
func TestServerShutdownDuringFanout(t *testing.T) {
	st := store.New(store.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st)
	srv.SubBuf = 4
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	addr := l.Addr().String()
	var subWG sync.WaitGroup
	for i := 0; i < 8; i++ {
		line := "SUBSCRIBE *"
		if i%2 == 0 {
			line = "SUBSCRIBE BOX 0 0 1000 1000 drop-oldest"
		}
		conn, r, resp := subscribeLine(t, addr, line)
		if !strings.HasPrefix(resp, "OK subscribed") {
			t.Fatalf("subscribe: %q", resp)
		}
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			defer conn.Close()
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			for {
				if _, err := r.ReadString('\n'); err != nil {
					return
				}
			}
		}()
	}

	var pubWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		pubWG.Add(1)
		go func(g int) {
			defer pubWG.Done()
			c, err := Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			id := fmt.Sprintf("obj-%d", g)
			for i := 0; i < 200; i++ {
				if err := c.Append(id, trajectory.S(float64(i), float64(i%50), float64(g))); err != nil {
					return // shutdown has begun
				}
			}
		}(g)
	}

	time.Sleep(10 * time.Millisecond) // let fan-out start
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	pubWG.Wait()
	subWG.Wait()
	if err := <-done; err != ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestServerUnsubscribeDuringPublish races subscriber hangups against a
// publishing client; run with -race.
func TestServerUnsubscribeDuringPublish(t *testing.T) {
	addr, shutdown := startServer(t, store.New(store.Options{}))
	defer shutdown()

	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		c, err := Dial(addr)
		if err != nil {
			return
		}
		defer c.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Append("hot", trajectory.S(float64(i), 1, 2)); err != nil {
				return
			}
		}
	}()

	var subWG sync.WaitGroup
	for g := 0; g < 6; g++ {
		subWG.Add(1)
		go func(g int) {
			defer subWG.Done()
			for i := 0; i < 20; i++ {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				fmt.Fprintln(conn, "SUBSCRIBE hot drop-oldest")
				r := bufio.NewReader(conn)
				conn.SetReadDeadline(time.Now().Add(2 * time.Second))
				r.ReadString('\n') // the OK; maybe a POS or two
				r.ReadString('\n')
				conn.Close() // hang up mid-feed
			}
		}(g)
	}
	subWG.Wait()
	close(stop)
	pubWG.Wait()
}
