package server

import (
	"repro/internal/bus"
	"repro/internal/metrics"
)

// commands is the fixed protocol command set; instrumenting from a fixed
// table keeps metric cardinality bounded no matter what clients send
// (unknown commands share the "other" series).
var commands = []string{
	"PING", "QUIT", "SUBSCRIBE", "APPEND", "MAPPEND", "POSITION", "SNAPSHOT",
	"QUERY", "QUERYTOL", "QUERYRANGE", "NEAREST", "SEAL", "EVICT", "IDS",
	"STATS", "METRICS", "REPLICATE", "PROMOTE",
}

// instruments holds the server's registered metrics; see UseRegistry.
type instruments struct {
	registry *metrics.Registry

	connsActive *metrics.Gauge
	connsTotal  *metrics.Counter
	subDrops    *metrics.Counter
	sheds       *metrics.Counter

	// subsActive gauges live SUBSCRIBE feeds; policyDrops splits the drop
	// total by the slow-consumer policy that caused each drop (the plain
	// subDrops total cannot distinguish them).
	subsActive  *metrics.Gauge
	policyDrops [bus.NumPolicies]*metrics.Counter

	// batchAppends counts MAPPEND commands; batchSize is the distribution
	// of samples per batch, so the payoff of pipelined ingest is visible.
	batchAppends *metrics.Counter
	batchSize    *metrics.Histogram

	cmds    map[string]*metrics.Counter   // per protocol command
	cmdSecs map[string]*metrics.Histogram // dispatch latency per command
}

func newInstruments(r *metrics.Registry) *instruments {
	if r == nil {
		r = metrics.Default()
	}
	ins := &instruments{
		registry:     r,
		connsActive:  r.Gauge("server_connections_active"),
		connsTotal:   r.Counter("server_connections_total"),
		subDrops:     r.Counter("server_subscribe_drops_total"),
		sheds:        r.Counter("server_sheds_total"),
		batchAppends: r.Counter("server_batch_appends_total"),
		batchSize: r.Histogram("server_batch_append_size",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
		cmds:    make(map[string]*metrics.Counter, len(commands)+1),
		cmdSecs: make(map[string]*metrics.Histogram, len(commands)+1),
	}
	ins.subsActive = r.Gauge("server_subscribers_active")
	for p := bus.Policy(0); p < bus.NumPolicies; p++ {
		ins.policyDrops[p] = r.Counter("server_subscribe_policy_drops_total",
			metrics.L("policy", p.String()))
	}
	for _, cmd := range append([]string{"other"}, commands...) {
		ins.cmds[cmd] = r.Counter("server_commands_total", metrics.L("cmd", cmd))
		ins.cmdSecs[cmd] = r.Histogram("server_command_seconds", nil, metrics.L("cmd", cmd))
	}
	return ins
}

// busOptions wires the fan-out bus to the server's instruments.
func (ins *instruments) busOptions() bus.Options {
	return bus.Options{
		Active:      ins.subsActive,
		DropsTotal:  ins.subDrops,
		PolicyDrops: ins.policyDrops,
	}
}

// command resolves a wire command to its pre-registered counter and latency
// histogram, folding unknown commands into "other".
func (ins *instruments) command(cmd string) (*metrics.Counter, *metrics.Histogram) {
	if c, ok := ins.cmds[cmd]; ok {
		return c, ins.cmdSecs[cmd]
	}
	return ins.cmds["other"], ins.cmdSecs["other"]
}
