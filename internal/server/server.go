// Package server exposes the moving-object store over TCP with a
// newline-delimited text protocol, so position sources (GPS gateways,
// simulators) and analysis clients can share one live store — the
// transmission-side deployment the paper's introduction motivates.
//
// Protocol (one command per line, space-separated; responses are a single
// "OK ..."/"ERR ..." line, or data lines terminated by "END"):
//
//	APPEND <id> <t> <x> <y>                   → OK
//	MAPPEND <id> <n>                          → OK appended=<n> after n further
//	                                          "<t> <x> <y>" data lines: one
//	                                          batch append, one reply. A
//	                                          malformed data line rejects the
//	                                          whole batch; a store rejection
//	                                          (e.g. out-of-order time) applies
//	                                          an intact prefix and reports it
//	                                          as "ERR applied=<k> ..."
//	POSITION <id> <t>                         → OK <x> <y>
//	SNAPSHOT <id>                             → <t> <x> <y> lines, END
//	QUERY <minx> <miny> <maxx> <maxy> <t0> <t1> → id lines, END
//	QUERYTOL <minx> <miny> <maxx> <maxy> <t0> <t1> <eps> → id lines, END
//	                                          (tolerance-expanded query: no
//	                                          false negatives when eps is the
//	                                          compressor's error bound)
//	QUERYRANGE <minx> <miny> <maxx> <maxy> <t0> <t1> → "<id> <t> <x> <y>"
//	                                          lines, END: every stored point
//	                                          in the window, the union of hot
//	                                          retained samples and cold sealed
//	                                          blocks (reconstructed within the
//	                                          tier's error bound ε)
//	NEAREST <x> <y> <t> <k>                   → "<id> <x> <y> <dist>" lines
//	                                          (nearest first), END: the k
//	                                          objects closest to (x, y) at
//	                                          time t, interpolated across both
//	                                          tiers
//	SEAL <t>                                  → OK sealed=<n>: moves retained
//	                                          samples older than t into the
//	                                          cold sealed tier (ERR when the
//	                                          backend has no cold tier)
//	EVICT <t>                                 → OK removed=<n> (seals instead
//	                                          of dropping when a cold tier is
//	                                          configured)
//	IDS                                       → id lines, END
//	STATS                                     → OK objects=… raw=… retained=…
//	                                          compression=… uptime=… sealed=…
//	                                          sealedblocks=… sealedbytes=…
//	                                          walacked=… role=…, then one
//	                                          "obj <id> points=<n>" line per
//	                                          object, END (walacked is the
//	                                          WAL's durable byte offset, 0
//	                                          without a WAL; role is primary
//	                                          or follower)
//	METRICS                                   → Prometheus text exposition of
//	                                          the server's metrics registry,
//	                                          END
//	REPLICATE <offset> [seq]                  → OK replicate offset=<n>, then
//	                                          a replication stream of DATA/
//	                                          PING frames (see internal/repl)
//	                                          until the follower disconnects,
//	                                          is shed for lag, or the server
//	                                          stops; the connection leaves the
//	                                          command protocol for good
//	PROMOTE                                   → OK role=primary: flips a
//	                                          replication follower into a
//	                                          primary (manual failover);
//	                                          idempotent, also on a node that
//	                                          already is a primary
//	SUBSCRIBE <id|*> [spec] [policy]          → OK subscribed, then a live
//	                                          "POS <id> <t> <x> <y>" line per
//	                                          APPEND of a matching object
//	                                          until the subscriber closes its
//	                                          connection; the feed is
//	                                          best-effort (slow subscribers
//	                                          never block ingest). The
//	                                          optional spec is a
//	                                          stream.ParseFactory algorithm
//	                                          (e.g. operb:30, ciseds:30,
//	                                          opwtr:30) applied per object on
//	                                          this subscriber's feed: only
//	                                          retained points are delivered,
//	                                          trading latency/completeness
//	                                          for bandwidth under the
//	                                          algorithm's error bound. "none"
//	                                          (the default) relays every
//	                                          point. The optional policy
//	                                          picks what a saturated feed
//	                                          does: drop-newest (default —
//	                                          the incoming update is lost),
//	                                          drop-oldest (the feed
//	                                          converges on the freshest
//	                                          positions), or disconnect (the
//	                                          feed ends). Spec and policy
//	                                          may appear in either order
//	SUBSCRIBE BOX <minx> <miny> <maxx> <maxy> [spec] [policy]
//	                                          → OK subscribed: a geofence
//	                                          feed — like SUBSCRIBE *, but
//	                                          only positions inside the box
//	                                          are delivered; the predicate
//	                                          is evaluated server-side on
//	                                          the fan-out bus shard
//	PING                                      → OK pong
//	QUIT                                      → OK bye (connection closes)
//
// Object identifiers must not contain whitespace.
//
// Pipelining: clients may send many commands without waiting for replies.
// The server defers its response flush while more input is already
// buffered, so a pipelined batch costs one write syscall instead of one per
// command; replies always come back in command order.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bus"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/repl"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/trajectory"
)

// Backend is the store surface the server exposes. *store.Store implements
// it directly; *wal.DurableStore implements it with write-ahead-logged
// appends.
type Backend interface {
	Append(id string, s trajectory.Sample) error
	// AppendBatch ingests samples for one object in one store round trip.
	// On error the first `applied` samples were ingested (an intact
	// prefix) and the rest were not.
	AppendBatch(id string, ss []trajectory.Sample) (applied int, err error)
	Snapshot(id string) (trajectory.Trajectory, bool)
	PositionAt(id string, t float64) (geo.Point, bool)
	Query(rect geo.Rect, t0, t1 float64) []string
	QueryWithTolerance(rect geo.Rect, t0, t1, eps float64) []string
	// RangePoints returns every stored point in the window from both
	// storage tiers, ordered by object ID then time.
	RangePoints(rect geo.Rect, t0, t1 float64) []store.RangePoint
	// Nearest returns the k objects closest to q at time t, nearest first.
	Nearest(q geo.Point, t float64, k int) []store.Neighbor
	// SealBefore moves retained samples older than t into the cold sealed
	// tier; store.ErrSealDisabled when the backend has no cold tier.
	SealBefore(t float64) (int, error)
	EvictBefore(t float64) int
	IDs() []string
	Stats() store.Stats
}

// Server serves the protocol over a listener. Create with New, start with
// Serve, stop with Close (abrupt) or Shutdown (draining).
type Server struct {
	st Backend

	// IdleTimeout closes connections that send no command for the given
	// duration; 0 (the default) disables the limit. Set before Serve.
	IdleTimeout time.Duration

	// MaxConns caps concurrently served connections; excess connections are
	// shed with a one-line "ERR busy" and closed, counted in
	// server_sheds_total, instead of degrading every established session.
	// 0 (the default) means unlimited. Set before Serve.
	MaxConns int

	// WriteTimeout bounds each response write (and each streamed update),
	// so one wedged client cannot pin a handler forever. 0 (the default)
	// disables the limit. Set before Serve.
	WriteTimeout time.Duration

	// Repl, when non-nil, answers REPLICATE by streaming the backend's WAL
	// to the dialling follower and — in AckFollower mode — holds each write
	// acknowledgement until a follower has fsynced the record. Set before
	// Serve. A promoted follower needs this wired too: it is what lets the
	// restarted old primary re-attach to the new one.
	Repl *repl.Primary

	// Follower, when non-nil and not yet promoted, marks this node a
	// replication follower: write commands are refused with "ERR readonly"
	// (reads are served normally) and PROMOTE flips it to primary. Set
	// before Serve.
	Follower *repl.Follower

	// SubBuf is the per-subscriber ring capacity for SUBSCRIBE feeds; 0
	// (the default) selects 256, matching the buffered channel the fan-out
	// bus replaced. Set before Serve.
	SubBuf int

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// bus fans accepted observations out to SUBSCRIBE feeds: shard-keyed
	// registration, per-subscriber ring buffers with a slow-consumer
	// policy, and per-subscriber compression outside any server lock.
	bus *bus.Bus

	ins *instruments
}

// New returns a server over the given backend, instrumented in the default
// metrics registry (see UseRegistry).
func New(st Backend) *Server {
	ins := newInstruments(nil)
	return &Server{
		st:    st,
		conns: make(map[net.Conn]struct{}),
		bus:   bus.New(ins.busOptions()),
		ins:   ins,
	}
}

// UseRegistry re-registers the server's instruments in r and makes METRICS
// report r's snapshot. Call before Serve; pair it with the same registry in
// store.Options.Metrics so one snapshot covers the whole stack. The fan-out
// bus is rebuilt against the new instruments, so feeds subscribed earlier
// are closed — call before serving traffic.
func (s *Server) UseRegistry(r *metrics.Registry) {
	s.bus.CloseAll()
	s.ins = newInstruments(r)
	s.bus = bus.New(s.ins.busOptions())
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections on l until Close is called. It always returns a
// non-nil error; after Close the error is ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // best effort: the server is shutting down
			return ErrServerClosed
		}
		if s.MaxConns > 0 && len(s.conns) >= s.MaxConns {
			s.mu.Unlock()
			s.shed(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				_ = conn.Close() // handler exit: close error is unobservable by the client
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// shed refuses one connection over the MaxConns cap: a polite ERR line so
// the client knows to back off, then close. The write carries a short
// deadline so a black-holed client cannot stall the accept loop.
func (s *Server) shed(conn net.Conn) {
	s.ins.sheds.Inc()
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	fmt.Fprintln(conn, "ERR busy: connection limit reached, retry later")
	_ = conn.Close() // the client sees the ERR (or a reset); nothing to report
}

// Shutdown drains the server: it stops accepting, lets every in-flight
// command finish and flush its response, ends streaming feeds, and waits
// for all handlers to exit. If ctx expires first the remaining connections
// are force-closed, Close-style. Safe to call concurrently with Close;
// whichever runs first wins.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		// Unpark idle command readers so their handlers observe the drain;
		// a read deadline does not disturb in-flight response writes.
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	var err error
	if l != nil {
		err = l.Close()
	}
	// Close every subscriber feed: streaming handlers drain their ring
	// backlog and exit once the final updates are written.
	s.bus.CloseAll()
	// End replication streams (their handlers never finish on their own)
	// and release any writes still waiting on a follower acknowledgement.
	if s.Repl != nil {
		s.Repl.Stop()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.wg.Wait()
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close() // drain deadline expired: force-close stragglers
		}
		s.mu.Unlock()
		<-done
		if err == nil {
			err = ctx.Err()
		}
		return err
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		_ = c.Close() // best effort: unblocks handler reads; Close reports the listener error
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	if s.Repl != nil {
		s.Repl.Stop()
	}
	s.wg.Wait()
	return err
}

// maxLineLen bounds a single protocol line, matching the Scanner buffer cap
// this reader replaced: a client cannot make the server buffer unbounded
// garbage.
const maxLineLen = 1 << 20

var errLineTooLong = errors.New("server: line exceeds 1 MiB")

// readCommandLine reads one newline-terminated line with the trailing
// newline (and any \r) stripped, enforcing maxLineLen. A final unterminated
// line before EOF is returned as-is, Scanner-style.
func readCommandLine(br *bufio.Reader) (string, error) {
	var long []byte
	for {
		frag, err := br.ReadSlice('\n')
		switch {
		case err == nil:
			if long == nil {
				return strings.TrimRight(string(frag), "\r\n"), nil
			}
			long = append(long, frag...)
			return strings.TrimRight(string(long), "\r\n"), nil
		case errors.Is(err, bufio.ErrBufferFull):
			long = append(long, frag...)
			if len(long) > maxLineLen {
				return "", errLineTooLong
			}
		default:
			if len(long)+len(frag) > 0 && errors.Is(err, io.EOF) {
				return string(append(long, frag...)), nil
			}
			return "", err
		}
	}
}

func (s *Server) handle(conn net.Conn) {
	s.ins.connsTotal.Inc()
	s.ins.connsActive.Inc()
	defer s.ins.connsActive.Dec()
	br := bufio.NewReaderSize(conn, 4096)
	w := bufio.NewWriter(conn)
	for {
		s.mu.Lock()
		draining := s.closed
		s.mu.Unlock()
		if draining {
			// Shutdown in progress: the in-flight command (if any) has been
			// answered and flushed; stop reading new ones.
			return
		}
		if s.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
				return
			}
		}
		line, err := readCommandLine(br)
		if err != nil {
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		quit, sub, rr := s.dispatch(w, br, line)
		if rr != nil {
			// The connection leaves the command protocol and becomes a
			// replication stream until it breaks; ServeFollower flushes any
			// responses still buffered from a pipelined batch first.
			_ = s.Repl.ServeFollower(conn, br, w, rr.offset, rr.seq)
			return
		}
		// Pipelining fast path: while more input is already buffered, defer
		// the flush — the whole pipelined batch answers in one syscall.
		if br.Buffered() > 0 && !quit && sub == nil {
			continue
		}
		if s.flush(conn, w) != nil || quit {
			return
		}
		if sub != nil {
			s.stream(conn, w, sub)
			return
		}
	}
}

// flush writes out the buffered response under the configured WriteTimeout.
func (s *Server) flush(conn net.Conn, w *bufio.Writer) error {
	if s.WriteTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout)); err != nil {
			return err
		}
	}
	return w.Flush()
}

// stream pumps a subscriber's feed to the connection until the feed closes
// (client unsubscription, a disconnect-policy overflow, or Shutdown) or the
// write fails; a reader goroutine watches for the client closing its end.
// Each ring drain is written as one batch with a single flush, so a burst
// of published updates costs one SetWriteDeadline+Flush syscall pair
// instead of one per line.
func (s *Server) stream(conn net.Conn, w *bufio.Writer, sub *bus.Subscriber) {
	defer s.bus.Unsubscribe(sub)
	// Detect client hangup: when the read side errors, unsubscribe, which
	// closes the feed and ends the drain loop below. The goroutine is
	// tracked by s.wg (the counter is already positive: the handler holds a
	// unit), and terminates when the handler's deferred conn.Close unblocks
	// the read — so Close cannot return while it still runs.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if s.IdleTimeout > 0 {
			// Streaming connections are exempt from the idle timeout on
			// reads (the client is not expected to talk); clearing the
			// deadline once covers every subsequent read.
			if err := conn.SetReadDeadline(time.Time{}); err != nil {
				s.bus.Unsubscribe(sub)
				return
			}
		}
		buf := make([]byte, 64)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		s.bus.Unsubscribe(sub)
	}()
	var lines []string
	for {
		var open bool
		lines, open = sub.Drain(lines)
		for _, line := range lines {
			if _, err := w.WriteString(line); err != nil {
				return
			}
			if err := w.WriteByte('\n'); err != nil {
				return
			}
		}
		if len(lines) > 0 {
			if err := s.flush(conn, w); err != nil {
				return
			}
		}
		if !open {
			return
		}
	}
}

// publish fans one accepted observation out to subscriber feeds via the
// sharded bus: no server lock is held, and per-subscriber compression and
// line formatting run outside any global lock.
func (s *Server) publish(id string, smp trajectory.Sample) {
	s.bus.Publish(id, smp)
}

// releaseEvictedComps drops per-object feed compressors for objects that no
// longer exist in the store — without this, a wildcard subscriber with a
// compression spec leaks a compressor per evicted object forever under
// fleet churn.
func (s *Server) releaseEvictedComps() {
	ids := s.st.IDs()
	live := make(map[string]bool, len(ids))
	for _, id := range ids {
		live[id] = true
	}
	s.bus.ReleaseCompressors(func(id string) bool { return live[id] })
}

// replRequest carries a validated REPLICATE command from dispatch back to
// the handler loop, which owns the net.Conn the stream needs.
type replRequest struct {
	offset int64
	seq    uint64
}

// readonly reports whether write commands must be refused: the node is a
// replication follower that has not been promoted.
func (s *Server) readonly() bool {
	return s.Follower != nil && !s.Follower.Promoted()
}

// role names the node's replication role for STATS.
func (s *Server) role() string {
	if s.readonly() {
		return "follower"
	}
	return "primary"
}

// errReadonly is the refusal every write command gets on a follower.
const errReadonly = "ERR readonly: this node is a replication follower (send writes to the primary or PROMOTE)"

// ackedBackend is the optional backend surface replication-aware STATS
// report; *wal.DurableStore implements it.
type ackedBackend interface {
	AckedOffset() int64
}

// dispatch executes one command line; it reports whether the connection
// should close, a non-nil subscriber when the connection switches to
// streaming mode, and a non-nil replRequest when it switches to a
// replication stream. MAPPEND additionally reads its data lines from br.
func (s *Server) dispatch(w *bufio.Writer, br *bufio.Reader, line string) (quit bool, sub *bus.Subscriber, rr *replRequest) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]

	count, seconds := s.ins.command(cmd)
	count.Inc()
	defer seconds.ObserveSince(time.Now())

	switch cmd {
	case "PING":
		fmt.Fprintln(w, "OK pong")
	case "QUIT":
		fmt.Fprintln(w, "OK bye")
		return true, nil, nil
	case "SUBSCRIBE":
		return false, s.cmdSubscribe(w, args), nil
	case "APPEND":
		s.cmdAppend(w, args)
	case "MAPPEND":
		if err := s.cmdBatchAppend(w, br, args); err != nil {
			return true, nil, nil // torn mid-batch: no way back to command framing
		}
	case "REPLICATE":
		return false, nil, s.cmdReplicate(w, args)
	case "PROMOTE":
		s.cmdPromote(w)
	case "POSITION":
		s.cmdPosition(w, args)
	case "SNAPSHOT":
		s.cmdSnapshot(w, args)
	case "QUERY":
		s.cmdQuery(w, args)
	case "QUERYTOL":
		s.cmdQueryTol(w, args)
	case "QUERYRANGE":
		s.cmdQueryRange(w, args)
	case "NEAREST":
		s.cmdNearest(w, args)
	case "SEAL":
		s.cmdSeal(w, args)
	case "EVICT":
		s.cmdEvict(w, args)
	case "IDS":
		for _, id := range s.st.IDs() {
			fmt.Fprintln(w, id)
		}
		fmt.Fprintln(w, "END")
	case "STATS":
		s.cmdStats(w)
	case "METRICS":
		metrics.WritePrometheus(w, s.ins.registry.Snapshot())
		fmt.Fprintln(w, "END")
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
	return false, nil, nil
}

const subscribeUsage = "ERR usage: SUBSCRIBE <id|*> [spec] [policy] | SUBSCRIBE BOX <minx> <miny> <maxx> <maxy> [spec] [policy]"

// cmdSubscribe parses both SUBSCRIBE forms and registers the feed on the
// fan-out bus (nil return: an error was written). The tail arguments — at
// most one compression spec and one slow-consumer policy — may appear in
// either order: policy names never collide with ParseFactory's spec
// grammar.
func (s *Server) cmdSubscribe(w *bufio.Writer, args []string) *bus.Subscriber {
	if len(args) < 1 {
		fmt.Fprintln(w, subscribeUsage)
		return nil
	}
	opts := bus.SubOptions{ID: args[0], Capacity: s.SubBuf}
	tail := args[1:]
	if strings.ToUpper(args[0]) == "BOX" {
		if len(args) < 5 {
			fmt.Fprintln(w, subscribeUsage)
			return nil
		}
		v, err := parseFloats(args[1:5])
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return nil
		}
		rect := geo.Rect{Min: geo.Pt(v[0], v[1]), Max: geo.Pt(v[2], v[3])}
		if rect.IsEmpty() {
			fmt.Fprintln(w, "ERR empty geofence box")
			return nil
		}
		opts.Box = &rect
		tail = args[5:]
	}
	var havePolicy, haveSpec bool
	for _, arg := range tail {
		if p, ok := bus.ParsePolicy(arg); ok && !havePolicy {
			opts.Policy = p
			havePolicy = true
			continue
		}
		if haveSpec {
			fmt.Fprintln(w, subscribeUsage)
			return nil
		}
		factory, err := stream.ParseFactory(arg)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return nil
		}
		opts.NewComp = factory // nil for "none": plain relay
		haveSpec = true
	}
	sub := s.bus.Subscribe(opts)
	fmt.Fprintln(w, "OK subscribed")
	return sub
}

// cmdReplicate validates REPLICATE <offset> [seq] and hands the stream
// request back to the handler loop (nil return: an error was written).
func (s *Server) cmdReplicate(w *bufio.Writer, args []string) *replRequest {
	if s.Repl == nil {
		fmt.Fprintln(w, "ERR replication not available (this server runs without a WAL)")
		return nil
	}
	if len(args) < 1 || len(args) > 2 {
		fmt.Fprintln(w, "ERR usage: REPLICATE <offset> [seq]")
		return nil
	}
	offset, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil || offset < 0 {
		fmt.Fprintln(w, "ERR offset must be a non-negative integer")
		return nil
	}
	var seq uint64
	if len(args) == 2 {
		seq, err = strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Fprintln(w, "ERR seq must be a non-negative integer")
			return nil
		}
	}
	return &replRequest{offset: offset, seq: seq}
}

// cmdPromote flips a follower into a primary; on a node that already is a
// primary it is a no-op. Always answers the resulting role, so retrying the
// command against the wrong node is harmless.
func (s *Server) cmdPromote(w *bufio.Writer) {
	if s.Follower != nil {
		s.Follower.Promote()
	}
	fmt.Fprintln(w, "OK role=primary")
}

func parseFloats(args []string) ([]float64, error) {
	out := make([]float64, len(args))
	for i, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %v", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

func (s *Server) cmdAppend(w *bufio.Writer, args []string) {
	if s.readonly() {
		fmt.Fprintln(w, errReadonly)
		return
	}
	if len(args) != 4 {
		fmt.Fprintln(w, "ERR usage: APPEND <id> <t> <x> <y>")
		return
	}
	v, err := parseFloats(args[1:])
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	smp := trajectory.S(v[0], v[1], v[2])
	if err := s.st.Append(args[0], smp); err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	s.publish(args[0], smp)
	// Follower-ack mode: the record is locally durable, but the OK must
	// additionally mean a follower fsynced it. A wait failure is reported as
	// ERR — the client must treat the append as unconfirmed, exactly like a
	// connection cut after send.
	if s.Repl != nil {
		if err := s.Repl.WaitReplicated(); err != nil {
			fmt.Fprintf(w, "ERR repl: %v\n", err)
			return
		}
	}
	fmt.Fprintln(w, "OK")
}

// maxBatchAppend caps MAPPEND batch sizes; a batch is buffered in memory
// before it is applied, so the cap bounds per-connection memory.
const maxBatchAppend = 10000

// cmdBatchAppend handles MAPPEND <id> <n>: n further "<t> <x> <y>" data
// lines belong to the command, and one line answers the whole batch. All n
// lines are consumed even when one is malformed, so the connection never
// desynchronizes into interpreting samples as commands. A returned error
// means the data lines could not be read and the connection must close.
func (s *Server) cmdBatchAppend(w *bufio.Writer, br *bufio.Reader, args []string) error {
	if len(args) != 2 {
		fmt.Fprintln(w, "ERR usage: MAPPEND <id> <n>")
		return nil
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n <= 0 || n > maxBatchAppend {
		fmt.Fprintf(w, "ERR batch size must be 1..%d\n", maxBatchAppend)
		return nil
	}
	samples := make([]trajectory.Sample, 0, n)
	var badLine error
	for i := 0; i < n; i++ {
		line, err := readCommandLine(br)
		if err != nil {
			return err
		}
		v, perr := parseFloats(strings.Fields(strings.TrimSpace(line)))
		if perr != nil || len(v) != 3 {
			if badLine == nil {
				badLine = fmt.Errorf("batch sample %d: want <t> <x> <y>", i+1)
			}
			continue
		}
		samples = append(samples, trajectory.S(v[0], v[1], v[2]))
	}
	if badLine != nil {
		fmt.Fprintf(w, "ERR %v\n", badLine)
		return nil
	}
	// The readonly refusal comes only after every data line is consumed, so
	// the connection stays in command framing.
	if s.readonly() {
		fmt.Fprintln(w, errReadonly)
		return nil
	}
	s.ins.batchAppends.Inc()
	s.ins.batchSize.Observe(float64(len(samples)))
	applied, err := s.st.AppendBatch(args[0], samples)
	for _, smp := range samples[:applied] {
		s.publish(args[0], smp)
	}
	if err != nil {
		fmt.Fprintf(w, "ERR applied=%d: %v\n", applied, err)
		return nil
	}
	if s.Repl != nil {
		if err := s.Repl.WaitReplicated(); err != nil {
			// The batch is applied and locally durable but its replication
			// is unconfirmed; applied= lets the client keep exact cursors.
			fmt.Fprintf(w, "ERR applied=%d: repl: %v\n", applied, err)
			return nil
		}
	}
	fmt.Fprintf(w, "OK appended=%d\n", applied)
	return nil
}

func (s *Server) cmdPosition(w *bufio.Writer, args []string) {
	if len(args) != 2 {
		fmt.Fprintln(w, "ERR usage: POSITION <id> <t>")
		return
	}
	t, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	pos, ok := s.st.PositionAt(args[0], t)
	if !ok {
		fmt.Fprintln(w, "ERR no position (unknown object or time outside span)")
		return
	}
	fmt.Fprintf(w, "OK %g %g\n", pos.X, pos.Y)
}

func (s *Server) cmdSnapshot(w *bufio.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(w, "ERR usage: SNAPSHOT <id>")
		return
	}
	snap, ok := s.st.Snapshot(args[0])
	if !ok {
		fmt.Fprintf(w, "ERR unknown object %q\n", args[0])
		return
	}
	for _, p := range snap {
		fmt.Fprintf(w, "%g %g %g\n", p.T, p.X, p.Y)
	}
	fmt.Fprintln(w, "END")
}

func (s *Server) cmdQuery(w *bufio.Writer, args []string) {
	if len(args) != 6 {
		fmt.Fprintln(w, "ERR usage: QUERY <minx> <miny> <maxx> <maxy> <t0> <t1>")
		return
	}
	v, err := parseFloats(args)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	rect := geo.Rect{Min: geo.Pt(v[0], v[1]), Max: geo.Pt(v[2], v[3])}
	if rect.IsEmpty() || v[5] < v[4] {
		fmt.Fprintln(w, "ERR empty query window")
		return
	}
	for _, id := range s.st.Query(rect, v[4], v[5]) {
		fmt.Fprintln(w, id)
	}
	fmt.Fprintln(w, "END")
}

func (s *Server) cmdQueryTol(w *bufio.Writer, args []string) {
	if len(args) != 7 {
		fmt.Fprintln(w, "ERR usage: QUERYTOL <minx> <miny> <maxx> <maxy> <t0> <t1> <eps>")
		return
	}
	v, err := parseFloats(args)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	rect := geo.Rect{Min: geo.Pt(v[0], v[1]), Max: geo.Pt(v[2], v[3])}
	if rect.IsEmpty() || v[5] < v[4] {
		fmt.Fprintln(w, "ERR empty query window")
		return
	}
	for _, id := range s.st.QueryWithTolerance(rect, v[4], v[5], v[6]) {
		fmt.Fprintln(w, id)
	}
	fmt.Fprintln(w, "END")
}

func (s *Server) cmdQueryRange(w *bufio.Writer, args []string) {
	if len(args) != 6 {
		fmt.Fprintln(w, "ERR usage: QUERYRANGE <minx> <miny> <maxx> <maxy> <t0> <t1>")
		return
	}
	v, err := parseFloats(args)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	rect := geo.Rect{Min: geo.Pt(v[0], v[1]), Max: geo.Pt(v[2], v[3])}
	if rect.IsEmpty() || v[5] < v[4] {
		fmt.Fprintln(w, "ERR empty query window")
		return
	}
	for _, p := range s.st.RangePoints(rect, v[4], v[5]) {
		fmt.Fprintf(w, "%s %g %g %g\n", p.ID, p.S.T, p.S.X, p.S.Y)
	}
	fmt.Fprintln(w, "END")
}

func (s *Server) cmdNearest(w *bufio.Writer, args []string) {
	if len(args) != 4 {
		fmt.Fprintln(w, "ERR usage: NEAREST <x> <y> <t> <k>")
		return
	}
	v, err := parseFloats(args[:3])
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	k, err := strconv.Atoi(args[3])
	if err != nil || k <= 0 {
		fmt.Fprintln(w, "ERR k must be a positive integer")
		return
	}
	for _, nb := range s.st.Nearest(geo.Pt(v[0], v[1]), v[2], k) {
		fmt.Fprintf(w, "%s %g %g %g\n", nb.ID, nb.Pos.X, nb.Pos.Y, nb.Dist)
	}
	fmt.Fprintln(w, "END")
}

func (s *Server) cmdSeal(w *bufio.Writer, args []string) {
	if s.readonly() {
		fmt.Fprintln(w, errReadonly)
		return
	}
	if len(args) != 1 {
		fmt.Fprintln(w, "ERR usage: SEAL <t>")
		return
	}
	t, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	n, err := s.st.SealBefore(t)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	if n > 0 {
		s.releaseEvictedComps()
	}
	fmt.Fprintf(w, "OK sealed=%d\n", n)
}

// cmdStats reports storage statistics from one consistent store snapshot:
// a summary line, then one "obj <id> points=<n>" line per object, then END.
// Uptime comes from the metrics registry so STATS and METRICS agree on the
// process start instant.
func (s *Server) cmdStats(w *bufio.Writer) {
	st := s.st.Stats()
	var walAcked int64
	if ab, ok := s.st.(ackedBackend); ok {
		walAcked = ab.AckedOffset()
	}
	fmt.Fprintf(w, "OK objects=%d raw=%d retained=%d compression=%.1f uptime=%.3f sealed=%d sealedblocks=%d sealedbytes=%d walacked=%d role=%s\n",
		st.Objects, st.RawPoints, st.RetainedPoints, st.CompressionPct,
		s.ins.registry.Uptime().Seconds(),
		st.SealedPoints, st.SealedBlocks, st.SealedBytes,
		walAcked, s.role())
	ids := make([]string, 0, len(st.PointsPerObject))
	for id := range st.PointsPerObject {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(w, "obj %s points=%d\n", id, st.PointsPerObject[id])
	}
	fmt.Fprintln(w, "END")
}

func (s *Server) cmdEvict(w *bufio.Writer, args []string) {
	if s.readonly() {
		fmt.Fprintln(w, errReadonly)
		return
	}
	if len(args) != 1 {
		fmt.Fprintln(w, "ERR usage: EVICT <t>")
		return
	}
	t, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	n := s.st.EvictBefore(t)
	if n > 0 {
		s.releaseEvictedComps()
	}
	fmt.Fprintf(w, "OK removed=%d\n", n)
}
