package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trajectory"
)

func TestClientAppendBatch(t *testing.T) {
	st := store.New(store.Options{})
	addr, shutdown := startServer(t, st)
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := make([]trajectory.Sample, 64)
	for i := range batch {
		batch[i] = trajectory.S(float64(i), float64(i*2), float64(i*3))
	}
	if err := c.AppendBatch("veh-1", batch); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	snap, err := c.Snapshot("veh-1")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != len(batch) {
		t.Fatalf("snapshot has %d points, want %d", snap.Len(), len(batch))
	}
	for i, s := range snap {
		if s != batch[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, s, batch[i])
		}
	}
	// Batch equals singles: the store state must be what 64 APPENDs build.
	for _, s := range batch {
		if err := c.Append("veh-singles", s); err != nil {
			t.Fatal(err)
		}
	}
	single, err := c.Snapshot("veh-singles")
	if err != nil {
		t.Fatal(err)
	}
	if single.Len() != snap.Len() {
		t.Fatalf("batch stored %d points, singles stored %d", snap.Len(), single.Len())
	}

	// Empty batch is a no-op, not a protocol exchange.
	if err := c.AppendBatch("veh-1", nil); err != nil {
		t.Fatalf("empty AppendBatch: %v", err)
	}
}

// rawConn speaks the wire protocol directly for the cases the Client
// cannot produce.
func rawConn(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn, bufio.NewReader(conn)
}

func TestMAppendWireErrors(t *testing.T) {
	st := store.New(store.Options{})
	addr, shutdown := startServer(t, st)
	defer shutdown()

	conn, br := rawConn(t, addr)

	readReply := func() string {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read reply: %v", err)
		}
		return strings.TrimSpace(line)
	}

	// Usage error: no data lines follow, the connection stays usable.
	fmt.Fprintf(conn, "MAPPEND veh-1\n")
	if got := readReply(); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("MAPPEND with 1 arg → %q, want usage error", got)
	}
	// Batch size out of range.
	fmt.Fprintf(conn, "MAPPEND veh-1 0\n")
	if got := readReply(); !strings.HasPrefix(got, "ERR batch size") {
		t.Fatalf("MAPPEND 0 → %q, want batch-size error", got)
	}
	// A malformed data line rejects the whole batch, but all n lines are
	// consumed: the next command must still parse as a command.
	fmt.Fprintf(conn, "MAPPEND veh-1 3\n1 1 1\nnot a sample\n3 3 3\n")
	if got := readReply(); !strings.HasPrefix(got, "ERR batch sample 2") {
		t.Fatalf("malformed batch → %q, want sample-2 error", got)
	}
	fmt.Fprintf(conn, "PING\n")
	if got := readReply(); got != "OK pong" {
		t.Fatalf("PING after rejected batch → %q — connection desynchronized", got)
	}
	if snap, ok := st.Snapshot("veh-1"); ok && snap.Len() > 0 {
		t.Fatalf("rejected batch still stored %d samples", snap.Len())
	}

	// Out-of-order mid-batch: the prefix before the bad sample sticks.
	fmt.Fprintf(conn, "MAPPEND veh-2 3\n1 1 1\n2 2 2\n1.5 9 9\n")
	if got := readReply(); !strings.HasPrefix(got, "ERR applied=2") {
		t.Fatalf("out-of-order batch → %q, want ERR applied=2", got)
	}
	snap, _ := st.Snapshot("veh-2")
	if snap.Len() != 2 || snap[1].T != 2 {
		t.Fatalf("after partial batch: %+v, want intact 2-sample prefix", snap)
	}
}

// TestPipelinedCommands sends a whole burst of commands in one write and
// only then reads: every reply must come back, in order — the deferred
// flush must never deadlock a pipelining client.
func TestPipelinedCommands(t *testing.T) {
	reg := metrics.NewRegistry()
	st := store.New(store.Options{Metrics: reg})
	addr, shutdown := startServer(t, st)
	defer shutdown()

	conn, br := rawConn(t, addr)

	const n = 100
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "APPEND veh-p %d %d 0\n", i, i)
	}
	b.WriteString("PING\n")
	if _, err := conn.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if strings.TrimSpace(line) != "OK" {
			t.Fatalf("reply %d = %q, want OK", i, strings.TrimSpace(line))
		}
	}
	if line, _ := br.ReadString('\n'); strings.TrimSpace(line) != "OK pong" {
		t.Fatalf("final reply = %q, want OK pong", strings.TrimSpace(line))
	}
	snap, _ := st.Snapshot("veh-p")
	if snap.Len() != n {
		t.Fatalf("stored %d samples, want %d", snap.Len(), n)
	}
}

// A pipelined stream of MAPPEND batches sent in one write — the trajload
// batch-ingest shape.
func TestPipelinedBatches(t *testing.T) {
	st := store.New(store.Options{})
	addr, shutdown := startServer(t, st)
	defer shutdown()

	conn, br := rawConn(t, addr)
	const batches, per = 20, 32
	var b strings.Builder
	tick := 0
	for k := 0; k < batches; k++ {
		fmt.Fprintf(&b, "MAPPEND veh-b %d\n", per)
		for i := 0; i < per; i++ {
			fmt.Fprintf(&b, "%d %d %d\n", tick, tick, tick)
			tick++
		}
	}
	if _, err := conn.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < batches; k++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("batch reply %d: %v", k, err)
		}
		if want := fmt.Sprintf("OK appended=%d", per); strings.TrimSpace(line) != want {
			t.Fatalf("batch reply %d = %q, want %q", k, strings.TrimSpace(line), want)
		}
	}
	snap, _ := st.Snapshot("veh-b")
	if snap.Len() != batches*per {
		t.Fatalf("stored %d samples, want %d", snap.Len(), batches*per)
	}
}

func TestBatchMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	st := store.New(store.Options{Metrics: reg})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st)
	srv.UseRegistry(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() { _ = srv.Close(); <-done }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := 0; k < 3; k++ {
		batch := make([]trajectory.Sample, 16)
		for i := range batch {
			batch[i] = trajectory.S(float64(k*16+i), 0, 0)
		}
		if err := c.AppendBatch("veh-m", batch); err != nil {
			t.Fatal(err)
		}
	}
	var sawCount, sawSize bool
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "server_batch_appends_total":
			sawCount = true
			if m.Value != 3 {
				t.Errorf("server_batch_appends_total = %v, want 3", m.Value)
			}
		case "server_batch_append_size":
			sawSize = true
			if m.Count != 3 || m.Sum != 48 {
				t.Errorf("batch size histogram count=%d sum=%v, want 3 batches of 16", m.Count, m.Sum)
			}
		}
	}
	if !sawCount || !sawSize {
		t.Errorf("batch metrics missing: count=%v sizeHist=%v", sawCount, sawSize)
	}
}
