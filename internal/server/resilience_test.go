package server

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/repl"
	"repro/internal/store"
	"repro/internal/trajectory"
	"repro/internal/wal"
)

// fastOpts returns client options tuned for tests: tight timeouts, tiny
// backoff, isolated metrics.
func fastOpts(reg *metrics.Registry) ClientOptions {
	return ClientOptions{
		DialTimeout: time.Second,
		IOTimeout:   500 * time.Millisecond,
		MaxRetries:  3,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        1,
		Metrics:     reg,
	}
}

// An accept-then-silent listener: the pathological peer that accepts the
// TCP handshake and then never speaks. The deadline, not the test timeout,
// must end the round trip.
func TestClientIOTimeoutAgainstSilentServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, say nothing
		}
	}()
	defer func() { l.Close(); <-done }()

	opts := fastOpts(metrics.NewRegistry())
	opts.IOTimeout = 100 * time.Millisecond
	opts.MaxRetries = 0
	c, err := DialOptions(l.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("ping against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline did not bound the round trip: took %v", elapsed)
	}
}

// The client must survive a full server restart: idempotent commands
// reconnect and retry transparently, and the retry/reconnect counters
// record that it happened.
func TestClientReconnectsAcrossServerRestart(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := New(store.New(store.Options{Metrics: metrics.NewRegistry()}))
	srv.UseRegistry(metrics.NewRegistry())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	reg := metrics.NewRegistry()
	c, err := DialOptions(addr, fastOpts(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Kill the server, wait until the port is actually free, restart it.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := New(store.New(store.Options{Metrics: metrics.NewRegistry()}))
	srv2.UseRegistry(metrics.NewRegistry())
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(l2) }()
	defer func() {
		srv2.Close()
		<-done2
	}()

	// The old connection is dead; an idempotent command heals in place.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping across restart: %v", err)
	}
	var retries, reconnects float64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "client_retries_total":
			retries = m.Value
		case "client_reconnects_total":
			reconnects = m.Value
		}
	}
	if retries < 1 {
		t.Errorf("client_retries_total = %v, want >= 1", retries)
	}
	if reconnects < 1 {
		t.Errorf("client_reconnects_total = %v, want >= 1", reconnects)
	}
}

// APPEND must never be blindly re-sent: a transport failure surfaces to the
// caller, while the next call may freely redial (nothing sent yet). A
// RemoteError is final even for idempotent commands.
func TestClientAppendNotRetried(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := New(store.New(store.Options{Metrics: metrics.NewRegistry()}))
	srv.UseRegistry(metrics.NewRegistry())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	reg := metrics.NewRegistry()
	c, err := DialOptions(addr, fastOpts(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Append("car", trajectory.S(0, 0, 0)); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	<-done
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := New(store.New(store.Options{Metrics: metrics.NewRegistry()}))
	srv2.UseRegistry(metrics.NewRegistry())
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(l2) }()
	defer func() {
		srv2.Close()
		<-done2
	}()

	// First append over the dead connection: ambiguous outcome, must error
	// rather than blind-resend.
	if err := c.Append("car", trajectory.S(1, 0, 0)); err == nil {
		t.Fatal("append over a dead connection reported success")
	}
	// Next append: nothing in flight, so the client may redial and send.
	if err := c.Append("car", trajectory.S(2, 0, 0)); err != nil {
		t.Fatalf("append after redial: %v", err)
	}

	// Semantic rejection is a RemoteError and is never retried.
	before := counterVal(reg, "client_retries_total")
	err = c.Append("car", trajectory.S(2, 0, 0)) // duplicate timestamp
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("duplicate append error = %v, want RemoteError", err)
	}
	if after := counterVal(reg, "client_retries_total"); after != before {
		t.Errorf("RemoteError consumed retries: %v -> %v", before, after)
	}
}

func counterVal(reg *metrics.Registry, name string) float64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// Over the MaxConns cap, connections are shed with a polite ERR line —
// counted in server_sheds_total — and established sessions keep working.
func TestServerMaxConnsShed(t *testing.T) {
	reg := metrics.NewRegistry()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store.New(store.Options{Metrics: reg}))
	srv.UseRegistry(reg)
	srv.MaxConns = 1
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		<-done
	}()

	opts := fastOpts(metrics.NewRegistry())
	opts.MaxRetries = 0
	c, err := DialOptions(l.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Second connection: over the cap. It must read the busy line, then EOF.
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	n, _ := raw.Read(buf)
	if got := strings.TrimSpace(string(buf[:n])); !strings.HasPrefix(got, "ERR busy") {
		t.Errorf("shed connection read %q, want an ERR busy line", got)
	}
	if got := counterVal(reg, "server_sheds_total"); got != 1 {
		t.Errorf("server_sheds_total = %v, want 1", got)
	}
	// The established session was not degraded.
	if err := c.Ping(); err != nil {
		t.Errorf("established session broken by shed: %v", err)
	}

	// Freeing the slot readmits new connections.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		c2, err := DialOptions(l.Addr().String(), opts)
		if err == nil {
			if err := c2.Ping(); err == nil {
				c2.Close()
				break
			}
			c2.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after client close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Shutdown drains: the listener closes, idle and streaming connections end,
// and the call returns well before the context deadline.
func TestServerShutdownDrains(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store.New(store.Options{Metrics: metrics.NewRegistry()}))
	srv.UseRegistry(metrics.NewRegistry())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	// One idle command connection, one live subscriber.
	idle, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	sub, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Write([]byte("SUBSCRIBE *\n")); err != nil {
		t.Fatal(err)
	}
	okBuf := make([]byte, 64)
	sub.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := sub.Read(okBuf); err != nil {
		t.Fatalf("subscribe handshake: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("drain took %v — idle connections did not unpark", elapsed)
	}
	if err := <-done; err != ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	if _, err := net.DialTimeout("tcp", l.Addr().String(), 500*time.Millisecond); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// The four resilience counters — fault_hits_total, client_retries_total,
// client_reconnects_total, server_sheds_total — must appear in both metrics
// expositions (the TCP METRICS command and the HTTP handler) when client,
// server, and durable store share one registry.
func TestResilienceCountersInBothExpositions(t *testing.T) {
	reg := metrics.NewRegistry()
	d, err := wal.OpenDurable(filepath.Join(t.TempDir(), "trips.wal"), store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(d)
	srv.UseRegistry(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		<-done
	}()

	c, err := DialOptions(l.Addr().String(), fastOpts(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Append("car", trajectory.S(0, 0, 0)); err != nil {
		t.Fatal(err)
	}

	tcpText, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	metrics.Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	httpText := rec.Body.String()

	for _, name := range []string{
		"fault_hits_total",
		"client_retries_total",
		"client_reconnects_total",
		"server_sheds_total",
		"server_subscribers_active",
		`server_subscribe_policy_drops_total{policy="drop-newest"}`,
		`server_subscribe_policy_drops_total{policy="drop-oldest"}`,
		`server_subscribe_policy_drops_total{policy="disconnect"}`,
	} {
		if !strings.Contains(tcpText, name) {
			t.Errorf("TCP METRICS exposition missing %s", name)
		}
		if !strings.Contains(httpText, name) {
			t.Errorf("HTTP exposition missing %s", name)
		}
	}
}

// A cluster client's idempotent read that lands on a dead member is retried
// against the next address; the caller sees success, not the dead node.
func TestClusterReadFailsOverToNextAddress(t *testing.T) {
	live := startReplNode(t, repl.AckPrimary, 0, "")

	// A member that is reachable at cluster-dial time but dead afterwards.
	deadL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadL.Addr().String()
	_ = deadL.Close()

	reg := metrics.NewRegistry()
	c, err := DialCluster([]string{live.addr, deadAddr}, fastOpts(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The read cursor starts at the follower slot (the dead member); the
	// dial failure must be absorbed by a retry against the live node.
	if err := c.Ping(); err != nil {
		t.Fatalf("read with one dead member: %v", err)
	}
	if got := counterVal(reg, "client_retries_total"); got < 1 {
		t.Errorf("client_retries_total = %v, want >= 1 (dead member skipped)", got)
	}
	if got := counterVal(reg, "client_failovers_total"); got != 0 {
		t.Errorf("client_failovers_total = %v, want 0 — reads must not move the write primary", got)
	}
}

// A write whose target is unreachable never left the client, so steering it
// to the next member is safe — and counted as a failover.
func TestClusterWriteFailsOverOnDialFailure(t *testing.T) {
	// Reserve an address that refuses connections, then a live node.
	deadL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadL.Addr().String()
	_ = deadL.Close()
	live := startReplNode(t, repl.AckPrimary, 0, "")

	reg := metrics.NewRegistry()
	c, err := DialCluster([]string{deadAddr, live.addr}, fastOpts(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Append("bus", trajectory.S(1, 2, 3)); err != nil {
		t.Fatalf("append with dead primary: %v", err)
	}
	if got := counterVal(reg, "client_failovers_total"); got < 1 {
		t.Errorf("client_failovers_total = %v, want >= 1", got)
	}
	snap, ok := live.store.Snapshot("bus")
	if !ok || len(snap) != 1 {
		t.Fatalf("live node snapshot = %v (ok=%v); want the failed-over append", snap, ok)
	}
}

// A follower's "readonly" refusal proves the write was not applied, so the
// cluster client fails over and retries — even though APPEND/MAPPEND are
// not idempotent.
func TestClusterWriteFailsOverOnReadonly(t *testing.T) {
	primary := startReplNode(t, repl.AckPrimary, 0, "")
	follower := startReplNode(t, repl.AckPrimary, 0, primary.addr)

	reg := metrics.NewRegistry()
	// Presumed primary is actually the follower: stale cluster config.
	c, err := DialCluster([]string{follower.addr, primary.addr}, fastOpts(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Append("bus", trajectory.S(1, 2, 3)); err != nil {
		t.Fatalf("append via stale primary: %v", err)
	}
	if err := c.AppendBatch("bus", []trajectory.Sample{
		trajectory.S(2, 2, 3), trajectory.S(3, 2, 3),
	}); err != nil {
		t.Fatalf("batch append via stale primary: %v", err)
	}
	if got := counterVal(reg, "client_failovers_total"); got < 1 {
		t.Errorf("client_failovers_total = %v, want >= 1", got)
	}
	snap, ok := primary.store.Snapshot("bus")
	if !ok || len(snap) != 3 {
		t.Fatalf("primary snapshot = %d samples (ok=%v); want 3", len(snap), ok)
	}
}

// A transport failure AFTER a write was sent is ambiguous — the append may
// have been applied — so the cluster client must surface the error without
// retrying against another member, even when one is available.
func TestClusterWriteNotRetriedAfterSend(t *testing.T) {
	// A treacherous primary: accepts, reads the request, hangs up without
	// replying. The outcome of the append is unknowable to the client.
	treacherousL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan struct{}, 16)
	go func() {
		for {
			conn, err := treacherousL.Accept()
			if err != nil {
				return
			}
			accepted <- struct{}{}
			//lint:allow goroleak exits after one bounded Read; the deferred listener close ends the accept loop
			go func() {
				buf := make([]byte, 256)
				_, _ = conn.Read(buf) // swallow the request line
				_ = conn.Close()      // then vanish: reply lost
			}()
		}
	}()
	defer treacherousL.Close()

	healthy := startReplNode(t, repl.AckPrimary, 0, "")
	reg := metrics.NewRegistry()
	c, err := DialCluster([]string{treacherousL.Addr().String(), healthy.addr}, fastOpts(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Append("bus", trajectory.S(1, 2, 3)); err == nil {
		t.Fatal("append with lost reply reported success")
	}
	if err := c.AppendBatch("bus", []trajectory.Sample{trajectory.S(2, 2, 3)}); err == nil {
		t.Fatal("batch append with lost reply reported success")
	}
	if got := counterVal(reg, "client_failovers_total"); got != 0 {
		t.Errorf("client_failovers_total = %v, want 0 — ambiguous writes must not fail over", got)
	}
	snap, _ := healthy.store.Snapshot("bus")
	if len(snap) != 0 {
		t.Errorf("healthy member received %d samples — ambiguous write was re-sent", len(snap))
	}
}
