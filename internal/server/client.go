package server

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trajectory"
)

// RemoteError is a reply the server delivered and rejected ("ERR ..."). It
// is never retried: the request reached the server, which answered — the
// failure is semantic, not transport.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "server: " + e.Msg }

// ClientOptions tunes the client's resilience. The zero value selects sane
// defaults throughout, so Dial(addr) behaves like a robust client out of
// the box.
type ClientOptions struct {
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// IOTimeout bounds each request round trip (write + full response read)
	// via a connection deadline, so a silent or wedged server surfaces as a
	// timeout error instead of a hang. Default 10s; negative disables.
	IOTimeout time.Duration
	// MaxRetries is how many times a failed request may be retried after
	// the first attempt (reconnecting as needed). Only idempotent commands
	// are ever re-sent; see Append. Default 2; negative disables retries.
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential reconnect backoff:
	// attempt n waits jittered base·2ⁿ capped at max. Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the backoff jitter, so a failing run replays exactly.
	Seed int64
	// Metrics receives the client_retries_total, client_reconnects_total
	// and client_failovers_total counters (nil selects metrics.Default()).
	Metrics *metrics.Registry
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.IOTimeout == 0 {
		o.IOTimeout = 10 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	return o
}

// clientConn is one pooled connection to one server address.
type clientConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Client is a synchronous, self-healing client for the tracking protocol:
// on transport errors it reconnects with seeded exponential backoff and
// retries idempotent commands. It is safe for concurrent use; requests are
// serialized (one connection per configured address).
//
// With a single address every request uses that server. With DialCluster's
// address list the client routes writes to the address it believes is the
// primary and round-robins read commands over the remaining addresses
// (followers) with the primary as one more rotation member. Failover rules
// preserve write safety: a request that could not be SENT (dial failure, or
// a definitive "readonly" refusal from a follower) may move to the next
// address, but a write whose bytes left the socket is never re-sent — a lost
// reply leaves its outcome unknown.
type Client struct {
	addrs []string
	opts  ClientOptions

	mu      sync.Mutex
	conns   []*clientConn // parallel to addrs; nil while disconnected
	primary int           // index writes are routed to
	rr      int           // read round-robin cursor
	rng     *rand.Rand
	ever    bool // a connection has succeeded before (reconnects vs first dial)

	retries    *metrics.Counter
	reconnects *metrics.Counter
	failovers  *metrics.Counter
}

// Dial connects to a tracking server with default resilience options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialTimeout is Dial with an explicit bound on the connection attempt.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	return DialOptions(addr, ClientOptions{DialTimeout: d})
}

// DialOptions connects to a tracking server with explicit resilience
// options. The initial connection is attempted once, without retries, so a
// wrong address fails fast.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	return DialCluster([]string{addr}, opts)
}

// DialCluster connects to a replicated deployment: addrs[0] is the presumed
// primary (writes go there until a failover moves them), the rest are
// followers that serve reads. The initial connection tries each address once
// in order and succeeds on the first reachable one; unreachable members are
// re-dialled lazily when a request routes to them.
func DialCluster(addrs []string, opts ClientOptions) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("server: no addresses")
	}
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	c := &Client{
		addrs:      append([]string(nil), addrs...),
		opts:       opts,
		conns:      make([]*clientConn, len(addrs)),
		rr:         1 % len(addrs), // prefer followers for the first read
		rng:        rand.New(rand.NewSource(opts.Seed)),
		retries:    reg.Counter("client_retries_total"),
		reconnects: reg.Counter("client_reconnects_total"),
		failovers:  reg.Counter("client_failovers_total"),
	}
	var lastErr error
	for i := range c.addrs {
		if _, lastErr = c.connLocked(i); lastErr == nil {
			return c, nil
		}
	}
	return nil, lastErr
}

// connLocked returns the pooled connection to addrs[idx], dialling if
// needed. Callers hold c.mu, except DialCluster before the client escapes.
func (c *Client) connLocked(idx int) (*clientConn, error) {
	if cc := c.conns[idx]; cc != nil {
		return cc, nil
	}
	conn, err := net.DialTimeout("tcp", c.addrs[idx], c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", c.addrs[idx], err)
	}
	if c.ever {
		c.reconnects.Inc()
	}
	c.ever = true
	cc := &clientConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	c.conns[idx] = cc
	return cc, nil
}

func (c *Client) dropLocked(idx int) {
	if cc := c.conns[idx]; cc != nil {
		_ = cc.conn.Close() // already failing; the request error is the one reported
		c.conns[idx] = nil
	}
}

// backoff sleeps the jittered exponential delay for retry number n (0-based).
func (c *Client) backoffLocked(n int) {
	d := c.opts.BackoffBase << uint(n)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	// Jitter to [d/2, d): concurrent clients retrying a restarted server
	// spread out instead of stampeding in lockstep.
	time.Sleep(d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1)))
}

// Close sends QUIT (best effort) on every live connection and closes them.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for i, cc := range c.conns {
		if cc == nil {
			continue
		}
		fmt.Fprintln(cc.w, "QUIT")
		_ = cc.w.Flush() // best-effort courtesy QUIT; Close reports the connection close
		if cerr := cc.conn.Close(); err == nil {
			err = cerr
		}
		c.conns[i] = nil
	}
	return err
}

// pickLocked chooses the address for this attempt. Writes always go to the
// current primary. Reads round-robin over the whole membership starting at
// the followers, so query load spreads while the primary still answers when
// it is the only node left.
func (c *Client) pickLocked(readAnywhere bool) int {
	if !readAnywhere || len(c.addrs) == 1 {
		return c.primary
	}
	idx := c.rr % len(c.addrs)
	c.rr++
	return idx
}

// failoverLocked moves the presumed primary to the next address. Only
// callers that know the request was NOT applied (dial failure, readonly
// refusal) may do this for a write.
func (c *Client) failoverLocked() {
	c.primary = (c.primary + 1) % len(c.addrs)
	c.failovers.Inc()
}

// do runs one request: send cmd, parse the response with read. Transport
// failures drop the connection; idempotent requests are then retried (up to
// MaxRetries) over a fresh connection — the next cluster member for reads —
// after a backoff. Non-idempotent requests are never re-sent once any bytes
// may have reached the server — an APPEND whose reply was lost might have
// been applied, and blind resend would be rejected as a duplicate timestamp
// at best and double-apply at worst. A RemoteError is final, with one
// exception: a follower's "readonly" refusal proves the write was not
// applied, so it fails over to the next address and retries safely.
// readAnywhere marks commands any replica can answer; the rest go to the
// primary.
func (c *Client) do(cmd string, idempotent, readAnywhere bool, read func(r *bufio.Reader) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; ; attempt++ {
		idx := c.pickLocked(readAnywhere)
		cc, err := c.connLocked(idx)
		if err != nil {
			lastErr = err
			if !readAnywhere && len(c.addrs) > 1 {
				// The write's target is unreachable; nothing was sent, so
				// steering writes to the next member is safe.
				c.failoverLocked()
			}
			if attempt >= c.opts.MaxRetries {
				return err
			}
			// Nothing has been sent, so waiting out a restart is safe
			// for every command class.
			c.retries.Inc()
			c.backoffLocked(attempt)
			continue
		}
		err = c.sendRecvLocked(cc, cmd, read)
		if err == nil {
			return nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			if !readAnywhere && len(c.addrs) > 1 && strings.HasPrefix(remote.Msg, "readonly") {
				// The node answered "readonly": it is a follower, and it
				// definitively did not apply the write. Fail over and retry
				// even for non-idempotent commands.
				c.failoverLocked()
				lastErr = err
				if attempt >= c.opts.MaxRetries {
					return err
				}
				c.retries.Inc()
				c.backoffLocked(attempt)
				continue
			}
			return err
		}
		c.dropLocked(idx)
		lastErr = err
		if !idempotent || attempt >= c.opts.MaxRetries {
			return lastErr
		}
		c.retries.Inc()
		c.backoffLocked(attempt)
	}
}

func (c *Client) sendRecvLocked(cc *clientConn, cmd string, read func(r *bufio.Reader) error) error {
	if c.opts.IOTimeout > 0 {
		if err := cc.conn.SetDeadline(time.Now().Add(c.opts.IOTimeout)); err != nil {
			return fmt.Errorf("server: deadline: %w", err)
		}
	}
	if _, err := fmt.Fprintln(cc.w, cmd); err != nil {
		return err
	}
	if err := cc.w.Flush(); err != nil {
		return err
	}
	return read(cc.r)
}

// readLine reads one response line, converting ERR replies to RemoteError.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", &RemoteError{Msg: strings.TrimPrefix(line, "ERR ")}
	}
	return line, nil
}

// roundTrip sends one command and reads a single-line response.
func (c *Client) roundTrip(cmd string, idempotent, readAnywhere bool) (string, error) {
	var resp string
	err := c.do(cmd, idempotent, readAnywhere, func(r *bufio.Reader) error {
		var rerr error
		resp, rerr = readLine(r)
		return rerr
	})
	return resp, err
}

// readList sends one command and reads data lines up to END. Every list
// command is a read any replica can answer.
func (c *Client) readList(cmd string) ([]string, error) {
	var out []string
	err := c.do(cmd, true, true, func(r *bufio.Reader) error {
		out = out[:0]
		for {
			line, err := readLine(r)
			if err != nil {
				return err
			}
			if line == "END" {
				return nil
			}
			out = append(out, line)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	_, err := c.roundTrip("PING", true, true)
	return err
}

// Promote asks the node this client's write path is routed to — the sole
// node, for a single-address client — to become the replication primary
// (manual failover). Idempotent: promoting a primary is an acknowledged
// no-op.
func (c *Client) Promote() error {
	resp, err := c.roundTrip("PROMOTE", true, false)
	if err != nil {
		return err
	}
	if resp != "OK role=primary" {
		return fmt.Errorf("server: bad PROMOTE response %q", resp)
	}
	return nil
}

// Append ingests one observation. Append is NOT idempotent — the store
// rejects duplicate timestamps, and a lost reply leaves the outcome unknown
// — so a transport failure here is returned rather than blindly retried;
// the caller decides whether re-sending the sample is safe (it is when the
// caller tracks acknowledgements, as the torture harness does).
func (c *Client) Append(id string, s trajectory.Sample) error {
	if strings.ContainsAny(id, " \t\n") {
		return fmt.Errorf("server: object id %q contains whitespace", id)
	}
	_, err := c.roundTrip(fmt.Sprintf("APPEND %s %g %g %g", id, s.T, s.X, s.Y), false, false)
	return err
}

// AppendBatch ingests a batch of observations for one object with a single
// MAPPEND round trip — the command line plus the data lines leave in one
// buffered write, and one reply answers the whole batch. Like Append it is
// NOT idempotent: a transport failure leaves the batch outcome unknown
// (possibly an applied prefix) and is returned rather than retried.
func (c *Client) AppendBatch(id string, ss []trajectory.Sample) error {
	if len(ss) == 0 {
		return nil
	}
	if strings.ContainsAny(id, " \t\n") {
		return fmt.Errorf("server: object id %q contains whitespace", id)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "MAPPEND %s %d", id, len(ss))
	for _, s := range ss {
		fmt.Fprintf(&b, "\n%g %g %g", s.T, s.X, s.Y)
	}
	resp, err := c.roundTrip(b.String(), false, false)
	if err != nil {
		return err
	}
	if want := fmt.Sprintf("OK appended=%d", len(ss)); resp != want {
		return fmt.Errorf("server: bad MAPPEND response %q", resp)
	}
	return nil
}

// PositionAt queries the interpolated position of an object at time t.
func (c *Client) PositionAt(id string, t float64) (geo.Point, error) {
	resp, err := c.roundTrip(fmt.Sprintf("POSITION %s %g", id, t), true, true)
	if err != nil {
		return geo.Point{}, err
	}
	var x, y float64
	if _, err := fmt.Sscanf(resp, "OK %g %g", &x, &y); err != nil {
		return geo.Point{}, fmt.Errorf("server: bad POSITION response %q", resp)
	}
	return geo.Pt(x, y), nil
}

// Snapshot fetches an object's stored trajectory.
func (c *Client) Snapshot(id string) (trajectory.Trajectory, error) {
	lines, err := c.readList("SNAPSHOT " + id)
	if err != nil {
		return nil, err
	}
	out := make(trajectory.Trajectory, 0, len(lines))
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("server: bad SNAPSHOT line %q", line)
		}
		var s trajectory.Sample
		var errT, errX, errY error
		s.T, errT = strconv.ParseFloat(f[0], 64)
		s.X, errX = strconv.ParseFloat(f[1], 64)
		s.Y, errY = strconv.ParseFloat(f[2], 64)
		if errT != nil || errX != nil || errY != nil {
			return nil, fmt.Errorf("server: bad SNAPSHOT line %q", line)
		}
		out = append(out, s)
	}
	return out, nil
}

// Query returns the IDs of objects intersecting rect during [t0, t1].
func (c *Client) Query(rect geo.Rect, t0, t1 float64) ([]string, error) {
	return c.readList(fmt.Sprintf("QUERY %g %g %g %g %g %g",
		rect.Min.X, rect.Min.Y, rect.Max.X, rect.Max.Y, t0, t1))
}

// QueryWithTolerance is Query with the rectangle expanded server-side by
// eps metres (see store.QueryWithTolerance).
func (c *Client) QueryWithTolerance(rect geo.Rect, t0, t1, eps float64) ([]string, error) {
	return c.readList(fmt.Sprintf("QUERYTOL %g %g %g %g %g %g %g",
		rect.Min.X, rect.Min.Y, rect.Max.X, rect.Max.Y, t0, t1, eps))
}

// QueryRange returns every stored point inside rect during [t0, t1] from
// both storage tiers, ordered by object ID then time. Points answered from
// the cold sealed tier are reconstructions within the tier's error bound ε.
func (c *Client) QueryRange(rect geo.Rect, t0, t1 float64) ([]store.RangePoint, error) {
	lines, err := c.readList(fmt.Sprintf("QUERYRANGE %g %g %g %g %g %g",
		rect.Min.X, rect.Min.Y, rect.Max.X, rect.Max.Y, t0, t1))
	if err != nil {
		return nil, err
	}
	out := make([]store.RangePoint, 0, len(lines))
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("server: bad QUERYRANGE line %q", line)
		}
		var p store.RangePoint
		p.ID = f[0]
		var errT, errX, errY error
		p.S.T, errT = strconv.ParseFloat(f[1], 64)
		p.S.X, errX = strconv.ParseFloat(f[2], 64)
		p.S.Y, errY = strconv.ParseFloat(f[3], 64)
		if errT != nil || errX != nil || errY != nil {
			return nil, fmt.Errorf("server: bad QUERYRANGE line %q", line)
		}
		out = append(out, p)
	}
	return out, nil
}

// Nearest returns the k objects closest to q at time t, nearest first,
// interpolated across both storage tiers.
func (c *Client) Nearest(q geo.Point, t float64, k int) ([]store.Neighbor, error) {
	lines, err := c.readList(fmt.Sprintf("NEAREST %g %g %g %d", q.X, q.Y, t, k))
	if err != nil {
		return nil, err
	}
	out := make([]store.Neighbor, 0, len(lines))
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("server: bad NEAREST line %q", line)
		}
		var nb store.Neighbor
		nb.ID = f[0]
		var errX, errY, errD error
		nb.Pos.X, errX = strconv.ParseFloat(f[1], 64)
		nb.Pos.Y, errY = strconv.ParseFloat(f[2], 64)
		nb.Dist, errD = strconv.ParseFloat(f[3], 64)
		if errX != nil || errY != nil || errD != nil {
			return nil, fmt.Errorf("server: bad NEAREST line %q", line)
		}
		out = append(out, nb)
	}
	return out, nil
}

// Seal moves server-side retained samples older than t into the cold sealed
// tier, returning the number of samples moved out of the hot tier. Sealing
// to the same cut twice is a no-op, so the command is retried like a read.
func (c *Client) Seal(t float64) (int, error) {
	resp, err := c.roundTrip(fmt.Sprintf("SEAL %g", t), true, false)
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(resp, "OK sealed=%d", &n); err != nil {
		return 0, fmt.Errorf("server: bad SEAL response %q", resp)
	}
	return n, nil
}

// EvictBefore removes server-side data older than t, returning the number
// of removed samples. Like Append it mutates server state, so it is not
// retried past a transport failure.
func (c *Client) EvictBefore(t float64) (int, error) {
	resp, err := c.roundTrip(fmt.Sprintf("EVICT %g", t), false, false)
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(resp, "OK removed=%d", &n); err != nil {
		return 0, fmt.Errorf("server: bad EVICT response %q", resp)
	}
	return n, nil
}

// IDs lists all stored object identifiers.
func (c *Client) IDs() ([]string, error) { return c.readList("IDS") }

// Stats is the client-side view of the STATS response: the storage summary
// plus the per-object retained point breakdown, all captured server-side in
// one consistent snapshot.
type Stats struct {
	Objects         int            `json:"objects"`
	RawPoints       int            `json:"raw_points"`
	RetainedPoints  int            `json:"retained_points"`
	CompressionPct  float64        `json:"compression_pct"`
	UptimeSeconds   float64        `json:"uptime_seconds"`
	SealedPoints    int            `json:"sealed_points"`
	SealedBlocks    int            `json:"sealed_blocks"`
	SealedBytes     int64          `json:"sealed_bytes"`
	WALAckedOffset  int64          `json:"wal_acked_offset"`
	Role            string         `json:"role"`
	PointsPerObject map[string]int `json:"points_per_object,omitempty"`
}

// Stats reports server-side storage statistics.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.do("STATS", true, true, func(r *bufio.Reader) error {
		st = Stats{}
		resp, err := readLine(r)
		if err != nil {
			return err
		}
		if _, err := fmt.Sscanf(resp, "OK objects=%d raw=%d retained=%d compression=%g uptime=%g sealed=%d sealedblocks=%d sealedbytes=%d walacked=%d role=%s",
			&st.Objects, &st.RawPoints, &st.RetainedPoints, &st.CompressionPct, &st.UptimeSeconds,
			&st.SealedPoints, &st.SealedBlocks, &st.SealedBytes, &st.WALAckedOffset, &st.Role); err != nil {
			return fmt.Errorf("server: bad STATS response %q", resp)
		}
		st.PointsPerObject = make(map[string]int, st.Objects)
		for {
			line, err := readLine(r)
			if err != nil {
				return err
			}
			if line == "END" {
				return nil
			}
			var id string
			var n int
			if _, err := fmt.Sscanf(line, "obj %s points=%d", &id, &n); err != nil {
				return fmt.Errorf("server: bad STATS line %q", line)
			}
			st.PointsPerObject[id] = n
		}
	})
	if err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Metrics fetches the server's metrics registry in the Prometheus text
// exposition format — the same document the optional HTTP /metrics endpoint
// serves.
func (c *Client) Metrics() (string, error) {
	lines, err := c.readList("METRICS")
	if err != nil {
		return "", err
	}
	return strings.Join(lines, "\n") + "\n", nil
}
