package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// Client is a synchronous client for the tracking protocol. It is safe for
// concurrent use; requests are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a tracking server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial: %w", err)
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}, nil
}

// Close sends QUIT (best effort) and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintln(c.w, "QUIT")
	_ = c.w.Flush() // best-effort courtesy QUIT; Close reports the connection close
	return c.conn.Close()
}

// roundTrip sends one command and reads a single-line response.
func (c *Client) roundTrip(cmd string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTripLocked(cmd)
}

func (c *Client) roundTripLocked(cmd string) (string, error) {
	if _, err := fmt.Fprintln(c.w, cmd); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("server: %s", strings.TrimPrefix(line, "ERR "))
	}
	return line, nil
}

// readList reads data lines up to END after a command.
func (c *Client) readList(cmd string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintln(c.w, cmd); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var out []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(line)
		if line == "END" {
			return out, nil
		}
		if strings.HasPrefix(line, "ERR ") {
			return nil, fmt.Errorf("server: %s", strings.TrimPrefix(line, "ERR "))
		}
		out = append(out, line)
	}
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	_, err := c.roundTrip("PING")
	return err
}

// Append ingests one observation.
func (c *Client) Append(id string, s trajectory.Sample) error {
	if strings.ContainsAny(id, " \t\n") {
		return fmt.Errorf("server: object id %q contains whitespace", id)
	}
	_, err := c.roundTrip(fmt.Sprintf("APPEND %s %g %g %g", id, s.T, s.X, s.Y))
	return err
}

// PositionAt queries the interpolated position of an object at time t.
func (c *Client) PositionAt(id string, t float64) (geo.Point, error) {
	resp, err := c.roundTrip(fmt.Sprintf("POSITION %s %g", id, t))
	if err != nil {
		return geo.Point{}, err
	}
	var x, y float64
	if _, err := fmt.Sscanf(resp, "OK %g %g", &x, &y); err != nil {
		return geo.Point{}, fmt.Errorf("server: bad POSITION response %q", resp)
	}
	return geo.Pt(x, y), nil
}

// Snapshot fetches an object's stored trajectory.
func (c *Client) Snapshot(id string) (trajectory.Trajectory, error) {
	lines, err := c.readList("SNAPSHOT " + id)
	if err != nil {
		return nil, err
	}
	out := make(trajectory.Trajectory, 0, len(lines))
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("server: bad SNAPSHOT line %q", line)
		}
		var s trajectory.Sample
		var errT, errX, errY error
		s.T, errT = strconv.ParseFloat(f[0], 64)
		s.X, errX = strconv.ParseFloat(f[1], 64)
		s.Y, errY = strconv.ParseFloat(f[2], 64)
		if errT != nil || errX != nil || errY != nil {
			return nil, fmt.Errorf("server: bad SNAPSHOT line %q", line)
		}
		out = append(out, s)
	}
	return out, nil
}

// Query returns the IDs of objects intersecting rect during [t0, t1].
func (c *Client) Query(rect geo.Rect, t0, t1 float64) ([]string, error) {
	return c.readList(fmt.Sprintf("QUERY %g %g %g %g %g %g",
		rect.Min.X, rect.Min.Y, rect.Max.X, rect.Max.Y, t0, t1))
}

// QueryWithTolerance is Query with the rectangle expanded server-side by
// eps metres (see store.QueryWithTolerance).
func (c *Client) QueryWithTolerance(rect geo.Rect, t0, t1, eps float64) ([]string, error) {
	return c.readList(fmt.Sprintf("QUERYTOL %g %g %g %g %g %g %g",
		rect.Min.X, rect.Min.Y, rect.Max.X, rect.Max.Y, t0, t1, eps))
}

// EvictBefore removes server-side data older than t, returning the number
// of removed samples.
func (c *Client) EvictBefore(t float64) (int, error) {
	resp, err := c.roundTrip(fmt.Sprintf("EVICT %g", t))
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(resp, "OK removed=%d", &n); err != nil {
		return 0, fmt.Errorf("server: bad EVICT response %q", resp)
	}
	return n, nil
}

// IDs lists all stored object identifiers.
func (c *Client) IDs() ([]string, error) { return c.readList("IDS") }

// Stats is the client-side view of the STATS response: the storage summary
// plus the per-object retained point breakdown, all captured server-side in
// one consistent snapshot.
type Stats struct {
	Objects         int            `json:"objects"`
	RawPoints       int            `json:"raw_points"`
	RetainedPoints  int            `json:"retained_points"`
	CompressionPct  float64        `json:"compression_pct"`
	UptimeSeconds   float64        `json:"uptime_seconds"`
	PointsPerObject map[string]int `json:"points_per_object,omitempty"`
}

// Stats reports server-side storage statistics.
func (c *Client) Stats() (Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintln(c.w, "STATS"); err != nil {
		return Stats{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Stats{}, err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return Stats{}, err
	}
	resp = strings.TrimSpace(resp)
	var st Stats
	if _, err := fmt.Sscanf(resp, "OK objects=%d raw=%d retained=%d compression=%g uptime=%g",
		&st.Objects, &st.RawPoints, &st.RetainedPoints, &st.CompressionPct, &st.UptimeSeconds); err != nil {
		return Stats{}, fmt.Errorf("server: bad STATS response %q", resp)
	}
	st.PointsPerObject = make(map[string]int, st.Objects)
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return Stats{}, err
		}
		line = strings.TrimSpace(line)
		if line == "END" {
			return st, nil
		}
		var id string
		var n int
		if _, err := fmt.Sscanf(line, "obj %s points=%d", &id, &n); err != nil {
			return Stats{}, fmt.Errorf("server: bad STATS line %q", line)
		}
		st.PointsPerObject[id] = n
	}
}

// Metrics fetches the server's metrics registry in the Prometheus text
// exposition format — the same document the optional HTTP /metrics endpoint
// serves.
func (c *Client) Metrics() (string, error) {
	lines, err := c.readList("METRICS")
	if err != nil {
		return "", err
	}
	return strings.Join(lines, "\n") + "\n", nil
}
