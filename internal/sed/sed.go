// Package sed implements the paper's synchronized (time-ratio) distance and
// the time-synchronized average error α(p, a) of §4.2, including the full
// closed-form solution of the per-segment integral and a numeric integrator
// used to cross-validate it.
//
// The synchronized distance between an original data point P_i and a
// candidate segment P_s–P_e is the distance between P_i and its
// time-interpolated position P'_i on the segment (Eq. 1–2):
//
//	x'_i = x_s + Δi/Δe · (x_e − x_s)
//	y'_i = y_s + Δi/Δe · (y_e − y_s)
//
// with Δe = t_e − t_s and Δi = t_i − t_s. This is the discard criterion of
// the TD-TR, OPW-TR, OPW-SP and TD-SP algorithms.
package sed

import (
	"repro/internal/geo"
	"repro/internal/trajectory"
)

// SyncPosition returns P'_i: the position at time t on the straight movement
// from sample a to sample b under linear (time-ratio) interpolation.
// It panics if a and b carry the same timestamp.
func SyncPosition(a, b trajectory.Sample, t float64) geo.Point {
	de := b.T - a.T
	//lint:allow floatcmp degenerate-case guard: trajectory validation enforces strictly increasing timestamps, so de == 0 only for programmer error
	if de == 0 {
		panic("sed: zero-duration segment")
	}
	f := (t - a.T) / de
	return a.Pos().Lerp(b.Pos(), f)
}

// Distance returns the synchronized Euclidean distance between data point p
// and its time-interpolated approximation on the segment a–b.
func Distance(p trajectory.Sample, a, b trajectory.Sample) float64 {
	return p.Pos().Dist(SyncPosition(a, b, p.T))
}

// MaxDistance returns the largest synchronized distance of the interior
// points of p (excluding the first and last sample) to the single segment
// from p's first to last sample, along with the index of the worst point.
// For trajectories with fewer than 3 samples it returns (0, -1).
func MaxDistance(p trajectory.Trajectory) (worst float64, idx int) {
	idx = -1
	if p.Len() < 3 {
		return 0, idx
	}
	first, last := p[0], p[p.Len()-1]
	for i := 1; i < p.Len()-1; i++ {
		if d := Distance(p[i], first, last); d > worst {
			worst, idx = d, i
		}
	}
	return worst, idx
}
