package sed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trajectory"
)

// randomTrajectory builds a car-like random trajectory with n samples.
func randomTrajectory(rng *rand.Rand, n int) trajectory.Trajectory {
	p := make(trajectory.Trajectory, n)
	t, x, y := 0.0, 0.0, 0.0
	heading := rng.Float64() * 2 * math.Pi
	for i := 0; i < n; i++ {
		p[i] = trajectory.S(t, x, y)
		dt := 1 + rng.Float64()*15
		speed := rng.Float64() * 25
		heading += rng.NormFloat64() * 0.5
		t += dt
		x += speed * dt * math.Cos(heading)
		y += speed * dt * math.Sin(heading)
	}
	return p
}

// subsample keeps the first and last samples plus a random interior subset.
func subsample(rng *rand.Rand, p trajectory.Trajectory) trajectory.Trajectory {
	a := trajectory.Trajectory{p[0]}
	for i := 1; i < p.Len()-1; i++ {
		if rng.Float64() < 0.3 {
			a = append(a, p[i])
		}
	}
	return append(a, p[p.Len()-1])
}

// The closed-form α must agree with high-accuracy numeric quadrature on
// arbitrary trajectory/approximation pairs. This exercises all three
// analytic cases, since random approximations mix shared-endpoint segments
// (disc = 0 at interval boundaries) with general ones.
func TestClosedFormMatchesNumericProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2004))
	for trial := 0; trial < 200; trial++ {
		p := randomTrajectory(rng, 10+rng.Intn(60))
		a := subsample(rng, p)
		got, err := AvgError(p, a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := AvgErrorNumeric(p, a, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-6 * (1 + want)
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d: closed form %.9f vs numeric %.9f (|Δ|=%.3g)", trial, got, want, math.Abs(got-want))
		}
	}
}

// α is non-negative and bounded above by the max synchronized error.
func TestAvgErrorBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		p := randomTrajectory(rng, 20+rng.Intn(40))
		a := subsample(rng, p)
		avg, err := AvgError(p, a)
		if err != nil {
			t.Fatal(err)
		}
		max, err := MaxError(p, a)
		if err != nil {
			t.Fatal(err)
		}
		if avg < 0 {
			t.Fatalf("negative α = %v", avg)
		}
		if avg > max+1e-9 {
			t.Fatalf("α %v exceeds max error %v", avg, max)
		}
	}
}

// α is symmetric: swapping the roles of p and a only changes which path is
// "original", not the synchronized separation.
func TestAvgErrorSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		p := randomTrajectory(rng, 30)
		a := subsample(rng, p)
		e1, err1 := AvgError(p, a)
		e2, err2 := AvgError(a, p)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(e1-e2) > 1e-9*(1+e1) {
			t.Fatalf("asymmetry: %v vs %v", e1, e2)
		}
	}
}

// Keeping every vertex yields zero error; dropping vertices can only be
// measured as ≥ 0 relative to that.
func TestAvgErrorZeroForFullSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p := randomTrajectory(rng, 25)
		e, err := AvgError(p, p.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if e > 1e-9 {
			t.Fatalf("α(p, clone(p)) = %v", e)
		}
	}
}

func BenchmarkAvgErrorClosedForm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomTrajectory(rng, 200)
	a := subsample(rng, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AvgError(p, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAvgErrorNumeric(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomTrajectory(rng, 200)
	a := subsample(rng, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AvgErrorNumeric(p, a, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}
