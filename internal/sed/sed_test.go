package sed

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSyncPosition(t *testing.T) {
	a := trajectory.S(0, 0, 0)
	b := trajectory.S(10, 100, 0)
	tests := []struct {
		t    float64
		want geo.Point
	}{
		{0, geo.Pt(0, 0)},
		{10, geo.Pt(100, 0)},
		{5, geo.Pt(50, 0)},
		{2.5, geo.Pt(25, 0)},
	}
	for _, tc := range tests {
		if got := SyncPosition(a, b, tc.t); !got.AlmostEqual(tc.want, 1e-9) {
			t.Errorf("SyncPosition(t=%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestSyncPositionPanicsOnZeroDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero-duration segment")
		}
	}()
	SyncPosition(trajectory.S(1, 0, 0), trajectory.S(1, 5, 5), 1)
}

// The paper's Fig. 4 situation: the synchronized distance differs from the
// perpendicular distance when the object's speed is uneven.
func TestDistanceVersusPerpendicular(t *testing.T) {
	// Object dwells near the start: at t=9 it has only reached x=10 although
	// the approximating segment (t 0..10, x 0..100) expects x'=90.
	a := trajectory.S(0, 0, 0)
	b := trajectory.S(10, 100, 0)
	p := trajectory.S(9, 10, 0)
	sedDist := Distance(p, a, b)
	if !almostEq(sedDist, 80, 1e-9) {
		t.Errorf("synchronized distance = %v, want 80", sedDist)
	}
	perp := geo.Seg(a.Pos(), b.Pos()).PerpDist(p.Pos())
	if !almostEq(perp, 0, 1e-9) {
		t.Errorf("perpendicular distance = %v, want 0 (point on the line)", perp)
	}
}

func TestMaxDistance(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(1, 10, 3), // expected x'=10 → distance 3
		trajectory.S(2, 20, 8), // expected x'=20 → distance 8
		trajectory.S(3, 30, 0),
		trajectory.S(4, 40, 0),
	})
	worst, idx := MaxDistance(p)
	if idx != 2 || !almostEq(worst, 8, 1e-9) {
		t.Errorf("MaxDistance = %v at %d, want 8 at 2", worst, idx)
	}
	if w, i := MaxDistance(p.Sub(0, 1)); w != 0 || i != -1 {
		t.Errorf("MaxDistance on 2 points = %v, %d", w, i)
	}
}

func TestAvgErrorIdentical(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(5, 30, 40), trajectory.S(9, 100, -20),
	})
	got, err := AvgError(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 0, 1e-9) {
		t.Errorf("α(p,p) = %v, want 0", got)
	}
}

// Case c1 = 0 (paper): the approximation is a translated copy; the error is
// the constant translation distance.
func TestAvgErrorTranslation(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(10, 100, 0), trajectory.S(20, 100, 100),
	})
	a := p.Shift(0, 3, 4) // constant offset 5 m
	got, err := AvgError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 5, 1e-9) {
		t.Errorf("translated α = %v, want 5", got)
	}
	m, err := MaxError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m, 5, 1e-9) {
		t.Errorf("translated max = %v, want 5", m)
	}
}

// Case disc = 0, shared start point (paper): α = ½·√(δx1² + δy1²).
func TestAvgErrorSharedStart(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(10, 100, 0)})
	a := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(10, 100, 6)})
	got, err := AvgError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 3, 1e-9) {
		t.Errorf("shared-start α = %v, want 3", got)
	}
}

// Case disc = 0, shared end point (paper): α = ½·√(δx0² + δy0²).
func TestAvgErrorSharedEnd(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 4), trajectory.S(10, 100, 0)})
	a := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(10, 100, 0)})
	got, err := AvgError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 2, 1e-9) {
		t.Errorf("shared-end α = %v, want 2", got)
	}
}

// Offset flips sign mid-interval (the root of |δ| lies inside): the paper's
// "δ ratios respected" sub-case. δ goes (0,2) → (0,-2) linearly, so |δ|
// averages to 1.
func TestAvgErrorSignChange(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 2), trajectory.S(10, 100, -2)})
	a := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(10, 100, 0)})
	got, err := AvgError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 1, 1e-9) {
		t.Errorf("sign-change α = %v, want 1", got)
	}
}

// General case with a known closed form: δ rotates from (1,0) to (0,1);
// α = ∫₀¹ √(2s²−2s+1) ds = (√2 + asinh(1))/… — compare against numeric.
func TestAvgErrorGeneralCaseAgainstNumeric(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 1, 0), trajectory.S(1, 10, 1)})
	a := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(1, 10, 0)})
	got, err := AvgError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AvgErrorNumeric(p, a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, want, 1e-9) {
		t.Errorf("closed form %v vs numeric %v", got, want)
	}
}

func TestAvgErrorInputValidation(t *testing.T) {
	one := trajectory.Trajectory{trajectory.S(0, 0, 0)}
	two := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(1, 1, 1)})
	if _, err := AvgError(one, two); err == nil {
		t.Error("single-sample p accepted")
	}
	if _, err := AvgError(two, one); err == nil {
		t.Error("single-sample a accepted")
	}
	later := two.Shift(100, 0, 0)
	if _, err := AvgError(two, later); err == nil {
		t.Error("disjoint spans accepted")
	}
}

// Partial overlap: error is computed over the covered prefix only.
func TestAvgErrorPartialOverlap(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(10, 100, 0), trajectory.S(20, 200, 0),
	})
	// a covers only [0, 10] and is offset by 7 m.
	a := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 7), trajectory.S(10, 100, 7)})
	got, err := AvgError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 7, 1e-9) {
		t.Errorf("partial-overlap α = %v, want 7", got)
	}
}

func TestMaxErrorAttainedAtVertex(t *testing.T) {
	// Dwell-then-sprint against a constant-speed approximation: the worst
	// synchronized offset occurs at the dwell-end vertex.
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(9, 10, 0), trajectory.S(10, 100, 0),
	})
	a := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(10, 100, 0)})
	m, err := MaxError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m, 80, 1e-9) {
		t.Errorf("max error = %v, want 80", m)
	}
}
