package sed

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/trajectory"
)

// ErrNoOverlap is returned when the original and approximation trajectories
// share no time interval to compare over.
var ErrNoOverlap = errors.New("sed: trajectories share no time overlap")

// ErrNonFinite is returned when an error computation produces NaN or ±Inf —
// in practice when an input sample carries non-finite coordinates or
// timestamps. Surfacing this as an error keeps a poisoned sample from
// silently corrupting a compression-quality figure.
var ErrNonFinite = errors.New("sed: non-finite error (input contains NaN or Inf)")

// finite returns v unchanged with a nil error, or 0 and ErrNonFinite when v
// is NaN or ±Inf.
func finite(v float64) (float64, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, ErrNonFinite
	}
	return v, nil
}

// AvgError computes the paper's time-synchronized average error α(p, a)
// (§4.2): the time-weighted mean distance between the original object moving
// along p and the approximation object moving along a, both travelling
// synchronously. The mean is taken over the overlapping time span of the two
// trajectories; compression algorithms that retain the endpoints make that
// span equal to p's full span. Opening-window algorithms may drop trailing
// points (paper §2.2), in which case only the covered prefix is compared.
//
// The per-interval integral ∫√(c1·t² + c2·t + c3) dt is evaluated in closed
// form with the paper's case analysis (c1 = 0; discriminant zero; the general
// arcsinh case).
//
// Both trajectories must have at least 2 samples and overlap in time;
// otherwise an error is returned. A NaN/Inf result (non-finite input
// coordinates) is reported as ErrNonFinite rather than returned as a value.
func AvgError(p, a trajectory.Trajectory) (float64, error) {
	total, span, err := integrateError(p, a)
	if err != nil {
		return 0, err
	}
	return finite(total / span)
}

// MaxError returns the maximum synchronized distance between p and a over
// their overlapping time span. Because the squared distance is convex on
// every elementary interval (both paths linear), the maximum is attained at
// a vertex time of p or a. A NaN/Inf distance (non-finite input
// coordinates) is reported as ErrNonFinite.
func MaxError(p, a trajectory.Trajectory) (float64, error) {
	cuts, err := mergedCuts(p, a)
	if err != nil {
		return 0, err
	}
	var worst float64
	for _, t := range cuts {
		pp, ok1 := p.LocAt(t)
		pa, ok2 := a.LocAt(t)
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("sed: internal: no position at merged cut t=%v", t)
		}
		if d := pp.Dist(pa); d > worst || math.IsNaN(d) {
			worst = d
		}
	}
	return finite(worst)
}

// integrateError returns (∫ dist dt, span) over the overlapping interval.
func integrateError(p, a trajectory.Trajectory) (total, span float64, err error) {
	cuts, err := mergedCuts(p, a)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i+1 < len(cuts); i++ {
		u, v := cuts[i], cuts[i+1]
		pu, _ := p.LocAt(u)
		pv, _ := p.LocAt(v)
		au, _ := a.LocAt(u)
		av, _ := a.LocAt(v)
		d0 := pu.Sub(au)
		d1 := pv.Sub(av)
		total += (v - u) * meanDistLinear(d0.X, d0.Y, d1.X, d1.Y)
	}
	return total, cuts[len(cuts)-1] - cuts[0], nil
}

// mergedCuts returns the sorted, deduplicated union of the vertex times of p
// and a restricted to their overlapping span, with the span boundaries
// included. On every interval between consecutive cuts both trajectories are
// linear in t.
func mergedCuts(p, a trajectory.Trajectory) ([]float64, error) {
	if p.Len() < 2 || a.Len() < 2 {
		return nil, fmt.Errorf("sed: need at least 2 samples in both trajectories (have %d and %d)", p.Len(), a.Len())
	}
	t0 := math.Max(p.StartTime(), a.StartTime())
	t1 := math.Min(p.EndTime(), a.EndTime())
	if t1 <= t0 {
		return nil, ErrNoOverlap
	}
	cuts := make([]float64, 0, p.Len()+a.Len())
	cuts = append(cuts, t0, t1)
	for _, s := range p {
		if s.T > t0 && s.T < t1 {
			cuts = append(cuts, s.T)
		}
	}
	for _, s := range a {
		if s.T > t0 && s.T < t1 {
			cuts = append(cuts, s.T)
		}
	}
	sort.Float64s(cuts)
	// Deduplicate exactly equal cut times.
	out := cuts[:1]
	for _, c := range cuts[1:] {
		//lint:allow floatcmp deduplication of exactly equal cut times; near-equal cuts just yield a near-empty interval
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out, nil
}

// meanDistLinear returns the mean of |δ(s)| for s ∈ [0, 1] where
// δ(s) = (1-s)·(dx0, dy0) + s·(dx1, dy1) — the average separation of two
// synchronously moving points whose offset interpolates linearly from
// (dx0, dy0) to (dx1, dy1).
//
// |δ(s)|² = A·s² + B·s + C with the coefficients below; this is the
// normalized form of the paper's c1, c2, c3 (the paper parameterizes by
// absolute time t; substituting s = (t − t_i)/(t_{i+1} − t_i) removes the
// 1/c4 scale factors and yields the same three solution cases).
func meanDistLinear(dx0, dy0, dx1, dy1 float64) float64 {
	ex, ey := dx1-dx0, dy1-dy0
	A := ex*ex + ey*ey
	B := 2 * (dx0*ex + dy0*ey)
	C := dx0*dx0 + dy0*dy0

	// Case c1 = 0: the offset is constant (the approximated segment is a
	// translated copy); the mean distance is that constant. The exact A == 0
	// arm catches scale == 0 (both offsets exactly zero), where the relative
	// test is 0 <= 0 only by convention.
	scale := A + math.Abs(B) + C
	//lint:allow floatcmp degenerate-case guard: A == 0 exactly when both offset deltas are 0
	if A <= 1e-18*scale || A == 0 {
		return math.Sqrt(C)
	}

	disc := B*B - 4*A*C // ≤ 0 up to rounding, since A·s²+B·s+C = |δ(s)|² ≥ 0
	if disc > -1e-12*scale*scale {
		// Discriminant ≈ 0: |δ(s)| = √A·|s - s*| with root s* = -B/(2A).
		// The paper's single-formula antiderivative is valid only when the
		// root lies outside the integration interval; splitting at s*
		// handles the shared-start (δ0 = 0), shared-end (δ1 = 0) and
		// "δ ratios respected" sub-cases uniformly.
		sqrtA := math.Sqrt(A)
		root := -B / (2 * A)
		absInt := func(from, to float64) float64 {
			// ∫ |s - root| ds over [from, to] with no sign change inside.
			m0, m1 := from-root, to-root
			return math.Abs(m1*m1-m0*m0) / 2
		}
		switch {
		case root <= 0 || root >= 1:
			return sqrtA * absInt(0, 1)
		default:
			return sqrtA * (absInt(0, root) + absInt(root, 1))
		}
	}

	// General case (disc < 0): closed-form antiderivative
	// F(s) = (2As+B)/(4A)·√Q(s) + (4AC−B²)/(8A^{3/2})·asinh((2As+B)/√(4AC−B²)).
	q := func(s float64) float64 { return (A*s+B)*s + C }
	sqrtA := math.Sqrt(A)
	k := math.Sqrt(-disc)
	F := func(s float64) float64 {
		return (2*A*s+B)/(4*A)*math.Sqrt(math.Max(0, q(s))) +
			(-disc)/(8*A*sqrtA)*math.Asinh((2*A*s+B)/k)
	}
	return F(1) - F(0)
}

// AvgErrorNumeric computes α(p, a) by adaptive Simpson quadrature instead of
// the closed form. It exists to cross-validate AvgError in tests and
// benchmarks; production code should use AvgError. Like AvgError it reports
// a NaN/Inf result as ErrNonFinite.
func AvgErrorNumeric(p, a trajectory.Trajectory, tol float64) (float64, error) {
	cuts, err := mergedCuts(p, a)
	if err != nil {
		return 0, err
	}
	dist := func(t float64) float64 {
		pp, _ := p.LocAt(t)
		pa, _ := a.LocAt(t)
		return pp.Dist(pa)
	}
	var total float64
	for i := 0; i+1 < len(cuts); i++ {
		total += adaptiveSimpson(dist, cuts[i], cuts[i+1], tol, 24)
	}
	return finite(total / (cuts[len(cuts)-1] - cuts[0]))
}

func adaptiveSimpson(f func(float64) float64, a, b, tol float64, depth int) float64 {
	m := (a + b) / 2
	fa, fm, fb := f(a), f(m), f(b)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return simpsonAux(f, a, b, fa, fm, fb, whole, tol, depth)
}

func simpsonAux(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return simpsonAux(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		simpsonAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}
