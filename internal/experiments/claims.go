package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"
	"text/tabwriter"
)

// Claim is one machine-checked statement from the paper's evaluation.
type Claim struct {
	ID        string // e.g. "F7.1"
	Statement string // the paper's claim, paraphrased
	Pass      bool
	Detail    string // measured quantities backing the verdict
}

var (
	claimsOnce sync.Once
	claimsMemo []Claim
)

// VerifyClaims evaluates every qualitative claim of the paper's §4 against
// the reproduction and returns the checklist — the repository's
// "reproduction certificate". Results are memoized.
func VerifyClaims() []Claim {
	claimsOnce.Do(func() { claimsMemo = verifyClaims() })
	return claimsMemo
}

func verifyClaims() []Claim {
	var out []Claim
	add := func(id, statement string, pass bool, detail string, args ...any) {
		out = append(out, Claim{ID: id, Statement: statement, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	// Table 2 calibration.
	t2 := Table2()
	add("T2.1", "dataset duration matches Table 2 (00:32:16 ± 20%)",
		t2.Mean.Duration > 1936*0.8 && t2.Mean.Duration < 1936*1.2,
		"measured %.0f s vs paper 1936 s", t2.Mean.Duration)
	add("T2.2", "dataset speed matches Table 2 (40.85 km/h ± 25%)",
		t2.Mean.AvgSpeed*3.6 > 30 && t2.Mean.AvgSpeed*3.6 < 51,
		"measured %.2f km/h vs paper 40.85 km/h", t2.Mean.AvgSpeed*3.6)
	add("T2.3", "dataset size matches Table 2 (≈200 points per trajectory)",
		t2.Mean.NumPoints >= 140 && t2.Mean.NumPoints <= 260,
		"measured %d points vs paper 200", t2.Mean.NumPoints)

	f7 := Figure7()
	ndp, tdtr := f7.Series[0], f7.Series[1]
	add("F7.1", "TD-TR produces much lower errors than NDP",
		meanOf(tdtr.Error) < meanOf(ndp.Error)/2,
		"mean error %.1f m vs %.1f m", meanOf(tdtr.Error), meanOf(ndp.Error))
	add("F7.2", "TD-TR compression is only slightly lower than NDP's",
		meanOf(ndp.Compression)-meanOf(tdtr.Compression) > 0 &&
			meanOf(ndp.Compression)-meanOf(tdtr.Compression) < 30,
		"mean compression %.1f%% vs %.1f%%", meanOf(tdtr.Compression), meanOf(ndp.Compression))
	add("F7.3", "compression and error increase monotonically with threshold, flattening",
		nearlyMonotone(ndp.Compression) && nearlyMonotone(tdtr.Compression) &&
			nearlyMonotone(tdtr.Error),
		"NDP comp %.1f→%.1f%%, TD-TR comp %.1f→%.1f%%",
		ndp.Compression[0], ndp.Compression[len(ndp.Compression)-1],
		tdtr.Compression[0], tdtr.Compression[len(tdtr.Compression)-1])

	f8 := Figure8()
	bopw, nopw := f8.Series[0], f8.Series[1]
	add("F8.1", "BOPW yields higher compression but worse errors than NOPW",
		meanOf(bopw.Compression) >= meanOf(nopw.Compression) &&
			meanOf(bopw.Error) >= meanOf(nopw.Error),
		"BOPW %.1f%% / %.1f m vs NOPW %.1f%% / %.1f m",
		meanOf(bopw.Compression), meanOf(bopw.Error),
		meanOf(nopw.Compression), meanOf(nopw.Error))

	f9 := Figure9()
	nopw9, opwtr := f9.Series[0], f9.Series[1]
	add("F9.1", "OPW-TR is superior to NOPW on error",
		meanOf(opwtr.Error) < meanOf(nopw9.Error)/2,
		"mean error %.1f m vs %.1f m", meanOf(opwtr.Error), meanOf(nopw9.Error))
	add("F9.2", "OPW-TR error is insensitive to the threshold choice, unlike NOPW",
		spreadOf(opwtr.Error) < spreadOf(nopw9.Error),
		"error spread %.1f m vs %.1f m", spreadOf(opwtr.Error), spreadOf(nopw9.Error))

	f10 := Figure10()
	series := map[string]Series{}
	for _, s := range f10.Series {
		series[s.Name] = s
	}
	coincide := true
	for i := range series["OPW-TR"].Thresholds {
		d := math.Abs(series["OPW-TR"].Error[i] - series["OPW-SP(25m/s)"].Error[i])
		if d > 0.15*series["OPW-TR"].Error[i]+1 {
			coincide = false
		}
	}
	add("F10.1", "the OPW-TR graph coincides with OPW-SP(25 m/s)",
		coincide, "max relative divergence within 15%%")
	add("F10.2", "a 5 m/s speed threshold in TD-SP improves compression",
		meanOf(series["TD-SP(5m/s)"].Compression) > meanOf(series["OPW-TR"].Compression),
		"TD-SP(5) %.1f%% vs OPW-TR %.1f%%",
		meanOf(series["TD-SP(5m/s)"].Compression), meanOf(series["OPW-TR"].Compression))

	f11 := Figure11()
	dominance := true
	var ndp11, tdtr11 Series
	for _, s := range f11.Series {
		switch s.Name {
		case "NDP":
			ndp11 = s
		case "TD-TR":
			tdtr11 = s
		}
	}
	for i := range ndp11.Thresholds {
		if tdtr11.Error[i] >= ndp11.Error[i] {
			dominance = false
		}
	}
	add("F11.1", "spatiotemporal algorithms outperform the spatial-only ones",
		dominance, "TD-TR error below NDP at all 15 thresholds")
	add("F11.2", "TD-TR ranks slightly over OPW-TR on compression, at slightly higher error",
		meanOf(tdtr11.Compression) > meanOf(series["OPW-TR"].Compression) &&
			meanOf(tdtr11.Error) > meanOf(series["OPW-TR"].Error),
		"TD-TR %.1f%% / %.1f m vs OPW-TR %.1f%% / %.1f m",
		meanOf(tdtr11.Compression), meanOf(tdtr11.Error),
		meanOf(series["OPW-TR"].Compression), meanOf(series["OPW-TR"].Error))

	// The library's own guarantee, beyond the paper: time-ratio average
	// error never exceeds the distance threshold.
	bounded := true
	for _, s := range []Series{tdtr, opwtr} {
		for i, th := range s.Thresholds {
			if s.Error[i] > th {
				bounded = false
			}
		}
	}
	add("G1", "time-ratio algorithms keep α(p,a) within the distance threshold",
		bounded, "checked TD-TR and OPW-TR over all thresholds")

	return out
}

// RenderClaims writes the checklist as an aligned table and reports whether
// every claim passed.
func RenderClaims(w io.Writer, claims []Claim) (allPass bool, err error) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	allPass = true
	for _, c := range claims {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
			allPass = false
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t(%s)\n", mark, c.ID, c.Statement, c.Detail)
	}
	return allPass, tw.Flush()
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func spreadOf(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	return hi - lo
}

// nearlyMonotone tolerates 1-point dips (the paper notes NOPW's error is
// not strictly monotone).
func nearlyMonotone(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1]-1 {
			return false
		}
	}
	return true
}
