package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/compress"
	"repro/internal/mapmatch"
	"repro/internal/roadnet"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// Ablation experiments for the design choices called out in DESIGN.md §5.
// These go beyond the paper's figures: they isolate individual mechanisms
// of the algorithms on the same dataset and metrics.

// AblationTailDrop quantifies the paper's §2.2 observation that
// opening-window algorithms "may lose the last few data points": OPW-TR
// with the keep-last countermeasure (the library default) against the raw
// tail-dropping behaviour.
func AblationTailDrop() Figure {
	keep := Factory{"OPW-TR(keep-last)", func(d float64) compress.Algorithm {
		return compress.OPWTR{Threshold: d}
	}}
	drop := Factory{"OPW-TR(drop-tail)", func(d float64) compress.Algorithm {
		return compress.OPWTR{Threshold: d, DropTail: true}
	}}
	return Figure{
		ID:     "Ablation A1",
		Title:  "Opening-window tail handling: keep-last countermeasure vs raw tail loss",
		Series: []Series{Sweep(keep), Sweep(drop)},
	}
}

// AblationBreakStrategy isolates the break-point strategy (§2.2) under the
// synchronized distance: cutting at the offending point versus just before
// the float. The perpendicular-distance version of this ablation is the
// paper's own Figure 8.
func AblationBreakStrategy() Figure {
	at := Factory{"OPW-TR(at-violation)", func(d float64) compress.Algorithm {
		return compress.OPWTR{Threshold: d, Strategy: compress.BreakAtViolation}
	}}
	before := Factory{"OPW-TR(break-before)", func(d float64) compress.Algorithm {
		return compress.OPWTR{Threshold: d, Strategy: compress.BreakBefore}
	}}
	return Figure{
		ID:     "Ablation A2",
		Title:  "Break-point strategy under the synchronized distance",
		Series: []Series{Sweep(at), Sweep(before)},
	}
}

// BudgetFigure is extension experiment E2: compression to a fixed point
// budget (the paper's first halting condition in §2 — "the number of data
// points ... exceeds a user-defined value") instead of an error threshold.
// Uniform sampling, the online SQUISH sketch, and the offline budgeted
// top-down algorithms are compared at equal budgets under the synchronized
// error.
func BudgetFigure() Figure {
	budgets := []float64{10, 20, 40, 80}
	mk := func(name string, alg func(n int) compress.Algorithm) Series {
		s := Series{Name: name, Thresholds: budgets}
		for _, b := range budgets {
			comp, errAvg := runPoint(budgetAdapter{alg(int(b))})
			s.Compression = append(s.Compression, comp)
			s.Error = append(s.Error, errAvg)
		}
		return s
	}
	return Figure{
		ID:     "Extension E2",
		Title:  "Point-budget compression: uniform vs SQUISH vs budgeted top-down",
		XLabel: "budget (points)",
		Series: []Series{
			mk("Uniform", func(n int) compress.Algorithm {
				// Approximate the budget with the ceiling stride over the
				// dataset's ≈200-point trajectories (uniform sampling
				// cannot hit arbitrary budgets exactly).
				stride := (200 + n - 1) / n
				if stride < 2 {
					stride = 2
				}
				return compress.Uniform{K: stride}
			}),
			mk("SQUISH", func(n int) compress.Algorithm { return compress.SQUISH{Capacity: n} }),
			mk("NDP-N", func(n int) compress.Algorithm { return compress.DouglasPeuckerN{N: n} }),
			mk("TD-TR-N", func(n int) compress.Algorithm { return compress.TDTRN{N: n} }),
		},
	}
}

// budgetAdapter lets point-budget algorithms flow through runPoint.
type budgetAdapter struct{ compress.Algorithm }

// MapMatchFigure is extension experiment E3: map matching before
// compression. Ten noisy staircase drives on a road grid are compressed
// with TD-TR directly and after HMM snapping; both compression rate and the
// error against the noise-free ground truth are reported per threshold.
// Matching removes lateral GPS noise, so the snapped series compresses
// harder while staying closer to the true movement.
func MapMatchFigure() Figure {
	const sigma = 8.0
	roads := roadnet.Grid(71, 71, 100)
	rng := rand.New(rand.NewSource(3))

	type drivePair struct{ truth, noisy, matched trajectory.Trajectory }
	var drives []drivePair
	for d := 0; d < 10; d++ {
		var truth, noisy trajectory.Trajectory
		x, y := 0.0, 0.0
		heading := d % 2
		for i := 0; i < 120; i++ {
			t := float64(i * 10)
			truth = append(truth, trajectory.S(t, x, y))
			noisy = append(noisy, trajectory.S(t, x+rng.NormFloat64()*sigma, y+rng.NormFloat64()*sigma))
			if rng.Float64() < 0.1 {
				heading = 1 - heading
			}
			// Bounce off the grid boundary (the route never needs more
			// than 12 km in total, so only one axis can saturate).
			if heading == 0 && x >= 6900 {
				heading = 1
			}
			if heading == 1 && y >= 6900 {
				heading = 0
			}
			if heading == 0 {
				x += 100
			} else {
				y += 100
			}
		}
		_, matched, err := mapmatch.Snap(roads, noisy, mapmatch.Options{NoiseSigma: sigma})
		if err != nil {
			panic(fmt.Sprintf("experiments: map match: %v", err))
		}
		drives = append(drives, drivePair{truth: truth, noisy: noisy, matched: matched})
	}

	ths := []float64{10, 15, 20, 25, 30, 40, 50}
	sweep := func(name string, pick func(drivePair) trajectory.Trajectory) Series {
		s := Series{Name: name, Thresholds: ths}
		for _, th := range ths {
			alg := compress.TDTR{Threshold: th}
			var comp, errSum float64
			for _, d := range drives {
				in := pick(d)
				kept := alg.Compress(in)
				comp += compress.Rate(in.Len(), kept.Len())
				// Error is measured against the ground truth, not the
				// (noisy or matched) input — the quantity the application
				// cares about.
				e, err := sed.AvgError(d.truth, kept)
				if err != nil {
					panic(fmt.Sprintf("experiments: %v", err))
				}
				errSum += e
			}
			s.Compression = append(s.Compression, comp/float64(len(drives)))
			s.Error = append(s.Error, errSum/float64(len(drives)))
		}
		return s
	}

	return Figure{
		ID:     "Extension E3",
		Title:  "Map matching before compression: TD-TR on raw vs snapped tracks (error vs ground truth)",
		XLabel: "threshold (m)",
		Series: []Series{
			sweep("TD-TR(raw)", func(d drivePair) trajectory.Trajectory { return d.noisy }),
			sweep("TD-TR(matched)", func(d drivePair) trajectory.Trajectory { return d.matched }),
		},
	}
}

// OnePassFigure is extension experiment E4: the one-pass error-bounded
// family (OPERB's perpendicular bound, CISED's synchronized bound in strong
// and weak flavours) head-to-head against OPW-SP(15 m/s), the paper's best
// spatiotemporal opening-window algorithm. The one-pass algorithms decide
// each point in O(1) without re-scanning a window, so the interesting
// question is how much error/compression quality that speed costs — the
// per-point CPU side of the trade is measured by trajload -stream-cpu and
// recorded in BENCH_load.json.
func OnePassFigure() Figure {
	return Figure{
		ID:    "Extension E4",
		Title: "One-pass algorithms (OPERB, CISED-S, CISED-W) vs OPW-SP(15m/s)",
		Series: SweepAll(
			OPWSPFactory(15),
			OPERBFactory,
			CISEDSFactory,
			CISEDWFactory,
		),
	}
}

// TaxonomyFigure is an extension experiment: the paper's full §2 taxonomy —
// top-down, bottom-up, sliding-window and opening-window — all under the
// synchronized (time-ratio) distance, isolating the effect of the scan
// strategy from the distance notion.
func TaxonomyFigure() Figure {
	bu := Factory{"BU-TR", func(d float64) compress.Algorithm {
		return compress.BottomUpTR{Threshold: d}
	}}
	sw := Factory{"SW-TR(20)", func(d float64) compress.Algorithm {
		return compress.SlidingWindowTR{Threshold: d, Window: 20}
	}}
	return Figure{
		ID:     "Extension E1",
		Title:  "The §2 taxonomy under the synchronized distance: TD-TR, BU-TR, SW-TR, OPW-TR",
		Series: []Series{Sweep(TDTRFactory), Sweep(bu), Sweep(sw), Sweep(OPWTRFactory)},
	}
}
