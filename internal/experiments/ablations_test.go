package experiments

import "testing"

func TestAblationTailDrop(t *testing.T) {
	f := AblationTailDrop()
	keep, drop := f.Series[0], f.Series[1]
	// Dropping the tail can only discard more points, so its compression is
	// at least as high at every threshold.
	for i := range keep.Thresholds {
		if drop.Compression[i] < keep.Compression[i]-1e-9 {
			t.Errorf("threshold %.0f: drop-tail compression %.2f below keep-last %.2f",
				keep.Thresholds[i], drop.Compression[i], keep.Compression[i])
		}
	}
	// Keeping the last point must respect the synchronized guarantee; the
	// tail-dropping variant is only evaluated over its covered prefix, so
	// both error series stay at the same order.
	if mean(drop.Error) > 3*mean(keep.Error)+10 {
		t.Errorf("drop-tail error %.1f implausibly above keep-last %.1f", mean(drop.Error), mean(keep.Error))
	}
}

func TestAblationBreakStrategy(t *testing.T) {
	f := AblationBreakStrategy()
	at, before := f.Series[0], f.Series[1]
	// Break-before merges more aggressively: higher compression — the
	// synchronized-distance analogue of the paper's Fig. 8 result.
	if mean(before.Compression) < mean(at.Compression) {
		t.Errorf("break-before compression %.1f below at-violation %.1f",
			mean(before.Compression), mean(at.Compression))
	}
	// Unlike BOPW under perpendicular distance, both variants keep the
	// synchronized max-error guarantee, so average errors stay within the
	// thresholds.
	for i, th := range before.Thresholds {
		if before.Error[i] > th {
			t.Errorf("break-before error %.1f exceeds threshold %.0f", before.Error[i], th)
		}
	}
}

func TestBudgetFigure(t *testing.T) {
	f := BudgetFigure()
	byName := map[string]Series{}
	for _, s := range f.Series {
		byName[s.Name] = s
	}
	// At every budget, the time-aware budgeted top-down beats uniform
	// sampling and the offline algorithm beats (or matches) the online
	// sketch.
	tdtrn, uniform := byName["TD-TR-N"], byName["Uniform"]
	squish := byName["SQUISH"]
	for i := range tdtrn.Thresholds {
		if tdtrn.Error[i] >= uniform.Error[i] {
			t.Errorf("budget %.0f: TD-TR-N error %.1f not below Uniform %.1f",
				tdtrn.Thresholds[i], tdtrn.Error[i], uniform.Error[i])
		}
		if tdtrn.Error[i] > squish.Error[i]*1.2+1 {
			t.Errorf("budget %.0f: offline TD-TR-N error %.1f above online SQUISH %.1f",
				tdtrn.Thresholds[i], tdtrn.Error[i], squish.Error[i])
		}
	}
	// Error decreases with budget for every series.
	for _, s := range f.Series {
		for i := 1; i < len(s.Error); i++ {
			if s.Error[i] > s.Error[i-1]*1.3+1 {
				t.Errorf("%s: error grew substantially with budget at %v", s.Name, s.Thresholds[i])
			}
		}
	}
}

func TestMapMatchFigure(t *testing.T) {
	f := MapMatchFigure()
	raw, matched := f.Series[0], f.Series[1]
	// At every threshold, matching first compresses at least as hard and
	// stays closer to the ground truth.
	for i, th := range raw.Thresholds {
		if matched.Compression[i] < raw.Compression[i]-1 {
			t.Errorf("threshold %.0f: matched compression %.1f below raw %.1f",
				th, matched.Compression[i], raw.Compression[i])
		}
		if matched.Error[i] > raw.Error[i]+0.5 {
			t.Errorf("threshold %.0f: matched truth-error %.1f above raw %.1f",
				th, matched.Error[i], raw.Error[i])
		}
	}
}

func TestTaxonomyFigure(t *testing.T) {
	f := TaxonomyFigure()
	if len(f.Series) != 4 {
		t.Fatalf("taxonomy has %d series", len(f.Series))
	}
	byName := map[string]Series{}
	for _, s := range f.Series {
		byName[s.Name] = s
	}
	// All four scan strategies inherit the synchronized guarantee: average
	// error bounded by the threshold.
	for name, s := range byName {
		for i, th := range s.Thresholds {
			if s.Error[i] > th {
				t.Errorf("%s: error %.1f exceeds threshold %.0f", name, s.Error[i], th)
			}
		}
	}
	// Batch algorithms with global view (TD, BU) compress at least as well
	// as the windowed ones on average.
	if mean(byName["BU-TR"].Compression) < mean(byName["SW-TR(20)"].Compression)-5 {
		t.Errorf("BU-TR compression %.1f unexpectedly below SW-TR %.1f",
			mean(byName["BU-TR"].Compression), mean(byName["SW-TR(20)"].Compression))
	}
}
