package experiments

import "repro/internal/trajectory"

// Table2 reproduces the paper's Table 2: per-dataset statistics of the ten
// evaluation trajectories.
func Table2() trajectory.DatasetStats {
	return trajectory.SummarizeDataset(Dataset())
}

// Figure7 reproduces Fig. 7: conventional top-down Douglas-Peucker (NDP)
// against the top-down time-ratio algorithm (TD-TR).
func Figure7() Figure {
	return Figure{
		ID:     "Figure 7",
		Title:  "NDP vs TD-TR: compression and synchronized error per distance threshold",
		Series: SweepAll(NDPFactory, TDTRFactory),
	}
}

// Figure8 reproduces Fig. 8: the two opening-window break strategies, BOPW
// and NOPW.
func Figure8() Figure {
	return Figure{
		ID:     "Figure 8",
		Title:  "BOPW vs NOPW: break-point strategy of opening-window algorithms",
		Series: SweepAll(BOPWFactory, NOPWFactory),
	}
}

// Figure9 reproduces Fig. 9: the conventional opening window (NOPW) against
// the opening-window time-ratio algorithm (OPW-TR).
func Figure9() Figure {
	return Figure{
		ID:     "Figure 9",
		Title:  "NOPW vs OPW-TR: perpendicular vs synchronized halting condition",
		Series: SweepAll(NOPWFactory, OPWTRFactory),
	}
}

// Figure10 reproduces Fig. 10: OPW-TR against the spatiotemporal algorithms
// TD-SP(5 m/s) and OPW-SP at the three speed thresholds.
func Figure10() Figure {
	return Figure{
		ID:    "Figure 10",
		Title: "OPW-TR vs TD-SP and OPW-SP: the speed-difference criterion",
		Series: SweepAll(
			OPWTRFactory,
			TDSPFactory(5),
			OPWSPFactory(5),
			OPWSPFactory(15),
			OPWSPFactory(25),
		),
	}
}

// Figure11 reproduces Fig. 11: the error-versus-compression frontier of all
// compared algorithms (each series traces its fifteen threshold settings).
func Figure11() Figure {
	return Figure{
		ID:    "Figure 11",
		Title: "Error versus compression across all algorithms",
		Series: SweepAll(
			NDPFactory,
			TDTRFactory,
			NOPWFactory,
			OPWTRFactory,
			OPWSPFactory(5),
			OPWSPFactory(15),
			OPWSPFactory(25),
		),
	}
}

// AllFigures regenerates every figure of the evaluation, in paper order.
func AllFigures() []Figure {
	return []Figure{Figure7(), Figure8(), Figure9(), Figure10(), Figure11()}
}
