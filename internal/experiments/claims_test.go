package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Every paper claim must pass on the reproduction — this is the
// reproduction certificate in test form.
func TestAllClaimsPass(t *testing.T) {
	claims := VerifyClaims()
	if len(claims) < 10 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("%s FAILED: %s (%s)", c.ID, c.Statement, c.Detail)
		}
	}
}

func TestVerifyClaimsMemoized(t *testing.T) {
	a := VerifyClaims()
	b := VerifyClaims()
	if &a[0] != &b[0] {
		t.Error("claims recomputed on second call")
	}
}

func TestRenderClaims(t *testing.T) {
	var buf bytes.Buffer
	allPass, err := RenderClaims(&buf, VerifyClaims())
	if err != nil {
		t.Fatal(err)
	}
	if !allPass {
		t.Error("RenderClaims reports failures")
	}
	out := buf.String()
	for _, want := range []string{"PASS", "F7.1", "T2.1", "G1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// A failing claim renders FAIL and flips allPass.
	buf.Reset()
	fail := []Claim{{ID: "X", Statement: "broken", Pass: false, Detail: "detail"}}
	allPass, err = RenderClaims(&buf, fail)
	if err != nil {
		t.Fatal(err)
	}
	if allPass || !strings.Contains(buf.String(), "FAIL") {
		t.Error("failing claim not rendered as FAIL")
	}
}
