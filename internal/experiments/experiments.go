// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Table 2 (dataset statistics) and Figures 7–11 (the
// compression/error comparisons between the spatial and spatiotemporal
// algorithm families).
//
// The workload is the calibrated synthetic dataset of internal/gpsgen (the
// substitution for the paper's proprietary GPS traces; see DESIGN.md §4).
// Error is the paper's time-synchronized average error α(p, a) of §4.2.
// Compression is the percentage of data points removed, averaged over the
// ten trajectories — matching the paper's axes.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/compress"
	"repro/internal/gpsgen"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// Thresholds are the paper's fifteen distance thresholds: 30–100 m in 5 m
// steps.
func Thresholds() []float64 {
	out := make([]float64, 0, 15)
	for d := 30.0; d <= 100; d += 5 {
		out = append(out, d)
	}
	return out
}

// SpeedThresholds are the paper's three speed-difference thresholds in m/s.
func SpeedThresholds() []float64 { return []float64{5, 15, 25} }

// Dataset returns the ten evaluation trajectories. The result is cached;
// callers must not modify it.
func Dataset() []trajectory.Trajectory {
	datasetOnce.Do(func() { dataset = gpsgen.PaperDataset() })
	return dataset
}

var (
	datasetOnce sync.Once
	dataset     []trajectory.Trajectory
)

// Series is one algorithm's sweep over the distance thresholds.
type Series struct {
	Name        string
	Thresholds  []float64
	Compression []float64 // percent of points removed, averaged over trips
	Error       []float64 // α(p, a) in metres, averaged over trips
}

// Figure is one reproduced figure: a titled collection of series.
type Figure struct {
	ID     string // e.g. "Figure 7"
	Title  string
	Series []Series
	// XLabel names the swept parameter; empty means "threshold (m)".
	XLabel string
}

// Factory builds an algorithm for a given distance threshold.
type Factory struct {
	Name string
	New  func(distThreshold float64) compress.Algorithm
}

// Sweep runs one algorithm family over all thresholds and the standard
// dataset.
func Sweep(f Factory) Series { return SweepOn(Dataset(), f) }

// SweepOn runs one algorithm family over all thresholds and an arbitrary
// dataset — used by robustness checks that re-run the evaluation on
// different synthetic seeds.
func SweepOn(ds []trajectory.Trajectory, f Factory) Series {
	ths := Thresholds()
	s := Series{Name: f.Name, Thresholds: ths}
	for _, th := range ths {
		comp, errAvg := runPointOn(ds, f.New(th))
		s.Compression = append(s.Compression, comp)
		s.Error = append(s.Error, errAvg)
	}
	return s
}

// SweepAll runs several families concurrently (the sweeps are pure and the
// dataset is shared read-only), preserving input order in the result.
func SweepAll(fs ...Factory) []Series {
	Dataset() // materialize once before fanning out
	out := make([]Series, len(fs))
	var wg sync.WaitGroup
	for i, f := range fs {
		wg.Add(1)
		go func(i int, f Factory) {
			defer wg.Done()
			out[i] = Sweep(f)
		}(i, f)
	}
	wg.Wait()
	return out
}

// runPoint compresses every dataset trajectory with alg and returns the
// mean compression percentage and mean synchronized error.
func runPoint(alg compress.Algorithm) (compPct, errAvg float64) {
	return runPointOn(Dataset(), alg)
}

func runPointOn(ds []trajectory.Trajectory, alg compress.Algorithm) (compPct, errAvg float64) {
	for _, p := range ds {
		a := alg.Compress(p)
		compPct += compress.Rate(p.Len(), a.Len())
		e, err := sed.AvgError(p, a)
		if err != nil {
			// The dataset trajectories all have ≥ 2 points and compression
			// preserves endpoints, so this is a programming error.
			panic(fmt.Sprintf("experiments: %s: %v", alg.Name(), err))
		}
		errAvg += e
	}
	n := float64(len(ds))
	return compPct / n, errAvg / n
}

// Standard factories for the algorithms the paper compares.
var (
	NDPFactory   = Factory{"NDP", func(d float64) compress.Algorithm { return compress.DouglasPeucker{Threshold: d} }}
	TDTRFactory  = Factory{"TD-TR", func(d float64) compress.Algorithm { return compress.TDTR{Threshold: d} }}
	NOPWFactory  = Factory{"NOPW", func(d float64) compress.Algorithm { return compress.NOPW{Threshold: d} }}
	BOPWFactory  = Factory{"BOPW", func(d float64) compress.Algorithm { return compress.BOPW{Threshold: d} }}
	OPWTRFactory = Factory{"OPW-TR", func(d float64) compress.Algorithm { return compress.OPWTR{Threshold: d} }}
)

// OPWSPFactory returns the OPW-SP family member with the given speed
// threshold.
func OPWSPFactory(speed float64) Factory {
	return Factory{
		Name: fmt.Sprintf("OPW-SP(%gm/s)", speed),
		New: func(d float64) compress.Algorithm {
			return compress.OPWSP{DistThreshold: d, SpeedThreshold: speed}
		},
	}
}

// TDSPFactory returns the TD-SP family member with the given speed
// threshold.
func TDSPFactory(speed float64) Factory {
	return Factory{
		Name: fmt.Sprintf("TD-SP(%gm/s)", speed),
		New: func(d float64) compress.Algorithm {
			return compress.TDSP{DistThreshold: d, SpeedThreshold: speed}
		},
	}
}
