// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Table 2 (dataset statistics) and Figures 7–11 (the
// compression/error comparisons between the spatial and spatiotemporal
// algorithm families).
//
// The workload is the calibrated synthetic dataset of internal/gpsgen (the
// substitution for the paper's proprietary GPS traces; see DESIGN.md §4).
// Error is the paper's time-synchronized average error α(p, a) of §4.2.
// Compression is the percentage of data points removed, averaged over the
// ten trajectories — matching the paper's axes.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/gpsgen"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// Thresholds are the paper's fifteen distance thresholds: 30–100 m in 5 m
// steps.
func Thresholds() []float64 {
	out := make([]float64, 0, 15)
	for i := 0; i < 15; i++ {
		out = append(out, 30+float64(i)*5)
	}
	return out
}

// SpeedThresholds are the paper's three speed-difference thresholds in m/s.
func SpeedThresholds() []float64 { return []float64{5, 15, 25} }

// Dataset returns the ten evaluation trajectories. The result is cached;
// callers must not modify it.
func Dataset() []trajectory.Trajectory {
	datasetOnce.Do(func() { dataset = gpsgen.PaperDataset() })
	return dataset
}

var (
	datasetOnce sync.Once
	dataset     []trajectory.Trajectory
)

// Series is one algorithm's sweep over the distance thresholds.
type Series struct {
	Name        string
	Thresholds  []float64
	Compression []float64 // percent of points removed, averaged over trips
	Error       []float64 // α(p, a) in metres, averaged over trips
}

// Figure is one reproduced figure: a titled collection of series.
type Figure struct {
	ID     string // e.g. "Figure 7"
	Title  string
	Series []Series
	// XLabel names the swept parameter; empty means "threshold (m)".
	XLabel string
}

// Factory builds an algorithm for a given distance threshold.
type Factory struct {
	Name string
	New  func(distThreshold float64) compress.Algorithm
}

// GridOptions configures SweepGrid's worker pool.
type GridOptions struct {
	// Parallelism bounds the number of grid cells evaluated concurrently
	// (one cell = one algorithm at one threshold over the whole dataset);
	// values ≤ 0 select the package default (see SetDefaultGridParallelism),
	// which itself defaults to GOMAXPROCS.
	Parallelism int
	// CellParallelism is handed to compress.CompressAll as the per-cell
	// trajectory worker bound; values ≤ 0 compress each cell's trajectories
	// serially (the grid-level fan-out already saturates the CPUs; raise
	// this only for few-cell sweeps over large fleets).
	CellParallelism int
}

// defaultGridPar is the pool width the convenience wrappers (Sweep, SweepOn,
// SweepAll and the Figure regenerators) use; ≤ 0 means GOMAXPROCS.
var defaultGridPar atomic.Int64

// SetDefaultGridParallelism sets the worker-pool width used when
// GridOptions.Parallelism is not supplied explicitly; n ≤ 0 restores the
// GOMAXPROCS default. It exists for cmd/experiments' -parallel flag and
// should be set before sweeps start.
func SetDefaultGridParallelism(n int) { defaultGridPar.Store(int64(n)) }

func (o GridOptions) workers(cells int) int {
	w := o.Parallelism
	if w <= 0 {
		w = int(defaultGridPar.Load())
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	return w
}

// Sweep runs one algorithm family over all thresholds and the standard
// dataset.
func Sweep(f Factory) Series { return SweepOn(Dataset(), f) }

// SweepOn runs one algorithm family over all thresholds and an arbitrary
// dataset — used by robustness checks that re-run the evaluation on
// different synthetic seeds.
func SweepOn(ds []trajectory.Trajectory, f Factory) Series {
	out, err := SweepGrid(context.Background(), ds, []Factory{f}, GridOptions{})
	if err != nil {
		panic(err) // unreachable: the background context is never cancelled
	}
	return out[0]
}

// SweepAll runs several families over the standard dataset on one shared
// worker pool (the sweeps are pure and the dataset is read-only),
// preserving input order in the result.
func SweepAll(fs ...Factory) []Series {
	out, err := SweepGrid(context.Background(), Dataset(), fs, GridOptions{})
	if err != nil {
		panic(err) // unreachable: the background context is never cancelled
	}
	return out
}

// SweepGrid evaluates the full (factory × threshold) grid of the paper's
// evaluation — e.g. 10 trajectories × 15 thresholds × several algorithm
// families — on a bounded worker pool: the algorithms are embarrassingly
// parallel across grid cells, so cells are dispatched errgroup-style to
// Parallelism workers. Per-cell compression flows through
// compress.CompressAll. Cancelling ctx abandons cells not yet started and
// returns ctx.Err(); otherwise one Series per factory is returned in input
// order.
func SweepGrid(ctx context.Context, ds []trajectory.Trajectory, fs []Factory, opts GridOptions) ([]Series, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ths := Thresholds()
	out := make([]Series, len(fs))
	for i, f := range fs {
		out[i] = Series{
			Name:        f.Name,
			Thresholds:  ths,
			Compression: make([]float64, len(ths)),
			Error:       make([]float64, len(ths)),
		}
	}

	type cell struct{ fi, ti int }
	cells := make([]cell, 0, len(fs)*len(ths))
	for fi := range fs {
		for ti := range ths {
			cells = append(cells, cell{fi, ti})
		}
	}
	run := func(c cell) error {
		comp, errAvg, err := runPointCtx(ctx, ds, fs[c.fi].New(ths[c.ti]), opts.CellParallelism)
		if err != nil {
			return err
		}
		out[c.fi].Compression[c.ti] = comp
		out[c.fi].Error[c.ti] = errAvg
		return nil
	}

	workers := opts.workers(len(cells))
	if workers <= 1 {
		for _, c := range cells {
			if err := run(c); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	next := make(chan cell)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				if err := run(c); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	dispatchErr := func() error {
		defer close(next)
		for _, c := range cells {
			select {
			case next <- c:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}()
	wg.Wait()
	if dispatchErr != nil {
		return nil, dispatchErr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// runPoint compresses every dataset trajectory with alg and returns the
// mean compression percentage and mean synchronized error.
func runPoint(alg compress.Algorithm) (compPct, errAvg float64) {
	return runPointOn(Dataset(), alg)
}

func runPointOn(ds []trajectory.Trajectory, alg compress.Algorithm) (compPct, errAvg float64) {
	compPct, errAvg, err := runPointCtx(context.Background(), ds, alg, 1)
	if err != nil {
		panic(err) // unreachable: the background context is never cancelled
	}
	return compPct, errAvg
}

// runPointCtx evaluates one grid cell: it batch-compresses the dataset with
// alg (compress.CompressAll, cellPar workers) and averages the compression
// rate and synchronized error over the trajectories.
func runPointCtx(ctx context.Context, ds []trajectory.Trajectory, alg compress.Algorithm, cellPar int) (compPct, errAvg float64, _ error) {
	if cellPar <= 0 {
		cellPar = 1
	}
	outs, err := compress.CompressAll(ctx, alg, compress.BatchOptions{Parallelism: cellPar}, ds)
	if err != nil {
		return 0, 0, err
	}
	for i, p := range ds {
		a := outs[i]
		compPct += compress.Rate(p.Len(), a.Len())
		e, err := sed.AvgError(p, a)
		if err != nil {
			// The dataset trajectories all have ≥ 2 points and compression
			// preserves endpoints, so this is a programming error.
			panic(fmt.Sprintf("experiments: %s: %v", alg.Name(), err))
		}
		errAvg += e
	}
	n := float64(len(ds))
	return compPct / n, errAvg / n, nil
}

// Standard factories for the algorithms the paper compares.
var (
	NDPFactory   = Factory{"NDP", func(d float64) compress.Algorithm { return compress.DouglasPeucker{Threshold: d} }}
	TDTRFactory  = Factory{"TD-TR", func(d float64) compress.Algorithm { return compress.TDTR{Threshold: d} }}
	NOPWFactory  = Factory{"NOPW", func(d float64) compress.Algorithm { return compress.NOPW{Threshold: d} }}
	BOPWFactory  = Factory{"BOPW", func(d float64) compress.Algorithm { return compress.BOPW{Threshold: d} }}
	OPWTRFactory = Factory{"OPW-TR", func(d float64) compress.Algorithm { return compress.OPWTR{Threshold: d} }}
)

// OPWSPFactory returns the OPW-SP family member with the given speed
// threshold.
func OPWSPFactory(speed float64) Factory {
	return Factory{
		Name: fmt.Sprintf("OPW-SP(%gm/s)", speed),
		New: func(d float64) compress.Algorithm {
			return compress.OPWSP{DistThreshold: d, SpeedThreshold: speed}
		},
	}
}

// One-pass family factories (OPERB and CISED; see internal/compress). They
// sweep the same distance-threshold axis as the paper's algorithms: for
// OPERB the threshold bounds the perpendicular distance, for CISED the
// synchronized distance.
var (
	OPERBFactory  = Factory{"OPERB", func(d float64) compress.Algorithm { return compress.OPERB{Threshold: d} }}
	CISEDSFactory = Factory{"CISED-S", func(d float64) compress.Algorithm { return compress.CISEDS{Threshold: d} }}
	CISEDWFactory = Factory{"CISED-W", func(d float64) compress.Algorithm { return compress.CISEDW{Threshold: d} }}
)

// TDSPFactory returns the TD-SP family member with the given speed
// threshold.
func TDSPFactory(speed float64) Factory {
	return Factory{
		Name: fmt.Sprintf("TD-SP(%gm/s)", speed),
		New: func(d float64) compress.Algorithm {
			return compress.TDSP{DistThreshold: d, SpeedThreshold: speed}
		},
	}
}
