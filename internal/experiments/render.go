package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/trajectory"
)

// RenderTable2 writes the Table 2 reproduction in the paper's layout
// (average and standard deviation per statistic).
func RenderTable2(w io.Writer, ds trajectory.DatasetStats) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table 2: statistics on the %d moving object trajectories\n", ds.N)
	fmt.Fprintln(tw, "statistic\taverage\tstandard deviation")
	fmt.Fprintf(tw, "duration\t%s\t%s\n",
		trajectory.FormatDuration(ds.Mean.Duration), trajectory.FormatDuration(ds.StdDev.Duration))
	fmt.Fprintf(tw, "speed\t%.2f km/h\t%.2f km/h\n", ds.Mean.AvgSpeed*3.6, ds.StdDev.AvgSpeed*3.6)
	fmt.Fprintf(tw, "length\t%.2f km\t%.2f km\n", ds.Mean.Length/1000, ds.StdDev.Length/1000)
	fmt.Fprintf(tw, "displacement\t%.2f km\t%.2f km\n", ds.Mean.Displacement/1000, ds.StdDev.Displacement/1000)
	fmt.Fprintf(tw, "# of data points\t%d\t%d\n", ds.Mean.NumPoints, ds.StdDev.NumPoints)
	return tw.Flush()
}

// RenderFigure writes one figure's series as two aligned tables (error and
// compression per threshold), the textual analogue of the paper's plots.
func RenderFigure(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)

	xlabel := f.XLabel
	if xlabel == "" {
		xlabel = "threshold (m)"
	}
	fmt.Fprintf(tw, "%s\t", xlabel)
	for _, s := range f.Series {
		fmt.Fprintf(tw, "%s err (m)\t", s.Name)
	}
	for _, s := range f.Series {
		fmt.Fprintf(tw, "%s comp (%%)\t", s.Name)
	}
	fmt.Fprintln(tw)

	for i, th := range f.Series[0].Thresholds {
		fmt.Fprintf(tw, "%.0f\t", th)
		for _, s := range f.Series {
			fmt.Fprintf(tw, "%.1f\t", s.Error[i])
		}
		for _, s := range f.Series {
			fmt.Fprintf(tw, "%.1f\t", s.Compression[i])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderFrontier writes a figure as (compression, error) pairs per series —
// the layout of the paper's Fig. 11.
func RenderFrontier(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "series\tthreshold (m)\tcompression (%)\terror (m)\t")
	for _, s := range f.Series {
		for i, th := range s.Thresholds {
			fmt.Fprintf(tw, "%s\t%.0f\t%.1f\t%.1f\t\n", s.Name, th, s.Compression[i], s.Error[i])
		}
	}
	return tw.Flush()
}
