package experiments

import (
	"testing"

	"repro/internal/gpsgen"
)

// The paper's headline orderings must hold on freshly generated datasets
// from different seeds, not just the calibrated PaperDataset — otherwise
// the reproduction could be an artifact of one lucky sample.
func TestHeadlineClaimsRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow")
	}
	for _, seed := range []int64{7, 99, 31337} {
		ds := gpsgen.New(seed, gpsgen.Config{}).Dataset(10, 1936, 750)

		ndp := SweepOn(ds, NDPFactory)
		tdtr := SweepOn(ds, TDTRFactory)
		nopw := SweepOn(ds, NOPWFactory)
		opwtr := SweepOn(ds, OPWTRFactory)

		// F7: TD-TR error clearly below NDP at every threshold.
		for i := range ndp.Thresholds {
			if tdtr.Error[i] >= ndp.Error[i] {
				t.Errorf("seed %d, threshold %.0f: TD-TR error %.1f not below NDP %.1f",
					seed, ndp.Thresholds[i], tdtr.Error[i], ndp.Error[i])
			}
		}
		if meanOf(tdtr.Error) >= meanOf(ndp.Error)/2 {
			t.Errorf("seed %d: TD-TR mean error %.1f not clearly below NDP %.1f",
				seed, meanOf(tdtr.Error), meanOf(ndp.Error))
		}
		// F9: OPW-TR error clearly below NOPW.
		if meanOf(opwtr.Error) >= meanOf(nopw.Error)/2 {
			t.Errorf("seed %d: OPW-TR mean error %.1f not clearly below NOPW %.1f",
				seed, meanOf(opwtr.Error), meanOf(nopw.Error))
		}
		// G1: the guarantee holds regardless of data.
		for i, th := range tdtr.Thresholds {
			if tdtr.Error[i] > th || opwtr.Error[i] > th {
				t.Errorf("seed %d: time-ratio error exceeds threshold %.0f", seed, th)
			}
		}
	}
}
