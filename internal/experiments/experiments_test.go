package experiments

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// Figures are expensive enough to share across assertions.
var (
	figOnce sync.Once
	fig7    Figure
	fig8    Figure
	fig9    Figure
	fig10   Figure
)

func figures() (Figure, Figure, Figure, Figure) {
	figOnce.Do(func() {
		fig7, fig8, fig9, fig10 = Figure7(), Figure8(), Figure9(), Figure10()
	})
	return fig7, fig8, fig9, fig10
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func spread(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	return hi - lo
}

func TestThresholdGrid(t *testing.T) {
	ths := Thresholds()
	if len(ths) != 15 || ths[0] != 30 || ths[14] != 100 {
		t.Errorf("Thresholds = %v, want 30..100 step 5", ths)
	}
	if sp := SpeedThresholds(); len(sp) != 3 || sp[0] != 5 || sp[2] != 25 {
		t.Errorf("SpeedThresholds = %v", sp)
	}
}

func TestDatasetCachedAndSized(t *testing.T) {
	a, b := Dataset(), Dataset()
	if len(a) != 10 {
		t.Fatalf("dataset size %d, want 10", len(a))
	}
	if &a[0] != &b[0] {
		t.Error("Dataset not cached")
	}
}

// Figure 7 claim: TD-TR produces much lower errors while the compression
// rate is only slightly lower.
func TestFigure7Shape(t *testing.T) {
	f7, _, _, _ := figures()
	ndp, tdtr := f7.Series[0], f7.Series[1]
	if mean(tdtr.Error) >= mean(ndp.Error)/2 {
		t.Errorf("TD-TR mean error %.1f not clearly below NDP %.1f", mean(tdtr.Error), mean(ndp.Error))
	}
	if diff := mean(ndp.Compression) - mean(tdtr.Compression); diff < 0 || diff > 30 {
		t.Errorf("TD-TR compression should be slightly below NDP; diff = %.1f points", diff)
	}
	// Both quantities increase (near-)monotonically with threshold for the
	// top-down algorithms; allow tiny numerical wiggles.
	for i := 1; i < len(ndp.Thresholds); i++ {
		if ndp.Compression[i] < ndp.Compression[i-1]-1 {
			t.Errorf("NDP compression not monotone at threshold %.0f", ndp.Thresholds[i])
		}
		if tdtr.Compression[i] < tdtr.Compression[i-1]-1 {
			t.Errorf("TD-TR compression not monotone at threshold %.0f", tdtr.Thresholds[i])
		}
	}
}

// Figure 8 claim: BOPW yields higher compression but worse errors than NOPW.
func TestFigure8Shape(t *testing.T) {
	_, f8, _, _ := figures()
	bopw, nopw := f8.Series[0], f8.Series[1]
	if mean(bopw.Compression) < mean(nopw.Compression) {
		t.Errorf("BOPW compression %.1f below NOPW %.1f", mean(bopw.Compression), mean(nopw.Compression))
	}
	if mean(bopw.Error) < mean(nopw.Error) {
		t.Errorf("BOPW error %.1f below NOPW %.1f — break-before should be worse", mean(bopw.Error), mean(nopw.Error))
	}
}

// Figure 9 claims: OPW-TR commits far lower error than NOPW, and its error
// is much less sensitive to the threshold choice.
func TestFigure9Shape(t *testing.T) {
	_, _, f9, _ := figures()
	nopw, opwtr := f9.Series[0], f9.Series[1]
	if mean(opwtr.Error) >= mean(nopw.Error)/2 {
		t.Errorf("OPW-TR mean error %.1f not clearly below NOPW %.1f", mean(opwtr.Error), mean(nopw.Error))
	}
	if spread(opwtr.Error) >= spread(nopw.Error) {
		t.Errorf("OPW-TR error spread %.1f not below NOPW %.1f", spread(opwtr.Error), spread(nopw.Error))
	}
}

// Figure 10 claims: OPW-SP(25 m/s) behaves like OPW-TR (the curves coincide
// in the paper), and tightening the speed threshold retains more points.
func TestFigure10Shape(t *testing.T) {
	_, _, _, f10 := figures()
	byName := map[string]Series{}
	for _, s := range f10.Series {
		byName[s.Name] = s
	}
	opwtr := byName["OPW-TR"]
	sp25 := byName["OPW-SP(25m/s)"]
	sp5 := byName["OPW-SP(5m/s)"]
	for i := range opwtr.Thresholds {
		if d := math.Abs(opwtr.Error[i] - sp25.Error[i]); d > 0.15*opwtr.Error[i]+1 {
			t.Errorf("OPW-SP(25) error diverges from OPW-TR at threshold %.0f: %.1f vs %.1f",
				opwtr.Thresholds[i], sp25.Error[i], opwtr.Error[i])
		}
		if d := math.Abs(opwtr.Compression[i] - sp25.Compression[i]); d > 5 {
			t.Errorf("OPW-SP(25) compression diverges from OPW-TR at threshold %.0f: %.1f vs %.1f",
				opwtr.Thresholds[i], sp25.Compression[i], opwtr.Compression[i])
		}
	}
	// A 5 m/s speed threshold triggers on ordinary braking, so it must
	// retain more points (lower compression) than OPW-SP(25)/OPW-TR.
	if mean(sp5.Compression) > mean(sp25.Compression) {
		t.Errorf("OPW-SP(5) compression %.1f above OPW-SP(25) %.1f", mean(sp5.Compression), mean(sp25.Compression))
	}
}

// Figure 11 claim: the spatiotemporal algorithms dominate — at every
// threshold TD-TR and OPW-TR commit less error than their spatial
// counterparts at comparable compression.
func TestFigure11Dominance(t *testing.T) {
	f7, _, f9, _ := figures()
	ndp, tdtr := f7.Series[0], f7.Series[1]
	nopw, opwtr := f9.Series[0], f9.Series[1]
	for i := range ndp.Thresholds {
		if tdtr.Error[i] >= ndp.Error[i] {
			t.Errorf("threshold %.0f: TD-TR error %.1f not below NDP %.1f", ndp.Thresholds[i], tdtr.Error[i], ndp.Error[i])
		}
		if opwtr.Error[i] >= nopw.Error[i] {
			t.Errorf("threshold %.0f: OPW-TR error %.1f not below NOPW %.1f", nopw.Thresholds[i], opwtr.Error[i], nopw.Error[i])
		}
	}
}

// The synchronized guarantee transfers to the sweep: the time-ratio
// algorithms' average error never exceeds the distance threshold.
func TestTimeRatioErrorBoundedByThreshold(t *testing.T) {
	f7, _, f9, _ := figures()
	for _, s := range []Series{f7.Series[1], f9.Series[1]} { // TD-TR, OPW-TR
		for i, th := range s.Thresholds {
			if s.Error[i] > th {
				t.Errorf("%s: avg error %.1f exceeds threshold %.0f", s.Name, s.Error[i], th)
			}
		}
	}
}

func TestTable2Render(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable2(&buf, Table2()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"duration", "speed", "length", "displacement", "# of data points"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigure(t *testing.T) {
	f7, _, _, _ := figures()
	var buf bytes.Buffer
	if err := RenderFigure(&buf, f7); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "TD-TR err") {
		t.Errorf("figure render incomplete:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 16 {
		t.Errorf("expected ≥16 lines (header + 15 thresholds), got %d", got)
	}
	buf.Reset()
	if err := RenderFrontier(&buf, f7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compression") {
		t.Error("frontier render incomplete")
	}
}

func TestAllFiguresComplete(t *testing.T) {
	// AllFigures must cover Figures 7–11 with fully populated series.
	figs := AllFigures()
	if len(figs) != 5 {
		t.Fatalf("AllFigures returned %d figures, want 5", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) < 2 {
			t.Errorf("%s has %d series", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Error) != 15 || len(s.Compression) != 15 {
				t.Errorf("%s/%s has %d/%d points", f.ID, s.Name, len(s.Error), len(s.Compression))
			}
		}
	}
}
