package compress

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/sed"
	"repro/internal/trajectory"
)

// Point-budget compression: instead of an error threshold, these algorithms
// target a retained point count — the halting condition the paper lists
// first in §2 ("the number of data points ... exceeds a user-defined
// value"). They complement the threshold algorithms when the application
// fixes a storage or transmission budget.

// DouglasPeuckerN retains the N most shape-relevant points under the
// perpendicular distance, by running the top-down split greedily (always
// splitting at the globally worst point) until the budget is reached.
type DouglasPeuckerN struct {
	// N is the number of points to retain; at least 2.
	N int
}

// Name implements Algorithm.
func (d DouglasPeuckerN) Name() string { return fmt.Sprintf("NDP-N(%d)", d.N) }

// Compress implements Algorithm.
func (d DouglasPeuckerN) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateBudget("DouglasPeuckerN", d.N)
	return topDownBudget(p, d.N, func(p trajectory.Trajectory, lo, hi int) (int, float64) {
		line := segBetween(p, lo, hi)
		worst, worstDist := -1, -1.0
		for i := lo + 1; i < hi; i++ {
			if dd := line.PerpDist(p[i].Pos()); dd > worstDist {
				worst, worstDist = i, dd
			}
		}
		return worst, worstDist
	})
}

// TDTRN retains the N most relevant points under the synchronized
// (time-ratio) distance — the point-budget member of the paper's time-ratio
// class.
type TDTRN struct {
	// N is the number of points to retain; at least 2.
	N int
}

// Name implements Algorithm.
func (d TDTRN) Name() string { return fmt.Sprintf("TD-TR-N(%d)", d.N) }

// Compress implements Algorithm.
func (d TDTRN) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateBudget("TDTRN", d.N)
	return topDownBudget(p, d.N, func(p trajectory.Trajectory, lo, hi int) (int, float64) {
		worst, worstDist := -1, -1.0
		for i := lo + 1; i < hi; i++ {
			if dd := sed.Distance(p[i], p[lo], p[hi]); dd > worstDist {
				worst, worstDist = i, dd
			}
		}
		return worst, worstDist
	})
}

func validateBudget(name string, n int) {
	if n < 2 {
		panic(fmt.Sprintf("compress: %s: budget %d < 2", name, n))
	}
}

// worstFunc returns the interior point of p[lo..hi] with the largest
// distance (index, distance); index is -1 when the span has no interior.
type worstFunc func(p trajectory.Trajectory, lo, hi int) (int, float64)

// splitCandidate is a heap entry: the best split of one current span.
type splitCandidate struct {
	lo, hi int
	at     int
	dist   float64
}

type splitHeap []splitCandidate

func (h splitHeap) Len() int           { return len(h) }
func (h splitHeap) Less(i, j int) bool { return h[i].dist > h[j].dist } // max-heap
func (h splitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *splitHeap) Push(x any)        { *h = append(*h, x.(splitCandidate)) }
func (h *splitHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// topDownBudget splits greedily at the globally worst point until n points
// are retained (or no split remains).
func topDownBudget(p trajectory.Trajectory, n int, worst worstFunc) trajectory.Trajectory {
	if out, ok := small(p); ok {
		return out
	}
	if n >= p.Len() {
		return append(trajectory.Trajectory(nil), p...)
	}
	keep := []int{0, p.Len() - 1}

	h := splitHeap{}
	push := func(lo, hi int) {
		if at, dist := worst(p, lo, hi); at >= 0 {
			heap.Push(&h, splitCandidate{lo: lo, hi: hi, at: at, dist: dist})
		}
	}
	push(0, p.Len()-1)
	for len(keep) < n && h.Len() > 0 {
		c := heap.Pop(&h).(splitCandidate)
		keep = append(keep, c.at)
		push(c.lo, c.at)
		push(c.at, c.hi)
	}
	sort.Ints(keep)
	out := make(trajectory.Trajectory, len(keep))
	for i, idx := range keep {
		out[i] = p[idx]
	}
	return out
}

// SQUISH is the priority-queue online compressor from the follow-on
// literature (Muckell et al.): a bounded buffer of Capacity points is
// maintained; when full, the point whose removal introduces the least
// synchronized error is dropped, and its accumulated error is credited to
// its neighbours so repeated removals in one area are progressively
// penalized. The output is the buffer content — a fixed-size sketch of the
// whole trajectory, regardless of input length.
type SQUISH struct {
	// Capacity is the buffer size (= retained point count); at least 2.
	Capacity int
}

// Name implements Algorithm.
func (s SQUISH) Name() string { return fmt.Sprintf("SQUISH(%d)", s.Capacity) }

// Compress implements Algorithm.
func (s SQUISH) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateBudget("SQUISH", s.Capacity)
	if out, ok := small(p); ok {
		return out
	}
	if s.Capacity >= p.Len() {
		return append(trajectory.Trajectory(nil), p...)
	}

	n := p.Len()
	prev := make([]int, n)
	next := make([]int, n)
	credit := make([]float64, n) // accumulated error credited by removed neighbours
	stamp := make([]int, n)
	removed := make([]bool, n)
	inBuffer := make([]bool, n)

	h := mergeHeap{}
	prio := func(i int) float64 {
		return credit[i] + sed.Distance(p[i], p[prev[i]], p[next[i]])
	}
	pushPoint := func(i int) {
		stamp[i]++
		heap.Push(&h, mergeItem{cost: prio(i), idx: i, stamp: stamp[i]})
	}

	// Stream the points through the bounded buffer. last tracks the newest
	// buffered index; count the buffer occupancy.
	last := 0
	inBuffer[0] = true
	count := 1
	for i := 1; i < n; i++ {
		prev[i], next[i] = last, -1
		next[last] = i
		inBuffer[i] = true
		count++
		// The previous newest point now has both neighbours: it becomes
		// removable.
		if last != 0 {
			pushPoint(last)
		}
		last = i
		if count <= s.Capacity {
			continue
		}
		// Evict the lowest-priority interior point.
		for {
			it := heap.Pop(&h).(mergeItem)
			j := it.idx
			if removed[j] || it.stamp != stamp[j] {
				continue
			}
			removed[j] = true
			inBuffer[j] = false
			count--
			a, b := prev[j], next[j]
			next[a], prev[b] = b, a
			credit[a] += it.cost
			credit[b] += it.cost
			if a != 0 {
				pushPoint(a)
			}
			if b != last && b != 0 {
				pushPoint(b)
			}
			break
		}
	}

	out := make(trajectory.Trajectory, 0, s.Capacity)
	for i := 0; i < n; i++ {
		if inBuffer[i] {
			out = append(out, p[i])
		}
	}
	return out
}
