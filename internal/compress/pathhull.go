package compress

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// DouglasPeuckerHull is an alternative Douglas-Peucker implementation built
// on the observation behind Hershberger & Snoeyink's O(N log N) path-hull
// algorithm (§2.1): the point of a chain farthest from a line is a vertex of
// the chain's convex hull. Each split locates its cut point by building the
// subchain's hull (monotone chain, O(k log k)) and scanning only hull
// vertices instead of every point.
//
// Honest performance note: rebuilding hulls per split costs O(k log k)
// where the naive scan costs O(k), so this variant is measurably SLOWER
// than DouglasPeucker on GPS workloads (see BenchmarkDPHullAblation); the
// full Hershberger–Snoeyink speedup additionally requires their splittable
// path-hull structure, which avoids rebuilds. The variant is retained as an
// independent implementation for cross-validation (the equivalence test
// TestHullVariantMatchesNaive) and as the starting point for a full
// path-hull port. The output is a valid Douglas-Peucker result for the same
// threshold: when several points tie for the maximum distance the cut
// choice may differ from DouglasPeucker, but every retained approximation
// satisfies the threshold.
type DouglasPeuckerHull struct {
	// Threshold is the perpendicular distance tolerance in metres.
	Threshold float64
}

// Name implements Algorithm.
func (d DouglasPeuckerHull) Name() string { return "NDP-hull" }

// Compress implements Algorithm.
func (d DouglasPeuckerHull) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("DouglasPeuckerHull", d.Threshold)
	return topDown(p, func(p trajectory.Trajectory, lo, hi int) (int, bool) {
		line := segBetween(p, lo, hi)
		worst, worstDist := -1, 0.0
		for _, i := range hullIndices(p, lo, hi) {
			if dd := line.PerpDist(p[i].Pos()); dd > worstDist {
				worst, worstDist = i, dd
			}
		}
		return worst, worstDist > d.Threshold
	})
}

// hullIndices returns the trajectory indices in (lo, hi) exclusive whose
// positions lie on the convex hull of p[lo..hi]. Indices of interior points
// only: the endpoints can never be cut points.
func hullIndices(p trajectory.Trajectory, lo, hi int) []int {
	n := hi - lo + 1
	if n <= 3 {
		// Everything is on the hull of ≤3 points.
		out := make([]int, 0, 1)
		for i := lo + 1; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = lo + i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := p[idx[a]].Pos(), p[idx[b]].Pos()
		//lint:allow floatcmp deterministic coordinate tie-break for the lexicographic sort
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})

	// Andrew's monotone chain over the sorted positions.
	cross := func(o, a, b geo.Point) float64 {
		return a.Sub(o).Cross(b.Sub(o))
	}
	hull := make([]int, 0, 2*n)
	// Lower hull.
	for _, i := range idx {
		for len(hull) >= 2 && cross(p[hull[len(hull)-2]].Pos(), p[hull[len(hull)-1]].Pos(), p[i].Pos()) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	// Upper hull.
	lower := len(hull) + 1
	for k := n - 2; k >= 0; k-- {
		i := idx[k]
		for len(hull) >= lower && cross(p[hull[len(hull)-2]].Pos(), p[hull[len(hull)-1]].Pos(), p[i].Pos()) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	hull = hull[:len(hull)-1] // last point repeats the first

	out := hull[:0]
	for _, i := range hull {
		if i != lo && i != hi {
			out = append(out, i)
		}
	}
	return out
}
