package compress

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// Uniform keeps every K-th data point (plus the final point), the simplest
// sequential baseline mentioned in §2 ("leaving in every ith data point",
// Tobler 1966). It ignores all relationships between neighbouring points.
type Uniform struct {
	// K is the sampling stride; K = 1 keeps everything. Must be ≥ 1.
	K int
}

// Name implements Algorithm.
func (u Uniform) Name() string { return fmt.Sprintf("Uniform(%d)", u.K) }

// Compress implements Algorithm.
func (u Uniform) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	if u.K < 1 {
		panic(fmt.Sprintf("compress: Uniform: stride %d < 1", u.K))
	}
	if out, ok := small(p); ok {
		return out
	}
	out := make(trajectory.Trajectory, 0, p.Len()/u.K+2)
	for i := 0; i < p.Len(); i += u.K {
		out = append(out, p[i])
	}
	if last := p[p.Len()-1]; out[len(out)-1] != last {
		out = append(out, last)
	}
	return out
}

// Radial discards a data point when its Euclidean distance to the last
// retained point is below a threshold — the "distance between two neighbour
// points" heuristic of §2. The final point is always retained.
type Radial struct {
	// Threshold is the minimum spacing in metres between retained points.
	Threshold float64
}

// Name implements Algorithm.
func (r Radial) Name() string { return fmt.Sprintf("Radial(%g)", r.Threshold) }

// Compress implements Algorithm.
func (r Radial) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("Radial", r.Threshold)
	if out, ok := small(p); ok {
		return out
	}
	out := trajectory.Trajectory{p[0]}
	for i := 1; i < p.Len()-1; i++ {
		if p[i].Pos().Dist(out[len(out)-1].Pos()) >= r.Threshold {
			out = append(out, p[i])
		}
	}
	return append(out, p[p.Len()-1])
}

// Angular implements Jenks' angular-change criterion (§2): a point is
// retained when the heading change through it exceeds AngleThreshold or when
// the accumulated distance from the last retained point exceeds
// DistThreshold. It addresses the over-representation of straight lines the
// paper attributes to the simple sequential methods.
type Angular struct {
	// AngleThreshold is the minimum turning angle in radians at a point for
	// it to be retained.
	AngleThreshold float64
	// DistThreshold bounds how much path length may be skipped between
	// retained points; +Inf (or 0, treated as +Inf) disables the bound.
	DistThreshold float64
}

// Name implements Algorithm.
func (a Angular) Name() string { return fmt.Sprintf("Angular(%g)", a.AngleThreshold) }

// Compress implements Algorithm.
func (a Angular) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	if a.AngleThreshold < 0 {
		panic(fmt.Sprintf("compress: Angular: negative angle threshold %v", a.AngleThreshold))
	}
	maxSkip := a.DistThreshold
	if maxSkip <= 0 {
		maxSkip = math.Inf(1)
	}
	if out, ok := small(p); ok {
		return out
	}
	out := trajectory.Trajectory{p[0]}
	skipped := 0.0
	for i := 1; i < p.Len()-1; i++ {
		turn := geo.AngleBetween(out[len(out)-1].Pos(), p[i].Pos(), p[i+1].Pos())
		skipped += p[i].Pos().Dist(p[i-1].Pos())
		if turn > a.AngleThreshold || skipped > maxSkip {
			out = append(out, p[i])
			skipped = 0
		}
	}
	return append(out, p[p.Len()-1])
}

// DeadReckoning is an online baseline from the moving-object literature that
// complements the paper's opening-window algorithms: from each retained
// point, the object's position is predicted by extrapolating the velocity of
// the first following segment; the next point whose actual position deviates
// from the prediction by more than Threshold is retained and prediction
// restarts there.
type DeadReckoning struct {
	// Threshold is the maximum allowed prediction deviation in metres.
	Threshold float64
}

// Name implements Algorithm.
func (d DeadReckoning) Name() string { return fmt.Sprintf("DeadReckoning(%g)", d.Threshold) }

// Compress implements Algorithm.
func (d DeadReckoning) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("DeadReckoning", d.Threshold)
	if out, ok := small(p); ok {
		return out
	}
	out := trajectory.Trajectory{p[0]}
	anchor := 0
	// Velocity derived from the segment leaving the anchor.
	vx := (p[1].X - p[0].X) / (p[1].T - p[0].T)
	vy := (p[1].Y - p[0].Y) / (p[1].T - p[0].T)
	for i := 2; i < p.Len()-1; i++ {
		dt := p[i].T - p[anchor].T
		pred := geo.Pt(p[anchor].X+vx*dt, p[anchor].Y+vy*dt)
		if p[i].Pos().Dist(pred) > d.Threshold {
			out = append(out, p[i])
			anchor = i
			vx = (p[i+1].X - p[i].X) / (p[i+1].T - p[i].T)
			vy = (p[i+1].Y - p[i].Y) / (p[i+1].T - p[i].T)
		}
	}
	return append(out, p[p.Len()-1])
}
