package compress

import (
	"math"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// CISED-S and CISED-W are the one-pass synchronous-Euclidean-distance
// simplifications of Lin et al. (arXiv:1801.05360). Both process each point
// exactly once with O(1) memory, guaranteeing SED ≤ Threshold for every
// discarded point against the output segment covering it — the same error
// metric as the paper's time-ratio class (internal/sed), but without the
// opening-window re-scans.
//
// The trick is to work in velocity space: for the current anchor (Pₐ, tₐ),
// a later point (Pᵢ, tᵢ) is within SED ε of the segment leaving the anchor
// with velocity v exactly when v lies in the disk of radius ε/(tᵢ−tₐ)
// around (Pᵢ−Pₐ)/(tᵢ−tₐ). Each disk is under-approximated by an inscribed
// regular 16-gon (conservative), and the feasible-velocity region — the
// running intersection of those polygons — is maintained as a convex
// polygon by Sutherland–Hodgman half-plane clipping.

// cisedEdges is the inscribed-polygon edge count m. The paper studies
// m ∈ [8, 24]; 16 loses under 2% of the disk radius (cos π/16 ≈ 0.981)
// while keeping the clipping cheap.
const cisedEdges = 16

// cisedUnit caches the unit-circle vertices of the inscribed polygon.
var cisedUnit = func() [cisedEdges]geo.Point {
	var u [cisedEdges]geo.Point
	for i := range u {
		a := 2 * math.Pi * (float64(i) + 0.5) / cisedEdges
		u[i] = geo.Pt(math.Cos(a), math.Sin(a))
	}
	return u
}()

// CISEDS is the strong (subsequence) variant: output points are always
// input samples, so it is a drop-in replacement for the opening-window
// algorithms with a hard per-point cost independent of the window length.
type CISEDS struct {
	// Threshold is the SED error bound ε in metres.
	Threshold float64
}

// Name implements Algorithm.
func (a CISEDS) Name() string { return "CISED-S" }

// Compress implements Algorithm. Input timestamps must strictly increase
// (trajectory.Validate), as everywhere in this package.
func (a CISEDS) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance(a.Name(), a.Threshold)
	return cisedCompress(p, NewCISEDEngine(a.Threshold, false))
}

// CISEDW is the weak variant: instead of retaining an input sample on a
// cut, it closes each window with a point synthesized from the feasible
// velocity region, at the timestamp of the newest covered input sample.
// Synthesized joints let one window span more points, so CISED-W compresses
// harder than CISED-S at the same ε — at the price of no longer being a
// vertex subsequence (it reports this via WeakSimplification).
type CISEDW struct {
	// Threshold is the SED error bound ε in metres.
	Threshold float64
}

// Name implements Algorithm.
func (a CISEDW) Name() string { return "CISED-W" }

// WeakSimplification marks the output as synthesized (see WeakSimplifier).
func (a CISEDW) WeakSimplification() bool { return true }

// Compress implements Algorithm. All output timestamps are input
// timestamps; only positions are synthesized.
func (a CISEDW) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance(a.Name(), a.Threshold)
	return cisedCompress(p, NewCISEDEngine(a.Threshold, true))
}

func cisedCompress(p trajectory.Trajectory, e *CISEDEngine) trajectory.Trajectory {
	if q, ok := small(p); ok {
		return q
	}
	out := make(trajectory.Trajectory, 0, 8)
	for _, s := range p {
		out = append(out, e.Push(s)...)
	}
	return append(out, e.Flush()...)
}

// CISEDEngine is the incremental core shared by CISED-S and CISED-W and by
// the online wrappers in internal/stream (so stream output equals batch
// output by construction). State is O(1) in the input: the anchor, at most
// one pending sample, and the convex feasible-velocity polygon.
type CISEDEngine struct {
	eps  float64
	weak bool

	started bool
	anchor  trajectory.Sample
	open    bool // a window with at least one covered point is in progress

	// Strong: the tentative endpoint (always an input sample).
	last trajectory.Sample
	// Weak: the timestamp of the newest covered input sample — where the
	// synthesized joint will be placed when the window closes.
	lastT float64

	region  []geo.Point // feasible-velocity polygon, convex CCW
	scratch []geo.Point // clip ping-pong buffer
	poly    [cisedEdges]geo.Point
	out     []trajectory.Sample
}

// NewCISEDEngine returns a reset engine with SED bound eps (metres); weak
// selects CISED-W (synthesized joints) over CISED-S (subsequence).
func NewCISEDEngine(eps float64, weak bool) *CISEDEngine {
	validateDistance("CISED", eps)
	return &CISEDEngine{eps: eps, weak: weak}
}

// Pending reports how many buffered samples await a retention decision
// (0 or 1 — the engine's O(1) memory guarantee).
func (e *CISEDEngine) Pending() int {
	if e.open {
		return 1
	}
	return 0
}

// Push feeds one sample and returns the samples whose retention became
// definite. The returned slice is only valid until the next call. Callers
// must feed strictly increasing timestamps (the stream wrapper enforces
// this; the velocity mapping divides by the time gap).
func (e *CISEDEngine) Push(s trajectory.Sample) []trajectory.Sample {
	e.out = e.out[:0]
	if !e.started {
		e.started = true
		e.anchor = s
		e.out = append(e.out, s)
		return e.out
	}
	if e.weak {
		e.pushWeak(s)
	} else {
		e.pushStrong(s)
	}
	return e.out
}

func (e *CISEDEngine) pushStrong(s trajectory.Sample) {
	w, r := e.velocity(s)
	if !e.open {
		e.resetRegion(w, r)
		e.last = s
		return
	}
	if len(e.region) > 0 && insideConvex(w, e.region) {
		// s is reachable within ε of every covered point: it becomes the
		// new tentative endpoint and adds its own disk constraint (the
		// intersection stays non-empty — w lies in both operands).
		e.clipRegion(e.diskPoly(w, r))
		e.last = s
		return
	}
	// Cut: retain the previous endpoint, re-anchor there, reopen with s.
	e.out = append(e.out, e.last)
	e.anchor = e.last
	w, r = e.velocity(s)
	e.resetRegion(w, r)
	e.last = s
}

func (e *CISEDEngine) pushWeak(s trajectory.Sample) {
	w, r := e.velocity(s)
	if !e.open {
		e.resetRegion(w, r)
		e.lastT = s.T
		return
	}
	rep := e.representative()
	e.clipRegion(e.diskPoly(w, r))
	if len(e.region) > 0 {
		e.lastT = s.T
		return
	}
	// The region collapsed: close the window with a joint synthesized from
	// the pre-clip region (feasible for every covered point), re-anchor at
	// the joint, and reopen with s. s.T > lastT keeps timestamps strict.
	q := e.synth(rep)
	e.out = append(e.out, q)
	e.anchor = q
	w, r = e.velocity(s)
	e.resetRegion(w, r)
	e.lastT = s.T
}

// Flush terminates the stream, closing any open window (the strong engine
// emits the pending input sample; the weak engine synthesizes the closing
// joint at the newest covered timestamp) and resetting for reuse.
func (e *CISEDEngine) Flush() []trajectory.Sample {
	e.out = e.out[:0]
	if e.open {
		if e.weak {
			e.out = append(e.out, e.synth(e.representative()))
		} else {
			e.out = append(e.out, e.last)
		}
	}
	e.started, e.open = false, false
	e.region = e.region[:0]
	return e.out
}

// velocity maps s into velocity space relative to the anchor: the disk
// centre w and radius r such that SED(s, anchor→endpoint) ≤ ε exactly when
// the endpoint velocity lies within r of w. The radius is floored so the
// inscribed polygon stays well-conditioned when ε/(tᵢ−tₐ) underflows the
// coordinate ulp (stationary ε=0 or huge time gaps); the floor relaxes the
// bound by at most ~1e-9·(|Pᵢ−Pₐ| + tᵢ−tₐ) metres — sub-millimetre at
// continental coordinate scales.
func (e *CISEDEngine) velocity(s trajectory.Sample) (geo.Point, float64) {
	dt := s.T - e.anchor.T
	w := geo.Pt((s.X-e.anchor.X)/dt, (s.Y-e.anchor.Y)/dt)
	r := e.eps / dt
	if floor := (w.Norm() + 1) * 1e-9; r < floor {
		r = floor
	}
	return w, r
}

// diskPoly writes the inscribed regular polygon of the disk into e.poly.
// Vertices lie on the circle, so the polygon under-approximates the disk
// and the running intersection is conservative.
func (e *CISEDEngine) diskPoly(w geo.Point, r float64) []geo.Point {
	for i, u := range cisedUnit {
		e.poly[i] = geo.Pt(w.X+r*u.X, w.Y+r*u.Y)
	}
	return e.poly[:]
}

func (e *CISEDEngine) resetRegion(w geo.Point, r float64) {
	e.region = append(e.region[:0], e.diskPoly(w, r)...)
	e.open = true
}

// representative returns a point inside the (non-empty convex) region: the
// vertex centroid.
func (e *CISEDEngine) representative() geo.Point {
	var cx, cy float64
	for _, p := range e.region {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(e.region))
	return geo.Pt(cx/n, cy/n)
}

// synth materializes the velocity v as the window-closing sample at the
// newest covered timestamp.
func (e *CISEDEngine) synth(v geo.Point) trajectory.Sample {
	dt := e.lastT - e.anchor.T
	return trajectory.S(e.lastT, e.anchor.X+v.X*dt, e.anchor.Y+v.Y*dt)
}

// clipRegion intersects e.region with the convex CCW polygon poly in place
// (Sutherland–Hodgman half-plane clipping). The result may be empty.
func (e *CISEDEngine) clipRegion(poly []geo.Point) {
	cur, next := e.region, e.scratch
	for i := 0; i < len(poly) && len(cur) > 0; i++ {
		a, b := poly[i], poly[(i+1)%len(poly)]
		ex, ey := b.X-a.X, b.Y-a.Y
		next = next[:0]
		for j := range cur {
			p, q := cur[j], cur[(j+1)%len(cur)]
			ps := ex*(p.Y-a.Y) - ey*(p.X-a.X)
			qs := ex*(q.Y-a.Y) - ey*(q.X-a.X)
			if ps >= 0 {
				next = append(next, p)
			}
			if (ps < 0) != (qs < 0) {
				f := ps / (ps - qs)
				next = append(next, geo.Pt(p.X+f*(q.X-p.X), p.Y+f*(q.Y-p.Y)))
			}
		}
		cur, next = next, cur
	}
	e.region, e.scratch = cur, next
}

// insideConvex reports whether p lies inside (or on the boundary of) the
// convex CCW polygon.
func insideConvex(p geo.Point, poly []geo.Point) bool {
	for i := range poly {
		a, b := poly[i], poly[(i+1)%len(poly)]
		if (b.X-a.X)*(p.Y-a.Y)-(b.Y-a.Y)*(p.X-a.X) < 0 {
			return false
		}
	}
	return true
}
