package compress

import (
	"math/rand"
	"testing"

	"repro/internal/trajectory"
)

// A zig-zag where one spike dominates: DP must cut exactly at the spike.
func TestDouglasPeuckerCutsAtSpike(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(1, 10, 1),
		trajectory.S(2, 20, 50), // the spike
		trajectory.S(3, 30, -1),
		trajectory.S(4, 40, 0),
	})
	// After cutting at the spike the flanking points are ≈8.9 m from the
	// resulting sub-segments, so a 10 m threshold keeps only the spike.
	a := DouglasPeucker{Threshold: 10}.Compress(p)
	if a.Len() != 3 || a[1] != p[2] {
		t.Fatalf("DP output %v, want endpoints plus the spike", a)
	}
}

// Threshold zero retains every non-collinear point.
func TestDouglasPeuckerZeroThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomTrack(rng, 60)
	a := DouglasPeucker{Threshold: 0}.Compress(p)
	if a.Len() != p.Len() {
		t.Errorf("DP(0) kept %d of %d points", a.Len(), p.Len())
	}
}

// Exactly collinear interior points are removable at any threshold.
func TestDouglasPeuckerCollinear(t *testing.T) {
	var p trajectory.Trajectory
	for i := 0; i <= 10; i++ {
		p = append(p, trajectory.S(float64(i), float64(i*7), float64(i*3)))
	}
	a := DouglasPeucker{Threshold: 1e-9}.Compress(p)
	if a.Len() != 2 {
		t.Errorf("DP on collinear points kept %d, want 2", a.Len())
	}
}

// The hull-accelerated variant must agree with the naive implementation on
// generic (tie-free) data.
func TestHullVariantMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		p := randomTrack(rng, 50+rng.Intn(300))
		for _, eps := range []float64{5, 30, 80, 200} {
			naive := DouglasPeucker{Threshold: eps}.Compress(p)
			hull := DouglasPeuckerHull{Threshold: eps}.Compress(p)
			if naive.Len() != hull.Len() {
				t.Fatalf("eps=%v: naive kept %d, hull kept %d", eps, naive.Len(), hull.Len())
			}
			for i := range naive {
				if naive[i] != hull[i] {
					t.Fatalf("eps=%v: outputs differ at %d: %v vs %v", eps, i, naive[i], hull[i])
				}
			}
		}
	}
}

// TD-TR and NDP coincide on constant-speed motion along a line only when the
// object's parameterization is uniform; under dwell they diverge. This pins
// the basic TD-TR decision rule.
func TestTDTRCutsAtSyncViolation(t *testing.T) {
	// On-line positions but wildly uneven timing: the midpoint is reached
	// at 90% of the journey time, so its synchronized position is far away.
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(9, 50, 0),
		trajectory.S(10, 100, 0),
	})
	a := TDTR{Threshold: 30}.Compress(p)
	if a.Len() != 3 {
		t.Fatalf("TD-TR kept %d points, want all 3 (sync distance 40 > 30)", a.Len())
	}
	b := TDTR{Threshold: 45}.Compress(p)
	if b.Len() != 2 {
		t.Fatalf("TD-TR kept %d points, want 2 (sync distance 40 < 45)", b.Len())
	}
}

func TestTDSPRetainsSpeedJumps(t *testing.T) {
	// Straight line, constant spatial spacing, but a hard stop in the
	// middle: segments run at 10 m/s, then 1 m/s, then 10 m/s.
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(10, 100, 0),  // 10 m/s
		trajectory.S(110, 200, 0), // 1 m/s  → jump of 9 at the two middle points
		trajectory.S(120, 300, 0), // 10 m/s
	})
	// Distance threshold large enough that only the speed criterion bites.
	a := TDSP{DistThreshold: 1e6, SpeedThreshold: 5}.Compress(p)
	if a.Len() != 4 {
		t.Fatalf("TD-SP kept %d points, want 4 (speed jumps of 9 m/s > 5 m/s)", a.Len())
	}
	b := TDSP{DistThreshold: 1e6, SpeedThreshold: 15}.Compress(p)
	if b.Len() != 2 {
		t.Fatalf("TD-SP kept %d points, want 2 (speed jumps below 15 m/s)", b.Len())
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []func(){
		func() { DouglasPeucker{Threshold: -1}.Compress(nil) },
		func() { TDTR{Threshold: -1}.Compress(nil) },
		func() { TDSP{DistThreshold: 1, SpeedThreshold: 0}.Compress(nil) },
		func() { OPWSP{DistThreshold: 1, SpeedThreshold: -2}.Compress(nil) },
		func() { Uniform{K: 0}.Compress(trajectory.Trajectory{{}, {}, {}}) },
		func() { Angular{AngleThreshold: -0.1}.Compress(nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on invalid parameters", i)
				}
			}()
			fn()
		}()
	}
}

// Deep recursion safety: threshold 0 on a large noisy input forces the
// maximum number of splits without overflowing any stack.
func TestTopDownDeepInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomTrack(rng, 20000)
	a := DouglasPeucker{Threshold: 0}.Compress(p)
	if a.Len() != p.Len() {
		t.Errorf("kept %d of %d", a.Len(), p.Len())
	}
}
