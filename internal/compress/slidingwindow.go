package compress

import (
	"fmt"

	"repro/internal/trajectory"
)

// Sliding-window algorithms (§2's fourth category): "a window of fixed size
// is moved over the data points, and compression takes place only on the
// data points inside the window". Each consecutive window of Window data
// points (adjacent windows share their boundary point) is compressed
// independently with the corresponding top-down algorithm; the results are
// concatenated. The fixed window bounds both latency and per-step work,
// trading some compression against the batch algorithms, which see the
// whole series.

// SlidingWindow applies Douglas-Peucker within fixed windows
// (perpendicular distance).
type SlidingWindow struct {
	// Threshold is the perpendicular distance tolerance in metres.
	Threshold float64
	// Window is the number of data points per window; must be ≥ 3.
	Window int
}

// Name implements Algorithm.
func (a SlidingWindow) Name() string { return fmt.Sprintf("SW(%d)", a.Window) }

// Compress implements Algorithm.
func (a SlidingWindow) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("SlidingWindow", a.Threshold)
	validateSWWindow(a.Window)
	return slidingWindow(p, a.Window, DouglasPeucker{Threshold: a.Threshold})
}

// SlidingWindowTR applies TD-TR within fixed windows (synchronized
// distance) — the sliding-window member of the paper's time-ratio class.
type SlidingWindowTR struct {
	// Threshold is the synchronized distance tolerance in metres.
	Threshold float64
	// Window is the number of data points per window; must be ≥ 3.
	Window int
}

// Name implements Algorithm.
func (a SlidingWindowTR) Name() string { return fmt.Sprintf("SW-TR(%d)", a.Window) }

// Compress implements Algorithm.
func (a SlidingWindowTR) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("SlidingWindowTR", a.Threshold)
	validateSWWindow(a.Window)
	return slidingWindow(p, a.Window, TDTR{Threshold: a.Threshold})
}

func validateSWWindow(w int) {
	if w < 3 {
		panic(fmt.Sprintf("compress: sliding window size %d must be ≥ 3", w))
	}
}

func slidingWindow(p trajectory.Trajectory, window int, inner Algorithm) trajectory.Trajectory {
	if out, ok := small(p); ok {
		return out
	}
	out := trajectory.Trajectory{p[0]}
	for lo := 0; lo < p.Len()-1; lo += window - 1 {
		hi := lo + window - 1
		if hi > p.Len()-1 {
			hi = p.Len() - 1
		}
		part := inner.Compress(p.Sub(lo, hi))
		// The window's first point equals the previous window's last; skip it.
		out = append(out, part[1:]...)
	}
	return out
}
