package compress

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// randomTrack builds a car-like trajectory with varying speed and heading —
// the workload class all invariant tests run against.
func randomTrack(rng *rand.Rand, n int) trajectory.Trajectory {
	p := make(trajectory.Trajectory, n)
	t, x, y := 0.0, 0.0, 0.0
	heading := rng.Float64() * 2 * math.Pi
	speed := 5 + rng.Float64()*20
	for i := 0; i < n; i++ {
		p[i] = trajectory.S(t, x, y)
		dt := 5 + rng.Float64()*10
		speed = math.Max(0.5, speed+rng.NormFloat64()*3)
		heading += rng.NormFloat64() * 0.4
		t += dt
		x += speed * dt * math.Cos(heading)
		y += speed * dt * math.Sin(heading)
	}
	return p
}

// allAlgorithms returns one configured instance of every algorithm.
func allAlgorithms(dist, speed float64) []Algorithm {
	return []Algorithm{
		Uniform{K: 3},
		Radial{Threshold: dist},
		Angular{AngleThreshold: 0.2},
		DeadReckoning{Threshold: dist},
		DouglasPeucker{Threshold: dist},
		DouglasPeuckerHull{Threshold: dist},
		NOPW{Threshold: dist},
		BOPW{Threshold: dist},
		TDTR{Threshold: dist},
		OPWTR{Threshold: dist},
		OPWSP{DistThreshold: dist, SpeedThreshold: speed},
		TDSP{DistThreshold: dist, SpeedThreshold: speed},
		BottomUp{Threshold: dist},
		BottomUpTR{Threshold: dist},
		SlidingWindow{Threshold: dist, Window: 12},
		SlidingWindowTR{Threshold: dist, Window: 12},
	}
}

// Every algorithm must emit a valid trajectory that is a subsequence of the
// input, keeps the first and last points, and never grows the input.
func TestUniversalInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		p := randomTrack(rng, 30+rng.Intn(200))
		for _, alg := range allAlgorithms(50, 5) {
			a := alg.Compress(p)
			if err := a.Validate(); err != nil {
				t.Fatalf("%s: invalid output: %v", alg.Name(), err)
			}
			if !a.IsVertexSubsetOf(p) {
				t.Fatalf("%s: output is not a vertex subset", alg.Name())
			}
			if a.Len() > p.Len() {
				t.Fatalf("%s: output longer than input (%d > %d)", alg.Name(), a.Len(), p.Len())
			}
			if a.Len() < 2 {
				t.Fatalf("%s: output shrunk below 2 points (%d)", alg.Name(), a.Len())
			}
			if a[0] != p[0] {
				t.Fatalf("%s: first point not retained", alg.Name())
			}
			if a[a.Len()-1] != p[p.Len()-1] {
				t.Fatalf("%s: last point not retained", alg.Name())
			}
		}
	}
}

// A parked object (time advances, position fixed) is the ultimate
// compressible input: every algorithm must handle the zero-length segments
// gracefully and the threshold algorithms collapse it to the endpoints.
func TestStationaryTrajectory(t *testing.T) {
	var p trajectory.Trajectory
	for i := 0; i < 50; i++ {
		p = append(p, trajectory.S(float64(i*10), 100, 200))
	}
	for _, alg := range allAlgorithms(10, 5) {
		a := alg.Compress(p)
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !a.IsVertexSubsetOf(p) {
			t.Fatalf("%s: not a subsequence", alg.Name())
		}
	}
	for _, alg := range []Algorithm{
		DouglasPeucker{Threshold: 1}, TDTR{Threshold: 1},
		NOPW{Threshold: 1}, OPWTR{Threshold: 1}, BottomUpTR{Threshold: 1},
	} {
		if a := alg.Compress(p); a.Len() != 2 {
			t.Errorf("%s kept %d points of a parked object", alg.Name(), a.Len())
		}
	}
}

// Short inputs pass through untouched.
func TestShortInputsPassThrough(t *testing.T) {
	short := []trajectory.Trajectory{
		{},
		{trajectory.S(0, 1, 2)},
		{trajectory.S(0, 1, 2), trajectory.S(1, 3, 4)},
	}
	for _, p := range short {
		for _, alg := range allAlgorithms(10, 5) {
			a := alg.Compress(p)
			if a.Len() != p.Len() {
				t.Errorf("%s on %d points returned %d points", alg.Name(), p.Len(), a.Len())
			}
		}
	}
}

// A huge threshold collapses the threshold-driven algorithms to the two
// endpoints.
func TestHugeThresholdCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomTrack(rng, 100)
	algs := []Algorithm{
		DouglasPeucker{Threshold: 1e12},
		DouglasPeuckerHull{Threshold: 1e12},
		NOPW{Threshold: 1e12},
		BOPW{Threshold: 1e12},
		TDTR{Threshold: 1e12},
		OPWTR{Threshold: 1e12},
		OPWSP{DistThreshold: 1e12, SpeedThreshold: 1e12},
		TDSP{DistThreshold: 1e12, SpeedThreshold: 1e12},
	}
	for _, alg := range algs {
		a := alg.Compress(p)
		if a.Len() != 2 {
			t.Errorf("%s with huge threshold kept %d points, want 2", alg.Name(), a.Len())
		}
	}
}

// maxPerpToApprox returns the largest perpendicular distance of any original
// point to the approximation segment covering its index range — the
// guarantee offered by the perpendicular-distance algorithms.
func maxPerpToApprox(p, a trajectory.Trajectory) float64 {
	worst := 0.0
	ai := 0
	for k := 0; k+1 < a.Len(); k++ {
		// Locate the index range [lo, hi] of this approximation segment in p.
		for p[ai] != a[k] {
			ai++
		}
		lo := ai
		hi := lo + 1
		for p[hi] != a[k+1] {
			hi++
		}
		seg := geo.Seg(p[lo].Pos(), p[hi].Pos())
		for i := lo + 1; i < hi; i++ {
			if d := seg.PerpDist(p[i].Pos()); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// The perpendicular-distance family guarantees every discarded point lies
// within the threshold of its covering approximation segment.
func TestPerpendicularGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const eps = 40.0
	for trial := 0; trial < 20; trial++ {
		p := randomTrack(rng, 150)
		for _, alg := range []Algorithm{
			DouglasPeucker{Threshold: eps},
			DouglasPeuckerHull{Threshold: eps},
			NOPW{Threshold: eps},
			BOPW{Threshold: eps},
		} {
			a := alg.Compress(p)
			if worst := maxPerpToApprox(p, a); worst > eps+1e-9 {
				t.Errorf("%s: perpendicular guarantee violated: %.3f > %.3f", alg.Name(), worst, eps)
			}
		}
	}
}

// The time-ratio family guarantees the synchronized max error stays within
// the distance threshold.
func TestSynchronizedGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const eps = 40.0
	for trial := 0; trial < 20; trial++ {
		p := randomTrack(rng, 150)
		for _, alg := range []Algorithm{
			TDTR{Threshold: eps},
			OPWTR{Threshold: eps},
			OPWSP{DistThreshold: eps, SpeedThreshold: 5},
			TDSP{DistThreshold: eps, SpeedThreshold: 5},
		} {
			a := alg.Compress(p)
			worst, err := sed.MaxError(p, a)
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			if worst > eps+1e-9 {
				t.Errorf("%s: synchronized guarantee violated: %.3f > %.3f", alg.Name(), worst, eps)
			}
		}
	}
}

// The paper's motivating contrast (§3.1 / Fig. 4): an object that dwells and
// then sprints along a straight road. Perpendicular-distance methods see a
// perfect line and discard everything; the time-ratio methods retain the
// dwell structure, keeping the synchronized error small.
func TestDwellOnStraightRoad(t *testing.T) {
	// 0–60 s: crawl from x=0 to x=60 (1 m/s); 60–120 s: sprint to x=1200.
	var p trajectory.Trajectory
	for i := 0; i <= 6; i++ {
		p = append(p, trajectory.S(float64(i*10), float64(i*10), 0))
	}
	for i := 1; i <= 6; i++ {
		p = append(p, trajectory.S(60+float64(i*10), 60+float64(i)*190, 0))
	}

	ndp := DouglasPeucker{Threshold: 30}.Compress(p)
	if ndp.Len() != 2 {
		t.Fatalf("NDP kept %d points on a straight road, want 2", ndp.Len())
	}
	ndpErr, err := sed.AvgError(p, ndp)
	if err != nil {
		t.Fatal(err)
	}

	tdtr := TDTR{Threshold: 30}.Compress(p)
	tdtrErr, err := sed.AvgError(p, tdtr)
	if err != nil {
		t.Fatal(err)
	}
	if tdtr.Len() <= 2 {
		t.Fatalf("TD-TR collapsed the dwell structure (%d points)", tdtr.Len())
	}
	if tdtrErr >= ndpErr/4 {
		t.Errorf("TD-TR error %.2f not clearly below NDP error %.2f", tdtrErr, ndpErr)
	}
	if tdtrErr > 30 {
		t.Errorf("TD-TR error %.2f exceeds its threshold", tdtrErr)
	}
}

// CompressAll matches the serial results exactly, in order.
func TestCompressAll(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ps := make([]trajectory.Trajectory, 17)
	for i := range ps {
		ps[i] = randomTrack(rng, 30+rng.Intn(150))
	}
	alg := TDTR{Threshold: 40}
	got, err := CompressAll(context.Background(), alg, BatchOptions{Parallelism: 4}, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("got %d results", len(got))
	}
	for i, p := range ps {
		want := alg.Compress(p)
		if got[i].Len() != want.Len() {
			t.Fatalf("trajectory %d: %d vs %d points", i, got[i].Len(), want.Len())
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("trajectory %d sample %d differs", i, j)
			}
		}
	}
	if out, err := CompressAll(context.Background(), alg, BatchOptions{}, nil); err != nil || len(out) != 0 {
		t.Errorf("empty input gave %d results, err %v", len(out), err)
	}
	if out, err := CompressAll(context.Background(), alg, BatchOptions{}, ps[:1]); err != nil || len(out) != 1 {
		t.Errorf("single input gave %d results, err %v", len(out), err)
	}
}

// Compression rate helper.
func TestRate(t *testing.T) {
	if got := Rate(200, 50); got != 75 {
		t.Errorf("Rate(200,50) = %v, want 75", got)
	}
	if got := Rate(0, 0); got != 0 {
		t.Errorf("Rate(0,0) = %v, want 0", got)
	}
	if got := Rate(10, 10); got != 0 {
		t.Errorf("Rate(10,10) = %v, want 0", got)
	}
}
