package compress

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trajectory"
)

func evenLine(n int) trajectory.Trajectory {
	p := make(trajectory.Trajectory, n)
	for i := range p {
		p[i] = trajectory.S(float64(i), float64(i*10), 0)
	}
	return p
}

func TestUniform(t *testing.T) {
	p := evenLine(10)
	a := Uniform{K: 3}.Compress(p)
	want := trajectory.Trajectory{p[0], p[3], p[6], p[9]}
	if a.Len() != want.Len() {
		t.Fatalf("Uniform(3) = %v", a)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Uniform(3)[%d] = %v, want %v", i, a[i], want[i])
		}
	}
	// K=1 keeps everything.
	if got := (Uniform{K: 1}).Compress(p); got.Len() != p.Len() {
		t.Errorf("Uniform(1) kept %d of %d", got.Len(), p.Len())
	}
	// Last point always kept even when the stride misses it.
	if got := (Uniform{K: 4}).Compress(p); got[got.Len()-1] != p[9] {
		t.Errorf("Uniform(4) lost the last point: %v", got)
	}
}

func TestRadial(t *testing.T) {
	p := evenLine(10) // 10 m spacing
	a := Radial{Threshold: 25}.Compress(p)
	// Points at least 25 m from the last retained: 0, 30, 60, 90 plus last.
	if a.Len() != 4 {
		t.Fatalf("Radial(25) kept %d points: %v", a.Len(), a)
	}
	for i := 1; i < a.Len()-1; i++ {
		if d := a[i].Pos().Dist(a[i-1].Pos()); d < 25 {
			t.Errorf("retained points %d,%d only %v m apart", i-1, i, d)
		}
	}
	// Zero threshold keeps everything.
	if got := (Radial{Threshold: 0}).Compress(p); got.Len() != p.Len() {
		t.Errorf("Radial(0) kept %d of %d", got.Len(), p.Len())
	}
}

func TestAngular(t *testing.T) {
	// An L-shape: only the corner turns.
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(1, 10, 0),
		trajectory.S(2, 20, 0),
		trajectory.S(3, 20, 10), // right-angle turn happens at index 2
		trajectory.S(4, 20, 20),
	})
	a := Angular{AngleThreshold: 0.5}.Compress(p)
	// The corner point (index 2) must be retained.
	found := false
	for _, s := range a {
		if s == p[2] {
			found = true
		}
	}
	if !found {
		t.Errorf("Angular dropped the corner: %v", a)
	}
	// Straight-line interior points must be dropped.
	if a.Len() >= p.Len() {
		t.Errorf("Angular kept everything: %v", a)
	}
}

func TestAngularDistBound(t *testing.T) {
	p := evenLine(100) // perfectly straight: no angles at all
	a := Angular{AngleThreshold: 0.1, DistThreshold: 95}.Compress(p)
	// The distance bound forces a retained point at least every ~95 m.
	for i := 1; i < a.Len(); i++ {
		if d := a[i].Pos().Dist(a[i-1].Pos()); d > 200 {
			t.Errorf("gap of %v m exceeds the distance bound regime", d)
		}
	}
	if a.Len() < 5 {
		t.Errorf("distance bound ignored, only %d points kept", a.Len())
	}
}

func TestDeadReckoningConstantVelocity(t *testing.T) {
	// Perfectly linear motion is fully predictable: everything between the
	// endpoints is discarded.
	p := evenLine(50)
	a := DeadReckoning{Threshold: 1}.Compress(p)
	if a.Len() != 2 {
		t.Errorf("DeadReckoning kept %d points on constant-velocity motion", a.Len())
	}
}

func TestDeadReckoningTurn(t *testing.T) {
	// Straight, then an abrupt 90° turn: the turn breaks the prediction.
	var p trajectory.Trajectory
	for i := 0; i < 10; i++ {
		p = append(p, trajectory.S(float64(i), float64(i*10), 0))
	}
	for i := 0; i < 10; i++ {
		p = append(p, trajectory.S(float64(10+i), 90, float64((i+1)*10)))
	}
	a := DeadReckoning{Threshold: 5}.Compress(p)
	if a.Len() < 3 {
		t.Errorf("DeadReckoning missed the turn: %v", a)
	}
	if a.Len() > 6 {
		t.Errorf("DeadReckoning kept too many points (%d) on piecewise-linear motion", a.Len())
	}
}

// Higher stride ⇒ fewer points, monotonically.
func TestUniformMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	p := randomTrack(rng, 333)
	prev := math.MaxInt
	for k := 1; k <= 10; k++ {
		n := Uniform{K: k}.Compress(p).Len()
		if n > prev {
			t.Fatalf("Uniform(%d) kept %d > Uniform(%d) kept %d", k, n, k-1, prev)
		}
		prev = n
	}
}
