package compress

import (
	"math/rand"
	"testing"

	"repro/internal/sed"
	"repro/internal/trajectory"
)

func TestBottomUpInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		p := randomTrack(rng, 50+rng.Intn(200))
		for _, alg := range []Algorithm{
			BottomUp{Threshold: 40},
			BottomUpTR{Threshold: 40},
			SlidingWindow{Threshold: 40, Window: 20},
			SlidingWindowTR{Threshold: 40, Window: 20},
		} {
			a := alg.Compress(p)
			if err := a.Validate(); err != nil {
				t.Fatalf("%s: invalid output: %v", alg.Name(), err)
			}
			if !a.IsVertexSubsetOf(p) {
				t.Fatalf("%s: not a vertex subset", alg.Name())
			}
			if a[0] != p[0] || a[a.Len()-1] != p[p.Len()-1] {
				t.Fatalf("%s: endpoints not retained", alg.Name())
			}
		}
	}
}

// Bottom-up under perpendicular distance keeps every original point within
// the threshold of its covering segment.
func TestBottomUpPerpGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const eps = 40.0
	for trial := 0; trial < 10; trial++ {
		p := randomTrack(rng, 150)
		a := BottomUp{Threshold: eps}.Compress(p)
		if worst := maxPerpToApprox(p, a); worst > eps+1e-9 {
			t.Errorf("BU perpendicular guarantee violated: %.3f > %.3f", worst, eps)
		}
	}
}

// Bottom-up under the synchronized distance bounds the synchronized max
// error by the threshold.
func TestBottomUpTRSyncGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const eps = 40.0
	for trial := 0; trial < 10; trial++ {
		p := randomTrack(rng, 150)
		a := BottomUpTR{Threshold: eps}.Compress(p)
		worst, err := sed.MaxError(p, a)
		if err != nil {
			t.Fatal(err)
		}
		if worst > eps+1e-9 {
			t.Errorf("BU-TR synchronized guarantee violated: %.3f > %.3f", worst, eps)
		}
	}
}

// Sliding-window TR inherits TD-TR's guarantee within each window, which
// composes to a global guarantee.
func TestSlidingWindowTRSyncGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const eps = 40.0
	p := randomTrack(rng, 300)
	for _, w := range []int{3, 10, 50, 1000} {
		a := SlidingWindowTR{Threshold: eps, Window: w}.Compress(p)
		worst, err := sed.MaxError(p, a)
		if err != nil {
			t.Fatal(err)
		}
		if worst > eps+1e-9 {
			t.Errorf("SW-TR(%d) guarantee violated: %.3f > %.3f", w, worst, eps)
		}
	}
}

func TestBottomUpCollapsesStraightLine(t *testing.T) {
	p := evenLine(100)
	a := BottomUp{Threshold: 1}.Compress(p)
	if a.Len() != 2 {
		t.Errorf("BU kept %d points on a straight constant-speed line", a.Len())
	}
	b := BottomUpTR{Threshold: 1}.Compress(p)
	if b.Len() != 2 {
		t.Errorf("BU-TR kept %d points on a straight constant-speed line", b.Len())
	}
}

func TestBottomUpKeepsSpike(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(1, 10, 0),
		trajectory.S(2, 20, 50), // spike
		trajectory.S(3, 30, 0),
		trajectory.S(4, 40, 0),
	})
	a := BottomUp{Threshold: 10}.Compress(p)
	found := false
	for _, s := range a {
		if s == p[2] {
			found = true
		}
	}
	if !found {
		t.Errorf("BU dropped the spike: %v", a)
	}
}

// With a huge window, sliding-window degenerates to the batch algorithm.
func TestSlidingWindowHugeWindowEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	p := randomTrack(rng, 120)
	sw := SlidingWindow{Threshold: 40, Window: 10000}.Compress(p)
	dp := DouglasPeucker{Threshold: 40}.Compress(p)
	if sw.Len() != dp.Len() {
		t.Fatalf("SW(huge) %d points vs DP %d", sw.Len(), dp.Len())
	}
	for i := range sw {
		if sw[i] != dp[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}

// Smaller windows compress no better than bigger ones (they add forced
// breakpoints at window boundaries).
func TestSlidingWindowMonotoneInWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	p := randomTrack(rng, 200)
	small := SlidingWindowTR{Threshold: 40, Window: 5}.Compress(p)
	big := SlidingWindowTR{Threshold: 40, Window: 100}.Compress(p)
	if small.Len() < big.Len() {
		t.Errorf("SW-TR(5) kept %d < SW-TR(100) kept %d", small.Len(), big.Len())
	}
}

func TestBottomUpValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { BottomUp{Threshold: -1}.Compress(nil) },
		func() { BottomUpTR{Threshold: -1}.Compress(nil) },
		func() { SlidingWindow{Threshold: 1, Window: 2}.Compress(nil) },
		func() { SlidingWindowTR{Threshold: 1, Window: 0}.Compress(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

// Bottom-up with zero threshold keeps all non-collinear points; with a huge
// threshold it collapses to the endpoints.
func TestBottomUpThresholdExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	p := randomTrack(rng, 80)
	if a := (BottomUpTR{Threshold: 0}).Compress(p); a.Len() != p.Len() {
		t.Errorf("BU-TR(0) kept %d of %d", a.Len(), p.Len())
	}
	if a := (BottomUpTR{Threshold: 1e12}).Compress(p); a.Len() != 2 {
		t.Errorf("BU-TR(huge) kept %d, want 2", a.Len())
	}
}
