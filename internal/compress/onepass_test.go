package compress

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// checkPerpBound asserts every input sample lies within tol (clamped
// perpendicular distance) of the output segment covering its timestamp.
func checkPerpBound(t *testing.T, name string, p, a trajectory.Trajectory, tol float64) {
	t.Helper()
	j := 0
	for _, s := range p {
		for j+1 < a.Len()-1 && a[j+1].T < s.T {
			j++
		}
		seg := geo.Seg(a[j].Pos(), a[j+1].Pos())
		if d := seg.Dist(s.Pos()); d > tol {
			t.Fatalf("%s: sample t=%v is %v from its covering segment, bound %v", name, s.T, d, tol)
		}
	}
}

// checkSEDBound is checkPerpBound under the synchronous Euclidean distance.
func checkSEDBound(t *testing.T, name string, p, a trajectory.Trajectory, tol float64) {
	t.Helper()
	j := 0
	for _, s := range p {
		for j+1 < a.Len()-1 && a[j+1].T < s.T {
			j++
		}
		if d := sed.Distance(s, a[j], a[j+1]); d > tol {
			t.Fatalf("%s: sample t=%v has SED %v to its covering segment, bound %v", name, s.T, d, tol)
		}
	}
}

// opTol is the test slack on the one-pass error bounds: the engines decide
// feasibility in derived spaces (bearings for OPERB, velocities for CISED),
// so re-measuring the bound in coordinate space picks up a few rounding
// steps, plus CISED's documented sub-millimetre radius floor.
func opTol(eps float64) float64 { return eps*(1+1e-9) + 1e-3 }

func TestOPERBStraightLine(t *testing.T) {
	p := evenLine(12)
	for _, alg := range []Algorithm{OPERB{Threshold: 5}, CISEDS{Threshold: 5}} {
		a := alg.Compress(p)
		if a.Len() != 2 {
			t.Fatalf("%s retained %d of a straight line, want 2", alg.Name(), a.Len())
		}
		if a[0] != p[0] || a[1] != p[p.Len()-1] {
			t.Fatalf("%s did not retain the endpoints", alg.Name())
		}
	}
	// The weak variant synthesizes its closing joint: endpoints must agree
	// in time, and on an exactly-linear track also in position (within
	// float noise).
	a := CISEDW{Threshold: 5}.Compress(p)
	if a.Len() != 2 {
		t.Fatalf("CISED-W retained %d of a straight line, want 2", a.Len())
	}
	end := p[p.Len()-1]
	if a[1].T != end.T || a[1].Pos().Dist(end.Pos()) > 1e-6 {
		t.Fatalf("CISED-W closing joint %v, want ≈%v", a[1], end)
	}
}

func TestOPERBBoundOnFuzzTracks(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 99} {
		p := fuzzTrack(seed, 300)
		for _, eps := range []float64{0, 10, 60, 300, 5000} {
			a := OPERB{Threshold: eps}.Compress(p)
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
			if !a.IsVertexSubsetOf(p) {
				t.Fatal("OPERB output not a subsequence")
			}
			if a[0] != p[0] || a[a.Len()-1] != p[p.Len()-1] {
				t.Fatal("OPERB dropped an endpoint")
			}
			checkPerpBound(t, "OPERB", p, a, opTol(eps))
		}
	}
}

func TestCISEDBoundOnFuzzTracks(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 99} {
		p := fuzzTrack(seed, 300)
		for _, eps := range []float64{0, 10, 60, 300, 5000} {
			s := CISEDS{Threshold: eps}.Compress(p)
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			if !s.IsVertexSubsetOf(p) {
				t.Fatal("CISED-S output not a subsequence")
			}
			checkSEDBound(t, "CISED-S", p, s, opTol(eps))

			w := CISEDW{Threshold: eps}.Compress(p)
			if err := w.Validate(); err != nil {
				t.Fatal(err)
			}
			checkSEDBound(t, "CISED-W", p, w, opTol(eps))
			// Weak output synthesizes positions but never timestamps: every
			// output time must be an input time, with both ends anchored.
			times := make(map[float64]bool, p.Len())
			for _, smp := range p {
				times[smp.T] = true
			}
			for _, smp := range w {
				if !times[smp.T] {
					t.Fatalf("CISED-W invented timestamp %v", smp.T)
				}
			}
			if w[0] != p[0] || w[w.Len()-1].T != p[p.Len()-1].T {
				t.Fatal("CISED-W endpoints not anchored")
			}
		}
	}
}

// The weak variant exists because joints buy compression: at equal ε it
// must never retain more points than the strong variant by a margin, and on
// winding tracks it should genuinely win. (The paper's Table 4 shows
// CISED-W consistently ahead of CISED-S.)
func TestCISEDWeakCompressesHarder(t *testing.T) {
	totalS, totalW := 0, 0
	for _, seed := range []int64{3, 5, 8, 13} {
		p := fuzzTrack(seed, 400)
		totalS += CISEDS{Threshold: 120}.Compress(p).Len()
		totalW += CISEDW{Threshold: 120}.Compress(p).Len()
	}
	if totalW > totalS {
		t.Fatalf("CISED-W retained %d points vs CISED-S %d at equal ε", totalW, totalS)
	}
}

func TestOnePassParse(t *testing.T) {
	for spec, want := range map[string]string{
		"operb:30":  "OPERB",
		"ciseds:45": "CISED-S",
		"cisedw:45": "CISED-W",
		"OPERB:30":  "OPERB", // names are case-insensitive
	} {
		alg, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if alg.Name() != want {
			t.Fatalf("Parse(%q).Name() = %q, want %q", spec, alg.Name(), want)
		}
	}
	for _, bad := range []string{"operb", "operb:-1", "operb:30:5", "ciseds:x", "cisedw:"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
	if IsWeak(CISEDS{Threshold: 1}) || IsWeak(OPERB{Threshold: 1}) {
		t.Fatal("strong algorithms report weak")
	}
	if !IsWeak(CISEDW{Threshold: 1}) {
		t.Fatal("CISED-W must report weak")
	}
}

// FuzzOnePassErrorBound feeds fuzz-shaped trajectories through the
// one-pass family and checks the bounded-error invariant directly: every
// discarded point stays within ε (plus float slack) of the simplification
// under the algorithm's own metric — perpendicular distance for OPERB, SED
// for CISED.
func FuzzOnePassErrorBound(f *testing.F) {
	f.Add(int64(1), uint8(40), float64(50))
	f.Add(int64(9), uint8(3), float64(0))
	f.Add(int64(23), uint8(220), float64(1e5))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, eps float64) {
		if n < 3 || !(eps >= 0) || math.IsInf(eps, 0) {
			return
		}
		p := fuzzTrack(seed, int(n))
		tol := opTol(eps)

		a := OPERB{Threshold: eps}.Compress(p)
		if err := a.Validate(); err != nil {
			t.Fatalf("OPERB: %v", err)
		}
		if !a.IsVertexSubsetOf(p) {
			t.Fatal("OPERB: not a subsequence")
		}
		checkPerpBound(t, "OPERB", p, a, tol)

		s := CISEDS{Threshold: eps}.Compress(p)
		if err := s.Validate(); err != nil {
			t.Fatalf("CISED-S: %v", err)
		}
		if !s.IsVertexSubsetOf(p) {
			t.Fatal("CISED-S: not a subsequence")
		}
		checkSEDBound(t, "CISED-S", p, s, tol)

		w := CISEDW{Threshold: eps}.Compress(p)
		if err := w.Validate(); err != nil {
			t.Fatalf("CISED-W: %v", err)
		}
		checkSEDBound(t, "CISED-W", p, w, tol)
	})
}
