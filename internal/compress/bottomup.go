package compress

import (
	"container/heap"
	"fmt"

	"repro/internal/sed"
	"repro/internal/trajectory"
)

// Bottom-up algorithms (§2's third category): starting from the finest
// representation, repeatedly remove the retained point whose removal
// introduces the least error, until any further removal would exceed the
// threshold. Unlike the sequential algorithms, the merge order follows error
// rather than position ("the algorithm may not visit all data points in
// sequence").
//
// The removal cost of a point is the maximum distance of all original
// points hidden inside the span that its removal would create, so the final
// approximation carries the same per-point guarantee as the top-down
// algorithms: every discarded point lies within the threshold of its
// covering segment (perpendicular for BottomUp, synchronized for
// BottomUpTR).

// BottomUp is the bottom-up merge algorithm under the perpendicular
// distance.
type BottomUp struct {
	// Threshold is the perpendicular distance tolerance in metres.
	Threshold float64
}

// Name implements Algorithm.
func (a BottomUp) Name() string { return "BU" }

// Compress implements Algorithm.
func (a BottomUp) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("BottomUp", a.Threshold)
	return bottomUp(p, a.Threshold, func(p trajectory.Trajectory, lo, _, hi int) float64 {
		return maxPerpOverSpan(p, lo, hi)
	})
}

// BottomUpTR is the bottom-up merge algorithm under the synchronized
// (time-ratio) distance — the bottom-up member of the paper's time-ratio
// class, completing the taxonomy of §2 for the spatiotemporal setting.
type BottomUpTR struct {
	// Threshold is the synchronized distance tolerance in metres.
	Threshold float64
}

// Name implements Algorithm.
func (a BottomUpTR) Name() string { return "BU-TR" }

// Compress implements Algorithm.
func (a BottomUpTR) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("BottomUpTR", a.Threshold)
	return bottomUp(p, a.Threshold, func(p trajectory.Trajectory, lo, _, hi int) float64 {
		return maxSyncOverSpan(p, lo, hi)
	})
}

// Visvalingam is the Visvalingam–Whyatt effective-area algorithm, a classic
// line-generalization baseline in the same family as the paper's §2
// sequential methods: repeatedly remove the point forming the smallest
// triangle with its retained neighbours. Unlike BottomUp it prices removals
// locally (no per-point distance guarantee); it is included as a baseline
// and for cartographic use.
type Visvalingam struct {
	// AreaThreshold is the minimum effective triangle area in m² a point
	// must subtend to survive.
	AreaThreshold float64
}

// Name implements Algorithm.
func (a Visvalingam) Name() string { return "VW" }

// Compress implements Algorithm.
func (a Visvalingam) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	if a.AreaThreshold < 0 {
		panic(fmt.Sprintf("compress: Visvalingam: negative area threshold %v", a.AreaThreshold))
	}
	return bottomUp(p, a.AreaThreshold, func(p trajectory.Trajectory, lo, j, hi int) float64 {
		u := p[j].Pos().Sub(p[lo].Pos())
		v := p[hi].Pos().Sub(p[lo].Pos())
		area := u.Cross(v)
		if area < 0 {
			area = -area
		}
		return area / 2
	})
}

// removalCost prices the removal of retained point j whose current retained
// neighbours are a and b. The bottom-up merge algorithms use the maximum
// distance of ALL original points hidden in (a, b) — which yields the
// per-point error guarantee; Visvalingam uses the local triangle area.
type removalCost func(p trajectory.Trajectory, a, j, b int) float64

func maxPerpOverSpan(p trajectory.Trajectory, lo, hi int) float64 {
	line := segBetween(p, lo, hi)
	worst := 0.0
	for i := lo + 1; i < hi; i++ {
		if d := line.PerpDist(p[i].Pos()); d > worst {
			worst = d
		}
	}
	return worst
}

func maxSyncOverSpan(p trajectory.Trajectory, lo, hi int) float64 {
	worst := 0.0
	for i := lo + 1; i < hi; i++ {
		if d := sed.Distance(p[i], p[lo], p[hi]); d > worst {
			worst = d
		}
	}
	return worst
}

// mergeItem is a heap entry: the cost of removing retained point idx.
type mergeItem struct {
	cost  float64
	idx   int
	stamp int // lazy-deletion version; stale entries are skipped
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func bottomUp(p trajectory.Trajectory, threshold float64, cost removalCost) trajectory.Trajectory {
	if out, ok := small(p); ok {
		return out
	}
	n := p.Len()
	prev := make([]int, n)
	next := make([]int, n)
	stamp := make([]int, n)
	removed := make([]bool, n)
	for i := range prev {
		prev[i], next[i] = i-1, i+1
	}

	h := make(mergeHeap, 0, n-2)
	for i := 1; i < n-1; i++ {
		h = append(h, mergeItem{cost: cost(p, i-1, i, i+1), idx: i})
	}
	heap.Init(&h)

	for h.Len() > 0 {
		it := heap.Pop(&h).(mergeItem)
		if removed[it.idx] || it.stamp != stamp[it.idx] {
			continue // stale entry
		}
		if it.cost > threshold {
			break // cheapest removal already violates; done
		}
		// Remove it.idx: link neighbours and refresh their costs.
		a, b := prev[it.idx], next[it.idx]
		removed[it.idx] = true
		next[a], prev[b] = b, a
		if a > 0 {
			stamp[a]++
			heap.Push(&h, mergeItem{cost: cost(p, prev[a], a, next[a]), idx: a, stamp: stamp[a]})
		}
		if b < n-1 {
			stamp[b]++
			heap.Push(&h, mergeItem{cost: cost(p, prev[b], b, next[b]), idx: b, stamp: stamp[b]})
		}
	}

	out := make(trajectory.Trajectory, 0, 16)
	for i := 0; i < n; i++ {
		if !removed[i] {
			out = append(out, p[i])
		}
	}
	return out
}
