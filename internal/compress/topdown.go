package compress

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// splitFunc examines the interior points of p[lo..hi] against the candidate
// segment p[lo]–p[hi] and returns the index of the worst violating point
// together with whether any point violates the halting condition.
type splitFunc func(p trajectory.Trajectory, lo, hi int) (worst int, violates bool)

// topDown runs the recursive top-down scheme shared by DP, TD-TR and TD-SP:
// repeatedly split at the worst offending point until every subseries
// satisfies the halting condition, then keep exactly the split points plus
// the two endpoints. Recursion is replaced by an explicit stack so deep,
// pathological inputs cannot overflow the goroutine stack.
func topDown(p trajectory.Trajectory, split splitFunc) trajectory.Trajectory {
	if out, ok := small(p); ok {
		return out
	}
	keep := make([]bool, p.Len())
	keep[0], keep[p.Len()-1] = true, true

	type span struct{ lo, hi int }
	stack := []span{{0, p.Len() - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		worst, violates := split(p, s.lo, s.hi)
		if !violates {
			continue
		}
		keep[worst] = true
		stack = append(stack, span{s.lo, worst}, span{worst, s.hi})
	}

	out := make(trajectory.Trajectory, 0, 16)
	for i, k := range keep {
		if k {
			out = append(out, p[i])
		}
	}
	return out
}

// DouglasPeucker is the classic top-down line-generalization algorithm
// (Douglas & Peucker 1973) — the paper's NDP baseline. The data series is
// recursively cut at the point with the greatest perpendicular distance to
// the anchor–float segment while that distance exceeds Threshold.
type DouglasPeucker struct {
	// Threshold is the perpendicular distance tolerance in metres.
	Threshold float64
}

// Name implements Algorithm.
func (d DouglasPeucker) Name() string { return "NDP" }

// Compress implements Algorithm. Time complexity is O(N²) in the worst case,
// matching the original formulation; see DouglasPeuckerHull for the
// O(N log N) path-hull variant.
func (d DouglasPeucker) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("DouglasPeucker", d.Threshold)
	return topDown(p, func(p trajectory.Trajectory, lo, hi int) (int, bool) {
		line := segBetween(p, lo, hi)
		worst, worstDist := -1, 0.0
		for i := lo + 1; i < hi; i++ {
			if dd := line.PerpDist(p[i].Pos()); dd > worstDist {
				worst, worstDist = i, dd
			}
		}
		return worst, worstDist > d.Threshold
	})
}

// TDTR is the paper's top-down time-ratio algorithm (§3.2): Douglas-Peucker
// with the perpendicular distance replaced by the synchronized (time-ratio)
// distance, so that the temporal dimension participates in the discard
// decision.
type TDTR struct {
	// Threshold is the synchronized distance tolerance in metres.
	Threshold float64
}

// Name implements Algorithm.
func (d TDTR) Name() string { return "TD-TR" }

// Compress implements Algorithm.
func (d TDTR) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("TDTR", d.Threshold)
	return topDown(p, func(p trajectory.Trajectory, lo, hi int) (int, bool) {
		worst, worstDist := -1, 0.0
		for i := lo + 1; i < hi; i++ {
			if dd := sed.Distance(p[i], p[lo], p[hi]); dd > worstDist {
				worst, worstDist = i, dd
			}
		}
		return worst, worstDist > d.Threshold
	})
}

// TDSP is the top-down member of the paper's spatiotemporal class (§3.3):
// it combines the synchronized distance criterion of TDTR with the
// speed-difference criterion of OPWSP. The paper applies the combined
// criteria top-down without giving pseudocode; here a point violates when
// its synchronized distance exceeds DistThreshold or the derived-speed jump
// across it exceeds SpeedThreshold, and the series is cut at the point with
// the largest normalized violation (distance/DistThreshold or
// speed-difference/SpeedThreshold, whichever is greater).
type TDSP struct {
	// DistThreshold is the synchronized distance tolerance in metres.
	DistThreshold float64
	// SpeedThreshold is the maximum allowed difference between the derived
	// speeds of the segments meeting at a point, in m/s.
	SpeedThreshold float64
}

// Name implements Algorithm.
func (d TDSP) Name() string { return fmt.Sprintf("TD-SP(%gm/s)", d.SpeedThreshold) }

// Compress implements Algorithm.
func (d TDSP) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("TDSP", d.DistThreshold)
	if d.SpeedThreshold <= 0 {
		panic(fmt.Sprintf("compress: TDSP: non-positive speed threshold %v", d.SpeedThreshold))
	}
	return topDown(p, func(p trajectory.Trajectory, lo, hi int) (int, bool) {
		worst, worstScore := -1, 0.0
		for i := lo + 1; i < hi; i++ {
			score := sed.Distance(p[i], p[lo], p[hi]) / d.DistThreshold
			dv := speedJump(p, i)
			if s := dv / d.SpeedThreshold; s > score {
				score = s
			}
			if score > worstScore {
				worst, worstScore = i, score
			}
		}
		return worst, worstScore > 1
	})
}

// segBetween returns the straight segment from vertex lo to vertex hi.
func segBetween(p trajectory.Trajectory, lo, hi int) geo.Segment {
	return geo.Seg(p[lo].Pos(), p[hi].Pos())
}

// speedJump returns |v_i − v_{i−1}|: the absolute difference of the derived
// speeds of the segments before and after point i (paper §3.3).
func speedJump(p trajectory.Trajectory, i int) float64 {
	prev := p.SegmentSpeed(i - 1)
	next := p.SegmentSpeed(i)
	if next > prev {
		return next - prev
	}
	return prev - next
}
