package compress

import (
	"fmt"

	"repro/internal/sed"
	"repro/internal/trajectory"
)

// BreakStrategy selects where an opening-window algorithm cuts a segment
// when the halting condition is violated (paper §2.2).
type BreakStrategy int

const (
	// BreakAtViolation cuts at the data point causing the threshold excess —
	// the paper's "Normal Opening Window" strategy (NOPW) and the strategy
	// of the SPT pseudocode.
	BreakAtViolation BreakStrategy = iota
	// BreakBefore cuts at the data point just before the float when the
	// excess occurs — the paper's "Before Opening Window" strategy (BOPW).
	// It yields higher compression at the cost of (much) higher error.
	BreakBefore
)

// String implements fmt.Stringer.
func (b BreakStrategy) String() string {
	switch b {
	case BreakAtViolation:
		return "at-violation"
	case BreakBefore:
		return "before"
	default:
		return fmt.Sprintf("BreakStrategy(%d)", int(b))
	}
}

// violationFunc reports whether intermediate point i violates the halting
// condition for the candidate segment from anchor to float.
type violationFunc func(p trajectory.Trajectory, anchor, float, i int) bool

// openingWindow runs the shared opening-window scheme (paper §2.2 and the
// SPT pseudocode of §3.3).
//
// The anchor starts at the first point and the float two positions later.
// All intermediate points are tested; on the first violation the series is
// cut according to strategy, the cut point becomes the new anchor, and the
// window re-opens. Without violation the float moves one up.
//
// When dropTail is false (the default behaviour of all exported algorithms)
// the final data point is always emitted, closing the last window — the
// countermeasure the paper calls for after observing that OW algorithms "may
// lose the last few data points". With dropTail true the raw behaviour of
// Figs. 2–3 is reproduced for ablation: the tail after the last cut is
// discarded.
func openingWindow(p trajectory.Trajectory, strategy BreakStrategy, dropTail bool, violates violationFunc) trajectory.Trajectory {
	if out, ok := small(p); ok {
		return out
	}
	out := trajectory.Trajectory{p[0]}
	anchor := 0
	e := anchor + 2
	for e < p.Len() {
		cut := -1
		for i := anchor + 1; i < e; i++ {
			if violates(p, anchor, e, i) {
				if strategy == BreakBefore {
					cut = e - 1
				} else {
					cut = i
				}
				break
			}
		}
		if cut < 0 {
			e++
			continue
		}
		if cut == anchor {
			// A BreakBefore cut can coincide with the anchor when the window
			// is at its minimum size; advance by one point to guarantee
			// progress.
			cut = anchor + 1
		}
		out = append(out, p[cut])
		anchor = cut
		e = anchor + 2
	}
	if !dropTail {
		if last := p[p.Len()-1]; out[len(out)-1] != last {
			out = append(out, last)
		}
	}
	return out
}

// NOPW is the Normal Opening Window algorithm (§2.2): perpendicular-distance
// halting condition, cutting at the data point causing the threshold excess.
type NOPW struct {
	// Threshold is the perpendicular distance tolerance in metres.
	Threshold float64
	// DropTail reproduces the raw tail-losing behaviour of Fig. 2 when set;
	// by default the final point is retained.
	DropTail bool
}

// Name implements Algorithm.
func (a NOPW) Name() string { return "NOPW" }

// Compress implements Algorithm.
func (a NOPW) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("NOPW", a.Threshold)
	return openingWindow(p, BreakAtViolation, a.DropTail, func(p trajectory.Trajectory, anchor, float, i int) bool {
		return segBetween(p, anchor, float).PerpDist(p[i].Pos()) > a.Threshold
	})
}

// BOPW is the Before Opening Window algorithm (§2.2): like NOPW but cutting
// at the data point just before the float when the excess occurs.
type BOPW struct {
	// Threshold is the perpendicular distance tolerance in metres.
	Threshold float64
	// DropTail reproduces the raw tail-losing behaviour of Fig. 3 when set.
	DropTail bool
}

// Name implements Algorithm.
func (a BOPW) Name() string { return "BOPW" }

// Compress implements Algorithm.
func (a BOPW) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("BOPW", a.Threshold)
	return openingWindow(p, BreakBefore, a.DropTail, func(p trajectory.Trajectory, anchor, float, i int) bool {
		return segBetween(p, anchor, float).PerpDist(p[i].Pos()) > a.Threshold
	})
}

// OPWTR is the paper's opening-window time-ratio algorithm (§3.2): the
// opening-window scheme with the synchronized (time-ratio) distance as the
// halting condition.
type OPWTR struct {
	// Threshold is the synchronized distance tolerance in metres.
	Threshold float64
	// Strategy selects the break point; the paper uses BreakAtViolation.
	// BreakBefore is provided for the ablation of §5 of DESIGN.md.
	Strategy BreakStrategy
	// DropTail disables the keep-last countermeasure when set.
	DropTail bool
}

// Name implements Algorithm.
func (a OPWTR) Name() string { return "OPW-TR" }

// Compress implements Algorithm.
func (a OPWTR) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("OPWTR", a.Threshold)
	return openingWindow(p, a.Strategy, a.DropTail, func(p trajectory.Trajectory, anchor, float, i int) bool {
		return sed.Distance(p[i], p[anchor], p[float]) > a.Threshold
	})
}

// OPWSP is the paper's spatiotemporal opening-window algorithm — the
// pseudocode procedure SPT of §3.3. A point is retained when its
// synchronized distance to the candidate segment exceeds DistThreshold or
// when the derived speeds of its adjacent segments differ by more than
// SpeedThreshold.
type OPWSP struct {
	// DistThreshold is the synchronized distance tolerance in metres
	// (max_dist_error in the pseudocode).
	DistThreshold float64
	// SpeedThreshold is the speed-difference tolerance in m/s
	// (max_speed_error in the pseudocode).
	SpeedThreshold float64
	// DropTail disables the keep-last countermeasure when set.
	DropTail bool
}

// Name implements Algorithm.
func (a OPWSP) Name() string { return fmt.Sprintf("OPW-SP(%gm/s)", a.SpeedThreshold) }

// Compress implements Algorithm.
func (a OPWSP) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance("OPWSP", a.DistThreshold)
	if a.SpeedThreshold <= 0 {
		panic(fmt.Sprintf("compress: OPWSP: non-positive speed threshold %v", a.SpeedThreshold))
	}
	return openingWindow(p, BreakAtViolation, a.DropTail, func(p trajectory.Trajectory, anchor, float, i int) bool {
		if sed.Distance(p[i], p[anchor], p[float]) > a.DistThreshold {
			return true
		}
		// The pseudocode's ‖v_i − v_{i−1}‖ check uses the original series'
		// derived speeds around point i; i+1 ≤ float < len(p) so the lookup
		// is always in range.
		return speedJump(p, i) > a.SpeedThreshold
	})
}
