package compress

import (
	"math/rand"
	"testing"

	"repro/internal/trajectory"
)

// latticeTrack builds a random track whose coordinates and times live on a
// coarse binary-fraction lattice, so translating it by lattice amounts is
// EXACT in float64 arithmetic — differences of translated values equal the
// original differences bit-for-bit, and every distance computation sees
// identical inputs.
func latticeTrack(rng *rand.Rand, n int) trajectory.Trajectory {
	p := make(trajectory.Trajectory, n)
	t, x, y := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		p[i] = trajectory.S(t, x, y)
		t += 0.25 * float64(1+rng.Intn(60))
		x += 0.5 * float64(rng.Intn(800)-400)
		y += 0.5 * float64(rng.Intn(800)-400)
	}
	return p
}

// Every compression decision depends only on relative geometry and relative
// time, so compressing a translated/time-shifted trajectory must retain the
// translated versions of exactly the same points.
func TestTranslationEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	algs := []Algorithm{
		Uniform{K: 4},
		Radial{Threshold: 60},
		DouglasPeucker{Threshold: 60},
		DouglasPeuckerHull{Threshold: 60},
		NOPW{Threshold: 60},
		BOPW{Threshold: 60},
		TDTR{Threshold: 60},
		OPWTR{Threshold: 60},
		OPWSP{DistThreshold: 60, SpeedThreshold: 25},
		TDSP{DistThreshold: 60, SpeedThreshold: 25},
		BottomUp{Threshold: 60},
		BottomUpTR{Threshold: 60},
		SlidingWindow{Threshold: 60, Window: 10},
		SlidingWindowTR{Threshold: 60, Window: 10},
		DouglasPeuckerN{N: 12},
		TDTRN{N: 12},
		SQUISH{Capacity: 12},
		Visvalingam{AreaThreshold: 2000},
		DeadReckoning{Threshold: 60},
		// One-pass algorithms: every decision is made on anchor-relative
		// differences, which are bit-exact under lattice shifts. (CISED-W
		// is excluded: its synthesized joints are anchor + v·dt sums whose
		// rounding depends on the absolute coordinates.)
		OPERB{Threshold: 60},
		CISEDS{Threshold: 60},
	}
	shifts := []struct{ dt, dx, dy float64 }{
		{1024, 0, 0},        // pure time shift
		{0, 65536, -32768},  // pure translation
		{4096, -1024, 2048}, // both
	}
	for trial := 0; trial < 8; trial++ {
		p := latticeTrack(rng, 60+rng.Intn(100))
		for _, alg := range algs {
			base := alg.Compress(p)
			for _, sh := range shifts {
				shifted := alg.Compress(p.Shift(sh.dt, sh.dx, sh.dy))
				want := base.Shift(sh.dt, sh.dx, sh.dy)
				if shifted.Len() != want.Len() {
					t.Fatalf("%s: shift (%v,%v,%v) changed retention: %d vs %d points",
						alg.Name(), sh.dt, sh.dx, sh.dy, shifted.Len(), want.Len())
				}
				for i := range want {
					if shifted[i] != want[i] {
						t.Fatalf("%s: shift (%v,%v,%v): point %d = %v, want %v",
							alg.Name(), sh.dt, sh.dx, sh.dy, i, shifted[i], want[i])
					}
				}
			}
		}
	}
}

// Rotating the plane by 90° — exact in float64: (x, y) → (−y, x) — must not
// change which points any algorithm retains.
func TestRotationEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	rot := func(p trajectory.Trajectory) trajectory.Trajectory {
		out := make(trajectory.Trajectory, p.Len())
		for i, s := range p {
			out[i] = trajectory.S(s.T, -s.Y, s.X)
		}
		return out
	}
	algs := []Algorithm{
		DouglasPeucker{Threshold: 60},
		TDTR{Threshold: 60},
		NOPW{Threshold: 60},
		OPWTR{Threshold: 60},
		OPWSP{DistThreshold: 60, SpeedThreshold: 25},
		BottomUpTR{Threshold: 60},
		Visvalingam{AreaThreshold: 2000},
		SQUISH{Capacity: 15},
	}
	for trial := 0; trial < 8; trial++ {
		p := latticeTrack(rng, 100)
		r := rot(p)
		for _, alg := range algs {
			a := alg.Compress(p)
			b := alg.Compress(r)
			if a.Len() != b.Len() {
				t.Fatalf("%s: rotation changed retention: %d vs %d", alg.Name(), a.Len(), b.Len())
			}
			for i := range a {
				if a[i].T != b[i].T {
					t.Fatalf("%s: rotated selection differs at %d", alg.Name(), i)
				}
			}
		}
	}
}

// Scaling space and the distance threshold together leaves the selection of
// the scale-homogeneous algorithms unchanged (speeds scale too, so the
// speed threshold is scaled alongside; Visvalingam's area scales
// quadratically).
func TestScaleEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	const k = 4.0 // power of two: exact float scaling
	for trial := 0; trial < 8; trial++ {
		p := latticeTrack(rng, 80)
		scaled := make(trajectory.Trajectory, p.Len())
		for i, s := range p {
			scaled[i] = trajectory.S(s.T, s.X*k, s.Y*k)
		}
		type pair struct{ a, b Algorithm }
		pairs := []pair{
			{DouglasPeucker{Threshold: 50}, DouglasPeucker{Threshold: 50 * k}},
			{TDTR{Threshold: 50}, TDTR{Threshold: 50 * k}},
			{OPWTR{Threshold: 50}, OPWTR{Threshold: 50 * k}},
			{OPWSP{DistThreshold: 50, SpeedThreshold: 20}, OPWSP{DistThreshold: 50 * k, SpeedThreshold: 20 * k}},
			{BottomUpTR{Threshold: 50}, BottomUpTR{Threshold: 50 * k}},
			{Visvalingam{AreaThreshold: 1000}, Visvalingam{AreaThreshold: 1000 * k * k}},
		}
		for _, pr := range pairs {
			a := pr.a.Compress(p)
			b := pr.b.Compress(scaled)
			if a.Len() != b.Len() {
				t.Fatalf("%s: scaling changed retention: %d vs %d points", pr.a.Name(), a.Len(), b.Len())
			}
			for i := range a {
				if a[i].T != b[i].T {
					t.Fatalf("%s: scaled selection differs at %d", pr.a.Name(), i)
				}
			}
		}
	}
}
