package compress

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sed"
	"repro/internal/trajectory"
)

// A square-wave path whose spikes exceed the threshold pins down the two
// break-point strategies of §2.2: NOPW cuts at the offending point, BOPW at
// the point just before the float.
func spiky() trajectory.Trajectory {
	// Baseline along y=0 with a spike at every 3rd point.
	var p trajectory.Trajectory
	for i := 0; i < 12; i++ {
		y := 0.0
		if i%3 == 2 {
			y = 50
		}
		p = append(p, trajectory.S(float64(i*10), float64(i*100), y))
	}
	return p
}

func TestNOPWBreaksAtViolation(t *testing.T) {
	p := spiky()
	a := NOPW{Threshold: 20}.Compress(p)
	// Every spike (indices 2, 5, 8) must appear as a break point.
	for _, want := range []int{2, 5, 8} {
		sub := trajectory.Trajectory{p[want]}
		if !sub.IsVertexSubsetOf(a) {
			t.Errorf("NOPW output %v missing spike point %d", a, want)
		}
	}
}

func TestBOPWBreaksBeforeFloat(t *testing.T) {
	// Three points: anchor, a violating middle, and the float. BOPW with
	// minimum window must still make progress and cut after the anchor.
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(1, 10, 50),
		trajectory.S(2, 20, 0),
		trajectory.S(3, 30, 50),
		trajectory.S(4, 40, 0),
	})
	a := BOPW{Threshold: 20}.Compress(p)
	if err := a.Validate(); err != nil {
		t.Fatalf("BOPW emitted invalid output: %v", err)
	}
	if a[0] != p[0] || a[a.Len()-1] != p[p.Len()-1] {
		t.Fatalf("BOPW dropped endpoints: %v", a)
	}
}

// BOPW compresses at least as much as NOPW on the same data — the paper's
// Fig. 8 observation.
func TestBOPWCompressesMore(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	totalN, totalB := 0, 0
	for trial := 0; trial < 20; trial++ {
		p := randomTrack(rng, 200)
		totalN += NOPW{Threshold: 40}.Compress(p).Len()
		totalB += BOPW{Threshold: 40}.Compress(p).Len()
	}
	if totalB > totalN {
		t.Errorf("BOPW kept more points (%d) than NOPW (%d) in aggregate", totalB, totalN)
	}
}

// OPW-TR commits far lower synchronized error than NOPW at comparable
// thresholds — the paper's Fig. 9 claim, tested on dwell-heavy data.
func TestOPWTRBeatsNOPWOnSyncError(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var errN, errTR float64
	for trial := 0; trial < 10; trial++ {
		p := dwellTrack(rng, 150)
		n := NOPW{Threshold: 40}.Compress(p)
		tr := OPWTR{Threshold: 40}.Compress(p)
		en, err := sed.AvgError(p, n)
		if err != nil {
			t.Fatal(err)
		}
		etr, err := sed.AvgError(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		errN += en
		errTR += etr
	}
	if errTR >= errN {
		t.Errorf("OPW-TR aggregate error %.2f not below NOPW %.2f", errTR, errN)
	}
}

// dwellTrack interleaves crawling and sprinting along a meandering path so
// that time-parameterization matters.
func dwellTrack(rng *rand.Rand, n int) trajectory.Trajectory {
	p := make(trajectory.Trajectory, n)
	t, x, y := 0.0, 0.0, 0.0
	heading := 0.0
	for i := 0; i < n; i++ {
		p[i] = trajectory.S(t, x, y)
		speed := 1.0
		if (i/10)%2 == 0 {
			speed = 25
		}
		heading += rng.NormFloat64() * 0.15
		dt := 10.0
		t += dt
		x += speed * dt * math.Cos(heading)
		y += speed * dt * math.Sin(heading)
	}
	return p
}

func TestOPWSPSpeedCriterion(t *testing.T) {
	// Straight line with a hard stop: only the speed criterion can trigger.
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(10, 100, 0),  // 10 m/s
		trajectory.S(110, 200, 0), // 1 m/s
		trajectory.S(120, 300, 0), // 10 m/s
	})
	a := OPWSP{DistThreshold: 1e6, SpeedThreshold: 5}.Compress(p)
	if a.Len() < 3 {
		t.Fatalf("OPW-SP ignored a 9 m/s speed jump: %v", a)
	}
	b := OPWSP{DistThreshold: 1e6, SpeedThreshold: 15}.Compress(p)
	if b.Len() != 2 {
		t.Fatalf("OPW-SP kept %d points with a lenient speed threshold, want 2", b.Len())
	}
}

// With a huge speed threshold OPW-SP reduces to OPW-TR, the coincidence the
// paper reports between OPW-SP(25 m/s) and OPW-TR in Figs. 10–11.
func TestOPWSPReducesToOPWTR(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		p := randomTrack(rng, 150)
		sp := OPWSP{DistThreshold: 40, SpeedThreshold: 1e9}.Compress(p)
		tr := OPWTR{Threshold: 40}.Compress(p)
		if sp.Len() != tr.Len() {
			t.Fatalf("lengths differ: OPW-SP %d vs OPW-TR %d", sp.Len(), tr.Len())
		}
		for i := range sp {
			if sp[i] != tr[i] {
				t.Fatalf("outputs differ at %d", i)
			}
		}
	}
}

// DropTail reproduces the tail-losing behaviour of Figs. 2–3; the default
// keeps the last point.
func TestDropTailAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := randomTrack(rng, 100)
	kept := OPWTR{Threshold: 40}.Compress(p)
	if kept[kept.Len()-1] != p[p.Len()-1] {
		t.Error("default OPW-TR lost the last point")
	}
	dropped := OPWTR{Threshold: 40, DropTail: true}.Compress(p)
	if dropped.Len() > kept.Len() {
		t.Error("DropTail output longer than default")
	}
}

func TestBreakStrategyString(t *testing.T) {
	if BreakAtViolation.String() != "at-violation" || BreakBefore.String() != "before" {
		t.Error("BreakStrategy strings wrong")
	}
	if BreakStrategy(9).String() == "" {
		t.Error("unknown strategy has empty string")
	}
}
