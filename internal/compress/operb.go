package compress

import (
	"math"

	"repro/internal/trajectory"
)

// OPERB is the One-Pass Error Bounded simplification of Lin et al.
// (arXiv:1702.05597): a local-distance-checking algorithm that processes
// each point exactly once in O(1) memory, guaranteeing that every discarded
// point lies within Threshold (perpendicular Euclidean distance) of the
// retained segment that covers it.
//
// Where the opening-window family re-scans the buffered window on every
// arrival (O(window) per point), OPERB maintains only a feasible direction
// interval for the segment leaving the current anchor: a point at distance
// l > ε from the anchor constrains the segment direction to an arc of
// half-width asin(ε/l) around its own bearing. A candidate endpoint is
// accepted while its bearing stays inside the running arc intersection and
// it is at least as far from the anchor as every constrained point (so all
// their projections fall on the segment). The per-point cost is one sqrt,
// one atan2 and one asin — no window, no re-scan.
type OPERB struct {
	// Threshold is the error bound ε in metres.
	Threshold float64
}

// Name implements Algorithm.
func (a OPERB) Name() string { return "OPERB" }

// Compress implements Algorithm. The result is a vertex subsequence of p
// retaining both endpoints, and every discarded sample is within Threshold
// of the output segment covering it.
func (a OPERB) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	validateDistance(a.Name(), a.Threshold)
	if q, ok := small(p); ok {
		return q
	}
	e := NewOPERBEngine(a.Threshold)
	out := make(trajectory.Trajectory, 0, 8)
	for _, s := range p {
		out = append(out, e.Push(s)...)
	}
	return append(out, e.Flush()...)
}

// OPERBEngine is the incremental core of OPERB, shared by the batch
// algorithm above and the online wrapper in internal/stream (so the stream
// output equals the batch output by construction). State is O(1): the
// anchor, one tentative endpoint, and the feasible direction interval.
type OPERBEngine struct {
	eps float64

	started bool
	anchor  trajectory.Sample
	hasLast bool
	last    trajectory.Sample

	// Feasible direction interval [lo, hi] for the segment leaving the
	// anchor, in unwrapped radians (each new bearing is renormalized to
	// within π of the interval midpoint, so the interval never straddles a
	// branch cut). lMax is the largest anchor distance over the
	// constraint-bearing points seen this window: requiring the endpoint to
	// be at least that far keeps every discarded point's projection on the
	// segment, which upgrades the line-distance bound to a segment-distance
	// bound.
	hasArc bool
	lo, hi float64
	lMax   float64

	out []trajectory.Sample
}

// NewOPERBEngine returns a reset engine with error bound eps (metres).
func NewOPERBEngine(eps float64) *OPERBEngine {
	validateDistance("OPERB", eps)
	return &OPERBEngine{eps: eps}
}

// Pending reports how many buffered samples await a retention decision
// (0 or 1 — the engine's O(1) memory guarantee).
func (e *OPERBEngine) Pending() int {
	if e.hasLast {
		return 1
	}
	return 0
}

// Push feeds one sample and returns the samples whose retention became
// definite. The returned slice is only valid until the next call. Callers
// must feed strictly increasing timestamps (the stream wrapper enforces
// this); OPERB itself only uses positions.
func (e *OPERBEngine) Push(s trajectory.Sample) []trajectory.Sample {
	e.out = e.out[:0]
	if !e.started {
		e.started = true
		e.anchor = s
		e.out = append(e.out, s)
		return e.out
	}
	if !e.fit(s) {
		// Cut: the tentative endpoint becomes definite, the window
		// re-anchors there, and s opens the new window (a fit against an
		// unconstrained anchor always succeeds, so progress is guaranteed).
		e.out = append(e.out, e.last)
		e.anchor = e.last
		e.hasArc = false
		e.lMax = 0
		e.fit(s)
	}
	return e.out
}

// fit tries to accept s as the tentative endpoint of the current window,
// updating the direction interval on success.
func (e *OPERBEngine) fit(s trajectory.Sample) bool {
	dx, dy := s.X-e.anchor.X, s.Y-e.anchor.Y
	l := math.Hypot(dx, dy)
	if l <= e.eps {
		// s stays within ε of the anchor itself, hence within ε of any
		// segment leaving the anchor: it never constrains the direction.
		// But it can only BE the endpoint while no farther point has been
		// discarded (a short segment cannot cover a far point).
		if e.hasArc {
			return false
		}
		e.last, e.hasLast = s, true
		return true
	}
	theta := math.Atan2(dy, dx)
	half := math.Asin(math.Min(1, e.eps/l))
	if e.hasArc {
		mid := (e.lo + e.hi) / 2
		theta -= 2 * math.Pi * math.Round((theta-mid)/(2*math.Pi))
		if theta < e.lo || theta > e.hi || l < e.lMax {
			return false
		}
	} else {
		e.hasArc = true
		e.lo, e.hi = math.Inf(-1), math.Inf(1)
	}
	if lo := theta - half; lo > e.lo {
		e.lo = lo
	}
	if hi := theta + half; hi < e.hi {
		e.hi = hi
	}
	e.lMax = l
	e.last, e.hasLast = s, true
	return true
}

// Flush terminates the stream, emitting the pending endpoint (the final
// input sample, when any input followed the last emission) and resetting
// the engine for reuse.
func (e *OPERBEngine) Flush() []trajectory.Sample {
	e.out = e.out[:0]
	if e.hasLast {
		e.out = append(e.out, e.last)
	}
	e.started, e.hasLast, e.hasArc = false, false, false
	e.lMax = 0
	return e.out
}
