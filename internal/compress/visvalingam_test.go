package compress

import (
	"math/rand"
	"testing"

	"repro/internal/trajectory"
)

func TestVisvalingamBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := randomTrack(rng, 150)
	a := Visvalingam{AreaThreshold: 500}.Compress(p)
	if err := a.Validate(); err != nil {
		t.Fatalf("invalid output: %v", err)
	}
	if !a.IsVertexSubsetOf(p) {
		t.Fatal("not a vertex subset")
	}
	if a[0] != p[0] || a[a.Len()-1] != p[p.Len()-1] {
		t.Fatal("endpoints dropped")
	}
	if a.Len() >= p.Len() {
		t.Errorf("no compression at 500 m² (kept %d of %d)", a.Len(), p.Len())
	}
}

func TestVisvalingamCollinear(t *testing.T) {
	// Collinear points subtend zero area and vanish at any threshold.
	p := evenLine(50)
	a := Visvalingam{AreaThreshold: 1e-9}.Compress(p)
	if a.Len() != 2 {
		t.Errorf("kept %d points on a straight line, want 2", a.Len())
	}
}

func TestVisvalingamKeepsBigFeatures(t *testing.T) {
	// A large detour triangle must survive a modest area threshold.
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(1, 100, 1),
		trajectory.S(2, 200, 500), // large detour
		trajectory.S(3, 300, -1),
		trajectory.S(4, 400, 0),
	})
	a := Visvalingam{AreaThreshold: 1000}.Compress(p)
	found := false
	for _, s := range a {
		if s == p[2] {
			found = true
		}
	}
	if !found {
		t.Errorf("large detour removed: %v", a)
	}
}

func TestVisvalingamMonotoneInThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	p := randomTrack(rng, 200)
	prev := p.Len() + 1
	for _, th := range []float64{1, 100, 1e4, 1e6, 1e9} {
		n := Visvalingam{AreaThreshold: th}.Compress(p).Len()
		if n > prev {
			t.Errorf("threshold %g kept %d > %d at smaller threshold", th, n, prev)
		}
		prev = n
	}
}

func TestVisvalingamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative area threshold accepted")
		}
	}()
	Visvalingam{AreaThreshold: -1}.Compress(nil)
}
