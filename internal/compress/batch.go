package compress

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/trajectory"
)

// BatchOptions configures the batch compression worker pool.
type BatchOptions struct {
	// Parallelism bounds the number of concurrent workers; values ≤ 0
	// select GOMAXPROCS. The pool never spawns more workers than there are
	// trajectories.
	Parallelism int
}

// workers resolves the effective worker count for n items.
func (o BatchOptions) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// CompressAll compresses every trajectory with alg on a bounded worker
// pool, preserving input order — the batch path for archival jobs over
// large fleets and for the paper's experiment grid. The paper's algorithms
// are embarrassingly parallel across objects: one trajectory per worker.
// Algorithms are pure and value-typed, so one instance is shared safely
// across workers.
//
// Cancelling ctx abandons trajectories not yet started and returns
// ctx.Err(); in-flight compressions finish first (Compress is not
// interruptible). On success the result has exactly one output per input,
// identical to the serial loop's.
func CompressAll(ctx context.Context, alg Algorithm, opts BatchOptions, ps []trajectory.Trajectory) ([]trajectory.Trajectory, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]trajectory.Trajectory, len(ps))
	workers := opts.workers(len(ps))
	if workers <= 1 {
		for i, p := range ps {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = alg.Compress(p)
		}
		return out, nil
	}

	// errgroup-style bounded pool on the stdlib: a dispatch channel feeds
	// indices to workers; cancellation stops dispatch, workers drain, and
	// the first context error is returned.
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = alg.Compress(ps[i])
			}
		}()
	}
	err := func() error {
		defer close(next)
		for i := range ps {
			select {
			case next <- i:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return out, nil
}
