package compress

import (
	"math/rand"
	"testing"

	"repro/internal/sed"
)

func TestBudgetAlgorithmsExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := randomTrack(rng, 250)
	for _, n := range []int{2, 3, 10, 50, 249} {
		for _, alg := range []Algorithm{
			DouglasPeuckerN{N: n},
			TDTRN{N: n},
			SQUISH{Capacity: n},
		} {
			a := alg.Compress(p)
			if a.Len() != n {
				t.Errorf("%s: kept %d points, want exactly %d", alg.Name(), a.Len(), n)
			}
			if err := a.Validate(); err != nil {
				t.Errorf("%s: invalid output: %v", alg.Name(), err)
			}
			if !a.IsVertexSubsetOf(p) {
				t.Errorf("%s: not a vertex subset", alg.Name())
			}
			if a[0] != p[0] || a[a.Len()-1] != p[p.Len()-1] {
				t.Errorf("%s: endpoints dropped", alg.Name())
			}
		}
	}
}

func TestBudgetLargerThanInput(t *testing.T) {
	p := evenLine(10)
	for _, alg := range []Algorithm{
		DouglasPeuckerN{N: 100}, TDTRN{N: 100}, SQUISH{Capacity: 100},
	} {
		a := alg.Compress(p)
		if a.Len() != p.Len() {
			t.Errorf("%s: kept %d of %d with oversized budget", alg.Name(), a.Len(), p.Len())
		}
	}
}

func TestBudgetValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { DouglasPeuckerN{N: 1}.Compress(nil) },
		func() { TDTRN{N: 0}.Compress(nil) },
		func() { SQUISH{Capacity: -3}.Compress(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

// The greedy budgeted top-down picks the same points the threshold version
// would keep: running TDTRN with the size of a TDTR result reproduces it on
// tie-free data.
func TestTDTRNMatchesThresholdRun(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 10; trial++ {
		p := randomTrack(rng, 150)
		th := TDTR{Threshold: 40}.Compress(p)
		budgeted := TDTRN{N: th.Len()}.Compress(p)
		if budgeted.Len() != th.Len() {
			t.Fatalf("lengths differ: %d vs %d", budgeted.Len(), th.Len())
		}
		// The retained sets coincide because greedy splitting by maximal
		// distance is exactly the order the threshold recursion cuts.
		for i := range th {
			if budgeted[i] != th[i] {
				t.Fatalf("trial %d: point %d differs: %v vs %v", trial, i, budgeted[i], th[i])
			}
		}
	}
}

// More budget means no worse synchronized error.
func TestBudgetMonotoneError(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	p := randomTrack(rng, 200)
	prevErr := 1e18
	for _, n := range []int{5, 10, 20, 40, 80, 160} {
		a := TDTRN{N: n}.Compress(p)
		e, err := sed.AvgError(p, a)
		if err != nil {
			t.Fatal(err)
		}
		if e > prevErr+1e-9 {
			t.Errorf("budget %d: error %.3f above smaller-budget error %.3f", n, e, prevErr)
		}
		prevErr = e
	}
}

// SQUISH, with the same point budget, should commit error within a small
// factor of the (near-optimal, offline) budgeted top-down.
func TestSQUISHCompetitiveWithOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	var squishErr, offlineErr float64
	for trial := 0; trial < 10; trial++ {
		p := randomTrack(rng, 300)
		const n = 30
		sq := SQUISH{Capacity: n}.Compress(p)
		off := TDTRN{N: n}.Compress(p)
		es, err := sed.AvgError(p, sq)
		if err != nil {
			t.Fatal(err)
		}
		eo, err := sed.AvgError(p, off)
		if err != nil {
			t.Fatal(err)
		}
		squishErr += es
		offlineErr += eo
	}
	if squishErr > 5*offlineErr {
		t.Errorf("SQUISH error %.1f not competitive with offline %.1f", squishErr, offlineErr)
	}
}

// SQUISH processes an arbitrarily long stream with an O(capacity) buffer;
// the retained sketch spreads over the whole trajectory rather than
// clustering at either end.
func TestSQUISHSketchCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	p := randomTrack(rng, 2000)
	a := SQUISH{Capacity: 50}.Compress(p)
	if a.Len() != 50 {
		t.Fatalf("kept %d", a.Len())
	}
	// At least one retained point in every third of the journey.
	third := p.Duration() / 3
	counts := [3]int{}
	for _, s := range a {
		idx := int((s.T - p.StartTime()) / third)
		if idx > 2 {
			idx = 2
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("no retained points in third %d: %v", i, counts)
		}
	}
}
