package compress

import (
	"strings"
	"testing"
)

func TestParseValidSpecs(t *testing.T) {
	tests := []struct {
		spec     string
		wantName string
	}{
		{"uniform:3", "Uniform(3)"},
		{"radial:25", "Radial(25)"},
		{"angular:0.3", "Angular(0.3)"},
		{"dr:40", "DeadReckoning(40)"},
		{"ndp:30", "NDP"},
		{"ndphull:30", "NDP-hull"},
		{"nopw:30", "NOPW"},
		{"bopw:30", "BOPW"},
		{"tdtr:30", "TD-TR"},
		{"opwtr:30", "OPW-TR"},
		{"opwsp:30:5", "OPW-SP(5m/s)"},
		{"tdsp:30:5", "TD-SP(5m/s)"},
		{"bu:30", "BU"},
		{"butr:30", "BU-TR"},
		{"sw:30:20", "SW(20)"},
		{"swtr:30:20", "SW-TR(20)"},
		{"ndpn:40", "NDP-N(40)"},
		{"tdtrn:40", "TD-TR-N(40)"},
		{"squish:40", "SQUISH(40)"},
		{"TDTR:30", "TD-TR"},       // case-insensitive
		{" opwtr : 30 ", "OPW-TR"}, // whitespace-tolerant
	}
	for _, tc := range tests {
		alg, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if alg.Name() != tc.wantName {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, alg.Name(), tc.wantName)
		}
	}
}

func TestParseInvalidSpecs(t *testing.T) {
	bad := []string{
		"",
		"unknown:5",
		"tdtr",        // missing threshold
		"tdtr:abc",    // non-numeric
		"tdtr:-5",     // negative
		"tdtr:30:5",   // too many args
		"opwsp:30",    // missing speed
		"opwsp:30:0",  // zero speed
		"opwsp:30:-1", // negative speed
		"uniform:0",   // stride < 1
		"uniform:2.5", // non-integer stride
		"sw:30",       // missing window
		"sw:30:2",     // window < 3
		"swtr:30:2.5", // non-integer window
		"butr:-1",     // negative threshold
		"squish:1",    // budget < 2
		"tdtrn:10.5",  // non-integer budget
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		} else if !strings.Contains(err.Error(), "compress:") {
			t.Errorf("Parse(%q) error %q lacks package prefix", spec, err)
		}
	}
}

// Every spec produced by Parse must run end to end.
func TestParsedAlgorithmsRun(t *testing.T) {
	p := evenLine(30)
	for _, spec := range []string{
		"uniform:2", "radial:15", "angular:0.2", "dr:10",
		"ndp:10", "ndphull:10", "nopw:10", "bopw:10",
		"tdtr:10", "opwtr:10", "opwsp:10:5", "tdsp:10:5",
		"bu:10", "butr:10", "sw:10:8", "swtr:10:8",
	} {
		alg, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		a := alg.Compress(p)
		if err := a.Validate(); err != nil {
			t.Errorf("%s output invalid: %v", alg.Name(), err)
		}
	}
}
