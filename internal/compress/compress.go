// Package compress implements the trajectory compression algorithms studied
// and proposed by the paper, all as pure batch functions over immutable
// trajectories (online/streaming counterparts live in internal/stream):
//
//   - Simple sequential baselines (§2): Uniform (every i-th point, Tobler),
//     Radial (Euclidean neighbour elimination) and Angular (Jenks' angular
//     change criterion).
//   - Line-generalization algorithms (§2.1–2.2): DouglasPeucker (the paper's
//     NDP), its O(N log N) path-hull variant DouglasPeuckerHull
//     (Hershberger–Snoeyink), and the opening-window algorithms NOPW and
//     BOPW.
//   - The paper's time-ratio class (§3.2): TDTR and OPWTR, which replace the
//     perpendicular distance with the synchronized (time-ratio) distance of
//     internal/sed.
//   - The paper's spatiotemporal class (§3.3): OPWSP (the pseudocode
//     algorithm SPT) and TDSP, which add a speed-difference threshold.
//   - DeadReckoning, an online baseline from the follow-on literature.
//   - The one-pass error-bounded family from the follow-on literature:
//     OPERB (perpendicular distance, arXiv:1702.05597) and CISED-S/CISED-W
//     (synchronous Euclidean distance, arXiv:1801.05360), which process
//     each point exactly once with O(1) memory.
//
// With a single exception, every algorithm returns a subsequence of the
// input samples: points are only ever discarded, never moved or invented,
// exactly as the paper's error derivation assumes ("we never invented new
// data points, let alone time stamps", §4.2). The exception is CISED-W,
// a weak simplification that synthesizes window-closing joints (at input
// timestamps, never inventing time stamps); such algorithms advertise
// themselves via the WeakSimplifier interface so callers that rely on the
// subsequence property can detect them with IsWeak.
package compress

import (
	"fmt"

	"repro/internal/trajectory"
)

// Algorithm is a batch trajectory compressor.
type Algorithm interface {
	// Name returns a short identifier such as "TD-TR" or "OPW-SP(5)".
	Name() string
	// Compress returns a compressed copy of p. The result is always a
	// subsequence of p's samples, retains p's first sample, and is never
	// longer than p. Implementations must not modify p.
	Compress(p trajectory.Trajectory) trajectory.Trajectory
}

// WeakSimplifier is implemented by algorithms whose output is not a vertex
// subsequence of the input: weak simplifications may synthesize new points
// (always at input timestamps). Everything else about the Algorithm
// contract — first sample retained, never longer than the input, input
// never modified — still holds.
type WeakSimplifier interface {
	// WeakSimplification reports whether the algorithm may emit
	// synthesized points.
	WeakSimplification() bool
}

// IsWeak reports whether a is a weak simplification (see WeakSimplifier).
func IsWeak(a Algorithm) bool {
	w, ok := a.(WeakSimplifier)
	return ok && w.WeakSimplification()
}

// Rate returns the compression rate achieved by reducing a trajectory of
// origLen points to compLen points, as a percentage of points removed —
// the quantity on the paper's "Compression (percent)" axes.
// It returns 0 for the degenerate empty input (origLen 0), so the result
// is always finite.
func Rate(origLen, compLen int) float64 {
	if origLen == 0 {
		return 0
	}
	return 100 * float64(origLen-compLen) / float64(origLen)
}

// small returns p unchanged when it is too short to compress (fewer than 3
// samples); ok reports whether that shortcut applies.
func small(p trajectory.Trajectory) (trajectory.Trajectory, bool) {
	if p.Len() < 3 {
		return p, true
	}
	return nil, false
}

func validateDistance(name string, threshold float64) {
	if threshold < 0 {
		panic(fmt.Sprintf("compress: %s: negative distance threshold %v", name, threshold))
	}
}
