package compress

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds an Algorithm from a compact textual spec, as used by the
// command-line tools:
//
//	uniform:K            keep every K-th point
//	radial:D             neighbour elimination, min spacing D metres
//	angular:A            Jenks criterion, min turn angle A radians
//	dr:D                 dead reckoning, deviation D metres
//	ndp:D                Douglas-Peucker, perpendicular tolerance D metres
//	ndphull:D            hull-accelerated Douglas-Peucker
//	nopw:D               normal opening window
//	bopw:D               before opening window
//	tdtr:D               top-down time ratio
//	opwtr:D              opening-window time ratio
//	opwsp:D:V            opening-window spatiotemporal, speed tolerance V m/s
//	tdsp:D:V             top-down spatiotemporal
//	bu:D                 bottom-up, perpendicular tolerance D metres
//	butr:D               bottom-up time ratio
//	sw:D:W               sliding window: Douglas-Peucker in windows of W points
//	swtr:D:W             sliding window time ratio
//	ndpn:N               Douglas-Peucker to a budget of N points
//	tdtrn:N              top-down time ratio to a budget of N points
//	squish:N             SQUISH online sketch of N points
//	vw:A                 Visvalingam–Whyatt, effective area tolerance A m²
//	operb:D              one-pass error bounded, perpendicular tolerance D
//	ciseds:D             one-pass strong SED simplification, tolerance D
//	cisedw:D             one-pass weak SED simplification (synthesizes
//	                     joints; see WeakSimplifier), tolerance D
//
// Algorithm names are case-insensitive.
func Parse(spec string) (Algorithm, error) {
	parts := strings.Split(spec, ":")
	name := strings.ToLower(strings.TrimSpace(parts[0]))
	args := parts[1:]

	num := func(i int) (float64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("compress: spec %q: missing argument %d for %s", spec, i+1, name)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(args[i]), 64)
		if err != nil {
			return 0, fmt.Errorf("compress: spec %q: argument %d: %w", spec, i+1, err)
		}
		return v, nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("compress: spec %q: %s takes %d argument(s), got %d", spec, name, n, len(args))
		}
		return nil
	}

	switch name {
	case "uniform":
		if err := need(1); err != nil {
			return nil, err
		}
		k, err := num(0)
		if err != nil {
			return nil, err
		}
		//lint:allow floatcmp integrality check on a parsed numeric flag
		if k < 1 || k != float64(int(k)) {
			return nil, fmt.Errorf("compress: spec %q: stride must be a positive integer", spec)
		}
		return Uniform{K: int(k)}, nil
	case "radial", "angular", "dr", "ndp", "ndphull", "nopw", "bopw", "tdtr", "opwtr", "bu", "butr", "vw",
		"operb", "ciseds", "cisedw":
		if err := need(1); err != nil {
			return nil, err
		}
		d, err := num(0)
		if err != nil {
			return nil, err
		}
		if d < 0 {
			return nil, fmt.Errorf("compress: spec %q: negative threshold", spec)
		}
		switch name {
		case "radial":
			return Radial{Threshold: d}, nil
		case "angular":
			return Angular{AngleThreshold: d}, nil
		case "dr":
			return DeadReckoning{Threshold: d}, nil
		case "ndp":
			return DouglasPeucker{Threshold: d}, nil
		case "ndphull":
			return DouglasPeuckerHull{Threshold: d}, nil
		case "nopw":
			return NOPW{Threshold: d}, nil
		case "bopw":
			return BOPW{Threshold: d}, nil
		case "tdtr":
			return TDTR{Threshold: d}, nil
		case "bu":
			return BottomUp{Threshold: d}, nil
		case "butr":
			return BottomUpTR{Threshold: d}, nil
		case "vw":
			return Visvalingam{AreaThreshold: d}, nil
		case "operb":
			return OPERB{Threshold: d}, nil
		case "ciseds":
			return CISEDS{Threshold: d}, nil
		case "cisedw":
			return CISEDW{Threshold: d}, nil
		default:
			return OPWTR{Threshold: d}, nil
		}
	case "ndpn", "tdtrn", "squish":
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		//lint:allow floatcmp integrality check on a parsed numeric flag
		if n < 2 || n != float64(int(n)) {
			return nil, fmt.Errorf("compress: spec %q: point budget must be an integer ≥ 2", spec)
		}
		switch name {
		case "ndpn":
			return DouglasPeuckerN{N: int(n)}, nil
		case "tdtrn":
			return TDTRN{N: int(n)}, nil
		default:
			return SQUISH{Capacity: int(n)}, nil
		}
	case "sw", "swtr":
		if err := need(2); err != nil {
			return nil, err
		}
		d, err := num(0)
		if err != nil {
			return nil, err
		}
		w, err := num(1)
		if err != nil {
			return nil, err
		}
		//lint:allow floatcmp integrality check on a parsed numeric flag
		if d < 0 || w < 3 || w != float64(int(w)) {
			return nil, fmt.Errorf("compress: spec %q: need threshold ≥ 0 and integer window ≥ 3", spec)
		}
		if name == "sw" {
			return SlidingWindow{Threshold: d, Window: int(w)}, nil
		}
		return SlidingWindowTR{Threshold: d, Window: int(w)}, nil
	case "opwsp", "tdsp":
		if err := need(2); err != nil {
			return nil, err
		}
		d, err := num(0)
		if err != nil {
			return nil, err
		}
		v, err := num(1)
		if err != nil {
			return nil, err
		}
		if d < 0 || v <= 0 {
			return nil, fmt.Errorf("compress: spec %q: thresholds must be positive", spec)
		}
		if name == "opwsp" {
			return OPWSP{DistThreshold: d, SpeedThreshold: v}, nil
		}
		return TDSP{DistThreshold: d, SpeedThreshold: v}, nil
	default:
		return nil, fmt.Errorf("compress: unknown algorithm %q (see Parse docs for the supported set)", name)
	}
}
