package compress

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/trajectory"
)

// countingAlg counts Compress calls and observes peak concurrency.
type countingAlg struct {
	inner   Algorithm
	calls   *atomic.Int64
	active  *atomic.Int64
	peak    *atomic.Int64
	started chan struct{} // non-nil: signal each call start
	release chan struct{} // non-nil: block each call until closed
}

func (c countingAlg) Name() string { return "counting(" + c.inner.Name() + ")" }

func (c countingAlg) Compress(p trajectory.Trajectory) trajectory.Trajectory {
	c.calls.Add(1)
	if n := c.active.Add(1); true {
		for {
			old := c.peak.Load()
			if n <= old || c.peak.CompareAndSwap(old, n) {
				break
			}
		}
	}
	defer c.active.Add(-1)
	if c.started != nil {
		c.started <- struct{}{}
	}
	if c.release != nil {
		<-c.release
	}
	return c.inner.Compress(p)
}

func batchTracks(seed int64, n int) []trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]trajectory.Trajectory, n)
	for i := range ps {
		ps[i] = randomTrack(rng, 40+rng.Intn(80))
	}
	return ps
}

// The pool never runs more than Parallelism compressions at once.
func TestCompressAllBoundsParallelism(t *testing.T) {
	ps := batchTracks(7, 24)
	var calls, active, peak atomic.Int64
	alg := countingAlg{inner: TDTR{Threshold: 40}, calls: &calls, active: &active, peak: &peak}
	out, err := CompressAll(context.Background(), alg, BatchOptions{Parallelism: 3}, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ps) {
		t.Fatalf("got %d results, want %d", len(out), len(ps))
	}
	if calls.Load() != int64(len(ps)) {
		t.Fatalf("compress called %d times, want %d", calls.Load(), len(ps))
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds Parallelism 3", p)
	}
}

// Cancelling the context abandons undispatched work and reports ctx.Err().
func TestCompressAllCancellation(t *testing.T) {
	ps := batchTracks(11, 40)
	ctx, cancel := context.WithCancel(context.Background())
	var calls, active, peak atomic.Int64
	started := make(chan struct{}, len(ps))
	release := make(chan struct{})
	alg := countingAlg{
		inner: TDTR{Threshold: 40}, calls: &calls, active: &active, peak: &peak,
		started: started, release: release,
	}
	done := make(chan error, 1)
	go func() {
		_, err := CompressAll(ctx, alg, BatchOptions{Parallelism: 2}, ps)
		done <- err
	}()
	<-started // at least one compression in flight
	cancel()
	close(release)
	if err := <-done; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() >= int64(len(ps)) {
		t.Fatalf("all %d trajectories compressed despite cancellation", len(ps))
	}
}

// A pre-cancelled context also stops the serial (Parallelism 1) path.
func TestCompressAllCancelledSerial(t *testing.T) {
	ps := batchTracks(13, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompressAll(ctx, TDTR{Threshold: 40}, BatchOptions{Parallelism: 1}, ps); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A nil context behaves as context.Background().
func TestCompressAllNilContext(t *testing.T) {
	ps := batchTracks(17, 6)
	out, err := CompressAll(nil, OPWTR{Threshold: 30}, BatchOptions{Parallelism: 2}, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		want := (OPWTR{Threshold: 30}).Compress(p)
		if out[i].Len() != want.Len() {
			t.Fatalf("trajectory %d differs from serial result", i)
		}
	}
}
