package compress

import (
	"math"
	"testing"

	"repro/internal/trajectory"
)

// FuzzParse checks the spec parser never panics and that accepted specs
// yield runnable algorithms.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"tdtr:30", "opwsp:30:5", "sw:10:8", "uniform:3", "", "x", "tdtr:",
		"tdtr:1e309", "opwsp:30:5:7", ":::", "tdtr:-0", "sw:1:1e18",
	} {
		f.Add(seed)
	}
	p := evenLine(12)
	f.Fuzz(func(t *testing.T, spec string) {
		alg, err := Parse(spec)
		if err != nil {
			return
		}
		a := alg.Compress(p)
		if err := a.Validate(); err != nil {
			t.Fatalf("spec %q produced invalid output: %v", spec, err)
		}
		// Weak simplifications (cisedw) synthesize joints and are exempt
		// from the subsequence contract — by declaration, not silently.
		if !IsWeak(alg) && !a.IsVertexSubsetOf(p) {
			t.Fatalf("spec %q output not a subsequence", spec)
		}
	})
}

// FuzzCompressInvariants feeds fuzz-shaped trajectories through the
// threshold algorithms and checks the universal invariants.
func FuzzCompressInvariants(f *testing.F) {
	f.Add(int64(1), uint8(20), float64(30))
	f.Add(int64(7), uint8(3), float64(0))
	f.Add(int64(9), uint8(200), float64(1e6))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, eps float64) {
		if !(eps >= 0) || math.IsInf(eps, 0) || n < 3 {
			return
		}
		p := fuzzTrack(seed, int(n))
		for _, alg := range []Algorithm{
			DouglasPeucker{Threshold: eps},
			TDTR{Threshold: eps},
			NOPW{Threshold: eps},
			OPWTR{Threshold: eps},
			BottomUpTR{Threshold: eps},
			OPERB{Threshold: eps},
			CISEDS{Threshold: eps},
		} {
			a := alg.Compress(p)
			if err := a.Validate(); err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			if !a.IsVertexSubsetOf(p) {
				t.Fatalf("%s: not a subsequence", alg.Name())
			}
			if a[0] != p[0] || a[a.Len()-1] != p[p.Len()-1] {
				t.Fatalf("%s: endpoints dropped", alg.Name())
			}
		}
	})
}

// fuzzTrack derives a deterministic pseudo-random trajectory from a seed
// using a simple LCG (keeping the fuzz target self-contained).
func fuzzTrack(seed int64, n int) trajectory.Trajectory {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	p := make(trajectory.Trajectory, n)
	t, x, y := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		p[i] = trajectory.S(t, x, y)
		t += 0.1 + next()*20
		x += (next() - 0.5) * 500
		y += (next() - 0.5) * 500
	}
	return p
}
