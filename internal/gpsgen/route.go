package gpsgen

import (
	"repro/internal/geo"
)

// waypoint is one junction of a planned route.
type waypoint struct {
	pos   geo.Point
	speed float64 // target speed on the segment arriving at this waypoint, m/s
	stop  float64 // red-light waiting time at this waypoint in seconds; 0 = none
}

// grid directions: east, north, west, south.
var dirs = [4]geo.Point{{X: 1}, {Y: 1}, {X: -1}, {Y: -1}}

// route plans a junction-to-junction path on the road grid long enough to
// fill the requested duration with margin.
func (g *Generator) route(kind TripKind, duration float64) []waypoint {
	// expectLen estimates the distance actually driven (road speed reduced
	// by stops, turns and acceleration); Mixed road transitions are placed
	// relative to it. The plan itself extends to twice the distance the car
	// could cover at full rural speed so the drive never runs out of road.
	expectLen := duration * g.estimatedSpeed(kind)
	targetLen := 2 * duration * g.cfg.RuralSpeed

	// The trip drifts towards a random quadrant: two preferred directions
	// (e.g. east and north) produce the staircase-like routes of real car
	// trips, with displacement roughly half the travelled length.
	driftA := g.rng.Intn(4)
	driftB := (driftA + 1) % 4 // perpendicular neighbour

	wps := []waypoint{{pos: geo.Pt(0, 0)}}
	pos := geo.Pt(0, 0)
	dir := driftA
	var planned float64
	for i := 0; planned < targetLen; i++ {
		block, speed, urban := g.roadAt(kind, planned, expectLen)

		// Choose the next direction: mostly straight, otherwise turn —
		// preferring the drift directions but occasionally wandering. Rare
		// wander keeps displacement ≈ half the travelled length, the ratio
		// of the paper's Table 2.
		r := g.rng.Float64()
		switch {
		case r < g.cfg.StraightBias:
			// keep dir
		case r < g.cfg.StraightBias+(1-g.cfg.StraightBias)*0.82:
			// Turn towards one of the drift directions (never reversing).
			cand := driftA
			if g.rng.Intn(2) == 0 {
				cand = driftB
			}
			if cand != (dir+2)%4 {
				dir = cand
			}
		default:
			// Wander: any direction except straight back.
			for {
				cand := g.rng.Intn(4)
				if cand != (dir+2)%4 {
					dir = cand
					break
				}
			}
		}

		// Jitter the per-segment target speed ±12%.
		segSpeed := speed * (0.88 + 0.24*g.rng.Float64())

		pos = pos.Add(dirs[dir].Scale(block))
		//lint:allow floatstep variable-step route accumulator from 0: block lengths differ per segment, so index stepping cannot express it
		planned += block

		// Urban junctions carry traffic lights; rural junctions only rarely
		// force a halt (crossings, give-way situations).
		stopProb := g.cfg.StopProb
		if !urban {
			stopProb *= 0.2
		}
		stop := 0.0
		if g.rng.Float64() < stopProb {
			stop = g.cfg.StopMin + g.rng.Float64()*(g.cfg.StopMax-g.cfg.StopMin)
		}
		wps = append(wps, waypoint{pos: pos, speed: segSpeed, stop: stop})
	}
	return wps
}

// roadAt returns the block length, road speed and urban flag for the road at
// the given planned distance into the route; expectLen is the distance the
// car is expected to actually cover.
func (g *Generator) roadAt(kind TripKind, planned, expectLen float64) (block, speed float64, urban bool) {
	switch kind {
	case Urban:
		return g.cfg.UrbanBlock, g.cfg.UrbanSpeed, true
	case Rural:
		return g.cfg.RuralBlock, g.cfg.RuralSpeed, false
	case Pedestrian:
		// Footpath grid: short legs at walking pace; "urban" so that
		// junctions carry pause probability (window shopping, crossings).
		return 40, 1.4, true
	default: // Mixed: urban 30% — rural 40% — urban 30% of the expected drive
		frac := planned / expectLen
		if frac < 0.3 || frac > 0.7 {
			return g.cfg.UrbanBlock, g.cfg.UrbanSpeed, true
		}
		return g.cfg.RuralBlock, g.cfg.RuralSpeed, false
	}
}

// estimatedSpeed predicts the realized average speed of a trip kind,
// accounting for stops, turns and acceleration losses.
func (g *Generator) estimatedSpeed(kind TripKind) float64 {
	switch kind {
	case Urban:
		return g.cfg.UrbanSpeed * 0.62
	case Rural:
		return g.cfg.RuralSpeed * 0.85
	case Pedestrian:
		return 1.4 * 0.6
	default:
		return (g.cfg.UrbanSpeed*0.62*0.6 + g.cfg.RuralSpeed*0.85*0.4)
	}
}
