// Package gpsgen synthesizes car GPS trajectories with the characteristics
// that drive the paper's experimental results.
//
// The paper evaluated on 10 real trajectories "through a GPS mounted on a
// car, which travelled different roads in urban and rural areas" (Table 2:
// average duration 00:32:16, speed 40.85 km/h, length 19.95 km, displacement
// 10.58 km, ≈200 data points). That data is not available, so this package
// substitutes a deterministic simulator that reproduces the three properties
// the compression algorithms are sensitive to:
//
//  1. piecewise-linear road geometry with junctions and turns (a grid road
//     network with urban and rural block sizes);
//  2. strong speed variation over time — acceleration limits, slow-downs at
//     turns, and traffic-light stops — which is precisely what makes
//     perpendicular-distance methods commit large time-synchronized error;
//  3. GPS measurement noise (isotropic Gaussian) at a fixed sampling
//     interval.
//
// PaperDataset returns 10 trips whose aggregate statistics land near the
// paper's Table 2.
package gpsgen

import (
	"fmt"
	"math/rand"

	"repro/internal/trajectory"
)

// Config controls the simulator. Zero values are replaced by the defaults of
// DefaultConfig field-by-field; see New.
type Config struct {
	// SampleInterval is the GPS fix interval in seconds (paper example: 10).
	SampleInterval float64
	// NoiseSigma is the standard deviation of the isotropic Gaussian
	// position noise in metres (consumer GPS: a few metres). Zero selects
	// the default; pass a negative value for noise-free output.
	NoiseSigma float64
	// UrbanBlock and RuralBlock are road-grid block lengths in metres.
	UrbanBlock, RuralBlock float64
	// UrbanSpeed and RuralSpeed are road target speeds in m/s.
	UrbanSpeed, RuralSpeed float64
	// Accel is the acceleration/braking limit in m/s².
	Accel float64
	// TurnSpeed is the speed to which the car slows for a junction turn.
	TurnSpeed float64
	// StopProb is the probability of a red light at an urban junction.
	// Zero selects the default; pass a negative value for stop-free trips.
	StopProb float64
	// StopMin and StopMax bound red-light waiting time in seconds.
	StopMin, StopMax float64
	// StraightBias is the probability of continuing straight at a junction;
	// the remainder is split between left and right turns.
	StraightBias float64
}

// DefaultConfig returns the configuration used for the paper reproduction.
func DefaultConfig() Config {
	return Config{
		SampleInterval: 10,
		NoiseSigma:     4,
		UrbanBlock:     300,
		RuralBlock:     1200,
		UrbanSpeed:     13.9, // 50 km/h
		RuralSpeed:     16.7, // 60 km/h
		Accel:          1.8,
		TurnSpeed:      5.5,
		StopProb:       0.35,
		StopMin:        8,
		StopMax:        45,
		StraightBias:   0.62,
	}
}

// TripKind selects the road environment of a trip.
type TripKind int

const (
	// Urban trips run on the small-block grid at city speeds with lights.
	Urban TripKind = iota
	// Rural trips run on the large-block grid at higher speeds, few stops.
	Rural
	// Mixed trips start urban, cross to rural roads, and return to urban —
	// the paper's "different roads in urban and rural areas".
	Mixed
	// Pedestrian trips walk the fine footpath grid at walking pace with
	// frequent pauses — the paper's "pedestrians in shopping malls,
	// airports or railway stations".
	Pedestrian
)

// String implements fmt.Stringer.
func (k TripKind) String() string {
	switch k {
	case Urban:
		return "urban"
	case Rural:
		return "rural"
	case Mixed:
		return "mixed"
	case Pedestrian:
		return "pedestrian"
	default:
		return fmt.Sprintf("TripKind(%d)", int(k))
	}
}

// Generator produces synthetic trips. It is deterministic for a given seed
// and sequence of calls. Not safe for concurrent use.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// New returns a Generator with the given seed. Zero-valued Config fields are
// filled from DefaultConfig.
func New(seed int64, cfg Config) *Generator {
	def := DefaultConfig()
	fill := func(v *float64, d float64) {
		//lint:allow floatcmp zero-value config field selects the default
		if *v == 0 {
			*v = d
		}
	}
	fill(&cfg.SampleInterval, def.SampleInterval)
	fill(&cfg.NoiseSigma, def.NoiseSigma)
	fill(&cfg.UrbanBlock, def.UrbanBlock)
	fill(&cfg.RuralBlock, def.RuralBlock)
	fill(&cfg.UrbanSpeed, def.UrbanSpeed)
	fill(&cfg.RuralSpeed, def.RuralSpeed)
	fill(&cfg.Accel, def.Accel)
	fill(&cfg.TurnSpeed, def.TurnSpeed)
	fill(&cfg.StopProb, def.StopProb)
	fill(&cfg.StopMin, def.StopMin)
	fill(&cfg.StopMax, def.StopMax)
	fill(&cfg.StraightBias, def.StraightBias)
	// Negative values explicitly request zero (the zero value itself means
	// "use the default").
	if cfg.NoiseSigma < 0 {
		cfg.NoiseSigma = 0
	}
	if cfg.StopProb < 0 {
		cfg.StopProb = 0
	}
	if cfg.SampleInterval <= 0 || cfg.Accel <= 0 {
		panic(fmt.Sprintf("gpsgen: invalid config %+v", cfg))
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// Trip simulates one car trip of approximately the given duration (seconds)
// and returns its sampled, noisy trajectory. The returned trajectory always
// validates and its duration is within one sampling interval of the target.
func (g *Generator) Trip(kind TripKind, duration float64) trajectory.Trajectory {
	if duration <= 0 {
		panic(fmt.Sprintf("gpsgen: non-positive trip duration %v", duration))
	}
	route := g.route(kind, duration)
	return g.drive(route, duration)
}

// Dataset generates n trips with durations drawn from a normal distribution
// (meanDur, sdDur seconds), clamped to at least 5 minutes, cycling trip
// kinds urban → mixed → rural.
func (g *Generator) Dataset(n int, meanDur, sdDur float64) []trajectory.Trajectory {
	kinds := []TripKind{Urban, Mixed, Rural}
	out := make([]trajectory.Trajectory, n)
	for i := range out {
		d := meanDur + g.rng.NormFloat64()*sdDur
		if d < 300 {
			d = 300
		}
		out[i] = g.Trip(kinds[i%len(kinds)], d)
	}
	return out
}

// Fleet simulates n simultaneous vehicles with depots scattered uniformly
// over a spread × spread metre area and staggered departures (up to 5
// minutes), cycling trip kinds. The result is a realistic multi-object
// workload for stores, servers and encounter analysis.
func (g *Generator) Fleet(n int, spread, duration float64) []trajectory.Trajectory {
	if n <= 0 || spread < 0 || duration <= 0 {
		panic(fmt.Sprintf("gpsgen: invalid fleet parameters (n %d, spread %v, duration %v)", n, spread, duration))
	}
	kinds := []TripKind{Urban, Mixed, Rural}
	out := make([]trajectory.Trajectory, n)
	for i := range out {
		trip := g.Trip(kinds[i%len(kinds)], duration)
		dx := (g.rng.Float64() - 0.5) * spread
		dy := (g.rng.Float64() - 0.5) * spread
		dt := g.rng.Float64() * 300
		out[i] = trip.Shift(dt, dx, dy)
	}
	return out
}

// Commute simulates days of home–work–home travel for one object: each day
// holds a morning trip and, after a workday gap, the same route driven back
// (the evening leg reverses the morning geometry and gets fresh noise via
// the sampled positions being traversed in reverse). Days are 24 h apart;
// the result is one trajectory with large sampling gaps between legs, as a
// real tracker would record — split it with Trajectory.SplitGaps for
// per-leg analysis.
func (g *Generator) Commute(days int, kind TripKind, tripDuration float64) trajectory.Trajectory {
	if days <= 0 {
		panic(fmt.Sprintf("gpsgen: non-positive day count %d", days))
	}
	const (
		morningStart = 8 * 3600.0
		eveningStart = 17 * 3600.0
		day          = 24 * 3600.0
	)
	morning := g.Trip(kind, tripDuration)
	evening := reverseTrajectory(morning)

	var out trajectory.Trajectory
	for d := 0; d < days; d++ {
		base := float64(d) * day
		jitterM := g.rng.Float64() * 900
		jitterE := g.rng.Float64() * 900
		out = append(out, morning.Shift(base+morningStart+jitterM, 0, 0)...)
		out = append(out, evening.Shift(base+eveningStart+jitterE, 0, 0)...)
	}
	return out
}

// reverseTrajectory flips a trajectory in time: the object retraces its
// path, visiting positions in reverse order with the same inter-sample
// durations, re-anchored at t=0.
func reverseTrajectory(p trajectory.Trajectory) trajectory.Trajectory {
	n := p.Len()
	out := make(trajectory.Trajectory, n)
	end := p[n-1].T
	for i := 0; i < n; i++ {
		src := p[n-1-i]
		out[i] = trajectory.Sample{T: end - src.T, X: src.X, Y: src.Y}
	}
	return out
}

// PaperSeed is the fixed seed behind PaperDataset.
const PaperSeed = 2004

// PaperDataset returns the 10-trajectory stand-in for the paper's Table 2
// data: fixed seed, durations scattered around 32 minutes with a 14-minute
// spread, urban/mixed/rural mix. Every call returns the same data.
func PaperDataset() []trajectory.Trajectory {
	g := New(PaperSeed, Config{})
	return g.Dataset(10, 1936, 750)
}
