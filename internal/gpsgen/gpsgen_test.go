package gpsgen

import (
	"testing"

	"repro/internal/trajectory"
)

func TestTripProducesValidTrajectory(t *testing.T) {
	g := New(1, Config{})
	for _, kind := range []TripKind{Urban, Rural, Mixed} {
		p := g.Trip(kind, 1800)
		if err := p.Validate(); err != nil {
			t.Fatalf("%v trip invalid: %v", kind, err)
		}
		if p.Len() < 150 {
			t.Errorf("%v trip has only %d points for 1800 s at 10 s sampling", kind, p.Len())
		}
		if d := p.Duration(); d < 1700 || d > 1810 {
			t.Errorf("%v trip duration %v, want ≈1800", kind, d)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(7, Config{}).Trip(Urban, 900)
	b := New(7, Config{}).Trip(Urban, 900)
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different lengths: %d vs %d", a.Len(), b.Len())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := New(8, Config{}).Trip(Urban, 900)
	same := c.Len() == a.Len()
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical trips")
	}
}

func TestPaperDatasetStable(t *testing.T) {
	d1 := PaperDataset()
	d2 := PaperDataset()
	if len(d1) != 10 || len(d2) != 10 {
		t.Fatalf("PaperDataset size %d / %d, want 10", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].Len() != d2[i].Len() {
			t.Fatalf("trajectory %d differs between calls", i)
		}
	}
}

// The generated dataset must land near the paper's Table 2 statistics: this
// is the calibration contract of the substitution documented in DESIGN.md §4.
func TestPaperDatasetMatchesTable2(t *testing.T) {
	ds := trajectory.SummarizeDataset(PaperDataset())

	// Paper: 00:32:16 = 1936 s. Accept ±20%.
	if ds.Mean.Duration < 1936*0.8 || ds.Mean.Duration > 1936*1.2 {
		t.Errorf("mean duration %.0f s, want ≈1936 s", ds.Mean.Duration)
	}
	// Paper: 40.85 km/h = 11.35 m/s. Accept ±25%.
	if kmh := ds.Mean.AvgSpeed * 3.6; kmh < 30 || kmh > 51 {
		t.Errorf("mean speed %.2f km/h, want ≈40.85 km/h", kmh)
	}
	// Paper: 19.95 km. Accept ±35%.
	if km := ds.Mean.Length / 1000; km < 13 || km > 27 {
		t.Errorf("mean length %.2f km, want ≈19.95 km", km)
	}
	// Paper: displacement 10.58 km — about half the length. Accept a
	// displacement/length ratio between 0.30 and 0.75.
	ratio := ds.Mean.Displacement / ds.Mean.Length
	if ratio < 0.30 || ratio > 0.75 {
		t.Errorf("displacement/length ratio %.2f, want ≈0.53", ratio)
	}
	// Paper: ≈200 points with sd ≈100.
	if ds.Mean.NumPoints < 140 || ds.Mean.NumPoints > 260 {
		t.Errorf("mean points %d, want ≈200", ds.Mean.NumPoints)
	}
	if ds.StdDev.Duration < 200 {
		t.Errorf("duration spread %.0f s too small, want several minutes", ds.StdDev.Duration)
	}
}

// Speed must genuinely vary within a trip (stops and sprints): otherwise the
// paper's central result — perpendicular methods committing large
// synchronized error — cannot reproduce.
func TestTripSpeedVariation(t *testing.T) {
	g := New(3, Config{})
	p := g.Trip(Urban, 1800)
	var stopped, moving int
	for i := 0; i+1 < p.Len(); i++ {
		v := p.SegmentSpeed(i)
		if v < 1.5 {
			stopped++
		}
		if v > 8 {
			moving++
		}
	}
	if stopped == 0 {
		t.Error("urban trip contains no stop intervals")
	}
	if moving == 0 {
		t.Error("urban trip contains no cruising intervals")
	}
}

// Rural trips are faster than urban trips on average.
func TestRuralFasterThanUrban(t *testing.T) {
	g := New(5, Config{})
	var urban, rural float64
	for i := 0; i < 3; i++ {
		urban += g.Trip(Urban, 1200).AvgSpeed()
		rural += g.Trip(Rural, 1200).AvgSpeed()
	}
	if rural <= urban {
		t.Errorf("rural avg speed %.2f not above urban %.2f", rural/3, urban/3)
	}
}

func TestTripPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-positive duration")
		}
	}()
	New(1, Config{}).Trip(Urban, 0)
}

func TestTripKindString(t *testing.T) {
	if Urban.String() != "urban" || Rural.String() != "rural" || Mixed.String() != "mixed" || Pedestrian.String() != "pedestrian" {
		t.Error("TripKind strings wrong")
	}
	if TripKind(42).String() == "" {
		t.Error("unknown TripKind has empty string")
	}
}

func TestPedestrianTrip(t *testing.T) {
	g := New(9, Config{NoiseSigma: 2})
	p := g.Trip(Pedestrian, 1800)
	if err := p.Validate(); err != nil {
		t.Fatalf("pedestrian trip invalid: %v", err)
	}
	// Walking pace: mean speed well below driving, above standstill.
	v := p.AvgSpeed()
	if v < 0.2 || v > 1.6 {
		t.Errorf("pedestrian avg speed %.2f m/s, want walking pace", v)
	}
	// Short legs: the bounding box stays within a couple of kilometres.
	b := p.Bounds()
	if b.Width() > 3000 || b.Height() > 3000 {
		t.Errorf("pedestrian trip spans %v × %v m", b.Width(), b.Height())
	}
}

func TestNoiseFreeTrips(t *testing.T) {
	g := New(14, Config{NoiseSigma: -1})
	p := g.Trip(Urban, 600)
	// Without noise, consecutive fixes during a red-light stop coincide
	// exactly in space (the car is pinned to the stop line).
	identical := 0
	for i := 0; i+1 < p.Len(); i++ {
		if p[i].Pos().Equal(p[i+1].Pos()) {
			identical++
		}
	}
	if identical == 0 {
		t.Error("noise-free trip has no exactly-stationary fixes at stops")
	}
	// And stop-free trips never halt.
	g2 := New(14, Config{StopProb: -1})
	q := g2.Trip(Urban, 600)
	for i := 0; i+1 < q.Len(); i++ {
		if q.SegmentSpeed(i) < 0.05 {
			t.Errorf("stop-free trip stalls at segment %d", i)
			break
		}
	}
}

func TestFleet(t *testing.T) {
	g := New(13, Config{})
	fleet := g.Fleet(9, 8000, 900)
	if len(fleet) != 9 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	starts := map[[2]int]bool{}
	for i, p := range fleet {
		if err := p.Validate(); err != nil {
			t.Fatalf("vehicle %d invalid: %v", i, err)
		}
		if d := p.Duration(); d < 800 || d > 910 {
			t.Errorf("vehicle %d duration %v", i, d)
		}
		starts[[2]int{int(p[0].X / 1000), int(p[0].Y / 1000)}] = true
	}
	// Depots are scattered: several distinct kilometre cells.
	if len(starts) < 4 {
		t.Errorf("depots clustered in %d cells", len(starts))
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid fleet parameters accepted")
		}
	}()
	g.Fleet(0, 100, 100)
}

func TestCommute(t *testing.T) {
	g := New(15, Config{})
	p := g.Commute(3, Urban, 1800)
	if err := p.Validate(); err != nil {
		t.Fatalf("commute invalid: %v", err)
	}
	legs := p.SplitGaps(3600)
	if len(legs) != 6 {
		t.Fatalf("3-day commute split into %d legs, want 6", len(legs))
	}
	for d := 0; d < 3; d++ {
		morning, evening := legs[2*d], legs[2*d+1]
		// The evening leg returns home: its end is the morning's start.
		home := morning[0].Pos()
		back := evening[evening.Len()-1].Pos()
		if home.Dist(back) > 1e-6 {
			t.Errorf("day %d: evening ends %.1f m from home", d, home.Dist(back))
		}
		// And it starts where the morning ended (work).
		work := morning[morning.Len()-1].Pos()
		if work.Dist(evening[0].Pos()) > 1e-6 {
			t.Errorf("day %d: evening does not start at work", d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive day count accepted")
		}
	}()
	g.Commute(0, Urban, 600)
}

func TestConfigDefaults(t *testing.T) {
	g := New(1, Config{NoiseSigma: 2.5})
	cfg := g.Config()
	if cfg.NoiseSigma != 2.5 {
		t.Errorf("explicit NoiseSigma overridden: %v", cfg.NoiseSigma)
	}
	if cfg.SampleInterval != DefaultConfig().SampleInterval {
		t.Errorf("default SampleInterval not applied: %v", cfg.SampleInterval)
	}
}
