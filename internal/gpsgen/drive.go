package gpsgen

import (
	"math"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// simulation time step in seconds; fine enough that acceleration-limited
// kinematics are smooth relative to the GPS sampling interval.
const simStep = 0.2

// drive runs the kinematic car model along the planned route for the given
// duration and returns the sampled, noisy trajectory.
func (g *Generator) drive(route []waypoint, duration float64) trajectory.Trajectory {
	cfg := g.cfg
	b := trajectory.NewBuilder(int(duration/cfg.SampleInterval) + 2)

	seg := 0          // current segment: route[seg] → route[seg+1]
	s := 0.0          // distance travelled along the current segment
	v := 0.0          // current speed
	waiting := 0.0    // remaining red-light wait
	t := 0.0          // simulation clock
	nextSample := 0.0 // next GPS fix time

	segLen := func() float64 { return route[seg+1].pos.Dist(route[seg].pos) }
	position := func() geo.Point {
		a, c := route[seg].pos, route[seg+1].pos
		return a.Lerp(c, s/segLen())
	}
	// endSpeed returns the speed the car must reach by the end of the
	// current segment: zero for a red light, TurnSpeed for a direction
	// change, otherwise the next segment's own target (no constraint felt
	// if it is faster).
	endSpeed := func() float64 {
		if route[seg+1].stop > 0 {
			return 0
		}
		if seg+2 >= len(route) {
			return 0 // glide to a stop at the end of the plan
		}
		if turnsAt(route, seg+1) {
			return cfg.TurnSpeed
		}
		return route[seg+2].speed
	}

	sample := func() {
		p := position()
		fix := trajectory.Sample{
			T: t,
			X: p.X + g.rng.NormFloat64()*cfg.NoiseSigma,
			Y: p.Y + g.rng.NormFloat64()*cfg.NoiseSigma,
		}
		// Builder enforces the trajectory invariants; simulation times
		// strictly increase so this cannot fail.
		if err := b.Append(fix); err != nil {
			panic("gpsgen: internal: " + err.Error())
		}
	}

	for t <= duration && seg+1 < len(route) {
		if t >= nextSample {
			sample()
			nextSample += cfg.SampleInterval
		}
		if waiting > 0 {
			waiting -= simStep
			//lint:allow floatstep simulation integrator from t=0: magnitudes stay small, so accumulation is benign
			t += simStep
			continue
		}

		// Acceleration-limited speed control with braking distance for the
		// segment-end constraint: v ≤ √(v_end² + 2·a·d_remaining). A small
		// creep floor lets the car roll across the stop line instead of
		// asymptotically approaching it; the stop handling below then pins
		// it for the waiting time.
		target := route[seg+1].speed
		rem := segLen() - s
		ve := endSpeed()
		allowed := math.Sqrt(ve*ve + 2*cfg.Accel*rem)
		v = math.Min(v+cfg.Accel*simStep, math.Min(target, allowed))
		//lint:allow floatcmp degenerate-case guard: endSpeed is exactly 0 only at a planned stop waypoint
		if ve == 0 && v < 0.5 {
			v = 0.5
		}

		s += v * simStep
		if s >= segLen() {
			s -= segLen()
			if route[seg+1].stop > 0 {
				waiting = route[seg+1].stop
				v = 0
				s = 0
			}
			seg++
			if seg+1 >= len(route) {
				break
			}
			if s >= segLen() {
				s = segLen() * 0.999 // degenerate carry-over guard
			}
		}
		//lint:allow floatstep simulation integrator from t=0: magnitudes stay small, so accumulation is benign
		t += simStep
	}
	return b.Trajectory()
}

// turnsAt reports whether the route changes direction at waypoint i.
func turnsAt(route []waypoint, i int) bool {
	if i <= 0 || i+1 >= len(route) {
		return false
	}
	in := route[i].pos.Sub(route[i-1].pos)
	out := route[i+1].pos.Sub(route[i].pos)
	//lint:allow floatcmp exact collinearity test on exact grid waypoint coordinates
	return in.Cross(out) != 0 || in.Dot(out) < 0
}
