package ciyaml

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return doc
}

func TestParseScalarAndNesting(t *testing.T) {
	doc := mustParse(t, `
name: demo
on:
  push:
    branches: [main, "release"]
jobs:
  build:
    runs-on: ubuntu-latest
    steps:
      - uses: actions/checkout@v4
      - name: go
        run: |
          go build ./...
          go test ./...
`)
	if got := doc.Get("name").Str(); got != "demo" {
		t.Errorf("name = %q, want demo", got)
	}
	branches := doc.Get("on").Get("push").Get("branches")
	if branches == nil || branches.Kind != SeqNode || len(branches.Seq) != 2 {
		t.Fatalf("branches = %+v, want 2-element seq", branches)
	}
	if branches.Seq[1].Str() != "release" {
		t.Errorf("quoted flow element = %q, want release", branches.Seq[1].Str())
	}
	steps := doc.Get("jobs").Get("build").Get("steps")
	if len(steps.Seq) != 2 {
		t.Fatalf("steps = %d, want 2", len(steps.Seq))
	}
	if got := steps.Seq[0].Get("uses").Str(); got != "actions/checkout@v4" {
		t.Errorf("step 0 uses = %q", got)
	}
	run := steps.Seq[1].Get("run").Str()
	if run != "go build ./...\ngo test ./...\n" {
		t.Errorf("literal block = %q", run)
	}
}

func TestParseSequenceItemScalars(t *testing.T) {
	doc := mustParse(t, "xs:\n  - one\n  - 127.0.0.1:0\n")
	xs := doc.Get("xs")
	if len(xs.Seq) != 2 {
		t.Fatalf("len = %d, want 2", len(xs.Seq))
	}
	// "127.0.0.1:0" contains a colon but is not a mapping key.
	if got := xs.Seq[1].Str(); got != "127.0.0.1:0" {
		t.Errorf("scalar item = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"tab indent":     "a:\n\tb: 1\n",
		"duplicate key":  "a: 1\na: 2\n",
		"root sequence":  "- a\n- b\n",
		"flow mapping":   "a: {b: 1}\n",
		"anchor":         "a: &x 1\n",
		"bad indent":     "a:\n    b: 1\n  c: 2\n",
		"unclosed flow":  "a: [1, 2\n",
		"missing colon":  "just words\n",
		"empty literal":  "a: |\nb: 1\n",
		"seq in map":     "a: 1\n- b\n",
		"empty seq item": "xs:\n  -\n",
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: Parse accepted invalid input", name)
		}
	}
}

func TestCheckWorkflowCatchesDefects(t *testing.T) {
	cases := map[string]string{
		"no name":       "on: push\njobs:\n  a:\n    runs-on: x\n    steps:\n      - run: true\n",
		"no triggers":   "name: x\njobs:\n  a:\n    runs-on: x\n    steps:\n      - run: true\n",
		"bad trigger":   "name: x\non: pushh\njobs:\n  a:\n    runs-on: x\n    steps:\n      - run: true\n",
		"no jobs":       "name: x\non: push\njobs:\n",
		"no runs-on":    "name: x\non: push\njobs:\n  a:\n    steps:\n      - run: true\n",
		"no steps":      "name: x\non: push\njobs:\n  a:\n    runs-on: x\n",
		"bare step":     "name: x\non: push\njobs:\n  a:\n    runs-on: x\n    steps:\n      - name: hm\n",
		"unpinned uses": "name: x\non: push\njobs:\n  a:\n    runs-on: x\n    steps:\n      - uses: actions/checkout\n",
		"empty matrix":  "name: x\non: push\njobs:\n  a:\n    runs-on: x\n    strategy:\n      fail-fast: false\n    steps:\n      - run: true\n",
		"uses plus run": "name: x\non: push\njobs:\n  a:\n    runs-on: x\n    steps:\n      - uses: a/b@v1\n        run: true\n",
	}
	for name, src := range cases {
		doc := mustParse(t, src)
		if probs := CheckWorkflow(doc); len(probs) == 0 {
			t.Errorf("%s: CheckWorkflow found no problems", name)
		}
	}
}

// repoRoot walks up from the package directory to the directory holding
// go.mod, so the test finds the real workflow file regardless of cwd.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}

// TestRepoWorkflowsValid is the point of this package: every committed
// workflow parses, passes the structural checks, and only references repo
// scripts that actually exist.
func TestRepoWorkflowsValid(t *testing.T) {
	root := repoRoot(t)
	pattern := filepath.Join(root, ".github", "workflows", "*.yml")
	files, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no workflow files match %s", pattern)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(f), err)
			continue
		}
		for _, p := range CheckWorkflow(doc) {
			t.Errorf("%s: %s", filepath.Base(f), p)
		}
		for _, ref := range ScriptRefs(doc) {
			if _, err := os.Stat(filepath.Join(root, ref)); err != nil {
				t.Errorf("%s: references missing script %s", filepath.Base(f), ref)
			}
		}
	}
}

// TestCIScriptsExerciseColdTier pins the cold-tier coverage of the CI
// entry-point scripts: the bench harness must run the server with a sealed
// tier and run the hot/cold query phase (so BENCH_load.json carries the
// query section the compare gate checks, including the footprint ratio),
// and the torture harness must run its seal mode so every SIGKILL cycle
// verifies the cold tier regenerates from the WAL. Dropping any of these
// flags would silently un-gate the sealed-tier query path.
func TestCIScriptsExerciseColdTier(t *testing.T) {
	root := repoRoot(t)
	checks := []struct{ file, substr, why string }{
		{"scripts/bench.sh", "-seal-eps", "bench server must enable the cold sealed tier"},
		{"scripts/bench.sh", "-queries", "bench must run the hot/cold query phase"},
		{"scripts/bench.sh", "-stream-cpu", "bench must record per-point stream-CPU cost so the compare gate sees it"},
		{"scripts/bench_compare.sh", "bench.sh", "compare gate must re-run the bench harness"},
		{"scripts/torture.sh", "-seal-eps", "torture must verify cold-tier regenerability"},
	}
	for _, c := range checks {
		src, err := os.ReadFile(filepath.Join(root, c.file))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), c.substr) {
			t.Errorf("%s does not use %q: %s", c.file, c.substr, c.why)
		}
	}
}

// TestCIScriptsExerciseFanout pins the SUBSCRIBE fan-out coverage of the
// bench harness: trajload must run the subscriber fan-out phase so
// BENCH_load.json carries the fanout section the compare gate checks
// (publish throughput and delivery p50). Dropping the flag would silently
// un-gate the broadcast-bus fan-out path.
func TestCIScriptsExerciseFanout(t *testing.T) {
	root := repoRoot(t)
	checks := []struct{ file, substr, why string }{
		{"scripts/bench.sh", "-subs", "bench must run the SUBSCRIBE fan-out phase"},
		{"scripts/bench.sh", "-subs-points", "fan-out publish budget must be pinned for reproducible reports"},
	}
	for _, c := range checks {
		src, err := os.ReadFile(filepath.Join(root, c.file))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), c.substr) {
			t.Errorf("%s does not use %q: %s", c.file, c.substr, c.why)
		}
	}
}

// TestCIScriptsExerciseReplication pins the replication coverage of the CI
// entry points: the torture script must offer the two-node mode in both ack
// flavours with per-node artifact directories, and the verify gate must run
// the replication smoke. Dropping any of these would silently un-gate the
// failover path.
func TestCIScriptsExerciseReplication(t *testing.T) {
	root := repoRoot(t)
	checks := []struct{ file, substr, why string }{
		{"scripts/torture.sh", "--repl-smoke", "torture must define the replication smoke mode"},
		{"scripts/torture.sh", "-repl-ack follower", "replication torture must cover kill-primary/PROMOTE cycles"},
		{"scripts/torture.sh", "-repl-ack primary", "replication torture must cover kill-follower + shedding cycles"},
		{"scripts/torture.sh", "-workdir", "multi-process failures must collect per-node WALs and logs"},
		{"scripts/check.sh", "--repl-smoke", "the verify gate must run the replication smoke"},
	}
	for _, c := range checks {
		src, err := os.ReadFile(filepath.Join(root, c.file))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), c.substr) {
			t.Errorf("%s does not use %q: %s", c.file, c.substr, c.why)
		}
	}
}

// TestCIWorkflowShape pins the specifics ISSUE-level requirements of
// ci.yml: a blocking check job on the two most recent Go releases with
// caching, and a non-blocking bench-compare job.
func TestCIWorkflowShape(t *testing.T) {
	root := repoRoot(t)
	src, err := os.ReadFile(filepath.Join(root, ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}

	// Superseded PR runs must be cancelled (one concurrency group per ref),
	// but push/schedule runs on main must never be: losing a merge-gate run
	// from history would hide when a regression actually landed.
	conc := doc.Get("concurrency")
	if conc == nil {
		t.Error("ci.yml has no workflow-level concurrency block")
	} else {
		group := conc.Get("group").Str()
		if !strings.Contains(group, "github.workflow") || !strings.Contains(group, "github.ref") {
			t.Errorf("concurrency group %q does not key on workflow+ref", group)
		}
		cancel := conc.Get("cancel-in-progress").Str()
		if !strings.Contains(cancel, "pull_request") {
			t.Errorf("cancel-in-progress %q must cancel only superseded pull_request runs", cancel)
		}
	}

	jobs := doc.Get("jobs")

	check := jobs.Get("check")
	if check == nil {
		t.Fatal("ci.yml has no check job")
	}
	goVers := check.Get("strategy").Get("matrix").Get("go")
	if goVers == nil || len(goVers.Seq) != 2 {
		t.Fatalf("check matrix go = %+v, want [oldstable stable]", goVers)
	}
	want := map[string]bool{"oldstable": true, "stable": true}
	for _, v := range goVers.Seq {
		if !want[v.Str()] {
			t.Errorf("unexpected matrix go version %q", v.Str())
		}
	}
	cached := false
	for _, step := range check.Get("steps").Seq {
		if step.Get("uses") != nil && step.Get("with").Get("cache").Str() == "true" {
			cached = true
		}
	}
	if !cached {
		t.Error("check job does not enable setup-go caching")
	}

	lintJob := jobs.Get("lint")
	if lintJob == nil {
		t.Fatal("ci.yml has no lint job")
	}
	var runsLint, runsPrune, uploadsFindings bool
	for _, step := range lintJob.Get("steps").Seq {
		run := step.Get("run").Str()
		if strings.Contains(run, "cmd/trajlint") && strings.Contains(run, "-json") && strings.Contains(run, "-tests") {
			runsLint = true
		}
		if strings.Contains(run, "-prune-allowlist") {
			runsPrune = true
		}
		if strings.Contains(step.Get("uses").Str(), "upload-artifact") &&
			step.Get("if").Str() == "always()" &&
			strings.Contains(step.Get("with").Get("path").Str(), "trajlint.json") {
			uploadsFindings = true
		}
	}
	if !runsLint {
		t.Error("lint job does not run trajlint -tests -json")
	}
	if !runsPrune {
		t.Error("lint job does not check allowlist staleness (-prune-allowlist)")
	}
	if !uploadsFindings {
		t.Error("lint job does not upload trajlint.json unconditionally (if: always())")
	}

	replJob := jobs.Get("repl-torture")
	if replJob == nil {
		t.Fatal("ci.yml has no repl-torture job")
	}
	var runsReplTorture, uploadsReplArtifacts bool
	for _, step := range replJob.Get("steps").Seq {
		if strings.Contains(step.Get("run").Str(), "scripts/torture.sh --repl") {
			runsReplTorture = true
		}
		if strings.Contains(step.Get("uses").Str(), "upload-artifact") &&
			step.Get("if").Str() == "failure()" {
			uploadsReplArtifacts = true
		}
	}
	if !runsReplTorture {
		t.Error("repl-torture job does not run scripts/torture.sh --repl")
	}
	if !uploadsReplArtifacts {
		t.Error("repl-torture job does not upload per-node artifacts on failure")
	}

	bench := jobs.Get("bench-compare")
	if bench == nil {
		t.Fatal("ci.yml has no bench-compare job")
	}
	if bench.Get("continue-on-error").Str() != "true" {
		t.Error("bench-compare must be non-blocking (continue-on-error: true)")
	}
	// The job must run the regression gate script: that script re-runs
	// scripts/bench.sh (single-append AND -batch MAPPEND phases) and feeds
	// both reports to trajload -compare, so dropping it would silently
	// un-gate the ingest fast path.
	runsGate := false
	for _, step := range bench.Get("steps").Seq {
		if strings.Contains(step.Get("run").Str(), "scripts/bench_compare.sh") {
			runsGate = true
		}
	}
	if !runsGate {
		t.Error("bench-compare job does not run scripts/bench_compare.sh")
	}
}

// TestCIFuzzJobShape pins the scheduled fuzz sweep: ci.yml must trigger on
// schedule and workflow_dispatch, and the fuzz job must run `go test -fuzz`
// with a time budget over every registered fuzz target (gated off the merge
// path) and upload new crashers from testdata/fuzz/ on failure. Adding a
// fuzz target without extending the matrix here fails this test, so the
// sweep can never silently fall out of sync with the target inventory.
func TestCIFuzzJobShape(t *testing.T) {
	root := repoRoot(t)
	src, err := os.ReadFile(filepath.Join(root, ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}

	on := doc.Get("on")
	for _, ev := range []string{"schedule", "workflow_dispatch"} {
		if on.Get(ev) == nil {
			t.Errorf("ci.yml does not trigger on %s (the fuzz job would never run)", ev)
		}
	}
	if sched := on.Get("schedule"); sched != nil {
		if sched.Kind != SeqNode || len(sched.Seq) == 0 || sched.Seq[0].Get("cron").Str() == "" {
			t.Error("schedule trigger has no cron entry")
		}
	}

	fuzz := doc.Get("jobs").Get("fuzz")
	if fuzz == nil {
		t.Fatal("ci.yml has no fuzz job")
	}
	cond := fuzz.Get("if").Str()
	if !strings.Contains(cond, "schedule") || !strings.Contains(cond, "workflow_dispatch") {
		t.Errorf("fuzz job if-condition %q must restrict it to schedule/workflow_dispatch", cond)
	}

	// Every fuzz target in the repo must appear in the matrix, paired with
	// its package.
	want := map[string]string{
		"FuzzParse":                   "./internal/compress",
		"FuzzCompressInvariants":      "./internal/compress",
		"FuzzOnePassErrorBound":       "./internal/compress",
		"FuzzOPWSPStreamMatchesBatch": "./internal/stream",
		"FuzzOPERBStreamMatchesBatch": "./internal/stream",
		"FuzzCISEDStreamMatchesBatch": "./internal/stream",
	}
	include := fuzz.Get("strategy").Get("matrix").Get("include")
	if include == nil || include.Kind != SeqNode {
		t.Fatal("fuzz job has no matrix include list")
	}
	got := map[string]string{}
	for _, entry := range include.Seq {
		got[entry.Get("target").Str()] = entry.Get("pkg").Str()
	}
	for target, pkg := range want {
		if got[target] != pkg {
			t.Errorf("fuzz matrix: target %s has pkg %q, want %q", target, got[target], pkg)
		}
	}
	for target := range got {
		if _, ok := want[target]; !ok {
			t.Errorf("fuzz matrix lists unknown target %s (update this test's inventory)", target)
		}
	}

	var runsFuzz, uploadsCrashers bool
	for _, step := range fuzz.Get("steps").Seq {
		run := step.Get("run").Str()
		if strings.Contains(run, "-fuzz=") && strings.Contains(run, "-fuzztime=") &&
			strings.Contains(run, "matrix.target") {
			runsFuzz = true
		}
		if strings.Contains(step.Get("uses").Str(), "upload-artifact") &&
			step.Get("if").Str() == "failure()" &&
			strings.Contains(step.Get("with").Get("path").Str(), "testdata/fuzz") {
			uploadsCrashers = true
		}
	}
	if !runsFuzz {
		t.Error("fuzz job does not run go test -fuzz with a -fuzztime budget per matrix target")
	}
	if !uploadsCrashers {
		t.Error("fuzz job does not upload testdata/fuzz crashers on failure")
	}
}
